//! Workspace-wiring smoke test: every crate the `wfprov` facade re-exports
//! is reachable through it and usable end-to-end. This is deliberately
//! shallow — deep behavior lives in `tests/correctness.rs` and the
//! per-crate suites — but it pins the facade's module names and one
//! load-bearing type from each, so a broken re-export or a manifest that
//! drops a member crate fails here first.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// `wfprov::digraph` — build a graph, sort it, close it.
#[test]
fn digraph_reachable_through_facade() {
    use wfprov::digraph::{DiGraph, NodeId};
    let mut g = DiGraph::with_nodes(4);
    g.add_edge(NodeId(0), NodeId(1));
    g.add_edge(NodeId(1), NodeId(2));
    g.add_edge(NodeId(2), NodeId(3));
    assert_eq!(g.topo_sort().unwrap().len(), 4);
}

/// `wfprov::boolmat` — matrix algebra and the power cache agree.
#[test]
fn boolmat_reachable_through_facade() {
    use wfprov::boolmat::{pow, BoolMat, PowerCache};
    let x = BoolMat::from_pairs(3, 3, [(0, 1), (1, 2), (2, 0)]);
    let cache = PowerCache::new(x.clone());
    assert_eq!(*cache.power(7), pow(&x, 7));
}

/// `wfprov::bitio` — a value survives the wire.
#[test]
fn bitio_reachable_through_facade() {
    use wfprov::bitio::{min_width, BitReader, BitWriter};
    let mut w = BitWriter::new();
    w.write_bits(0b1011, min_width(15));
    w.write_gamma(42);
    let bits = w.finish();
    let mut r = BitReader::new(&bits);
    assert_eq!(r.read_bits(4).unwrap(), 0b1011);
    assert_eq!(r.read_gamma().unwrap(), 42);
    assert_eq!(r.remaining(), 0);
}

/// `wfprov::model` — the paper's running example validates.
#[test]
fn model_reachable_through_facade() {
    use wfprov::model::fixtures::paper_example;
    let ex = paper_example();
    assert!(ex.spec.grammar.module_count() > 0);
    assert!(ex.spec.grammar.production_count() > 0);
}

/// `wfprov::analysis` — safety and recursion classification run.
#[test]
fn analysis_reachable_through_facade() {
    use wfprov::analysis::{classify, is_safe, ProdGraph, RecursionClass};
    use wfprov::model::fixtures::paper_example;
    use wfprov::model::ViewSpec;
    let ex = paper_example();
    assert_eq!(classify(&ex.spec.grammar), RecursionClass::StrictlyLinear);
    let dv = ex.spec.default_view();
    assert!(is_safe(&ViewSpec::new(&ex.spec, &dv)));
    let pg = ProdGraph::new(&ex.spec.grammar);
    assert!(!pg.cycles().unwrap().is_empty());
}

/// `wfprov::run` — the Figure 3 run exists and is oracle-queryable.
#[test]
fn run_reachable_through_facade() {
    use wfprov::model::fixtures::paper_example;
    use wfprov::model::ViewSpec;
    use wfprov::run::fixtures::figure3_run;
    use wfprov::run::RunOracle;
    let ex = paper_example();
    let (run, ids) = figure3_run(&ex);
    let u1 = ex.view_u1();
    let vs = ViewSpec::new(&ex.spec, &u1);
    let oracle = RunOracle::new(&ex.spec.grammar, &vs, &run).unwrap();
    assert_eq!(oracle.depends_on(ids.d17, ids.d31), Some(false));
}

/// `wfprov::fvl` — label a run and a view, ask Example 8's question.
#[test]
fn fvl_reachable_through_facade() {
    use wfprov::fvl::{Fvl, VariantKind};
    use wfprov::model::fixtures::paper_example;
    use wfprov::run::fixtures::figure3_run;
    let ex = paper_example();
    let fvl = Fvl::new(&ex.spec).unwrap();
    let (run, ids) = figure3_run(&ex);
    let labels = fvl.labeler(&run);
    let vl = fvl.label_view(&ex.view_u2(), VariantKind::QueryEfficient).unwrap();
    assert_eq!(fvl.query(&vl, labels.label(ids.d17), labels.label(ids.d31)), Some(true));
}

/// `wfprov::drl` — the baseline labels a coarse run and answers like FVL.
#[test]
fn drl_reachable_through_facade() {
    use wfprov::analysis::ProdGraph;
    use wfprov::drl::Drl;
    use wfprov::workloads::{bioaid_coarse, sample, views};
    let w = bioaid_coarse(2);
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(6);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 60);
    let view = views::black_box_view(&w, &mut rng, 4);
    let drl = Drl::new(&w.spec, &view).unwrap();
    let labels = drl.label_run(&run);
    let visible: Vec<_> = labels.iter().map(|(d, _)| d).collect();
    assert!(visible.len() >= 2);
    let (a, b) = (visible[0], visible[1]);
    let _ = drl.query(labels.label(a).unwrap(), labels.label(b).unwrap());
}

/// `wfprov::workloads` — generators are deterministic per seed.
#[test]
fn workloads_reachable_through_facade() {
    use wfprov::workloads::{bioaid, synthetic, SynthParams};
    let a = bioaid(4);
    let b = bioaid(4);
    assert_eq!(a.spec.grammar.module_count(), b.spec.grammar.module_count());
    let s = synthetic(&SynthParams {
        workflow_size: 6,
        module_degree: 2,
        nesting_depth: 2,
        recursion_length: 1,
        coarse: false,
        seed: 3,
    });
    assert!(s.spec.grammar.production_count() > 0);
}
