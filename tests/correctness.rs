//! The central correctness property of the whole reproduction (Theorem 9):
//! for every derivation, every safe view and every pair of visible data
//! items, the decoding predicate π over (two data labels + one view label)
//! answers exactly the brute-force port-graph oracle.
//!
//! Exercised across: the paper's fixtures, random BioAID-like runs, random
//! grey-box views, all three view-label variants, partial runs, and the
//! DRL baseline on coarse-grained workloads.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wfprov::analysis::ProdGraph;
use wfprov::drl::Drl;
use wfprov::fvl::{Fvl, VariantKind};
use wfprov::model::ViewSpec;
use wfprov::run::{RunOracle, RunProjection};
use wfprov::workloads::views::{black_box_view, random_safe_view};
use wfprov::workloads::{bioaid, bioaid_coarse, sample, synthetic, SynthParams};

const VARIANTS: [VariantKind; 3] =
    [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient];

/// All-pairs π vs oracle on the Figure 3 run under both paper views.
#[test]
fn paper_fixture_all_pairs_all_variants() {
    let ex = wfprov::model::fixtures::paper_example();
    let fvl = Fvl::new(&ex.spec).unwrap();
    let (run, _) = wfprov::run::fixtures::figure3_run(&ex);
    let labels = fvl.labeler(&run);
    for view in [ex.view_u1(), ex.view_u2()] {
        let vs = ViewSpec::new(&ex.spec, &view);
        let oracle = RunOracle::new(&ex.spec.grammar, &vs, &run).unwrap();
        for kind in VARIANTS {
            let vl = fvl.label_view(&view, kind).unwrap();
            for a in run.items() {
                for b in run.items() {
                    let got = fvl.query(&vl, labels.label(a), labels.label(b));
                    let want = oracle.depends_on(a, b);
                    assert_eq!(got, want, "{kind:?} {a:?}->{b:?} (view size {})", view.size());
                }
            }
        }
    }
}

/// Random BioAID-like runs × random grey-box views × all variants, sampled
/// pairs. This is the Theorem 9 property at scale.
#[test]
fn random_runs_and_views_match_oracle() {
    let w = bioaid(17);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..6 {
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, 120);
        let labels = fvl.labeler(&run);
        for view_size in [3, 8, 16] {
            let view = random_safe_view(&w, &mut rng, view_size);
            let vs = ViewSpec::new(&w.spec, &view);
            let oracle = RunOracle::new(&w.spec.grammar, &vs, &run).unwrap();
            let vls: Vec<_> = VARIANTS.iter().map(|&k| fvl.label_view(&view, k).unwrap()).collect();
            for (a, b) in sample::sample_query_pairs(&run, &mut rng, 400) {
                let want = oracle.depends_on(a, b);
                for (vl, kind) in vls.iter().zip(VARIANTS) {
                    let got = fvl.query(vl, labels.label(a), labels.label(b));
                    assert_eq!(
                        got, want,
                        "trial {trial} size {view_size} {kind:?}: {a:?} -> {b:?}"
                    );
                }
            }
        }
    }
}

/// Partial runs answer identically at every derivation prefix (dynamic
/// labeling: labels and answers never change as the run grows).
#[test]
fn partial_runs_are_queryable_and_stable() {
    let w = bioaid(5);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(3);
    let (deriv, _) = sample::sample_run(&w, &pg, &mut rng, 60);
    let view = random_safe_view(&w, &mut rng, 8);
    let vl = fvl.label_view(&view, VariantKind::Default).unwrap();
    let vs = ViewSpec::new(&w.spec, &view);

    // Replay step by step; after each step check a sample of pairs against
    // the partial-run oracle.
    let mut run = wfprov::run::Run::start(&w.spec.grammar);
    let mut labeler = fvl.labeler(&run);
    for &(inst, prod) in &deriv.steps {
        let s = run.apply(&w.spec.grammar, inst, prod).unwrap();
        labeler.on_step(fvl.prod_graph(), &run, s);
        if s.0 % 7 == 0 {
            let oracle = RunOracle::new(&w.spec.grammar, &vs, &run).unwrap();
            for (a, b) in sample::sample_query_pairs(&run, &mut rng, 60) {
                assert_eq!(
                    fvl.query(&vl, labeler.label(a), labeler.label(b)),
                    oracle.depends_on(a, b),
                    "step {} pair {a:?}->{b:?}",
                    s.0
                );
            }
        }
    }
}

/// Synthetic-family sanity across the §6.5 parameter grid.
#[test]
fn synthetic_family_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(8);
    for (depth, r, deg) in [(2, 1, 2), (4, 2, 4), (6, 3, 3)] {
        let w = synthetic(&SynthParams {
            workflow_size: 8,
            module_degree: deg,
            nesting_depth: depth,
            recursion_length: r,
            coarse: false,
            seed: 1000 + depth as u64,
        });
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, 150);
        let labels = fvl.labeler(&run);
        let view = random_safe_view(&w, &mut rng, depth);
        let vs = ViewSpec::new(&w.spec, &view);
        let oracle = RunOracle::new(&w.spec.grammar, &vs, &run).unwrap();
        let vl = fvl.label_view(&view, VariantKind::QueryEfficient).unwrap();
        for (a, b) in sample::sample_query_pairs(&run, &mut rng, 500) {
            assert_eq!(
                fvl.query(&vl, labels.label(a), labels.label(b)),
                oracle.depends_on(a, b),
                "d={depth} r={r} deg={deg}: {a:?}->{b:?}"
            );
        }
    }
}

/// On coarse-grained workloads, four answers must coincide: the oracle,
/// full FVL, Matrix-Free FVL, and DRL (§6.4's fairness requirement).
#[test]
fn coarse_grained_fvl_matrixfree_drl_agree() {
    let w = bioaid_coarse(23);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(12);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 150);
    let labels = fvl.labeler(&run);
    for size in [4, 10] {
        let view = black_box_view(&w, &mut rng, size);
        let vs = ViewSpec::new(&w.spec, &view);
        let oracle = RunOracle::new(&w.spec.grammar, &vs, &run).unwrap();
        let vl = fvl.label_view(&view, VariantKind::QueryEfficient).unwrap();
        let idx = fvl.structural_index(&view);
        let drl = Drl::new(&w.spec, &view).unwrap();
        let drl_labels = drl.label_run(&run);
        let proj = RunProjection::new(&w.spec.grammar, &run, &view);
        for (a, b) in sample::sample_query_pairs(&run, &mut rng, 600) {
            let want = oracle.depends_on(a, b);
            let full = fvl.query(&vl, labels.label(a), labels.label(b));
            assert_eq!(full, want, "full FVL {a:?}->{b:?}");
            if proj.item_visible(a) && proj.item_visible(b) {
                let mf = fvl.query_structural(&idx, labels.label(a), labels.label(b));
                assert_eq!(mf, want, "matrix-free {a:?}->{b:?}");
                let (la, lb) = (drl_labels.label(a).unwrap(), drl_labels.label(b).unwrap());
                assert_eq!(drl.query(la, lb), want, "DRL {a:?}->{b:?}");
            }
        }
    }
}

/// Visibility from labels == visibility from the run projection, on random
/// runs and views.
#[test]
fn label_visibility_matches_projection() {
    let w = bioaid(31);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(7);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 200);
    let labels = fvl.labeler(&run);
    for size in [2, 6, 12] {
        let view = random_safe_view(&w, &mut rng, size);
        let vl = fvl.label_view(&view, VariantKind::Default).unwrap();
        let proj = RunProjection::new(&w.spec.grammar, &run, &view);
        for d in run.items() {
            assert_eq!(
                fvl.is_visible(&vl, labels.label(d)),
                proj.item_visible(d),
                "item {d:?} view size {size}"
            );
        }
    }
}
