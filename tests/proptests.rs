//! Property-based tests (proptest) over randomized specifications, runs and
//! views: the paper's invariants must hold for *every* seed, not just the
//! fixtures.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wfprov::analysis::{classify, ProdGraph, RecursionClass};
use wfprov::engine::QueryEngine;
use wfprov::fvl::{Fvl, VariantKind};
use wfprov::model::ViewSpec;
use wfprov::run::RunOracle;
use wfprov::workloads::{bioaid, sample, synthetic, views, SynthParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 9 as a property: π == oracle on random (seeded) worlds.
    #[test]
    fn pi_matches_oracle(seed in 0u64..1_000, view_size in 2usize..14, run_size in 50usize..250) {
        let w = bioaid(seed % 5); // a few distinct grammars
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
        let labels = fvl.labeler(&run);
        let view = views::random_safe_view(&w, &mut rng, view_size);
        let vs = ViewSpec::new(&w.spec, &view);
        let oracle = RunOracle::new(&w.spec.grammar, &vs, &run).unwrap();
        let vl = fvl.label_view(&view, VariantKind::QueryEfficient).unwrap();
        for (a, b) in sample::sample_query_pairs(&run, &mut rng, 150) {
            prop_assert_eq!(
                fvl.query(&vl, labels.label(a), labels.label(b)),
                oracle.depends_on(a, b),
                "{:?} -> {:?}", a, b
            );
        }
    }

    /// Every label round-trips through the wire codec bit-exactly.
    #[test]
    fn codec_roundtrip(seed in 0u64..1_000, run_size in 50usize..400) {
        let w = bioaid(seed % 3);
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
        let labels = fvl.labeler(&run);
        for l in labels.labels() {
            let bits = fvl.codec().encode(l);
            prop_assert_eq!(&fvl.codec().decode(&bits).unwrap(), l);
            // Factoring never loses to the unfactored encoding.
            prop_assert!(bits.len() <= fvl.codec().encoded_bits_unfactored(l) + 8);
        }
    }

    /// Lemma 4: compressed-tree depth ≤ 2|Δ| + 1, hence label paths are
    /// bounded regardless of run size.
    #[test]
    fn label_paths_bounded(seed in 0u64..1_000, run_size in 100usize..2_000) {
        let w = bioaid(seed % 3);
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
        let labels = fvl.labeler(&run);
        let bound = 2 * w.spec.grammar.composite_modules().count() + 1;
        for l in labels.labels() {
            for p in l.out.iter().chain(l.inp.iter()) {
                prop_assert!(p.path.len() <= bound, "path {} > {}", p.path.len(), bound);
            }
        }
    }

    /// The engine's batched fast path must never diverge from the reference
    /// per-call path: over random strictly-linear workloads, for all three
    /// variants, `QueryEngine::query_batch` agrees pairwise with
    /// `Fvl::query` — including `None`s for invisible items.
    #[test]
    fn query_batch_agrees_with_per_call(
        seed in 0u64..1_000,
        view_size in 2usize..10,
        run_size in 40usize..200,
    ) {
        // Alternate between the two generator families (both strictly
        // linear-recursive by construction).
        let w = if seed % 2 == 0 {
            bioaid(seed % 6)
        } else {
            synthetic(&SynthParams {
                workflow_size: 8,
                module_degree: 3,
                nesting_depth: 3,
                recursion_length: 1 + (seed as usize % 3),
                coarse: false,
                seed,
            })
        };
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
        let labels = fvl.labeler(&run);
        let view = views::random_safe_view(&w, &mut rng, view_size);

        let mut engine = QueryEngine::new(&fvl);
        let items = engine.insert_labels(labels.labels());
        let pairs = sample::sample_query_pairs(&run, &mut rng, 100);
        let id_pairs: Vec<_> =
            pairs.iter().map(|&(a, b)| (items[a.0 as usize], items[b.0 as usize])).collect();
        let vid = engine.add_view(view.clone());
        for kind in
            [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient]
        {
            let vref = engine.compile(vid, kind).unwrap();
            let vl = fvl.label_view(&view, kind).unwrap();
            let batch = engine.query_batch(vref, &id_pairs);
            for (i, &(a, b)) in pairs.iter().enumerate() {
                prop_assert_eq!(
                    batch[i],
                    fvl.query(&vl, labels.label(a), labels.label(b)),
                    "{:?} pair {}: {:?} -> {:?}", kind, i, a, b
                );
            }
        }
    }

    /// The synthetic family is strictly linear-recursive and safe for every
    /// parameter combination.
    #[test]
    fn synthetic_always_wellformed(
        depth in 1usize..6,
        degree in 2u8..8,
        size in 4usize..20,
        rec in 1usize..4,
        seed in 0u64..100,
    ) {
        let w = synthetic(&SynthParams {
            workflow_size: size,
            module_degree: degree,
            nesting_depth: depth,
            recursion_length: rec,
            coarse: false,
            seed,
        });
        prop_assert_eq!(classify(&w.spec.grammar), RecursionClass::StrictlyLinear);
        let dv = w.spec.default_view();
        prop_assert!(wfprov::analysis::is_safe(&ViewSpec::new(&w.spec, &dv)));
        // FVL accepts it.
        prop_assert!(Fvl::new(&w.spec).is_ok());
    }
}
