//! Property-based tests (proptest) over randomized specifications, runs and
//! views: the paper's invariants must hold for *every* seed, not just the
//! fixtures.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use wfprov::analysis::{classify, ProdGraph, RecursionClass};
use wfprov::engine::{
    EngineGeneration, EngineWriter, IngestOp, IngestPipeline, ItemId, LiveEngine, PipelineOptions,
    PublishPolicy, QueryEngine, SharedSink, Ticket, WorkerScratch,
};
use wfprov::fvl::{DataLabel, Fvl, VariantKind};
use wfprov::model::ViewSpec;
use wfprov::run::RunOracle;
use wfprov::workloads::{bioaid, sample, synthetic, views, SynthParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 9 as a property: π == oracle on random (seeded) worlds.
    #[test]
    fn pi_matches_oracle(seed in 0u64..1_000, view_size in 2usize..14, run_size in 50usize..250) {
        let w = bioaid(seed % 5); // a few distinct grammars
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
        let labels = fvl.labeler(&run);
        let view = views::random_safe_view(&w, &mut rng, view_size);
        let vs = ViewSpec::new(&w.spec, &view);
        let oracle = RunOracle::new(&w.spec.grammar, &vs, &run).unwrap();
        let vl = fvl.label_view(&view, VariantKind::QueryEfficient).unwrap();
        for (a, b) in sample::sample_query_pairs(&run, &mut rng, 150) {
            prop_assert_eq!(
                fvl.query(&vl, labels.label(a), labels.label(b)),
                oracle.depends_on(a, b),
                "{:?} -> {:?}", a, b
            );
        }
    }

    /// Every label round-trips through the wire codec bit-exactly.
    #[test]
    fn codec_roundtrip(seed in 0u64..1_000, run_size in 50usize..400) {
        let w = bioaid(seed % 3);
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
        let labels = fvl.labeler(&run);
        for l in labels.labels() {
            let bits = fvl.codec().encode(l);
            prop_assert_eq!(&fvl.codec().decode(&bits).unwrap(), l);
            // Factoring never loses to the unfactored encoding.
            prop_assert!(bits.len() <= fvl.codec().encoded_bits_unfactored(l) + 8);
        }
    }

    /// Lemma 4: compressed-tree depth ≤ 2|Δ| + 1, hence label paths are
    /// bounded regardless of run size.
    #[test]
    fn label_paths_bounded(seed in 0u64..1_000, run_size in 100usize..2_000) {
        let w = bioaid(seed % 3);
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
        let labels = fvl.labeler(&run);
        let bound = 2 * w.spec.grammar.composite_modules().count() + 1;
        for l in labels.labels() {
            for p in l.out.iter().chain(l.inp.iter()) {
                prop_assert!(p.path.len() <= bound, "path {} > {}", p.path.len(), bound);
            }
        }
    }

    /// The engine's batched fast path must never diverge from the reference
    /// per-call path: over random strictly-linear workloads, for all three
    /// variants, `QueryEngine::query_batch` agrees pairwise with
    /// `Fvl::query` — including `None`s for invisible items.
    #[test]
    fn query_batch_agrees_with_per_call(
        seed in 0u64..1_000,
        view_size in 2usize..10,
        run_size in 40usize..200,
    ) {
        // Alternate between the two generator families (both strictly
        // linear-recursive by construction).
        let w = if seed % 2 == 0 {
            bioaid(seed % 6)
        } else {
            synthetic(&SynthParams {
                workflow_size: 8,
                module_degree: 3,
                nesting_depth: 3,
                recursion_length: 1 + (seed as usize % 3),
                coarse: false,
                seed,
            })
        };
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
        let labels = fvl.labeler(&run);
        let view = views::random_safe_view(&w, &mut rng, view_size);

        let mut engine = QueryEngine::new(&fvl);
        let items = engine.insert_labels(labels.labels());
        let pairs = sample::sample_query_pairs(&run, &mut rng, 100);
        let id_pairs: Vec<_> =
            pairs.iter().map(|&(a, b)| (items[a.0 as usize], items[b.0 as usize])).collect();
        let vid = engine.add_view(view.clone());
        for kind in
            [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient]
        {
            let vref = engine.compile(vid, kind).unwrap();
            let vl = fvl.label_view(&view, kind).unwrap();
            let batch = engine.query_batch(vref, &id_pairs);
            for (i, &(a, b)) in pairs.iter().enumerate() {
                prop_assert_eq!(
                    batch[i],
                    fvl.query(&vl, labels.label(a), labels.label(b)),
                    "{:?} pair {}: {:?} -> {:?}", kind, i, a, b
                );
            }
        }
    }

    /// The synthetic family is strictly linear-recursive and safe for every
    /// parameter combination.
    #[test]
    fn synthetic_always_wellformed(
        depth in 1usize..6,
        degree in 2u8..8,
        size in 4usize..20,
        rec in 1usize..4,
        seed in 0u64..100,
    ) {
        let w = synthetic(&SynthParams {
            workflow_size: size,
            module_degree: degree,
            nesting_depth: depth,
            recursion_length: rec,
            coarse: false,
            seed,
        });
        prop_assert_eq!(classify(&w.spec.grammar), RecursionClass::StrictlyLinear);
        let dv = w.spec.default_view();
        prop_assert!(wfprov::analysis::is_safe(&ViewSpec::new(&w.spec, &dv)));
        // FVL accepts it.
        prop_assert!(Fvl::new(&w.spec).is_ok());
    }

    /// Concurrent ingest is linearizable and durable: a fleet of racing
    /// producers publishes exactly what a sequential engine applying the
    /// same ops in global ticket order holds, and the run's op-log
    /// survives save → load → resume — a second fleet raced on top of the
    /// reloaded generation stays element-identical too.
    #[test]
    fn concurrent_ingest_matches_sequential_and_survives_reload(
        seed in 0u64..500,
        producers_ix in 0usize..3,
    ) {
        let producers = [1usize, 2, 4][producers_ix];
        const PER: usize = 40; // labels per producer per phase, 8 per op
        let w = bioaid(seed % 5);
        let fvl = Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, fvl.prod_graph(), &mut rng, 64);
        let mut pool = fvl.labeler(&run).labels().to_vec();
        prop_assert!(!pool.is_empty());
        let mut i = 0usize;
        while pool.len() < 2 * producers * PER {
            pool.push(pool[i].clone());
            i += 1;
        }
        let view = views::random_safe_view(&w, &mut rng, 4);

        // Phase 1: race the fleet; every publish appends its delta record
        // to the shared op-log sink, chained onto the saved base below.
        let mut writer = EngineWriter::from_fvl(fvl.clone());
        let vref = writer.register_view(view.clone(), VariantKind::Default).unwrap();
        let live = Arc::new(LiveEngine::new(writer.base().clone()));
        writer.publish(&live);
        let mut stream = Vec::new();
        writer.base().save(&mut stream).unwrap();
        let sink = SharedSink::new();
        let pipeline = IngestPipeline::spawn_with(
            writer,
            live.clone(),
            // A tiny op budget forces publishes to split producer batches.
            PublishPolicy { max_batch_ops: 8, ..PublishPolicy::default() },
            PipelineOptions { sink: Some(Box::new(sink.clone())), ..PipelineOptions::default() },
        );
        let race = |pipeline: &IngestPipeline, pool: &[DataLabel], base: usize| {
            let mut tickets: Vec<(Ticket, Vec<DataLabel>)> = Vec::new();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..producers)
                    .map(|p| {
                        let q = pipeline.queue().clone();
                        let slice = &pool[base + p * PER..base + (p + 1) * PER];
                        s.spawn(move || {
                            slice
                                .chunks(8)
                                .map(|c| {
                                    let t = q.push(IngestOp::InsertLabels(c.to_vec())).unwrap();
                                    (t, c.to_vec())
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    tickets.extend(h.join().expect("producer thread panicked"));
                }
            });
            tickets
        };
        let mut tickets = race(&pipeline, &pool, 0);
        let report = pipeline.shutdown();
        prop_assert!(report.persist_error.is_none());

        // Sequential reference: the same chunks, applied in the global
        // ticket order the pipeline resolved.
        for (t, _) in &tickets {
            prop_assert!(t.wait().is_ok());
        }
        tickets.sort_by_key(|(t, _)| t.apply_index().expect("resolved tickets carry the index"));
        let mut reference = QueryEngine::new(&fvl);
        let ref_vref = reference.register_view(view.clone(), VariantKind::Default).unwrap();
        prop_assert_eq!(ref_vref, vref);
        for (_, chunk) in &tickets {
            reference.insert_labels(chunk);
        }
        let final_gen = live.snapshot();
        prop_assert_eq!(final_gen.store().len(), producers * PER);
        let items: Vec<ItemId> = (0..final_gen.store().len() as u32).map(ItemId).collect();
        let mut ws = WorkerScratch::new();
        prop_assert_eq!(
            final_gen.all_pairs(&mut ws, vref, &items),
            reference.all_pairs(vref, &items)
        );

        // Save → load: replaying base ‖ op-log must land on the same
        // generation, views included.
        stream.extend_from_slice(&sink.contents());
        let fvl2 = Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).unwrap());
        let reloaded = EngineGeneration::replay(fvl2, &mut stream.as_slice()).unwrap();
        prop_assert_eq!(reloaded.seqno(), final_gen.seqno());
        prop_assert_eq!(reloaded.store().len(), final_gen.store().len());
        prop_assert_eq!(
            reloaded.all_pairs(&mut ws, vref, &items),
            reference.all_pairs(vref, &items)
        );

        // Resume: a second fleet raced on top of the reloaded generation
        // must still match the sequential reference continued in its
        // ticket order.
        let live2 = Arc::new(LiveEngine::new(Arc::new(reloaded)));
        let pipeline2 =
            IngestPipeline::spawn(EngineWriter::new(live2.snapshot()), live2.clone(), PublishPolicy {
                max_batch_ops: 8,
                ..PublishPolicy::default()
            });
        let mut tickets2 = race(&pipeline2, &pool, producers * PER);
        pipeline2.shutdown();
        for (t, _) in &tickets2 {
            prop_assert!(t.wait().is_ok());
        }
        tickets2.sort_by_key(|(t, _)| t.apply_index().expect("resolved tickets carry the index"));
        for (_, chunk) in &tickets2 {
            reference.insert_labels(chunk);
        }
        let resumed = live2.snapshot();
        prop_assert_eq!(resumed.store().len(), 2 * producers * PER);
        let items2: Vec<ItemId> = (0..resumed.store().len() as u32).map(ItemId).collect();
        prop_assert_eq!(
            resumed.all_pairs(&mut ws, vref, &items2),
            reference.all_pairs(vref, &items2)
        );
    }
}
