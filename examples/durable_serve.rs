//! Crash-safe durable serving, end to end on real files.
//!
//! `multi_ingest` shows the pipeline appending to an in-memory sink; this
//! example gives the pipeline a real durability story and then attacks
//! it, in four acts:
//!
//! 1. **Serve durably** — a [`DurableEngine`] over [`DiskStorage`] (a
//!    `base.wfs` snapshot plus a framed, checksummed, fsynced
//!    `oplog.wfl`) backs an ingest pipeline with background compaction.
//!    Every acknowledged ticket is covered by an append+fsync *before*
//!    its generation is swapped live.
//! 2. **Survive faults** — the same pipeline over a fault-injecting
//!    storage: transient I/O errors on the append path are absorbed by
//!    the typed [`RetryPolicy`] (counted, acked); a fatal error resolves
//!    every in-flight ticket `Err` and surfaces in the report — never a
//!    hang, never a silent drop.
//! 3. **Crash mid-compaction** — a metered storage is killed between the
//!    base rename and the log rewrite; reopening recovers the full acked
//!    state by skipping the frames the fresh base already covers.
//! 4. **Reopen and verify** — the on-disk bytes from act 1 (plus a torn
//!    tail appended to simulate a crash mid-append) reopen to the exact
//!    acknowledged generation — answers identical, torn suffix healed,
//!    zero acked ops lost — and the recovered engine keeps serving.
//!
//! Run with: `cargo run --release --example durable_serve`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;
use wfprov::engine::{
    serialize_base, shared_durable, CompactionPolicy, DurableEngine, EngineWriter, IngestError,
    IngestOp, IngestPipeline, ItemId, LiveEngine, PipelineOptions, PublishPolicy, WorkerScratch,
};
use wfprov::fvl::{Fvl, VariantKind};
use wfprov::snapshot::{encode_frame, DiskStorage, FaultKind, FaultPlan, MemStorage, LOG_FILE};
use wfprov::workloads::{bioaid, sample, views};

const CHUNK: usize = 24;

fn main() {
    let w = bioaid(3);
    let fvl = Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).expect("strictly linear-recursive"));
    let mut rng = StdRng::seed_from_u64(11);
    let (_, run) = sample::sample_run(&w, fvl.prod_graph(), &mut rng, 3_000);
    let pool = fvl.labeler(&run).labels().to_vec();
    let view = views::random_safe_view(&w, &mut rng, 8);

    let dir = std::env::temp_dir().join(format!("wfprov-durable-serve-{}", std::process::id()));

    // --- Act 1: serve with disk durability + background compaction. -----
    let storage = DiskStorage::open(&dir).expect("storage directory");
    let (durable, gen0, report) =
        DurableEngine::open(fvl.clone(), Box::new(storage), 1024).expect("fresh open");
    assert_eq!(report.recovered_seqno, 0, "a fresh directory bootstraps empty");
    let live = Arc::new(LiveEngine::new(gen0.clone()));
    let shared = shared_durable(durable);
    let policy = PublishPolicy { max_batch_ops: 8, ..PublishPolicy::default() };
    let pipeline = IngestPipeline::spawn_with(
        EngineWriter::new(gen0),
        live.clone(),
        policy,
        PipelineOptions {
            durable: Some(shared.clone()),
            // Aggressive thresholds so the demo compacts while serving.
            compaction: Some(CompactionPolicy { max_log_bytes: 1 << 15, max_log_frames: 24 }),
            ..PipelineOptions::default()
        },
    );
    let q = pipeline.queue().clone();
    let mut tickets = Vec::new();
    tickets.push(q.push(IngestOp::AddView(view.clone())).unwrap());
    tickets.push(q.push(IngestOp::CompileView(view.clone(), VariantKind::Default)).unwrap());
    for chunk in pool.chunks(CHUNK) {
        tickets.push(q.push(IngestOp::InsertLabels(chunk.to_vec())).unwrap());
    }
    for t in &tickets {
        t.wait().expect("durable pipeline acks every op");
    }
    let acked = live.snapshot();
    let report = pipeline.shutdown();
    assert!(report.persist_error.is_none());
    let totals = report.compaction.expect("compaction driver ran");
    assert!(totals.compactions >= 1, "demo thresholds must have compacted");
    println!(
        "act 1: acked {} labels over {} publishes (generation {}), {} background compaction(s) \
         reclaimed {} log bytes",
        report.stats.labels_ingested,
        report.stats.publishes,
        acked.seqno(),
        totals.compactions,
        totals.reclaimed_bytes,
    );

    // --- Act 2: fault injection on the append path. ----------------------
    // Transient faults: three consecutive injected I/O errors, absorbed by
    // the retry policy — the op is still acknowledged.
    let mem = MemStorage::with_plan(FaultPlan::new().transient_calls(0, 3));
    let (durable, gen0, _) = DurableEngine::open(fvl.clone(), Box::new(mem), 1024).unwrap();
    let live2 = Arc::new(LiveEngine::new(gen0.clone()));
    let pipeline = IngestPipeline::spawn_with(
        EngineWriter::new(gen0),
        live2.clone(),
        PublishPolicy { max_delay: Duration::from_millis(1), ..PublishPolicy::default() },
        PipelineOptions { durable: Some(shared_durable(durable)), ..PipelineOptions::default() },
    );
    let t = pipeline.queue().push(IngestOp::InsertLabels(pool[..CHUNK].to_vec())).unwrap();
    t.wait().expect("transient faults are retried, not surfaced");
    let rep = pipeline.shutdown();
    assert!(rep.stats.persist_retries >= 1);
    println!(
        "act 2: {} transient append fault(s) absorbed by the retry policy, op still acked",
        rep.stats.persist_retries
    );

    // A fatal fault: the pipeline gives up, the ticket resolves Err (never
    // hangs), and the report names the failure.
    let mem = MemStorage::with_plan(
        FaultPlan::new().at_call(0, FaultKind::Fail(std::io::ErrorKind::PermissionDenied)),
    );
    let (durable, gen0, _) = DurableEngine::open(fvl.clone(), Box::new(mem), 1024).unwrap();
    let live3 = Arc::new(LiveEngine::new(gen0.clone()));
    let pipeline = IngestPipeline::spawn_with(
        EngineWriter::new(gen0),
        live3,
        PublishPolicy { max_delay: Duration::from_millis(1), ..PublishPolicy::default() },
        PipelineOptions { durable: Some(shared_durable(durable)), ..PipelineOptions::default() },
    );
    let t = pipeline.queue().push(IngestOp::InsertLabels(pool[..CHUNK].to_vec())).unwrap();
    match t.wait() {
        Err(IngestError::Persist(msg)) => {
            println!("act 2: fatal fault resolved the ticket Err({msg:?}) — no hang, no loss")
        }
        other => panic!("fatal fault must surface as a persist error, got {other:?}"),
    }
    assert!(pipeline.shutdown().persist_error.is_some());

    // --- Act 3: crash mid-compaction, recover the acked state. -----------
    // Rebuild a small durable run on a metered storage, then replay the
    // compaction with a crash injected between the base swap and the log
    // rewrite: recovery must skip the now-stale frames.
    let mem = MemStorage::new();
    let (mut durable, gen0, _) =
        DurableEngine::open(fvl.clone(), Box::new(mem.clone()), 1024).unwrap();
    let live4 = LiveEngine::new(gen0.clone());
    let mut writer = EngineWriter::new(gen0);
    writer.register_view(view.clone(), VariantKind::Default).unwrap();
    for chunk in pool[..8 * CHUNK].chunks(CHUNK) {
        writer.insert_labels(chunk);
        let mut rec = Vec::new();
        let gen = writer.publish_with_delta(&live4, &mut rec).unwrap();
        durable.append(gen.seqno(), &rec).unwrap();
    }
    let acked_gen = live4.snapshot();
    let base = serialize_base(&acked_gen).unwrap();
    // The compaction replays replace_base (2 points: temp write, rename)
    // then replace_log; crash one point after the base rename lands.
    let crash_point = mem.points() + 2;
    mem.crash_at_point(crash_point);
    let err = durable.install_base(&base, acked_gen.seqno());
    assert!(err.is_err(), "the injected crash must interrupt the swap");
    let (_, recovered, rec) =
        DurableEngine::open(fvl.clone(), Box::new(mem.survivor()), 1024).unwrap();
    assert_eq!(recovered.seqno(), acked_gen.seqno());
    assert!(rec.stale_frames > 0, "recovery must skip the frames the new base covers");
    println!(
        "act 3: crashed mid-compaction (after the base rename); reopen skipped {} stale \
         frame(s) and recovered acked generation {}",
        rec.stale_frames,
        recovered.seqno()
    );

    // --- Act 4: reopen act 1's directory, torn tail included. ------------
    // Simulate one more crash: a half-written (never acknowledged) frame
    // appended to the on-disk log.
    let log_path = dir.join(LOG_FILE);
    let torn = encode_frame(acked.seqno() + 1, &vec![0u8; 512]);
    let mut bytes = std::fs::read(&log_path).expect("log exists");
    bytes.extend_from_slice(&torn[..torn.len() / 3]);
    std::fs::write(&log_path, &bytes).expect("append torn tail");

    let storage = DiskStorage::open(&dir).expect("reopen storage");
    let (_, recovered, rec) =
        DurableEngine::open(fvl.clone(), Box::new(storage), 1024).expect("recovery");
    assert!(rec.dropped_bytes > 0, "the torn tail must be healed");
    assert_eq!(rec.recovered_seqno, acked.seqno(), "zero acked ops lost");
    let vref =
        wfprov::engine::ViewRef { id: wfprov::engine::ViewId(0), kind: VariantKind::Default };
    let sample_items: Vec<_> = (0..acked.store().len() as u32).step_by(17).map(ItemId).collect();
    let mut ws = WorkerScratch::new();
    assert_eq!(
        recovered.all_pairs(&mut ws, vref, &sample_items),
        acked.all_pairs(&mut ws, vref, &sample_items),
        "recovered answers must match the acknowledged state"
    );

    // The recovered engine keeps serving durably.
    let storage = DiskStorage::open(&dir).expect("reopen again");
    let (durable, gen0, _) = DurableEngine::open(fvl.clone(), Box::new(storage), 1024).unwrap();
    let live5 = Arc::new(LiveEngine::new(gen0.clone()));
    let pipeline = IngestPipeline::spawn_with(
        EngineWriter::new(gen0),
        live5.clone(),
        PublishPolicy::default(),
        PipelineOptions { durable: Some(shared_durable(durable)), ..PipelineOptions::default() },
    );
    let t = pipeline.queue().push(IngestOp::InsertLabels(pool[..CHUNK].to_vec())).unwrap();
    let seq = t.wait().expect("recovered pipeline keeps acking");
    pipeline.shutdown();
    println!(
        "act 4: healed a {}-byte torn tail, recovered generation {} with answers identical to \
         the acked state, and resumed durable serving at generation {seq}",
        rec.dropped_bytes, rec.recovered_seqno
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!("durable serve demo complete");
}
