//! The adversarial correctness sweep: grammar-driven differential fuzzing
//! plus decoder mutation fuzzing, at configurable scale.
//!
//! Three campaigns run back to back:
//!
//! 1. **Differential specs** — each case generates an adversarial spec
//!    from the grammar (bathtub-biased structure), a run, a set of
//!    adversarial view partitions and a query set, then demands
//!    element-identical answers from all three labeling variants, the
//!    naive run-graph reachability oracle, and the interned engine path.
//! 2. **Live churn** — each case replays a generated churn stream through
//!    `EngineWriter`/`LiveEngine`, comparing every published generation
//!    against a sequential reference engine and finishing with a warm
//!    replay of the append-only delta stream.
//!    Campaign 2½, **multi-producer ingest**, rides alongside: each case
//!    races a fleet of producer threads through the `IngestPipeline`
//!    (fleet width cycling 1/2/4) and demands every published generation
//!    match a sequential replay in global ticket order *and* a
//!    byte-identical op-log prefix replay.
//!    Campaign 2¾, **crash injection**, follows: each campaign drives a
//!    deterministic publish/compact schedule over a metered in-memory
//!    storage and kills it at every mutation point (every log byte,
//!    fsync, truncation and atomic rename), demanding recovery to a
//!    byte-identical published generation with no acked loss.
//! 3. **Decoder mutants** — snapshot/delta streams are mutated (bit
//!    flips, truncations, splices, reorderings, checksum-resealed forgeries)
//!    and every mutant must be rejected with a typed error or decode to a
//!    provably pristine prefix state.
//!
//! Every failure prints the case seed; rerun just that case with
//! `--case <seed>`. The sweep writes `BENCH_fuzz_coverage.json` at the
//! workspace root (checked by the CI fuzz-smoke job).
//!
//! Run with: `cargo run --release --example fuzz_sweep -- --specs 10000 --mutants 10000`

use std::process::ExitCode;
use wfprov::fuzz::{
    case_seed, check_live_churn, check_multi_producer, check_spec, crash_campaign, mutation_corpus,
    mutation_round, FuzzReport,
};

struct Args {
    seed: u64,
    specs: u64,
    live: u64,
    multi: u64,
    mutants: usize,
    crash: u64,
    budget: usize,
    case: Option<u64>,
}

fn parse_args() -> Args {
    let mut a = Args {
        seed: 0xF022,
        specs: 500,
        live: 50,
        multi: 30,
        mutants: 2000,
        crash: 6,
        budget: 12,
        case: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} needs a value")).parse::<u64>().unwrap()
        };
        match flag.as_str() {
            "--seed" => a.seed = val("--seed"),
            "--specs" => a.specs = val("--specs"),
            "--live" => a.live = val("--live"),
            "--multi" => a.multi = val("--multi"),
            "--mutants" => a.mutants = val("--mutants") as usize,
            "--crash" => a.crash = val("--crash"),
            "--budget" => a.budget = val("--budget") as usize,
            "--case" => a.case = Some(val("--case")),
            other => panic!("unknown flag {other} (see examples/fuzz_sweep.rs)"),
        }
    }
    a
}

/// Fleet width for multi-producer case `i`: cycle 1 → 2 → 4 so every
/// width shares the sweep and a failing seed names its width.
fn fleet_width(i: u64) -> usize {
    [1usize, 2, 4][(i % 3) as usize]
}

fn main() -> ExitCode {
    let args = parse_args();

    // Single-case reproduction mode: replay one differential case (and its
    // live-churn sibling) under both budgets a sweep uses.
    if let Some(seed) = args.case {
        println!("replaying case seed {seed:#x} (budget {})", args.budget);
        match check_spec(seed, args.budget) {
            Ok(out) => println!("  spec case: ok ({} views, {} queries)", out.views, out.queries),
            Err(d) => {
                println!("  spec case: DIVERGENCE\n  {d}");
                return ExitCode::FAILURE;
            }
        }
        match check_live_churn(seed, args.budget, 40) {
            Ok(out) => println!("  live case: ok ({} queries)", out.queries),
            Err(d) => {
                println!("  live case: DIVERGENCE\n  {d}");
                return ExitCode::FAILURE;
            }
        }
        for producers in [1usize, 2, 4] {
            match check_multi_producer(seed, args.budget, producers, 24) {
                Ok(out) => {
                    println!("  multi case ({producers} producers): ok ({} queries)", out.queries)
                }
                Err(d) => {
                    println!("  multi case ({producers} producers): DIVERGENCE\n  {d}");
                    return ExitCode::FAILURE;
                }
            }
        }
        match crash_campaign(seed, args.budget, 6, 1) {
            Ok(stats) => println!(
                "  crash case: ok ({} crash points, {} torn tails)",
                stats.crashes, stats.torn_tails
            ),
            Err(d) => {
                println!("  crash case: VIOLATION\n  {d}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut report = FuzzReport { seed: args.seed, ..FuzzReport::default() };

    // --- Campaign 1: differential spec cases. ---------------------------
    println!("differential sweep: {} spec cases (budget {})…", args.specs, args.budget);
    for i in 0..args.specs {
        let seed = case_seed(args.seed, i);
        match check_spec(seed, args.budget) {
            Ok(out) => report.absorb_spec(&out),
            Err(d) => {
                report.divergences += 1;
                eprintln!("DIVERGENCE (spec case {i}, reproduce with --case {seed}):\n  {d}");
            }
        }
        if (i + 1) % 1000 == 0 {
            println!("  {} / {} cases, {} answers compared", i + 1, args.specs, report.queries);
        }
    }

    // --- Campaign 2: live-engine churn replay. --------------------------
    println!("live-churn sweep: {} cases…", args.live);
    for i in 0..args.live {
        let seed = case_seed(args.seed ^ 0x11FE, i);
        match check_live_churn(seed, args.budget, 40) {
            Ok(out) => report.absorb_live(&out),
            Err(d) => {
                report.divergences += 1;
                eprintln!("DIVERGENCE (live case {i}, reproduce with --case {seed}):\n  {d}");
            }
        }
    }

    // --- Campaign 2½: multi-producer ingest racing. ---------------------
    println!("multi-producer sweep: {} cases (fleets of 1/2/4)…", args.multi);
    for i in 0..args.multi {
        let seed = case_seed(args.seed ^ 0x111E57, i);
        match check_multi_producer(seed, args.budget, fleet_width(i), 24) {
            Ok(out) => report.absorb_multi(&out),
            Err(d) => {
                report.divergences += 1;
                eprintln!("DIVERGENCE (multi case {i}, reproduce with --case {seed}):\n  {d}");
            }
        }
    }

    // --- Campaign 2¾: crash injection on the durable write path. --------
    println!("crash-injection sweep: {} campaigns (stride 1, every mutation point)…", args.crash);
    for i in 0..args.crash {
        let seed = case_seed(args.seed ^ 0xC8A5, i);
        match crash_campaign(seed, args.budget, 6, 1) {
            Ok(stats) => report.absorb_crash(&stats),
            Err(d) => {
                report.divergences += 1;
                eprintln!("CRASH VIOLATION (campaign {i}, reproduce with --case {seed}):\n  {d}");
            }
        }
    }

    // --- Campaign 3: decoder mutation fuzzing. --------------------------
    println!("mutation sweep: {} mutants…", args.mutants);
    let corpus = mutation_corpus(args.seed);
    report.mutation = mutation_round(args.seed ^ 0xD0D0, &corpus, args.mutants);

    let json = report.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fuzz_coverage.json");
    std::fs::write(path, &json).expect("write BENCH_fuzz_coverage.json");
    print!("{json}");
    println!("wrote {path}");

    let m = &report.mutation;
    if report.divergences > 0 || m.panics > 0 || m.wrong > 0 {
        eprintln!(
            "FUZZ FAILURES: {} divergences, {} decoder panics, {} silent corruptions",
            report.divergences, m.panics, m.wrong
        );
        return ExitCode::FAILURE;
    }
    println!(
        "all clear: {} spec cases, {} live cases, {} multi-producer cases, {} crash points \
         ({} torn tails), {} mutants ({} rejection classes)",
        report.spec_cases,
        report.live_cases,
        report.multi_cases,
        report.crash_points,
        report.crash_torn_tails,
        m.mutants,
        m.classes()
    );
    ExitCode::SUCCESS
}
