//! Serving dependency queries through the `wf-engine` layer.
//!
//! The other examples query via `Fvl::query`, which rebuilds its decode
//! context and scratch buffers on every call. This one sets up the serving
//! stack a provenance service would run: register views once (compiled per
//! §6.3 variant, addressed by dense handles), intern the run's labels into
//! the prefix-sharing store, then answer batches and all-pairs sweeps
//! allocation-free.
//!
//! Run with: `cargo run --example serve_queries`

use wfprov::engine::QueryEngine;
use wfprov::fvl::{Fvl, VariantKind};
use wfprov::model::fixtures::paper_example;
use wfprov::run::fixtures::figure3_run;

fn main() {
    // The Figure 2 specification and its Figure 3 run, labeled once.
    let ex = paper_example();
    let fvl = Fvl::new(&ex.spec).expect("strictly linear-recursive");
    let (run, ids) = figure3_run(&ex);
    let labeler = fvl.labeler(&run);

    // The engine interns every label: shared path prefixes are stored once
    // in a trie, and items get dense ids aligned with the run's DataIds.
    let mut engine = QueryEngine::new(&fvl);
    let items = engine.insert_labels(labeler.labels());
    let (stored, raw) = engine.store().edge_stats();
    println!(
        "label store: {} items, {} trie edges for {} raw path edges ({:.0}% saved)",
        engine.store().len(),
        stored,
        raw,
        100.0 * (1.0 - stored as f64 / raw as f64)
    );

    // Register both views of the running example. One view can be compiled
    // under several variants; each (view, variant) pair is built once.
    let u1 = engine.add_view(ex.view_u1());
    let u2 = engine.add_view(ex.view_u2());
    let u1_default = engine.compile(u1, VariantKind::Default).unwrap();
    let u1_qe = engine.compile(u1, VariantKind::QueryEfficient).unwrap();
    let u2_default = engine.compile(u2, VariantKind::Default).unwrap();
    println!(
        "registry: {} views, {} compiled labels",
        engine.registry().view_count(),
        engine.registry().compiled_count()
    );

    // A batch against each view — Example 8's pair among them. The answers
    // are view-dependent; the engine's results match Fvl::query exactly.
    let d17 = items[ids.d17.0 as usize];
    let d21 = items[ids.d21.0 as usize];
    let d31 = items[ids.d31.0 as usize];
    let batch = [(d17, d31), (d21, d31), (d31, d17)];
    println!("U1 batch {:?} -> {:?}", batch, engine.query_batch(u1_default, &batch));
    println!("U2 batch {:?} -> {:?}", batch, engine.query_batch(u2_default, &batch));
    // (d21, d31) answers None under U2: d21 is hidden inside C's grey box.

    // Variants agree on answers; they only trade label size for time.
    assert_eq!(engine.query(u1_default, d17, d31), engine.query(u1_qe, d17, d31));

    // An all-pairs sweep: the dependency closure of a working set, e.g. to
    // materialize a lineage subgraph for one search result page.
    let page: Vec<_> = items.iter().copied().take(12).collect();
    let closure = engine.all_pairs(u1_default, &page);
    println!("all-pairs over {} items under U1: {} dependent pairs", page.len(), closure.len());

    // Steady state: repeating the batches allocates nothing — the scratch
    // (matrix pool + chain-power memo) has reached its fixed point.
    for _ in 0..3 {
        engine.query_batch(u1_default, &batch);
        engine.query_batch(u2_default, &batch);
    }
    let (pooled, memoized) = engine.scratch_stats();
    println!("scratch fixed point: {pooled} pooled matrices, {memoized} memoized chain powers");
}
