//! Monitoring a long-running execution (the dynamic-labeling motivation:
//! "scientific workflows can take a long time to execute and users may wish
//! to query partial executions", §1).
//!
//! The pipeline executes step by step; after every few steps an analyst
//! asks "is this intermediate result downstream of the suspicious input?"
//! Labels are assigned online and never revised; answers on already-labeled
//! items are stable for the rest of the execution.
//!
//! Run with: `cargo run --release --example partial_execution`

use rand::rngs::StdRng;
use rand::SeedableRng;
use wfprov::analysis::ProdGraph;
use wfprov::fvl::{Fvl, VariantKind};
use wfprov::run::{DataId, Run};
use wfprov::workloads::{bioaid, sample};

fn main() {
    let w = bioaid(7);
    let g = &w.spec.grammar;
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(g);

    // Pre-plan a derivation (the "execution"), then replay it live.
    let mut rng = StdRng::seed_from_u64(9);
    let (derivation, _) = sample::sample_run(&w, &pg, &mut rng, 800);

    let view = w.spec.default_view();
    let vl = fvl.label_view(&view, VariantKind::QueryEfficient).unwrap();

    let mut run = Run::start(g);
    let mut labeler = fvl.labeler(&run);
    // The suspicious input: the workflow's first initial input.
    let suspicious = DataId(0);
    let mut tainted_history: Vec<(usize, usize, usize)> = Vec::new();
    for (step_no, &(inst, prod)) in derivation.steps.iter().enumerate() {
        let s = run.apply(g, inst, prod).unwrap();
        labeler.on_step(fvl.prod_graph(), &run, s);
        if step_no % 40 == 0 || step_no + 1 == derivation.steps.len() {
            // Query the *partial* run: which items so far are tainted?
            let tainted = run
                .items()
                .filter(|&d| {
                    fvl.query(&vl, labeler.label(suspicious), labeler.label(d)) == Some(true)
                })
                .count();
            tainted_history.push((step_no, run.item_count(), tainted));
        }
    }
    println!("step | items so far | tainted by input d0");
    for (step, items, tainted) in &tainted_history {
        println!("{step:>4} | {items:>12} | {tainted:>8}");
    }
    // Monotonicity: earlier counts never shrink (labels & answers stable).
    for w2 in tainted_history.windows(2) {
        assert!(w2[1].2 >= w2[0].2, "tainted set only grows as the run extends");
    }
    println!("final run complete? {}", run.is_complete());
}
