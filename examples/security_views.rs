//! Security views over a scientific pipeline (the §1 motivation).
//!
//! A lab publishes provenance for a BioAID-style analysis pipeline but must
//! hide a proprietary sub-workflow. Two user groups get different views:
//! collaborators see true (white-box) dependencies; external reviewers get
//! a grey-box view where the proprietary module's input→output dependency
//! matrix is over-approximated to complete — hiding *which* input actually
//! influenced an output. The same run labels serve both groups; adding the
//! reviewer view later never touches already-labeled data.
//!
//! Run with: `cargo run --release --example security_views`

use rand::rngs::StdRng;
use rand::SeedableRng;
use wfprov::analysis::ProdGraph;
use wfprov::fvl::{Fvl, VariantKind};
use wfprov::model::{View, ViewSpec};
use wfprov::workloads::{bioaid, sample};

fn main() {
    let w = bioaid(2024);
    let g = &w.spec.grammar;
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(g);

    // One execution of the pipeline, labeled as it runs.
    let mut rng = StdRng::seed_from_u64(1);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 2_000);
    let labels = fvl.labeler(&run);
    println!("pipeline run: {} data items", run.item_count());

    // The proprietary sub-workflow is composite module N3.
    let n3 = g.module_named("N3").unwrap();

    // Collaborator view: expand everything (true dependencies).
    let collaborator = w.spec.default_view();

    // Reviewer view: N3 stays a black box with a complete (over-approximate)
    // dependency matrix; everything reachable without opening N3 stays
    // white-box. Δ′ is grown to the derivability closure so the view is
    // proper (modules living only inside N3 drop out).
    let hidden = n3;
    let mut expand = vec![false; g.module_count()];
    expand[g.start().index()] = true;
    loop {
        let derivable = g.derivable_modules(&expand);
        let added = g.composite_modules().find(|&m| {
            derivable[m.index()] && !expand[m.index()] && m != hidden && !w.no_expand.contains(&m)
        });
        match added {
            Some(m) => expand[m.index()] = true,
            None => break,
        }
    }
    let derivable = g.derivable_modules(&expand);
    let mut deps = w.spec.deps.clone();
    // Perceived matrices for the derivable unexpandables: true λ* for the
    // mirror-constrained cycle partner, a complete grey box for N3.
    for m in g.modules() {
        if g.is_composite(m) && derivable[m.index()] && !expand[m.index()] {
            deps.set(m, w.lambda.get(m).expect("λ* known").clone());
        }
    }
    let sig = g.sig(hidden);
    deps.set(hidden, wfprov::boolmat::BoolMat::complete(sig.inputs(), sig.outputs()));
    let reviewer = View::new(g, g.modules().filter(|m| expand[m.index()]), deps)
        .expect("reviewer view is valid");
    assert!(wfprov::analysis::is_safe(&ViewSpec::new(&w.spec, &reviewer)));

    let vl_collab = fvl.label_view(&collaborator, VariantKind::QueryEfficient).unwrap();
    let vl_review = fvl.label_view(&reviewer, VariantKind::QueryEfficient).unwrap();

    // Compare answers across the two groups on sampled queries.
    let pairs = sample::sample_query_pairs(&run, &mut rng, 50_000);
    let (mut both, mut flips, mut hidden) = (0usize, 0usize, 0usize);
    for (a, b) in pairs {
        let qa = fvl.query(&vl_collab, labels.label(a), labels.label(b));
        let qb = fvl.query(&vl_review, labels.label(a), labels.label(b));
        match (qa, qb) {
            (Some(x), Some(y)) => {
                both += 1;
                if x != y {
                    flips += 1;
                    assert!(y, "grey-boxing only ever *adds* dependencies");
                }
            }
            (_, None) => hidden += 1,
            _ => {}
        }
    }
    println!("queries answered in both views: {both}");
    println!("answers flipped by the grey box (false -> true): {flips}");
    println!("queries touching reviewer-hidden items: {hidden}");
    println!(
        "view labels: collaborator {}B, reviewer {}B",
        vl_collab.size_bits() / 8,
        vl_review.size_bits() / 8
    );
}
