//! The multi-view indexing scenario of §6.4: one provenance store, many
//! user groups, each with its own view. Compares the cost of FVL's single
//! view-adaptive labeling against the DRL baseline's per-view labeling.
//!
//! Run with: `cargo run --release --example multi_view_index`

use rand::rngs::StdRng;
use rand::SeedableRng;
use wfprov::analysis::ProdGraph;
use wfprov::drl::Drl;
use wfprov::fvl::Fvl;
use wfprov::workloads::{bioaid_coarse, sample, views};

fn main() {
    let w = bioaid_coarse(99);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(4);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 8_000);

    // FVL: label the run once; every future view reuses the same labels.
    let t = std::time::Instant::now();
    let labeler = fvl.labeler(&run);
    let fvl_ms = t.elapsed().as_secs_f64() * 1e3;
    let fvl_bits: usize = labeler.labels().iter().map(|l| fvl.codec().encoded_bits(l)).sum();

    // DRL: every user group's view requires a fresh labeling of the run.
    println!("views | FVL index (KB, ms) | DRL index (KB, ms)");
    let (mut drl_bits, mut drl_ms) = (0usize, 0.0f64);
    for n_views in 1..=10 {
        let view = views::black_box_view(&w, &mut rng, 8);
        let drl = Drl::new(&w.spec, &view).unwrap();
        let t = std::time::Instant::now();
        let labels = drl.label_run(&run);
        drl_ms += t.elapsed().as_secs_f64() * 1e3;
        drl_bits += labels.iter().map(|(_, l)| drl.label_bits(l)).sum::<usize>();
        println!(
            "{n_views:>5} | {:>8.0} KB {:>6.1} ms | {:>8.0} KB {:>6.1} ms",
            fvl_bits as f64 / 8192.0,
            fvl_ms,
            drl_bits as f64 / 8192.0,
            drl_ms
        );
    }
    println!("\nFVL's index is flat in the number of views; DRL's grows linearly.");
    println!("Adding view #11 under FVL touches no data labels at all.");
}
