//! Quickstart: the paper's running example end to end.
//!
//! Builds the Figure 2 specification, replays the Figure 3 run, labels it
//! dynamically, labels two views statically, and answers Example 8's
//! reachability query under both.
//!
//! Run with: `cargo run --example quickstart`

use wfprov::fvl::{Fvl, VariantKind};
use wfprov::model::fixtures::paper_example;
use wfprov::run::fixtures::figure3_run;

fn main() {
    // The workflow specification of Figure 2: grammar + fine-grained λ.
    let ex = paper_example();
    let g = &ex.spec.grammar;
    println!(
        "specification: {} modules ({} composite), {} productions",
        g.module_count(),
        g.composite_modules().count(),
        g.production_count()
    );

    // FVL preprocessing: production-graph edge ids + cycle tables (§4.1).
    let fvl = Fvl::new(&ex.spec).expect("strictly linear-recursive");
    println!("recursion class: {:?}", fvl.recursion_class());

    // Replay the Figure 3 run and label it dynamically: every data item
    // gets its (immutable) label the moment it is produced.
    let (run, ids) = figure3_run(&ex);
    let labels = fvl.labeler(&run);
    println!("run: {} data items, {} steps", run.item_count(), run.step_count());
    let d21 = labels.label(ids.d21);
    println!("φr(d21) = {:?}  ({} bits on the wire)", d21, fvl.codec().encoded_bits(d21));

    // Label two views statically: U1 (white-box default) and U2 (grey-box
    // security view where C's internals are hidden and over-approximated).
    let u1 = ex.view_u1();
    let u2 = ex.view_u2();
    let vl1 = fvl.label_view(&u1, VariantKind::QueryEfficient).unwrap();
    let vl2 = fvl.label_view(&u2, VariantKind::QueryEfficient).unwrap();

    // Example 8: "does d31 depend on d17?"
    let (d17, d31) = (labels.label(ids.d17), labels.label(ids.d31));
    println!("U1 (white-box): d31 depends on d17? {:?}", fvl.query(&vl1, d17, d31));
    println!("U2 (grey-box):  d31 depends on d17? {:?}", fvl.query(&vl2, d17, d31));

    // The same data labels served both views — that is view-adaptivity.
    // d21 lives inside C's hidden expansion: invisible in U2.
    println!("d21 visible in U1? {}", fvl.is_visible(&vl1, d21));
    println!("d21 visible in U2? {}", fvl.is_visible(&vl2, d21));
}
