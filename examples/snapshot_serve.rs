//! Save → restart → serve: snapshot persistence for the serving engine.
//!
//! The paper's labels are computed once and answer queries forever — but
//! only within one process, unless they are persisted. This example builds
//! the full serving stack over the Figure 3 run, snapshots it with
//! [`QueryEngine::save`], *drops the engine* (the "restart"), and restores
//! a serving-ready engine with [`QueryEngine::load`]: same answers, same
//! ids, no relabeling, no view recompilation, no cycle-finding. It then
//! demonstrates the container's safety net: truncated, corrupted,
//! version-mismatched and wrong-spec snapshots are all rejected with typed
//! errors, never a panic.
//!
//! Run with: `cargo run --example snapshot_serve`
//!
//! [`QueryEngine::save`]: wfprov::engine::QueryEngine::save
//! [`QueryEngine::load`]: wfprov::engine::QueryEngine::load

use wfprov::engine::{QueryEngine, SnapshotError, ViewRef};
use wfprov::fvl::{Fvl, VariantKind};
use wfprov::model::fixtures::paper_example;
use wfprov::run::fixtures::figure3_run;

fn main() {
    // ---- Process 1: label, compile, serve, snapshot. ------------------
    let ex = paper_example();
    let fvl = Fvl::new(&ex.spec).expect("strictly linear-recursive");
    let (run, ids) = figure3_run(&ex);
    let labeler = fvl.labeler(&run);

    let mut engine = QueryEngine::new(&fvl);
    let items = engine.insert_labels(labeler.labels());
    let u1 = engine.add_view(ex.view_u1());
    let u2 = engine.add_view(ex.view_u2());
    for kind in [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient] {
        engine.compile(u1, kind).unwrap();
    }
    let u2_default = engine.compile(u2, VariantKind::Default).unwrap();

    let d17 = items[ids.d17.0 as usize];
    let d31 = items[ids.d31.0 as usize];
    let before = engine.query(u2_default, d17, d31);
    println!("process 1: U2 says d31 depends on d17 -> {before:?}");

    // Snapshot to disk (any io::Write works; a file is what a service uses).
    let path = std::env::temp_dir().join("wfprov_snapshot_serve.bin");
    let mut file = std::fs::File::create(&path).expect("create snapshot file");
    engine.save(&mut file).expect("save snapshot");
    drop(file);
    let bytes = std::fs::read(&path).expect("read snapshot back");
    println!(
        "snapshot: {} bytes for {} labels + {} views ({} compiled variants)",
        bytes.len(),
        engine.store().len(),
        engine.registry().view_count(),
        engine.registry().compiled_count(),
    );
    drop(engine); // ---- the "restart" ----

    // ---- Process 2: load and serve immediately. -----------------------
    let mut restored =
        QueryEngine::load(&fvl, &mut std::fs::File::open(&path).expect("open snapshot"))
            .expect("load snapshot");
    println!(
        "process 2: restored {} labels, {} views, {} compiled variants — no relabeling",
        restored.store().len(),
        restored.registry().view_count(),
        restored.registry().compiled_count(),
    );

    // Item and view ids are stable across save/load; handles are cheap
    // lookups (everything is already compiled).
    let u2_default = restored.compile(u2, VariantKind::Default).unwrap();
    let after = restored.query(u2_default, d17, d31);
    println!("process 2: U2 says d31 depends on d17 -> {after:?}");
    assert_eq!(before, after, "a loaded engine must answer identically");

    // The full all-pairs sweep agrees across every variant too.
    let mut fresh = QueryEngine::new(&fvl);
    fresh.insert_labels(labeler.labels());
    fresh.add_view(ex.view_u1());
    fresh.add_view(ex.view_u2());
    for kind in [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient] {
        fresh.compile(u1, kind).unwrap();
        let vref = ViewRef { id: u1, kind };
        assert_eq!(
            restored.all_pairs(vref, &items),
            fresh.all_pairs(vref, &items),
            "{kind:?}: all_pairs diverged after load"
        );
    }
    println!("all_pairs over {} items agrees across all three variants", items.len());

    // ---- Bad input is rejected with typed errors, never a panic. ------
    let truncated = QueryEngine::load(&fvl, &mut &bytes[..bytes.len() / 2]);
    println!("truncated snapshot  -> {}", truncated.err().expect("must fail"));

    let mut corrupt = bytes.clone();
    let flip = corrupt.len() - 9; // payload byte
    corrupt[flip] ^= 0x40;
    let corrupted = QueryEngine::load(&fvl, &mut corrupt.as_slice());
    let err = corrupted.err().expect("must fail");
    assert!(matches!(err, SnapshotError::ChecksumMismatch));
    println!("corrupted snapshot  -> {err}");

    let mut foreign = bytes.clone();
    foreign[8] = 0x63; // format version 99
    let versioned = QueryEngine::load(&fvl, &mut foreign.as_slice());
    println!("foreign version     -> {}", versioned.err().expect("must fail"));

    let not_a_snapshot = QueryEngine::load(&fvl, &mut &b"hello provenance"[..]);
    println!("not a snapshot      -> {}", not_a_snapshot.err().expect("must fail"));

    let _ = std::fs::remove_file(&path);
    println!("ok: save -> restart -> serve round-trip verified");
}
