//! Multi-threaded query serving over a frozen engine core.
//!
//! `serve_queries` shows the single-threaded serving stack; this example
//! shows what changed in the parallel refactor: a compiled [`QueryEngine`]
//! freezes into an immutable, `Sync` [`EngineCore`] that any number of
//! worker threads query concurrently through their own [`WorkerScratch`]es
//! — no locks anywhere on the read path — and the one-call fan-outs
//! `par_query_batch` / `par_all_pairs` shard a workload across scoped
//! threads with answers *identical* to the sequential engine.
//!
//! Run with: `cargo run --release --example parallel_serve`

use rand::rngs::StdRng;
use rand::SeedableRng;
use wfprov::analysis::ProdGraph;
use wfprov::engine::{QueryEngine, WorkerScratch};
use wfprov::fvl::{Fvl, VariantKind};
use wfprov::workloads::queries::{
    sample_mix, shard_round_robin, worker_streams, MixSpec, PairDist,
};
use wfprov::workloads::{bioaid, sample, views};

fn main() {
    // A BioAID-like workload: one run of 4000 items, labeled once.
    let w = bioaid(1);
    let fvl = Fvl::new(&w.spec).expect("strictly linear-recursive");
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(7);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 4_000);
    let labeler = fvl.labeler(&run);

    let mut engine = QueryEngine::new(&fvl);
    let items = engine.insert_labels(labeler.labels());
    let view_a = views::random_safe_view(&w, &mut rng, 8);
    let view_b = views::random_safe_view(&w, &mut rng, 12);
    let ra = engine.register_view(view_a, VariantKind::Default).unwrap();
    let rb = engine.register_view(view_b, VariantKind::QueryEfficient).unwrap();

    // --- One-call fan-out: par_query_batch == query_batch, always. ------
    let dist = PairDist::HotKey { hot_items: 64, hot_prob: 0.5 };
    let pairs: Vec<_> = worker_streams(&run, &mut rng, 1, 4_096, dist)
        .remove(0)
        .into_iter()
        .map(|(a, b)| (items[a.0 as usize], items[b.0 as usize]))
        .collect();
    let sequential = engine.query_batch(ra, &pairs);
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let parallel = engine.par_query_batch(ra, &pairs, threads);
    assert_eq!(parallel, sequential, "sharded answers must be bit-identical");
    let dependent = parallel.iter().filter(|r| **r == Some(true)).count();
    println!(
        "par_query_batch: {} pairs over {} threads, {} dependent — identical to sequential",
        pairs.len(),
        threads,
        dependent
    );

    // --- Explicit workers: one frozen core, one scratch per thread. -----
    // A multi-view operation stream (75% view A / 25% view B), sharded
    // round-robin across workers; each worker serves its shard through its
    // own scratch, interleaving views freely (memos are uid-keyed).
    let spec = MixSpec { view_weights: vec![3.0, 1.0], dist };
    let ops = sample_mix(&run, &mut rng, 8_192, &spec);
    let shards = shard_round_robin(&ops, threads.max(2));
    let core = engine.freeze();
    let handles = [ra, rb];
    let items = &items;
    let served: usize = std::thread::scope(|s| {
        let workers: Vec<_> = shards
            .iter()
            .map(|shard| {
                s.spawn(move || {
                    let mut ws = WorkerScratch::new();
                    let mut answered = 0usize;
                    for op in shard {
                        let (a, b) = op.pair;
                        let q = core.query(
                            &mut ws,
                            handles[op.view],
                            items[a.0 as usize],
                            items[b.0 as usize],
                        );
                        answered += usize::from(q.is_some());
                    }
                    answered
                })
            })
            .collect();
        workers.into_iter().map(|h| h.join().expect("worker panicked")).sum()
    });
    println!(
        "explicit workers: {} ops across {} shards, {} answered (rest invisible in their view)",
        ops.len(),
        shards.len(),
        served
    );

    // --- All-pairs sweeps shard by rows, same order as sequential. ------
    let subset: Vec<_> = items.iter().copied().step_by(37).collect();
    let seq_sweep = engine.all_pairs(rb, &subset);
    let par_sweep = engine.par_all_pairs(rb, &subset, threads);
    assert_eq!(par_sweep, seq_sweep, "row-sharded sweep must match sequentially");
    println!(
        "par_all_pairs: {}x{} sweep, {} dependent pairs — identical order to sequential",
        subset.len(),
        subset.len(),
        par_sweep.len()
    );

    // The typed API refuses foreign handles instead of panicking.
    let bogus =
        wfprov::engine::ViewRef { id: wfprov::engine::ViewId(99), kind: VariantKind::Default };
    match engine.try_par_query_batch(bogus, &pairs, threads) {
        Err(e) => println!("typed rejection of a foreign handle: {e}"),
        Ok(_) => unreachable!("view 99 was never registered"),
    }
}
