//! Live updates under serving: the generational engine end to end.
//!
//! `parallel_serve` shows many readers over one *frozen* engine; this
//! example shows what the generational refactor adds — writes landing
//! while those readers keep flowing. A single [`EngineWriter`] stages
//! label inserts and view registrations against copy-on-write clones and
//! publishes immutable [`EngineGeneration`]s through a [`LiveEngine`]
//! (atomic `Arc` swap; readers use a lock-free fast path and finish
//! in-flight work on whatever generation they hold). Every publish also
//! appends a *delta record* to an on-disk stream, and a warm restart
//! replays base ‖ deltas to exactly the last published state.
//!
//! Run with: `cargo run --release --example live_serve`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wfprov::analysis::ProdGraph;
use wfprov::engine::{EngineGeneration, EngineWriter, LiveEngine, QueryEngine, WorkerScratch};
use wfprov::fvl::{Fvl, VariantKind};
use wfprov::workloads::churn::{churn_stream, ChurnOp, ChurnSpec};
use wfprov::workloads::queries::PairDist;
use wfprov::workloads::{bioaid, sample, views};

fn main() {
    // A BioAID-like workload; the scheme *owns* its spec via Arc, so no
    // borrow chains anything to this stack frame.
    let w = bioaid(1);
    let fvl = Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).expect("strictly linear-recursive"));
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(7);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 4_000);
    let labels = fvl.labeler(&run).labels().to_vec();
    let view = views::random_safe_view(&w, &mut rng, 8);

    // --- Generation 1: initial state, saved as the base snapshot. -------
    let initial = labels.len() / 2;
    let mut writer = EngineWriter::from_fvl(fvl.clone());
    let items = writer.insert_labels(&labels[..initial]);
    let vref = writer.register_view(view.clone(), VariantKind::Default).unwrap();
    let live = LiveEngine::new(writer.base().clone());
    let g1 = writer.publish(&live);
    let mut disk = Vec::new();
    g1.save(&mut disk).unwrap();
    println!(
        "generation {}: {} items, {} view(s) — base snapshot {} bytes",
        g1.seqno(),
        g1.store().len(),
        g1.registry().view_count(),
        disk.len()
    );

    // --- Readers serve while the writer churns and publishes. -----------
    let mut churn_rng = StdRng::seed_from_u64(13);
    let spec = ChurnSpec {
        initial_items: initial,
        insert_chunk: 64,
        batch: 256,
        view_weight: 0.08,
        dist: PairDist::HotKey { hot_items: 32, hot_prob: 0.5 },
        ..ChurnSpec::default()
    };
    let ops = churn_stream(&mut churn_rng, 60, &spec);
    let stop = AtomicBool::new(false);
    let publishes = std::thread::scope(|s| {
        let live_ref = &live;
        let stop_ref = &stop;
        let items_ref = &items;
        // Two readers: batched queries through the lock-free read path,
        // each batch against whatever generation is current.
        let readers: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(move || {
                    let mut ws = WorkerScratch::new();
                    let mut batches = 0u64;
                    let pairs: Vec<_> = items_ref
                        .iter()
                        .zip(items_ref.iter().rev())
                        .map(|(&a, &b)| (a, b))
                        .take(256)
                        .collect();
                    while !stop_ref.load(Ordering::Relaxed) {
                        let gen = live_ref.read();
                        std::hint::black_box(gen.query_batch(&mut ws, vref, &pairs));
                        batches += 1;
                    }
                    batches
                })
            })
            .collect();

        // The writer replays the churn stream: inserts and view
        // registrations stage up; every query op publishes what is staged
        // (with its delta appended to the same on-disk stream).
        let mut label_cursor = initial;
        let mut published = 0u32;
        let mut view_rng = StdRng::seed_from_u64(23);
        for op in &ops {
            match op {
                ChurnOp::Insert { count } => {
                    let end = (label_cursor + count).min(labels.len());
                    writer.insert_labels(&labels[label_cursor..end]);
                    label_cursor = end;
                }
                ChurnOp::RegisterView { .. } => {
                    let v = views::random_safe_view(&w, &mut view_rng, 6);
                    writer.register_view(v, VariantKind::Default).unwrap();
                }
                ChurnOp::QueryBatch { .. } => {
                    if writer.has_staged_changes() {
                        writer.publish_with_delta(live_ref, &mut disk).unwrap();
                        published += 1;
                    }
                    // Yield the (possibly single) core so the readers
                    // demonstrably serve *between* publishes.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
        }
        if writer.has_staged_changes() {
            writer.publish_with_delta(live_ref, &mut disk).unwrap();
            published += 1;
        }
        stop.store(true, Ordering::Relaxed);
        let batches: u64 = readers.into_iter().map(|r| r.join().expect("reader panicked")).sum();
        assert!(batches > 0, "readers must have served while the writer published");
        println!("served {batches} read batches concurrently with {published} publishes");
        published
    });
    let last = live.snapshot();
    assert_eq!(last.seqno(), 1 + publishes as u64);
    println!(
        "generation {}: {} items, {} view(s) — stream grew to {} bytes",
        last.seqno(),
        last.store().len(),
        last.registry().view_count(),
        disk.len()
    );

    // --- Warm restart: replay base ‖ deltas, compare against cold. ------
    let fvl2 = Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).unwrap());
    let replayed = EngineGeneration::replay(fvl2, &mut disk.as_slice()).unwrap();
    assert_eq!(replayed.seqno(), last.seqno());
    assert_eq!(replayed.store().len(), last.store().len());
    assert_eq!(replayed.registry().view_count(), last.registry().view_count());

    let mut cold = QueryEngine::new(fvl.as_ref());
    let all_items = cold.insert_labels(&labels[..last.store().len()]);
    let cold_ref = cold.register_view(view, VariantKind::Default).unwrap();
    assert_eq!(cold_ref, vref, "handles are chain-stable");
    let sample: Vec<_> = all_items.iter().copied().step_by(7).collect();
    let mut ws = WorkerScratch::new();
    let warm_answers = replayed.all_pairs(&mut ws, vref, &sample);
    assert_eq!(
        warm_answers,
        cold.all_pairs(cold_ref, &sample),
        "replayed state must answer like a cold-built engine"
    );
    println!(
        "warm restart replayed {} generations: {} dependent pairs over a {}-item sample — \
         identical to a cold build",
        replayed.seqno(),
        warm_answers.len(),
        sample.len()
    );

    // --- Bad streams are rejected, never half-applied. -------------------
    let truncated = &disk[..disk.len() - 9];
    assert!(EngineGeneration::replay(
        Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).unwrap()),
        &mut &truncated[..]
    )
    .is_err());
    println!("truncated stream rejected with a typed error — live serving demo complete");
}
