//! Concurrent multi-producer ingest: the op-log pipeline end to end.
//!
//! `live_serve` shows one writer publishing under live readers; this
//! example shows what the ingest pipeline adds — *four* producer threads
//! feeding the same generation chain at once, with no writer hand-off
//! protocol between them. Each producer pushes typed [`IngestOp`]s into
//! the bounded [`IngestQueue`] (full queue = backpressure, never loss)
//! and gets a [`Ticket`] per op that resolves to the seqno of the
//! generation that published it. One publisher thread drains the queue,
//! coalesces ops into copy-on-write staging, appends every publish's
//! delta record to a shared op-log sink, and swaps generations into the
//! [`LiveEngine`] — which two reader threads query throughout, lock-free.
//!
//! Shutdown is graceful by contract: closing the queue lets the publisher
//! drain and publish everything already accepted, so every ticket
//! resolves. The accumulated `base ‖ op-log` stream then replays to the
//! exact final generation — and a *new* pipeline resumes ingesting on top
//! of the reloaded state.
//!
//! Run with: `cargo run --release --example multi_ingest`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use wfprov::engine::{
    EngineGeneration, EngineWriter, IngestOp, IngestPipeline, ItemId, LiveEngine, PipelineOptions,
    PublishPolicy, QueryEngine, SharedSink, Ticket, WorkerScratch,
};
use wfprov::fvl::{Fvl, VariantKind};
use wfprov::workloads::{bioaid, sample, views};

const PRODUCERS: usize = 4;
const READERS: usize = 2;
const CHUNK: usize = 32;
const PER_PRODUCER: usize = 1_024;

fn main() {
    let w = bioaid(1);
    let fvl = Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).expect("strictly linear-recursive"));
    let mut rng = StdRng::seed_from_u64(7);
    let (_, run) = sample::sample_run(&w, fvl.prod_graph(), &mut rng, 4_000);
    let mut pool = fvl.labeler(&run).labels().to_vec();
    let mut i = 0usize;
    while pool.len() < PRODUCERS * PER_PRODUCER {
        pool.push(pool[i].clone());
        i += 1;
    }
    let view = views::random_safe_view(&w, &mut rng, 8);

    // --- Base generation: an initial view the readers can query, saved
    // as the head of the op-log stream. ----------------------------------
    let mut writer = EngineWriter::from_fvl(fvl.clone());
    let vref = writer.register_view(view.clone(), VariantKind::Default).unwrap();
    let live = Arc::new(LiveEngine::new(writer.base().clone()));
    writer.publish(&live);
    let mut disk = Vec::new();
    writer.base().save(&mut disk).unwrap();
    println!("base generation saved: {} bytes, 1 compiled view", disk.len());

    // --- The pipeline: one publisher thread, an op-log sink, and as many
    // producers as want to push. -----------------------------------------
    let sink = SharedSink::new();
    let policy = PublishPolicy { max_batch_ops: 64, ..PublishPolicy::default() };
    let pipeline = IngestPipeline::spawn_with(
        writer,
        live.clone(),
        policy,
        PipelineOptions { sink: Some(Box::new(sink.clone())), ..PipelineOptions::default() },
    );

    let stop = AtomicBool::new(false);
    let (tickets, read_batches) = std::thread::scope(|s| {
        // Two readers: batched queries through the lock-free fast path,
        // each batch against whatever generation is current — publishes
        // from four producers land *under* them, atomically.
        let (live_ref, stop_ref) = (&live, &stop);
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                s.spawn(move || {
                    let mut ws = WorkerScratch::new();
                    let mut batches = 0u64;
                    while !stop_ref.load(Ordering::Relaxed) {
                        let gen = live_ref.read();
                        let n = gen.store().len() as u32;
                        let pairs: Vec<_> = (0..256u32)
                            .map(|k| (ItemId(k % n.max(1)), ItemId((k * 7 + 3) % n.max(1))))
                            .collect();
                        if n > 0 {
                            std::hint::black_box(gen.query_batch(&mut ws, vref, &pairs));
                        }
                        batches += 1;
                    }
                    batches
                })
            })
            .collect();

        // Four producers, each pushing its own disjoint slice of labels in
        // chunks, plus the shared view (the registry dedups — no producer
        // needs to know the others compile it too).
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = pipeline.queue().clone();
                let slice = &pool[p * PER_PRODUCER..(p + 1) * PER_PRODUCER];
                let view = view.clone();
                s.spawn(move || {
                    let mut tickets: Vec<Ticket> = Vec::new();
                    for (k, chunk) in slice.chunks(CHUNK).enumerate() {
                        tickets.push(q.push(IngestOp::InsertLabels(chunk.to_vec())).unwrap());
                        if k % 8 == 0 {
                            tickets.push(
                                q.push(IngestOp::CompileView(view.clone(), VariantKind::Default))
                                    .unwrap(),
                            );
                        }
                    }
                    tickets
                })
            })
            .collect();

        let mut tickets: Vec<Ticket> = Vec::new();
        for h in producers {
            tickets.extend(h.join().expect("producer panicked"));
        }
        stop.store(true, Ordering::Relaxed);
        let batches: u64 = readers.into_iter().map(|r| r.join().expect("reader panicked")).sum();
        (tickets, batches)
    });

    // --- Graceful shutdown: the queue closes, the publisher drains, and
    // every accepted op's ticket resolves with its publishing seqno. ------
    let report = pipeline.shutdown();
    assert!(report.persist_error.is_none(), "op-log persist failed");
    assert_eq!(report.stats.op_errors, 0);
    assert_eq!(report.stats.labels_ingested as usize, PRODUCERS * PER_PRODUCER);
    let mut max_seq = 0u64;
    for t in &tickets {
        let seq = t.wait().expect("drained pipeline resolves every ticket");
        max_seq = max_seq.max(seq);
    }
    let last = live.snapshot();
    assert!(last.seqno() >= max_seq, "every resolved seqno is live");
    println!(
        "{PRODUCERS} producers ingested {} labels over {} publishes while {READERS} readers \
         served {read_batches} batches; final generation {} holds {} items",
        report.stats.labels_ingested,
        report.stats.publishes,
        last.seqno(),
        last.store().len(),
    );

    // --- The racing run is replayable: base ‖ op-log lands on the exact
    // final generation, answers included. --------------------------------
    disk.extend_from_slice(&sink.contents());
    let fvl2 = Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).unwrap());
    let replayed = EngineGeneration::replay(fvl2, &mut disk.as_slice()).unwrap();
    assert_eq!(replayed.seqno(), last.seqno());
    assert_eq!(replayed.store().len(), last.store().len());

    let mut cold = QueryEngine::new(fvl.as_ref());
    // The store's id order *is* the global apply order — materialize it
    // back out to rebuild the same state cold.
    let store = report.writer.base().store();
    let ordered: Vec<_> = (0..store.len() as u32).map(|i| store.materialize(ItemId(i))).collect();
    let all_items = cold.insert_labels(&ordered);
    let cold_ref = cold.register_view(view, VariantKind::Default).unwrap();
    assert_eq!(cold_ref, vref);
    let sample_items: Vec<_> = all_items.iter().copied().step_by(13).collect();
    let mut ws = WorkerScratch::new();
    assert_eq!(
        replayed.all_pairs(&mut ws, vref, &sample_items),
        cold.all_pairs(cold_ref, &sample_items),
        "replayed state must answer like a cold-built engine"
    );
    println!(
        "warm restart replayed {} bytes to generation {} — answers identical to a cold build",
        disk.len(),
        replayed.seqno()
    );

    // --- Resume: a fresh pipeline on the reloaded generation keeps
    // ingesting where the old one left off. ------------------------------
    let live2 = Arc::new(LiveEngine::new(Arc::new(replayed)));
    let pipeline2 =
        IngestPipeline::spawn(EngineWriter::new(live2.snapshot()), live2.clone(), policy);
    let t = pipeline2.queue().push(IngestOp::InsertLabels(pool[..CHUNK].to_vec())).unwrap();
    let seq = t.wait().expect("resumed pipeline serves new ops");
    let report2 = pipeline2.shutdown();
    assert_eq!(report2.stats.labels_ingested as usize, CHUNK);
    assert_eq!(live2.snapshot().store().len(), last.store().len() + CHUNK);
    println!(
        "resumed pipeline published generation {seq}: {} items — multi-producer ingest demo \
         complete",
        live2.snapshot().store().len()
    );
}
