//! Dependency assignments (Definition 6).

use crate::error::ModelError;
use crate::ids::ModuleId;
use crate::module::ModuleSig;
use wf_boolmat::BoolMat;

/// A (partial) dependency assignment `λ`: for each covered module, a boolean
/// matrix with one row per input port and one column per output port;
/// `λ(M)[i][o]` means "output `o` depends on input `i`".
///
/// Definition 6 requires *proper* assignments — every input contributes to
/// at least one output (no all-zero row) and every output depends on at
/// least one input (no all-zero column); [`DepAssignment::validate_for`]
/// enforces this.
#[derive(Clone, Debug, Default)]
pub struct DepAssignment {
    mats: Vec<Option<BoolMat>>,
}

impl DepAssignment {
    pub fn new() -> Self {
        Self::default()
    }

    /// Assignment covering `modules` with black-box (complete) matrices —
    /// the coarse-grained model of Definition 8.
    pub fn black_box(sigs: &[ModuleSig], modules: impl IntoIterator<Item = ModuleId>) -> Self {
        let mut d = Self::new();
        for m in modules {
            let sig = &sigs[m.index()];
            d.set(m, BoolMat::complete(sig.inputs(), sig.outputs()));
        }
        d
    }

    /// Assigns `λ(module) = mat` (replacing any previous matrix).
    pub fn set(&mut self, module: ModuleId, mat: BoolMat) {
        if module.index() >= self.mats.len() {
            self.mats.resize(module.index() + 1, None);
        }
        self.mats[module.index()] = Some(mat);
    }

    /// Assigns from `(input, output)` pairs.
    pub fn set_pairs(
        &mut self,
        module: ModuleId,
        sig: &ModuleSig,
        pairs: impl IntoIterator<Item = (usize, usize)>,
    ) {
        self.set(module, BoolMat::from_pairs(sig.inputs(), sig.outputs(), pairs));
    }

    #[inline]
    pub fn get(&self, module: ModuleId) -> Option<&BoolMat> {
        self.mats.get(module.index()).and_then(|m| m.as_ref())
    }

    pub fn is_defined(&self, module: ModuleId) -> bool {
        self.get(module).is_some()
    }

    /// Validates shape and Definition 6 properness for one module.
    pub fn validate_for(&self, module: ModuleId, sig: &ModuleSig) -> Result<(), ModelError> {
        let mat = self.get(module).ok_or(ModelError::MissingDeps { module })?;
        if mat.rows() != sig.inputs() || mat.cols() != sig.outputs() {
            return Err(ModelError::DepsShapeMismatch { module });
        }
        for r in 0..mat.rows() {
            if mat.row_bits(r) == 0 {
                return Err(ModelError::ImproperDeps { module });
            }
        }
        let t = mat.transpose();
        for c in 0..t.rows() {
            if t.row_bits(c) == 0 {
                return Err(ModelError::ImproperDeps { module });
            }
        }
        Ok(())
    }

    /// Merges `other` over `self`: modules defined in `other` win. Views are
    /// often built as "default λ with a few overrides" (Example 7).
    pub fn overridden_by(&self, other: &DepAssignment) -> DepAssignment {
        let len = self.mats.len().max(other.mats.len());
        let mut out = DepAssignment { mats: vec![None; len] };
        for i in 0..len {
            out.mats[i] = other
                .mats
                .get(i)
                .and_then(|m| m.clone())
                .or_else(|| self.mats.get(i).and_then(|m| m.clone()));
        }
        out
    }

    /// Iterates `(module, matrix)` for all defined modules.
    pub fn iter(&self) -> impl Iterator<Item = (ModuleId, &BoolMat)> {
        self.mats
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|mat| (ModuleId(i as u32), mat)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> ModuleSig {
        ModuleSig::new("m", 2, 2)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut d = DepAssignment::new();
        assert!(!d.is_defined(ModuleId(3)));
        d.set_pairs(ModuleId(3), &sig(), [(0, 0), (1, 1)]);
        assert!(d.is_defined(ModuleId(3)));
        assert!(d.get(ModuleId(3)).unwrap().get(0, 0));
        assert!(d.get(ModuleId(0)).is_none());
    }

    #[test]
    fn proper_assignment_validates() {
        let mut d = DepAssignment::new();
        d.set_pairs(ModuleId(0), &sig(), [(0, 0), (1, 1)]);
        d.validate_for(ModuleId(0), &sig()).unwrap();
    }

    #[test]
    fn empty_row_rejected() {
        let mut d = DepAssignment::new();
        d.set_pairs(ModuleId(0), &sig(), [(0, 0), (0, 1)]); // input 1 contributes nowhere
        assert_eq!(
            d.validate_for(ModuleId(0), &sig()),
            Err(ModelError::ImproperDeps { module: ModuleId(0) })
        );
    }

    #[test]
    fn empty_column_rejected() {
        let mut d = DepAssignment::new();
        d.set_pairs(ModuleId(0), &sig(), [(0, 0), (1, 0)]); // output 1 depends on nothing
        assert_eq!(
            d.validate_for(ModuleId(0), &sig()),
            Err(ModelError::ImproperDeps { module: ModuleId(0) })
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut d = DepAssignment::new();
        d.set(ModuleId(0), BoolMat::complete(3, 2));
        assert_eq!(
            d.validate_for(ModuleId(0), &sig()),
            Err(ModelError::DepsShapeMismatch { module: ModuleId(0) })
        );
    }

    #[test]
    fn missing_rejected() {
        let d = DepAssignment::new();
        assert_eq!(
            d.validate_for(ModuleId(0), &sig()),
            Err(ModelError::MissingDeps { module: ModuleId(0) })
        );
    }

    #[test]
    fn black_box_is_complete_and_proper() {
        let sigs = vec![ModuleSig::new("a", 2, 3), ModuleSig::new("b", 1, 1)];
        let d = DepAssignment::black_box(&sigs, [ModuleId(0), ModuleId(1)]);
        assert!(d.get(ModuleId(0)).unwrap().is_complete());
        d.validate_for(ModuleId(0), &sigs[0]).unwrap();
        d.validate_for(ModuleId(1), &sigs[1]).unwrap();
    }

    #[test]
    fn override_semantics() {
        let s = sig();
        let mut base = DepAssignment::new();
        base.set_pairs(ModuleId(0), &s, [(0, 0), (1, 1)]);
        base.set_pairs(ModuleId(1), &s, [(0, 1), (1, 0)]);
        let mut over = DepAssignment::new();
        over.set(ModuleId(1), BoolMat::complete(2, 2));
        let merged = base.overridden_by(&over);
        assert!(!merged.get(ModuleId(0)).unwrap().is_complete());
        assert!(merged.get(ModuleId(1)).unwrap().is_complete());
        assert_eq!(merged.iter().count(), 2);
    }
}
