//! User-defined views built by grouping modules (§5).
//!
//! A grouping takes one production `C → W` and a convex set of positions in
//! `W`, and introduces a fresh composite module `F` encapsulating them —
//! formally replacing `C → W` by `C → W₉` (with `F` in place of the members)
//! and `F → W₁₀` (the induced sub-workflow), exactly as in Figure 16. Data
//! edges *between* members are hidden in the resulting view, along with the
//! members themselves.
//!
//! Labeling such views never rebuilds data labels: §5's construction
//! projects the user-defined view back onto the *original* production
//! structure, computing reachability matrices over the original positions
//! with the hidden ports masked out ("the first column is undefined",
//! Example 19). [`Grouping::boundary`], [`Grouping::input_hidden`] and
//! [`Grouping::output_hidden`], consumed by the labeler, provide exactly
//! that projection;
//! [`Grouping::materialize`] builds the formal `W₉`/`W₁₀` pair for tests and
//! documentation.

use crate::error::ModelError;
use crate::grammar::Grammar;
use crate::ids::{ModuleId, ProdId};
use crate::module::ModuleSig;
use crate::production::Production;
use crate::workflow::{DataEdge, InPortRef, NodeIx, OutPortRef, SimpleWorkflow};

/// A module-grouping operation on one production.
#[derive(Clone, Debug)]
pub struct Grouping {
    /// The production whose right-hand side is being grouped.
    pub prod: ProdId,
    /// Positions of the grouped instances, sorted and distinct.
    pub members: Vec<NodeIx>,
    /// Name of the new composite module `F`.
    pub name: String,
}

/// The boundary of a group: which member ports remain visible as ports of
/// the new composite module `F`, in canonical `(node, port)` order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupBoundary {
    /// Member input ports fed from outside the group (or initial): `F`'s
    /// inputs, in order.
    pub f_inputs: Vec<InPortRef>,
    /// Member output ports consumed outside the group (or final): `F`'s
    /// outputs, in order.
    pub f_outputs: Vec<OutPortRef>,
}

impl Grouping {
    pub fn new(
        prod: ProdId,
        members: impl IntoIterator<Item = NodeIx>,
        name: impl Into<String>,
    ) -> Self {
        let mut members: Vec<NodeIx> = members.into_iter().collect();
        members.sort();
        members.dedup();
        Self { prod, members, name: name.into() }
    }

    #[inline]
    pub fn is_member(&self, n: NodeIx) -> bool {
        self.members.binary_search(&n).is_ok()
    }

    /// Validates the grouping:
    /// * the production exists and the positions are in range, nonempty;
    /// * the group is *convex*: no data path leaves the group and re-enters
    ///   it (otherwise `W₉` would be cyclic through `F`).
    pub fn validate(&self, grammar: &Grammar) -> Result<(), ModelError> {
        if self.prod.index() >= grammar.production_count() {
            return Err(ModelError::BadGrouping { prod: self.prod, detail: "no such production" });
        }
        let w = &grammar.production(self.prod).rhs;
        if self.members.is_empty() {
            return Err(ModelError::BadGrouping { prod: self.prod, detail: "empty member set" });
        }
        if self.members.last().unwrap().index() >= w.node_count() {
            return Err(ModelError::BadGrouping {
                prod: self.prod,
                detail: "position out of range",
            });
        }
        if self.members.len() == w.node_count() {
            return Err(ModelError::BadGrouping {
                prod: self.prod,
                detail: "grouping the whole right-hand side is a no-op view",
            });
        }
        // Convexity: for every non-member n reachable from a member, n must
        // not reach a member.
        for &m in &self.members {
            for n in 0..w.node_count() {
                let n = NodeIx(n as u32);
                if self.is_member(n) || !w.node_reaches(m, n) {
                    continue;
                }
                for &m2 in &self.members {
                    if w.node_reaches(n, m2) {
                        return Err(ModelError::BadGrouping {
                            prod: self.prod,
                            detail: "group is not convex: a path exits and re-enters it",
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Computes `F`'s boundary ports over the *original* workflow.
    pub fn boundary(&self, grammar: &Grammar) -> GroupBoundary {
        let w = &grammar.production(self.prod).rhs;
        let sigs = grammar.sigs();
        let mut f_inputs = Vec::new();
        let mut f_outputs = Vec::new();
        for &m in &self.members {
            let sig = &sigs[w.module_at(m).index()];
            for p in 0..sig.inputs() as u8 {
                let port = InPortRef { node: m, port: p };
                let fed_internally = w.edge_into(port).is_some_and(|e| self.is_member(e.from.node));
                if !fed_internally {
                    f_inputs.push(port);
                }
            }
            for p in 0..sig.outputs() as u8 {
                let port = OutPortRef { node: m, port: p };
                let consumed_internally =
                    w.edge_out_of(port).is_some_and(|e| self.is_member(e.to.node));
                if !consumed_internally {
                    f_outputs.push(port);
                }
            }
        }
        GroupBoundary { f_inputs, f_outputs }
    }

    /// True iff an input port of the original workflow is hidden by this
    /// grouping (a member port fed by an intra-group edge).
    pub fn input_hidden(&self, grammar: &Grammar, p: InPortRef) -> bool {
        let w = &grammar.production(self.prod).rhs;
        self.is_member(p.node) && w.edge_into(p).is_some_and(|e| self.is_member(e.from.node))
    }

    /// True iff an output port is hidden (consumed by an intra-group edge).
    pub fn output_hidden(&self, grammar: &Grammar, p: OutPortRef) -> bool {
        let w = &grammar.production(self.prod).rhs;
        self.is_member(p.node) && w.edge_out_of(p).is_some_and(|e| self.is_member(e.to.node))
    }

    /// Materializes the formal transformation of §5: returns the new module
    /// signature for `F` and the productions `C → W₉` and `F → W₁₀`.
    /// `f_id` is the module id the caller reserves for `F`.
    pub fn materialize(
        &self,
        grammar: &Grammar,
        f_id: ModuleId,
    ) -> Result<(ModuleSig, Production, Production), ModelError> {
        self.validate(grammar)?;
        let prod = grammar.production(self.prod);
        let w = &prod.rhs;
        let boundary = self.boundary(grammar);
        let f_sig = ModuleSig::new(
            self.name.clone(),
            boundary.f_inputs.len() as u8,
            boundary.f_outputs.len() as u8,
        );

        // ---- W10: the induced sub-workflow over the members. ----
        let member_pos = |n: NodeIx| self.members.binary_search(&n).unwrap() as u32;
        let w10_nodes: Vec<ModuleId> = self.members.iter().map(|&m| w.module_at(m)).collect();
        let w10_edges: Vec<DataEdge> = w
            .edges()
            .iter()
            .filter(|e| self.is_member(e.from.node) && self.is_member(e.to.node))
            .map(|e| DataEdge {
                from: OutPortRef { node: NodeIx(member_pos(e.from.node)), port: e.from.port },
                to: InPortRef { node: NodeIx(member_pos(e.to.node)), port: e.to.port },
            })
            .collect();
        // Extended module table: the original sigs plus F at f_id.
        let mut sigs = grammar.sigs().to_vec();
        assert_eq!(f_id.index(), sigs.len(), "f_id must be the next module id");
        sigs.push(f_sig.clone());
        let w10 = SimpleWorkflow::new(w10_nodes, w10_edges, &sigs)?;
        // Canonical maps: W10's initial inputs are exactly the boundary
        // inputs, in the same (member-relative) canonical order.
        let p_f = Production::with_canonical_maps(f_id, w10);

        // ---- W9: the outer workflow with F replacing the members. ----
        // Abstract nodes: non-members (keyed by original position) plus F.
        let outer: Vec<NodeIx> =
            (0..w.node_count() as u32).map(NodeIx).filter(|n| !self.is_member(*n)).collect();
        // Order: topological over the contracted graph.
        let n_outer = outer.len();
        let f_abstract = n_outer; // abstract index of F
        let mut g = wf_digraph::DiGraph::with_nodes(n_outer + 1);
        let outer_pos = |n: NodeIx| outer.binary_search(&n).unwrap();
        for e in w.edges() {
            let from_member = self.is_member(e.from.node);
            let to_member = self.is_member(e.to.node);
            match (from_member, to_member) {
                (true, true) => {} // hidden internal edge
                (false, false) => {
                    g.add_edge(
                        wf_digraph::NodeId(outer_pos(e.from.node) as u32),
                        wf_digraph::NodeId(outer_pos(e.to.node) as u32),
                    );
                }
                (false, true) => {
                    g.add_edge(
                        wf_digraph::NodeId(outer_pos(e.from.node) as u32),
                        wf_digraph::NodeId(f_abstract as u32),
                    );
                }
                (true, false) => {
                    g.add_edge(
                        wf_digraph::NodeId(f_abstract as u32),
                        wf_digraph::NodeId(outer_pos(e.to.node) as u32),
                    );
                }
            }
        }
        let order = g.topo_sort().expect("convex grouping keeps the outer workflow acyclic");
        // new_pos[abstract index] = position in W9's node list.
        let mut new_pos = vec![0u32; n_outer + 1];
        let mut w9_nodes = Vec::with_capacity(n_outer + 1);
        for (i, nid) in order.iter().enumerate() {
            new_pos[nid.0 as usize] = i as u32;
            w9_nodes.push(if nid.0 as usize == f_abstract {
                f_id
            } else {
                w.module_at(outer[nid.0 as usize])
            });
        }
        let f_in_port = |p: InPortRef| {
            boundary.f_inputs.iter().position(|&q| q == p).expect("boundary input") as u8
        };
        let f_out_port = |p: OutPortRef| {
            boundary.f_outputs.iter().position(|&q| q == p).expect("boundary output") as u8
        };
        let map_out = |p: OutPortRef| {
            if self.is_member(p.node) {
                OutPortRef { node: NodeIx(new_pos[f_abstract]), port: f_out_port(p) }
            } else {
                OutPortRef { node: NodeIx(new_pos[outer_pos(p.node)]), port: p.port }
            }
        };
        let map_in = |p: InPortRef| {
            if self.is_member(p.node) {
                InPortRef { node: NodeIx(new_pos[f_abstract]), port: f_in_port(p) }
            } else {
                InPortRef { node: NodeIx(new_pos[outer_pos(p.node)]), port: p.port }
            }
        };
        let w9_edges: Vec<DataEdge> = w
            .edges()
            .iter()
            .filter(|e| !(self.is_member(e.from.node) && self.is_member(e.to.node)))
            .map(|e| DataEdge { from: map_out(e.from), to: map_in(e.to) })
            .collect();
        let w9 = SimpleWorkflow::new(w9_nodes, w9_edges, &sigs)?;
        // C's bijection: remap the original input/output maps.
        let p_c = Production {
            lhs: prod.lhs,
            rhs: w9,
            input_map: prod.input_map.iter().map(|&p| map_in(p)).collect(),
            output_map: prod.output_map.iter().map(|&p| map_out(p)).collect(),
        };
        Ok((f_sig, p_c, p_f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;

    /// C -> (b, D, E, c) chain: the Figure 16 shape (group {D, E}).
    fn chain_grammar() -> (Grammar, ProdId) {
        let mut g = GrammarBuilder::new();
        let c = g.composite("C", 1, 1);
        let b = g.atomic("b", 1, 1);
        let d = g.atomic("D", 1, 1);
        let e = g.atomic("E", 1, 1);
        let c2 = g.atomic("c", 1, 1);
        g.start(c);
        g.production(
            c,
            vec![b, d, e, c2],
            vec![((0, 0), (1, 0)), ((1, 0), (2, 0)), ((2, 0), (3, 0))],
        );
        (g.finish().unwrap(), ProdId(0))
    }

    #[test]
    fn boundary_of_figure16_group() {
        let (g, p) = chain_grammar();
        let grp = Grouping::new(p, [NodeIx(1), NodeIx(2)], "F");
        grp.validate(&g).unwrap();
        let b = grp.boundary(&g);
        // F's input: D's input (fed by b, outside). E's input is hidden
        // (fed by the internal D->E edge). F's output: E's output.
        assert_eq!(b.f_inputs, vec![InPortRef { node: NodeIx(1), port: 0 }]);
        assert_eq!(b.f_outputs, vec![OutPortRef { node: NodeIx(2), port: 0 }]);
        assert!(grp.input_hidden(&g, InPortRef { node: NodeIx(2), port: 0 }));
        assert!(!grp.input_hidden(&g, InPortRef { node: NodeIx(1), port: 0 }));
        assert!(grp.output_hidden(&g, OutPortRef { node: NodeIx(1), port: 0 }));
        assert!(!grp.output_hidden(&g, OutPortRef { node: NodeIx(2), port: 0 }));
    }

    #[test]
    fn materialize_figure16() {
        let (g, p) = chain_grammar();
        let grp = Grouping::new(p, [NodeIx(1), NodeIx(2)], "F");
        let f_id = ModuleId(g.module_count() as u32);
        let (f_sig, p_c, p_f) = grp.materialize(&g, f_id).unwrap();
        assert_eq!(f_sig.inputs(), 1);
        assert_eq!(f_sig.outputs(), 1);
        // W9 = b -> F -> c.
        assert_eq!(p_c.rhs.node_count(), 3);
        assert_eq!(p_c.rhs.nodes()[1], f_id);
        assert_eq!(p_c.rhs.edges().len(), 2);
        // W10 = D -> E with one internal (now hidden) edge.
        assert_eq!(p_f.rhs.node_count(), 2);
        assert_eq!(p_f.rhs.edges().len(), 1);
        assert_eq!(p_f.lhs, f_id);
    }

    #[test]
    fn non_convex_group_rejected() {
        // b -> D -> E -> c plus D -> c ... need path out and back in:
        // members {b, E}: b -> D (exit) -> E (re-enter) violates convexity.
        let (g, p) = chain_grammar();
        let grp = Grouping::new(p, [NodeIx(0), NodeIx(2)], "F");
        assert!(matches!(
            grp.validate(&g),
            Err(ModelError::BadGrouping {
                detail: "group is not convex: a path exits and re-enters it",
                ..
            })
        ));
    }

    #[test]
    fn whole_rhs_group_rejected() {
        let (g, p) = chain_grammar();
        let grp = Grouping::new(p, (0..4).map(NodeIx), "F");
        assert!(grp.validate(&g).is_err());
    }

    #[test]
    fn empty_and_out_of_range_rejected() {
        let (g, p) = chain_grammar();
        assert!(Grouping::new(p, [], "F").validate(&g).is_err());
        assert!(Grouping::new(p, [NodeIx(9)], "F").validate(&g).is_err());
    }

    #[test]
    fn adjacent_pair_groups_fine() {
        let (g, p) = chain_grammar();
        // Group {b, D} — convex prefix.
        let grp = Grouping::new(p, [NodeIx(0), NodeIx(1)], "F");
        grp.validate(&g).unwrap();
        let f_id = ModuleId(g.module_count() as u32);
        let (f_sig, p_c, _p_f) = grp.materialize(&g, f_id).unwrap();
        assert_eq!(f_sig.inputs(), 1);
        assert_eq!(f_sig.outputs(), 1);
        assert_eq!(p_c.rhs.node_count(), 3);
        // C's input map now points at F's input.
        assert_eq!(
            p_c.input_map[0].node,
            p_c.rhs.nodes().iter().position(|&m| m == f_id).map(|i| NodeIx(i as u32)).unwrap()
        );
    }
}
