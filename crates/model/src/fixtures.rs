//! Fixtures transcribed from the paper's figures.
//!
//! The running example (Figure 2) is reconstructed to honor every structural
//! fact the text states: the module list and topological positions of each
//! production's right-hand side (Example 12 / Figure 12's edge ids), the two
//! vertex-disjoint cycles `C(1) = {(2,2),(4,2)}` and `C(2) = {(6,2)}`, `S`'s
//! 2-input/3-output signature (Example 3), `W₁`'s six modules and ten data
//! edges, the `b → D` wiring of `W₅` that Example 15's label for `d21`
//! requires, and Example 8's view-dependent answer (an input/output pair of
//! `C` that is *independent* under the true λ but dependent under the
//! grey-box view `U₂`). Port-level wiring the figures leave unreadable is
//! chosen once here and asserted by tests; the derived full assignment λ\*
//! (Figure 7) is verified in `wf-analysis` against hand-computed matrices.

use crate::deps::DepAssignment;
use crate::grammar::GrammarBuilder;
use crate::grouping::Grouping;
use crate::ids::{ModuleId, ProdId};
use crate::spec::Spec;
use crate::view::View;
use crate::workflow::NodeIx;
use wf_boolmat::BoolMat;

/// The running example with named handles to its modules and productions.
pub struct PaperExample {
    pub spec: Spec,
    pub s: ModuleId,
    pub a_mod: ModuleId,
    pub b_mod: ModuleId,
    pub c_mod: ModuleId,
    pub d_mod: ModuleId,
    pub e_mod: ModuleId,
    pub a: ModuleId,
    pub b: ModuleId,
    pub c: ModuleId,
    pub d: ModuleId,
    pub e: ModuleId,
    pub f: ModuleId,
    /// p1 … p8 of Example 5, in order.
    pub prods: [ProdId; 8],
}

/// Builds the Figure 2 specification.
///
/// Signatures: `S(2,3)`, `A(2,2)`, `B(1,2)`, `C(3,2)`, `D(2,2)`, `E(3,2)`;
/// atomics `a(1,3)`, `b(1,2)`, `c(3,2)`, `d(2,2)`, `e(1,2)`, `f(2,2)`.
pub fn paper_example() -> PaperExample {
    let mut g = GrammarBuilder::new();
    // Composites (upper case in the paper).
    let s = g.composite("S", 2, 3);
    let a_mod = g.composite("A", 2, 2);
    let b_mod = g.composite("B", 1, 2);
    let c_mod = g.composite("C", 3, 2);
    let d_mod = g.composite("D", 2, 2);
    let e_mod = g.composite("E", 3, 2);
    // Atomics (lower case).
    let a = g.atomic("a", 1, 3);
    let b = g.atomic("b", 1, 2);
    let c = g.atomic("c", 3, 2);
    let d = g.atomic("d", 2, 2);
    let e = g.atomic("e", 1, 2);
    let f = g.atomic("f", 2, 2);
    g.start(s);

    // p1 = S -> W1 = (a, b, A, C, c, d), ten data edges.
    g.production(
        s,
        vec![a, b, a_mod, c_mod, c, d],
        vec![
            ((0, 0), (2, 0)), // a.out0 -> A.in0
            ((0, 1), (2, 1)), // a.out1 -> A.in1
            ((0, 2), (5, 0)), // a.out2 -> d.in0
            ((1, 0), (3, 0)), // b.out0 -> C.in0
            ((1, 1), (3, 1)), // b.out1 -> C.in1
            ((2, 0), (3, 2)), // A.out0 -> C.in2
            ((2, 1), (4, 0)), // A.out1 -> c.in0
            ((3, 0), (4, 1)), // C.out0 -> c.in1
            ((3, 1), (4, 2)), // C.out1 -> c.in2
            ((4, 0), (5, 1)), // c.out0 -> d.in1
        ],
    );
    // p2 = A -> W2 = (d, B, C).
    g.production(
        a_mod,
        vec![d, b_mod, c_mod],
        vec![
            ((0, 0), (1, 0)), // d.out0 -> B.in0
            ((0, 1), (2, 2)), // d.out1 -> C.in2
            ((1, 0), (2, 0)), // B.out0 -> C.in0
            ((1, 1), (2, 1)), // B.out1 -> C.in1
        ],
    );
    // p3 = A -> W3 = (e, C).
    g.production(
        a_mod,
        vec![e, c_mod],
        vec![
            ((0, 0), (1, 0)), // e.out0 -> C.in0
            ((0, 1), (1, 2)), // e.out1 -> C.in2
        ],
    );
    // p4 = B -> W4 = (e, A).
    g.production(
        b_mod,
        vec![e, a_mod],
        vec![
            ((0, 0), (1, 0)), // e.out0 -> A.in0
            ((0, 1), (1, 1)), // e.out1 -> A.in1
        ],
    );
    // p5 = C -> W5 = (b, D, E, c). Example 15 fixes b.out0 -> D.in1.
    g.production(
        c_mod,
        vec![b, d_mod, e_mod, c],
        vec![
            ((0, 0), (1, 1)), // b.out0 -> D.in1  (d21 of Figure 4)
            ((0, 1), (1, 0)), // b.out1 -> D.in0
            ((1, 0), (2, 0)), // D.out0 -> E.in0
            ((1, 1), (2, 1)), // D.out1 -> E.in1
            ((2, 0), (3, 0)), // E.out0 -> c.in0
            ((2, 1), (3, 1)), // E.out1 -> c.in1
        ],
    );
    // p6 = D -> W6 = (f, D): the self-recursion (loop over f).
    g.production(
        d_mod,
        vec![f, d_mod],
        vec![
            ((0, 0), (1, 0)), // f.out0 -> D.in0
            ((0, 1), (1, 1)), // f.out1 -> D.in1
        ],
    );
    // p7 = D -> W7 = (f): recursion exit.
    g.production(d_mod, vec![f], vec![]);
    // p8 = E -> W8 = (f, c).
    g.production(
        e_mod,
        vec![f, c],
        vec![
            ((0, 0), (1, 0)), // f.out0 -> c.in0
            ((0, 1), (1, 1)), // f.out1 -> c.in1
        ],
    );
    let grammar = g.finish().expect("paper example grammar is valid");

    // λ on atomic modules (the dashed edges of Figure 2).
    let mut deps = DepAssignment::new();
    deps.set_pairs(a, grammar.sig(a), [(0, 0), (0, 1), (0, 2)]);
    deps.set_pairs(b, grammar.sig(b), [(0, 0), (0, 1)]);
    deps.set_pairs(c, grammar.sig(c), [(0, 0), (1, 1), (2, 1)]);
    deps.set_pairs(d, grammar.sig(d), [(0, 0), (1, 1)]);
    deps.set_pairs(e, grammar.sig(e), [(0, 0), (0, 1)]);
    deps.set_pairs(f, grammar.sig(f), [(0, 0), (1, 0), (1, 1)]);

    let spec = Spec::new(grammar, deps).expect("paper example spec is valid");
    PaperExample {
        spec,
        s,
        a_mod,
        b_mod,
        c_mod,
        d_mod,
        e_mod,
        a,
        b,
        c,
        d,
        e,
        f,
        prods: [
            ProdId(0),
            ProdId(1),
            ProdId(2),
            ProdId(3),
            ProdId(4),
            ProdId(5),
            ProdId(6),
            ProdId(7),
        ],
    }
}

impl PaperExample {
    /// The view `U₂ = (Δ′, λ′)` of Example 7 / Figure 5: `Δ′ = {S, A, B}`,
    /// with grey-box dependencies — `λ′(C)` makes every output of `C` depend
    /// on every input (so Example 8's query flips from "no" to "yes").
    pub fn view_u2(&self) -> View {
        let g = &self.spec.grammar;
        let mut deps = self.spec.deps.clone();
        deps.set(self.c_mod, BoolMat::complete(3, 2));
        View::new(g, [self.s, self.a_mod, self.b_mod], deps)
            .expect("U2 is a proper, fully assigned view")
    }

    /// The default view `U₁ = (Δ, λ)`.
    pub fn view_u1(&self) -> View {
        self.spec.default_view()
    }

    /// The Figure 16 grouping: hide `D` and `E` of `W₅` inside a new
    /// composite module `F`.
    pub fn figure16_grouping(&self) -> Grouping {
        Grouping::new(self.prods[4], [NodeIx(1), NodeIx(2)], "F")
    }
}

/// Figure 6: the unsafe specification. `S → a` wires dependencies straight
/// through, `S → b` crosses them; whether `S`'s first output depends on its
/// first input is decided only *after* labels must have been issued, so no
/// dynamic labeling scheme exists (Theorem 1).
pub fn unsafe_example() -> Spec {
    let mut g = GrammarBuilder::new();
    let s = g.composite("S", 2, 2);
    let a = g.atomic("a", 2, 2);
    let b = g.atomic("b", 2, 2);
    g.start(s);
    g.production(s, vec![a], vec![]);
    g.production(s, vec![b], vec![]);
    let grammar = g.finish().unwrap();
    let mut deps = DepAssignment::new();
    deps.set_pairs(a, grammar.sig(a), [(0, 0), (1, 1)]); // straight
    deps.set_pairs(b, grammar.sig(b), [(0, 1), (1, 0)]); // crossed
    Spec::new(grammar, deps).unwrap()
}

/// Figure 10: linear-recursive but **not** strictly linear-recursive — two
/// self-loops on `S` (productions `S → (a, S)` and `S → (b, S)`) share the
/// vertex `S`. The dependency assignment is safe (λ\*(S) is complete under
/// every derivation), yet Theorem 6 shows compact dynamic labels are
/// impossible.
pub fn nonstrict_example() -> Spec {
    let mut g = GrammarBuilder::new();
    let s = g.composite("S", 2, 2);
    let a = g.atomic("a", 2, 2);
    let b = g.atomic("b", 2, 2);
    let c = g.atomic("c", 2, 2);
    g.start(s);
    // pa = S -> Wa = (a, S)
    g.production(s, vec![a, s], vec![((0, 0), (1, 0)), ((0, 1), (1, 1))]);
    // pb = S -> Wb = (b, S)
    g.production(s, vec![b, s], vec![((0, 0), (1, 0)), ((0, 1), (1, 1))]);
    // pc = S -> Wc = (c)
    g.production(s, vec![c], vec![]);
    let grammar = g.finish().unwrap();
    let mut deps = DepAssignment::new();
    deps.set_pairs(a, grammar.sig(a), [(0, 0), (1, 1)]);
    deps.set_pairs(b, grammar.sig(b), [(0, 1), (1, 0)]);
    deps.set(c, BoolMat::complete(2, 2));
    Spec::new(grammar, deps).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_builds_and_matches_stated_structure() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        assert_eq!(g.module_count(), 12);
        assert_eq!(g.production_count(), 8);
        // Example 3: S has two inputs, three outputs.
        assert_eq!(g.sig(ex.s).inputs(), 2);
        assert_eq!(g.sig(ex.s).outputs(), 3);
        // W1 has six modules and ten data edges.
        let w1 = &g.production(ex.prods[0]).rhs;
        assert_eq!(w1.node_count(), 6);
        assert_eq!(w1.edges().len(), 10);
        assert_eq!(w1.initial_inputs().len(), 2);
        assert_eq!(w1.final_outputs().len(), 3);
        // Example 12's topological order of W1: a, b, A, C, c, d.
        let names: Vec<&str> = w1.nodes().iter().map(|&m| g.sig(m).name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "A", "C", "c", "d"]);
        // W5 order: b, D, E, c with b.out0 -> D.in1 (Example 15's d21).
        let w5 = &g.production(ex.prods[4]).rhs;
        let names: Vec<&str> = w5.nodes().iter().map(|&m| g.sig(m).name.as_str()).collect();
        assert_eq!(names, vec!["b", "D", "E", "c"]);
        assert!(w5.edges().iter().any(|e| {
            e.from.node == NodeIx(0) && e.from.port == 0 && e.to.node == NodeIx(1) && e.to.port == 1
        }));
    }

    #[test]
    fn paper_example_views_validate() {
        let ex = paper_example();
        let u1 = ex.view_u1();
        assert_eq!(u1.size(), 6);
        let u2 = ex.view_u2();
        assert_eq!(u2.size(), 3);
        assert!(u2.expands(ex.s));
        assert!(!u2.expands(ex.c_mod));
        // λ'(C) is grey-box complete.
        assert!(u2.deps.get(ex.c_mod).unwrap().is_complete());
        // λ'(e) etc. unchanged.
        assert_eq!(u2.deps.get(ex.e), ex.spec.deps.get(ex.e));
    }

    #[test]
    fn paper_example_is_fine_grained() {
        let ex = paper_example();
        assert!(!ex.spec.is_coarse_grained());
    }

    #[test]
    fn figure16_grouping_validates() {
        let ex = paper_example();
        let grp = ex.figure16_grouping();
        grp.validate(&ex.spec.grammar).unwrap();
        let b = grp.boundary(&ex.spec.grammar);
        // F's visible inputs: D.in0, D.in1 (fed by b, outside the group) and
        // E.in2 (an initial input of W5). Hidden: E.in0/E.in1 (internal D->E).
        assert_eq!(b.f_inputs.len(), 3);
        assert_eq!(b.f_outputs.len(), 2);
    }

    #[test]
    fn negative_fixtures_build() {
        let u = unsafe_example();
        assert_eq!(u.grammar.production_count(), 2);
        let n = nonstrict_example();
        assert_eq!(n.grammar.production_count(), 3);
    }
}
