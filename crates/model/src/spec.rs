//! Workflow specifications `Gλ` (Definition 7) and the coarse-grained
//! subclass (Definition 8).

use crate::deps::DepAssignment;
use crate::error::ModelError;
use crate::grammar::Grammar;
use crate::view::View;

/// A fine-grained workflow specification: a grammar plus a proper dependency
/// assignment for its atomic modules.
#[derive(Clone, Debug)]
pub struct Spec {
    pub grammar: Grammar,
    /// The true dependency assignment λ, defined on atomic modules.
    pub deps: DepAssignment,
}

impl Spec {
    /// Validates that `deps` covers every atomic module with a proper matrix
    /// (Definition 6) and that the grammar is proper under full expansion
    /// (Definition 5 — the paper assumes properness throughout).
    pub fn new(grammar: Grammar, deps: DepAssignment) -> Result<Self, ModelError> {
        for m in grammar.atomic_modules().collect::<Vec<_>>() {
            deps.validate_for(m, grammar.sig(m))?;
        }
        grammar.check_proper(&grammar.full_expand())?;
        Ok(Self { grammar, deps })
    }

    /// The default view `(Δ, λ)` over this specification (Definition 9).
    pub fn default_view(&self) -> View {
        View::new_unchecked(self.grammar.full_expand(), self.deps.clone())
    }

    /// Definition 8: coarse-grained specifications have (1) black-box
    /// dependencies on every atomic module and (2) single-source /
    /// single-sink simple workflows.
    ///
    /// We check the property footnote 3 actually needs — all initial inputs
    /// enter one module from which every module is reachable, and all final
    /// outputs leave one module that every module reaches — which is the
    /// reading under which "every output of a composite module depends on
    /// every input" genuinely holds.
    pub fn is_coarse_grained(&self) -> bool {
        for m in self.grammar.atomic_modules() {
            match self.deps.get(m) {
                Some(mat) if mat.is_complete() => {}
                _ => return false,
            }
        }
        for (_, p) in self.grammar.productions() {
            let w = &p.rhs;
            let Some(&src) = w.initial_inputs().first().map(|p| &p.node) else {
                return false;
            };
            if !w.initial_inputs().iter().all(|p| p.node == src) {
                return false;
            }
            let Some(&sink) = w.final_outputs().first().map(|p| &p.node) else {
                return false;
            };
            if !w.final_outputs().iter().all(|p| p.node == sink) {
                return false;
            }
            for n in 0..w.node_count() {
                let n = crate::workflow::NodeIx(n as u32);
                if !w.node_reaches(src, n) || !w.node_reaches(n, sink) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;
    use crate::ids::ModuleId;

    fn chain_spec(complete_deps: bool) -> Result<Spec, ModelError> {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 2, 1);
        let x = b.atomic("x", 2, 2);
        let y = b.atomic("y", 2, 1);
        b.start(s);
        b.production(s, vec![x, y], vec![((0, 0), (1, 0)), ((0, 1), (1, 1))]);
        let g = b.finish()?;
        let mut deps = DepAssignment::new();
        if complete_deps {
            deps = DepAssignment::black_box(g.sigs(), [x, y]);
        } else {
            // Identity on x is proper but not complete: fine-grained.
            deps.set_pairs(x, g.sig(x), [(0, 0), (1, 1)]);
            deps.set_pairs(y, g.sig(y), [(0, 0), (1, 0)]);
        }
        let _ = ModuleId(0);
        Spec::new(g, deps)
    }

    #[test]
    fn spec_validates() {
        chain_spec(false).unwrap();
    }

    #[test]
    fn missing_atomic_deps_rejected() {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let x = b.atomic("x", 1, 1);
        b.start(s);
        b.production(s, vec![x], vec![]);
        let g = b.finish().unwrap();
        assert!(matches!(Spec::new(g, DepAssignment::new()), Err(ModelError::MissingDeps { .. })));
    }

    #[test]
    fn coarse_grained_classification() {
        assert!(chain_spec(true).unwrap().is_coarse_grained());
        assert!(!chain_spec(false).unwrap().is_coarse_grained());
    }

    #[test]
    fn multi_source_is_not_coarse() {
        // Two parallel atomics: two sources, two sinks.
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 2, 2);
        let x = b.atomic("x", 1, 1);
        b.start(s);
        b.production(s, vec![x, x], vec![]);
        let g = b.finish().unwrap();
        let deps = DepAssignment::black_box(g.sigs(), [x]);
        let spec = Spec::new(g, deps).unwrap();
        assert!(!spec.is_coarse_grained());
    }

    #[test]
    fn default_view_expands_all_composites() {
        let spec = chain_spec(false).unwrap();
        let v = spec.default_view();
        assert!(v.expands(spec.grammar.start()));
        assert_eq!(v.expand_mask().iter().filter(|&&e| e).count(), 1);
    }
}
