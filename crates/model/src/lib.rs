//! The fine-grained workflow model of *Labeling Workflow Views with
//! Fine-Grained Dependencies* (VLDB 2012), §2 and §5.
//!
//! A **workflow specification** `Gλ` pairs a *context-free workflow grammar*
//! `G = (Σ, Δ, S, P)` — modules, composite modules, a start module and
//! productions `M → W` rewriting a composite module into a simple workflow —
//! with a *dependency assignment* `λ` giving each atomic module a bipartite
//! input→output dependency relation (Definitions 1–7). The language `L(Gλ)`
//! is the set of runs: all-atomic simple workflows derivable from `S`.
//!
//! A **view** `(Δ′, λ′)` (Definition 9) restricts expansion to a subset of
//! composite modules and overrides the perceived dependencies of everything
//! else — *white-box* views reflect true dependencies, *grey-box* views may
//! add (or remove) them, and *black-box* views make every output depend on
//! every input.
//!
//! Layout:
//! * [`ids`], [`module`] — module identities and port signatures;
//! * [`workflow`] — validated simple workflows (Definition 2);
//! * [`production`] — productions with explicit port bijections `f`
//!   (Definition 3);
//! * [`grammar`] — grammars, the builder, and properness (Definition 5);
//! * [`deps`] — dependency assignments (Definition 6);
//! * [`spec`] — specifications `Gλ` (Definition 7) and the coarse-grained
//!   subclass (Definition 8);
//! * [`view`] — views and view-restricted specifications (Definition 9);
//! * [`portgraph`] — the expanded port graph of a simple workflow, the
//!   ground-truth reachability structure everything else is tested against;
//! * [`grouping`] — user-defined views built by grouping modules (§5);
//! * [`fixtures`] — the paper's running example (Figures 2–5), the unsafe
//!   specification of Figure 6, and the linear-but-not-strictly-linear
//!   grammar of Figure 10.

pub mod deps;
pub mod error;
pub mod fixtures;
pub mod grammar;
pub mod grouping;
pub mod ids;
pub mod module;
pub mod portgraph;
pub mod production;
pub mod spec;
pub mod view;
pub mod workflow;

pub use deps::DepAssignment;
pub use error::ModelError;
pub use grammar::{Grammar, GrammarBuilder};
pub use ids::{ModuleId, ProdId};
pub use module::ModuleSig;
pub use portgraph::{PortGraph, PortRef};
pub use production::Production;
pub use spec::Spec;
pub use view::{View, ViewSpec};
pub use workflow::{DataEdge, InPortRef, NodeIx, OutPortRef, SimpleWorkflow, WorkflowBuilder};
