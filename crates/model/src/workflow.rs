//! Simple workflows (Definition 2): DAGs of module instances connected by
//! data edges, with pairwise non-adjacent edges.

use crate::error::ModelError;
use crate::ids::ModuleId;
use crate::module::ModuleSig;

/// Index of a module instance (node) within one simple workflow.
///
/// Nodes are stored in the *fixed topological ordering* of §4.1, so a node's
/// index is exactly the `i` of the production-graph edge id `(k, i)` (we use
/// 0-based positions; the paper counts from 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeIx(pub u32);

impl NodeIx {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An output port of a node: the producing end of a data edge.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OutPortRef {
    pub node: NodeIx,
    pub port: u8,
}

/// An input port of a node: the consuming end of a data edge.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InPortRef {
    pub node: NodeIx,
    pub port: u8,
}

/// A data edge carrying one data item from an output port to an input port.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DataEdge {
    pub from: OutPortRef,
    pub to: InPortRef,
}

/// A validated simple workflow `W = (V, E)`.
///
/// Invariants (enforced by [`SimpleWorkflow::new`]):
/// * at least one node; all module ids and port indices in range;
/// * every port touches at most one data edge (pairwise non-adjacency);
/// * every edge goes from an earlier node to a strictly later node — the
///   listing is a topological order, so the workflow is acyclic.
///
/// *Initial inputs* (input ports with no incoming edge) and *final outputs*
/// (output ports with no outgoing edge) are derived at construction, in
/// canonical `(node, port)` order — the "top to bottom" convention the paper
/// uses for the default bijections.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SimpleWorkflow {
    nodes: Vec<ModuleId>,
    edges: Vec<DataEdge>,
    initial_inputs: Vec<InPortRef>,
    final_outputs: Vec<OutPortRef>,
    /// `in_edge[node][port]` = index into `edges` of the edge feeding that
    /// input port, if any.
    in_edge: Vec<Vec<Option<u32>>>,
    /// `out_edge[node][port]` = index of the edge consuming that output.
    out_edge: Vec<Vec<Option<u32>>>,
}

impl SimpleWorkflow {
    /// Validates and indexes a simple workflow against the module table.
    pub fn new(
        nodes: Vec<ModuleId>,
        edges: Vec<DataEdge>,
        sigs: &[ModuleSig],
    ) -> Result<Self, ModelError> {
        if nodes.is_empty() {
            return Err(ModelError::EmptyWorkflow);
        }
        for &m in &nodes {
            if m.index() >= sigs.len() {
                return Err(ModelError::UnknownModule { module: m });
            }
        }
        let sig_of = |n: NodeIx| &sigs[nodes[n.index()].index()];
        let mut in_edge: Vec<Vec<Option<u32>>> =
            nodes.iter().map(|m| vec![None; sigs[m.index()].inputs()]).collect();
        let mut out_edge: Vec<Vec<Option<u32>>> =
            nodes.iter().map(|m| vec![None; sigs[m.index()].outputs()]).collect();

        for (ei, e) in edges.iter().enumerate() {
            let (fi, ti) = (e.from.node.index(), e.to.node.index());
            if fi >= nodes.len() || ti >= nodes.len() {
                return Err(ModelError::EdgeNotForward { from_node: fi, to_node: ti });
            }
            if e.from.port as usize >= sig_of(e.from.node).outputs() {
                return Err(ModelError::PortOutOfRange {
                    node: fi,
                    port: e.from.port,
                    is_input: false,
                });
            }
            if e.to.port as usize >= sig_of(e.to.node).inputs() {
                return Err(ModelError::PortOutOfRange {
                    node: ti,
                    port: e.to.port,
                    is_input: true,
                });
            }
            if fi >= ti {
                return Err(ModelError::EdgeNotForward { from_node: fi, to_node: ti });
            }
            let out_slot = &mut out_edge[fi][e.from.port as usize];
            if out_slot.is_some() {
                return Err(ModelError::AdjacentEdges {
                    node: fi,
                    port: e.from.port,
                    is_input: false,
                });
            }
            *out_slot = Some(ei as u32);
            let in_slot = &mut in_edge[ti][e.to.port as usize];
            if in_slot.is_some() {
                return Err(ModelError::AdjacentEdges {
                    node: ti,
                    port: e.to.port,
                    is_input: true,
                });
            }
            *in_slot = Some(ei as u32);
        }

        let mut initial_inputs = Vec::new();
        let mut final_outputs = Vec::new();
        for (ni, slots) in in_edge.iter().enumerate() {
            for (p, slot) in slots.iter().enumerate() {
                if slot.is_none() {
                    initial_inputs.push(InPortRef { node: NodeIx(ni as u32), port: p as u8 });
                }
            }
        }
        for (ni, slots) in out_edge.iter().enumerate() {
            for (p, slot) in slots.iter().enumerate() {
                if slot.is_none() {
                    final_outputs.push(OutPortRef { node: NodeIx(ni as u32), port: p as u8 });
                }
            }
        }

        Ok(Self { nodes, edges, initial_inputs, final_outputs, in_edge, out_edge })
    }

    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    pub fn module_at(&self, n: NodeIx) -> ModuleId {
        self.nodes[n.index()]
    }

    pub fn nodes(&self) -> &[ModuleId] {
        &self.nodes
    }

    pub fn edges(&self) -> &[DataEdge] {
        &self.edges
    }

    /// Initial input ports in canonical `(node, port)` order.
    pub fn initial_inputs(&self) -> &[InPortRef] {
        &self.initial_inputs
    }

    /// Final output ports in canonical `(node, port)` order.
    pub fn final_outputs(&self) -> &[OutPortRef] {
        &self.final_outputs
    }

    /// The edge feeding an input port, if any.
    #[inline]
    pub fn edge_into(&self, p: InPortRef) -> Option<&DataEdge> {
        self.in_edge[p.node.index()][p.port as usize].map(|i| &self.edges[i as usize])
    }

    /// The edge consuming an output port, if any.
    #[inline]
    pub fn edge_out_of(&self, p: OutPortRef) -> Option<&DataEdge> {
        self.out_edge[p.node.index()][p.port as usize].map(|i| &self.edges[i as usize])
    }

    /// Instance-level reachability: `to` is reachable from `from` through
    /// data edges (reflexive). Used by the coarse-grained (black-box)
    /// machinery where module internals pass everything through.
    pub fn node_reaches(&self, from: NodeIx, to: NodeIx) -> bool {
        if from == to {
            return true;
        }
        // Forward edges only; node indices are topological.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(u) = stack.pop() {
            for e in &self.edges {
                if e.from.node == u && !seen[e.to.node.index()] {
                    if e.to.node == to {
                        return true;
                    }
                    seen[e.to.node.index()] = true;
                    stack.push(e.to.node);
                }
            }
        }
        false
    }
}

/// Convenience builder used by fixtures and generators.
///
/// ```
/// use wf_model::{ModuleSig, ModuleId, WorkflowBuilder};
/// let sigs = vec![ModuleSig::new("a", 1, 1), ModuleSig::new("b", 1, 1)];
/// let mut b = WorkflowBuilder::new();
/// let n0 = b.node(ModuleId(0));
/// let n1 = b.node(ModuleId(1));
/// b.edge((n0, 0), (n1, 0));
/// let w = b.finish(&sigs).unwrap();
/// assert_eq!(w.initial_inputs().len(), 1);
/// assert_eq!(w.final_outputs().len(), 1);
/// ```
#[derive(Default)]
pub struct WorkflowBuilder {
    nodes: Vec<ModuleId>,
    edges: Vec<DataEdge>,
}

impl WorkflowBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instance of `module`; returns its position.
    pub fn node(&mut self, module: ModuleId) -> NodeIx {
        self.nodes.push(module);
        NodeIx(self.nodes.len() as u32 - 1)
    }

    /// Adds a data edge from `(node, output port)` to `(node, input port)`.
    pub fn edge(&mut self, from: (NodeIx, u8), to: (NodeIx, u8)) -> &mut Self {
        self.edges.push(DataEdge {
            from: OutPortRef { node: from.0, port: from.1 },
            to: InPortRef { node: to.0, port: to.1 },
        });
        self
    }

    pub fn finish(self, sigs: &[ModuleSig]) -> Result<SimpleWorkflow, ModelError> {
        SimpleWorkflow::new(self.nodes, self.edges, sigs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sigs() -> Vec<ModuleSig> {
        vec![
            ModuleSig::new("x", 1, 2), // m0
            ModuleSig::new("y", 2, 1), // m1
        ]
    }

    #[test]
    fn boundary_ports_in_canonical_order() {
        let sigs = sigs();
        let mut b = WorkflowBuilder::new();
        let n0 = b.node(ModuleId(0));
        let n1 = b.node(ModuleId(1));
        b.edge((n0, 1), (n1, 0));
        let w = b.finish(&sigs).unwrap();
        assert_eq!(
            w.initial_inputs(),
            &[InPortRef { node: n0, port: 0 }, InPortRef { node: n1, port: 1 }]
        );
        assert_eq!(
            w.final_outputs(),
            &[OutPortRef { node: n0, port: 0 }, OutPortRef { node: n1, port: 0 }]
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(SimpleWorkflow::new(vec![], vec![], &sigs()), Err(ModelError::EmptyWorkflow));
    }

    #[test]
    fn rejects_adjacent_edges() {
        let sigs = sigs();
        let mut b = WorkflowBuilder::new();
        let n0 = b.node(ModuleId(0));
        let n1 = b.node(ModuleId(1));
        b.edge((n0, 0), (n1, 0));
        b.edge((n0, 0), (n1, 1)); // same output port twice
        assert!(matches!(b.finish(&sigs), Err(ModelError::AdjacentEdges { is_input: false, .. })));
    }

    #[test]
    fn rejects_shared_input_port() {
        let sigs = sigs();
        let mut b = WorkflowBuilder::new();
        let n0 = b.node(ModuleId(0));
        let n1 = b.node(ModuleId(1));
        b.edge((n0, 0), (n1, 0));
        b.edge((n0, 1), (n1, 0)); // same input port twice
        assert!(matches!(b.finish(&sigs), Err(ModelError::AdjacentEdges { is_input: true, .. })));
    }

    #[test]
    fn rejects_backward_and_self_edges() {
        let sigs = sigs();
        let mut b = WorkflowBuilder::new();
        let n0 = b.node(ModuleId(0));
        let n1 = b.node(ModuleId(1));
        b.edge((n1, 0), (n0, 0));
        assert!(matches!(b.finish(&sigs), Err(ModelError::EdgeNotForward { .. })));

        let mut b = WorkflowBuilder::new();
        let n0 = b.node(ModuleId(1));
        b.edge((n0, 0), (n0, 0));
        assert!(matches!(b.finish(&sigs), Err(ModelError::EdgeNotForward { .. })));
    }

    #[test]
    fn rejects_out_of_range_port() {
        let sigs = sigs();
        let mut b = WorkflowBuilder::new();
        let n0 = b.node(ModuleId(0));
        let n1 = b.node(ModuleId(1));
        b.edge((n0, 2), (n1, 0)); // m0 has 2 outputs: 0, 1
        assert!(matches!(b.finish(&sigs), Err(ModelError::PortOutOfRange { .. })));
    }

    #[test]
    fn edge_lookups() {
        let sigs = sigs();
        let mut b = WorkflowBuilder::new();
        let n0 = b.node(ModuleId(0));
        let n1 = b.node(ModuleId(1));
        b.edge((n0, 1), (n1, 0));
        let w = b.finish(&sigs).unwrap();
        assert!(w.edge_into(InPortRef { node: n1, port: 0 }).is_some());
        assert!(w.edge_into(InPortRef { node: n1, port: 1 }).is_none());
        assert!(w.edge_out_of(OutPortRef { node: n0, port: 1 }).is_some());
        assert!(w.edge_out_of(OutPortRef { node: n0, port: 0 }).is_none());
    }

    #[test]
    fn node_reachability() {
        let sigs = vec![ModuleSig::new("m", 1, 1); 4];
        let mut b = WorkflowBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.node(ModuleId(i as u32))).collect();
        b.edge((n[0], 0), (n[1], 0));
        b.edge((n[2], 0), (n[3], 0));
        let w = b.finish(&sigs).unwrap();
        assert!(w.node_reaches(n[0], n[1]));
        assert!(w.node_reaches(n[0], n[0]));
        assert!(!w.node_reaches(n[0], n[2]));
        assert!(!w.node_reaches(n[1], n[0]));
    }
}
