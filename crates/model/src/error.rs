//! Validation errors for model construction.

use crate::ids::{ModuleId, ProdId};

/// Why a workflow, production, grammar, specification or view was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A simple workflow must contain at least one module.
    EmptyWorkflow,
    /// A node references a module id outside the grammar's module table.
    UnknownModule { module: ModuleId },
    /// A data edge references a port outside its module's signature.
    PortOutOfRange { node: usize, port: u8, is_input: bool },
    /// Two data edges touch the same port — violates the pairwise
    /// non-adjacency assumption of Definition 2.
    AdjacentEdges { node: usize, port: u8, is_input: bool },
    /// A data edge goes backwards (or is a self-edge) w.r.t. the node
    /// listing; simple workflows must be listed in topological order so
    /// positions agree with the fixed ordering of §4.1.
    EdgeNotForward { from_node: usize, to_node: usize },
    /// A production's left-hand side is not a composite module.
    LhsNotComposite { prod: ProdId },
    /// The port bijection `f` of a production is not a bijection between the
    /// LHS ports and the RHS boundary ports.
    BadPortMap { prod: ProdId, detail: &'static str },
    /// The start module must exist and be composite.
    BadStartModule,
    /// A module has zero input or zero output ports; no proper dependency
    /// assignment exists for it (Definition 6).
    PortlessModule { module: ModuleId },
    /// Properness (Definition 5): a composite module is not derivable from
    /// the start module.
    Underivable { module: ModuleId },
    /// Properness: a composite module cannot derive any all-atomic workflow.
    Unproductive { module: ModuleId },
    /// Properness: unit productions form a cycle `M ⇒+ M`.
    UnitCycle { module: ModuleId },
    /// A dependency assignment is missing for a module that needs one.
    MissingDeps { module: ModuleId },
    /// A dependency matrix has the wrong shape for its module.
    DepsShapeMismatch { module: ModuleId },
    /// A dependency assignment violates Definition 6: some input contributes
    /// to no output, or some output depends on no input.
    ImproperDeps { module: ModuleId },
    /// A view's expansion set contains a module that is not composite.
    ExpandNotComposite { module: ModuleId },
    /// A user-defined view grouping is invalid (non-contiguous flows, wrong
    /// production, empty member set, …).
    BadGrouping { prod: ProdId, detail: &'static str },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        use ModelError::*;
        match self {
            EmptyWorkflow => write!(f, "simple workflow has no modules"),
            UnknownModule { module } => write!(f, "unknown module {module}"),
            PortOutOfRange { node, port, is_input } => write!(
                f,
                "{} port {port} of node {node} out of range",
                if *is_input { "input" } else { "output" }
            ),
            AdjacentEdges { node, port, is_input } => write!(
                f,
                "two data edges touch {} port {port} of node {node}",
                if *is_input { "input" } else { "output" }
            ),
            EdgeNotForward { from_node, to_node } => {
                write!(f, "data edge {from_node} -> {to_node} is not forward in the node listing")
            }
            LhsNotComposite { prod } => {
                write!(f, "production {prod} rewrites a non-composite module")
            }
            BadPortMap { prod, detail } => {
                write!(f, "production {prod} port bijection invalid: {detail}")
            }
            BadStartModule => write!(f, "start module missing or not composite"),
            PortlessModule { module } => write!(f, "module {module} has no inputs or no outputs"),
            Underivable { module } => write!(f, "composite module {module} is underivable"),
            Unproductive { module } => write!(f, "composite module {module} is unproductive"),
            UnitCycle { module } => write!(f, "unit productions form a cycle through {module}"),
            MissingDeps { module } => write!(f, "no dependency assignment for module {module}"),
            DepsShapeMismatch { module } => {
                write!(f, "dependency matrix shape mismatch for {module}")
            }
            ImproperDeps { module } => write!(f, "improper dependency assignment for {module}"),
            ExpandNotComposite { module } => {
                write!(f, "view expands non-composite module {module}")
            }
            BadGrouping { prod, detail } => write!(f, "invalid grouping on {prod}: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {}
