//! Views `(Δ′, λ′)` over a specification (Definition 9).

use crate::deps::DepAssignment;
use crate::error::ModelError;
use crate::grammar::Grammar;
use crate::ids::{ModuleId, ProdId};
use crate::spec::Spec;

/// A view over a specification: the subset `Δ′` of composite modules a user
/// may expand, plus the *perceived* dependency assignment `λ′` for every
/// module the view treats as atomic.
///
/// The view's grammar `G_Δ′` is the base grammar restricted to productions
/// of `Δ′` modules — we never materialize it with new ids; production and
/// module identities stay those of the base grammar (that stability is what
/// makes view-adaptive labeling possible).
#[derive(Clone, Debug)]
pub struct View {
    expand: Vec<bool>,
    /// λ′ — dependency matrices for modules outside `Δ′` (covering at least
    /// the ones derivable in the view).
    pub deps: DepAssignment,
}

impl View {
    /// Validates a view against its grammar:
    /// * `Δ′` contains only composite modules;
    /// * the restricted grammar is proper (Definition 5 — the paper
    ///   considers only proper views);
    /// * `λ′` is defined and proper for every view-atomic module that is
    ///   derivable in the view.
    pub fn new(
        grammar: &Grammar,
        expand_modules: impl IntoIterator<Item = ModuleId>,
        deps: DepAssignment,
    ) -> Result<Self, ModelError> {
        let mut expand = vec![false; grammar.module_count()];
        for m in expand_modules {
            if m.index() >= grammar.module_count() || !grammar.is_composite(m) {
                return Err(ModelError::ExpandNotComposite { module: m });
            }
            expand[m.index()] = true;
        }
        grammar.check_proper(&expand)?;
        let derivable = grammar.derivable_modules(&expand);
        for m in grammar.modules() {
            if derivable[m.index()] && !expand[m.index()] {
                deps.validate_for(m, grammar.sig(m))?;
            }
        }
        Ok(Self { expand, deps })
    }

    /// Bypasses validation — for the default view (already validated as part
    /// of the specification) and internal construction.
    pub(crate) fn new_unchecked(expand: Vec<bool>, deps: DepAssignment) -> Self {
        Self { expand, deps }
    }

    /// Like [`View::new`] but without requiring λ′ to cover every derivable
    /// unexpandable module. User-defined views (§5) need this: modules
    /// hidden inside a grouping are structurally derivable in the projected
    /// regular view, yet their perceived dependencies are carried by the
    /// group's `λ′(F)` instead of individual matrices.
    pub fn new_structural(
        grammar: &Grammar,
        expand_modules: impl IntoIterator<Item = ModuleId>,
        deps: DepAssignment,
    ) -> Result<Self, ModelError> {
        let mut expand = vec![false; grammar.module_count()];
        for m in expand_modules {
            if m.index() >= grammar.module_count() || !grammar.is_composite(m) {
                return Err(ModelError::ExpandNotComposite { module: m });
            }
            expand[m.index()] = true;
        }
        grammar.check_proper(&expand)?;
        Ok(Self { expand, deps })
    }

    /// Whether module `m` may be expanded in this view.
    #[inline]
    pub fn expands(&self, m: ModuleId) -> bool {
        self.expand.get(m.index()).copied().unwrap_or(false)
    }

    pub fn expand_mask(&self) -> &[bool] {
        &self.expand
    }

    /// Number of expandable composite modules — the paper's proxy for view
    /// size in §6.3 ("we estimate the size of a view by the number of
    /// composite modules that can expand").
    pub fn size(&self) -> usize {
        self.expand.iter().filter(|&&e| e).count()
    }

    /// True when every perceived matrix is complete — a black-box view,
    /// the only kind DRL supports (§6.4).
    pub fn is_black_box(&self, grammar: &Grammar) -> bool {
        let derivable = grammar.derivable_modules(&self.expand);
        grammar.modules().all(|m| {
            !derivable[m.index()]
                || self.expand[m.index()]
                || self.deps.get(m).is_some_and(|mat| mat.is_complete())
        })
    }
}

/// A specification seen through a view — the pair the analyses operate on.
///
/// Borrowing both keeps view creation O(1) and guarantees id stability.
#[derive(Clone, Copy)]
pub struct ViewSpec<'a> {
    pub spec: &'a Spec,
    pub view: &'a View,
}

impl<'a> ViewSpec<'a> {
    pub fn new(spec: &'a Spec, view: &'a View) -> Self {
        Self { spec, view }
    }

    #[inline]
    pub fn grammar(&self) -> &'a Grammar {
        &self.spec.grammar
    }

    /// λ′ of the view.
    #[inline]
    pub fn deps(&self) -> &'a DepAssignment {
        &self.view.deps
    }

    /// A module is a *terminal* of the view grammar iff it cannot be
    /// expanded.
    #[inline]
    pub fn is_terminal(&self, m: ModuleId) -> bool {
        !self.view.expands(m)
    }

    /// Productions active in this view.
    pub fn active_productions(&self) -> impl Iterator<Item = ProdId> + 'a {
        let view = self.view;
        self.spec.grammar.productions().filter(move |(_, p)| view.expands(p.lhs)).map(|(k, _)| k)
    }

    #[inline]
    pub fn prod_active(&self, k: ProdId) -> bool {
        self.view.expands(self.spec.grammar.production(k).lhs)
    }

    /// Modules derivable in the view.
    pub fn derivable(&self) -> Vec<bool> {
        self.spec.grammar.derivable_modules(self.view.expand_mask())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::GrammarBuilder;
    use wf_boolmat::BoolMat;

    /// S -> (x, C); C -> (y); two-level grammar.
    fn two_level() -> (Spec, ModuleId, ModuleId) {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let c = b.composite("C", 1, 1);
        let x = b.atomic("x", 1, 1);
        let y = b.atomic("y", 1, 1);
        b.start(s);
        b.production(s, vec![x, c], vec![((0, 0), (1, 0))]);
        b.production(c, vec![y], vec![]);
        let g = b.finish().unwrap();
        let mut deps = DepAssignment::new();
        deps.set(x, BoolMat::identity(1));
        deps.set(y, BoolMat::identity(1));
        (Spec::new(g, deps).unwrap(), s, c)
    }

    #[test]
    fn valid_partial_view() {
        let (spec, s, c) = two_level();
        // Expand only S: C becomes atomic-in-view and needs λ′(C).
        let mut deps = spec.deps.clone();
        deps.set(c, BoolMat::identity(1));
        let v = View::new(&spec.grammar, [s], deps).unwrap();
        assert!(v.expands(s));
        assert!(!v.expands(c));
        assert_eq!(v.size(), 1);
        let vs = ViewSpec::new(&spec, &v);
        assert!(vs.is_terminal(c));
        assert_eq!(vs.active_productions().count(), 1);
    }

    #[test]
    fn missing_view_deps_rejected() {
        let (spec, s, _c) = two_level();
        // λ′ covers x and y, but not C which is derivable & unexpandable.
        let err = View::new(&spec.grammar, [s], spec.deps.clone());
        assert!(matches!(err, Err(ModelError::MissingDeps { .. })));
    }

    #[test]
    fn underivable_modules_need_no_deps() {
        let (spec, s, c) = two_level();
        // Expanding both S and C: y needs λ′ but C itself doesn't (it is in Δ′).
        let v = View::new(&spec.grammar, [s, c], spec.deps.clone()).unwrap();
        assert_eq!(v.size(), 2);
    }

    #[test]
    fn expanding_atomic_rejected() {
        let (spec, _s, _c) = two_level();
        let x = spec.grammar.module_named("x").unwrap();
        assert!(matches!(
            View::new(&spec.grammar, [x], spec.deps.clone()),
            Err(ModelError::ExpandNotComposite { .. })
        ));
    }

    #[test]
    fn improper_view_rejected() {
        let (spec, _s, c) = two_level();
        // Expanding only C: C is underivable in the restricted grammar.
        let err = View::new(&spec.grammar, [c], spec.deps.clone());
        assert!(matches!(err, Err(ModelError::Underivable { .. })));
    }

    #[test]
    fn black_box_detection() {
        let (spec, s, c) = two_level();
        let g = &spec.grammar;
        let x = g.module_named("x").unwrap();
        let mut deps = DepAssignment::new();
        deps.set(x, BoolMat::complete(1, 1));
        deps.set(c, BoolMat::complete(1, 1));
        let v = View::new(g, [s], deps).unwrap();
        assert!(v.is_black_box(g));
        // The default view with identity matrices is trivially "complete"
        // here because all modules are 1x1; use a 2-port module to verify
        // the negative case elsewhere (covered in spec tests).
        let _ = c;
    }
}
