//! Workflow productions `M →f W` (Definition 3).

use crate::error::ModelError;
use crate::ids::{ModuleId, ProdId};
use crate::module::ModuleSig;
use crate::workflow::{InPortRef, OutPortRef, SimpleWorkflow};

/// A production rewriting the composite module `lhs` into the simple
/// workflow `rhs`, with the bijection `f` made explicit:
///
/// * `input_map[x]` is the initial input port of `rhs` bound to input `x`
///   of `lhs`;
/// * `output_map[y]` is the final output port of `rhs` bound to output `y`
///   of `lhs`.
///
/// When a production is applied during a derivation, the data edges adjacent
/// to the rewritten instance are re-attached through these maps; the data
/// items themselves (and their labels) are untouched.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Production {
    pub lhs: ModuleId,
    pub rhs: SimpleWorkflow,
    pub input_map: Vec<InPortRef>,
    pub output_map: Vec<OutPortRef>,
}

impl Production {
    /// Builds a production with the canonical "top to bottom" bijection:
    /// LHS port `x` binds to the `x`-th initial input / final output of the
    /// RHS in `(node, port)` order. This is the convention the paper adopts
    /// for all its figures ("the input ports and output ports of M and W are
    /// mapped by f from top to bottom").
    pub fn with_canonical_maps(lhs: ModuleId, rhs: SimpleWorkflow) -> Self {
        let input_map = rhs.initial_inputs().to_vec();
        let output_map = rhs.final_outputs().to_vec();
        Self { lhs, rhs, input_map, output_map }
    }

    /// Validates the bijection against the module table. `id` is used only
    /// for error reporting.
    pub fn validate(&self, id: ProdId, sigs: &[ModuleSig]) -> Result<(), ModelError> {
        let sig = &sigs[self.lhs.index()];
        if self.input_map.len() != sig.inputs() {
            return Err(ModelError::BadPortMap { prod: id, detail: "input arity mismatch" });
        }
        if self.output_map.len() != sig.outputs() {
            return Err(ModelError::BadPortMap { prod: id, detail: "output arity mismatch" });
        }
        // input_map must be a permutation of the RHS initial inputs.
        let mut inits = self.rhs.initial_inputs().to_vec();
        let mut mapped_in = self.input_map.clone();
        inits.sort();
        mapped_in.sort();
        if inits != mapped_in {
            return Err(ModelError::BadPortMap {
                prod: id,
                detail: "input_map is not a bijection onto the initial inputs",
            });
        }
        let mut finals = self.rhs.final_outputs().to_vec();
        let mut mapped_out = self.output_map.clone();
        finals.sort();
        mapped_out.sort();
        if finals != mapped_out {
            return Err(ModelError::BadPortMap {
                prod: id,
                detail: "output_map is not a bijection onto the final outputs",
            });
        }
        Ok(())
    }

    /// LHS input index bound to a given RHS initial input port.
    pub fn lhs_input_for(&self, p: InPortRef) -> Option<u8> {
        self.input_map.iter().position(|&q| q == p).map(|i| i as u8)
    }

    /// LHS output index bound to a given RHS final output port.
    pub fn lhs_output_for(&self, p: OutPortRef) -> Option<u8> {
        self.output_map.iter().position(|&q| q == p).map(|i| i as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::WorkflowBuilder;

    fn setup() -> (Vec<ModuleSig>, SimpleWorkflow) {
        let sigs = vec![
            ModuleSig::new("M", 2, 1), // m0: composite LHS
            ModuleSig::new("a", 1, 1), // m1
            ModuleSig::new("b", 2, 1), // m2
        ];
        let mut b = WorkflowBuilder::new();
        let n0 = b.node(ModuleId(1));
        let n1 = b.node(ModuleId(2));
        b.edge((n0, 0), (n1, 0));
        // initial inputs: a.in0, b.in1 ; final outputs: b.out0
        let w = b.finish(&sigs).unwrap();
        (sigs, w)
    }

    #[test]
    fn canonical_maps_follow_port_order() {
        let (sigs, w) = setup();
        let p = Production::with_canonical_maps(ModuleId(0), w);
        p.validate(ProdId(0), &sigs).unwrap();
        assert_eq!(p.input_map[0].node.index(), 0);
        assert_eq!(p.input_map[1], InPortRef { node: crate::workflow::NodeIx(1), port: 1 });
        assert_eq!(p.output_map[0].node.index(), 1);
        assert_eq!(p.lhs_input_for(p.input_map[1]), Some(1));
        assert_eq!(p.lhs_output_for(p.output_map[0]), Some(0));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let (mut sigs, w) = setup();
        sigs[0] = ModuleSig::new("M", 3, 1); // now claims 3 inputs
        let p = Production::with_canonical_maps(ModuleId(0), w);
        // canonical maps built from RHS give only 2 entries.
        assert!(matches!(
            p.validate(ProdId(0), &sigs),
            Err(ModelError::BadPortMap { detail: "input arity mismatch", .. })
        ));
    }

    #[test]
    fn non_bijective_map_is_rejected() {
        let (sigs, w) = setup();
        let mut p = Production::with_canonical_maps(ModuleId(0), w);
        p.input_map[1] = p.input_map[0]; // duplicate
        assert!(matches!(p.validate(ProdId(0), &sigs), Err(ModelError::BadPortMap { .. })));
    }

    #[test]
    fn permuted_bijection_is_accepted() {
        let (sigs, w) = setup();
        let mut p = Production::with_canonical_maps(ModuleId(0), w);
        p.input_map.swap(0, 1);
        p.validate(ProdId(0), &sigs).unwrap();
        assert_eq!(p.lhs_input_for(p.input_map[0]), Some(0));
    }
}
