//! Module signatures (Definition 1).

/// A module `M = (I, O)`: a named processing step with `n_in` input ports
/// and `n_out` output ports.
///
/// Ports are identified positionally (0-based; the paper counts from 1).
/// Whether a module is atomic or composite is a property of the *grammar*
/// (membership in Δ), not of the signature — a view may demote a composite
/// module to atomic without touching its signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ModuleSig {
    pub name: String,
    pub n_in: u8,
    pub n_out: u8,
}

impl ModuleSig {
    pub fn new(name: impl Into<String>, n_in: u8, n_out: u8) -> Self {
        Self { name: name.into(), n_in, n_out }
    }

    #[inline]
    pub fn inputs(&self) -> usize {
        self.n_in as usize
    }

    #[inline]
    pub fn outputs(&self) -> usize {
        self.n_out as usize
    }

    /// Every module that can carry a proper dependency assignment has at
    /// least one input and one output (Definition 6 is unsatisfiable
    /// otherwise). The sole permitted exceptions never occur in practice;
    /// grammar validation enforces this.
    pub fn has_ports(&self) -> bool {
        self.n_in > 0 && self.n_out > 0
    }
}

impl std::fmt::Display for ModuleSig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({} in, {} out)", self.name, self.n_in, self.n_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_accessors() {
        let s = ModuleSig::new("S", 2, 3);
        assert_eq!(s.inputs(), 2);
        assert_eq!(s.outputs(), 3);
        assert!(s.has_ports());
        assert!(!ModuleSig::new("x", 0, 1).has_ports());
    }
}
