//! The expanded port graph of a simple workflow — the ground truth for
//! every reachability statement in the paper.
//!
//! Given a simple workflow and a dependency matrix for each of its modules,
//! the port graph has one vertex per port, a *dependency* arc `input → output`
//! inside each instance for every pair in its matrix, and a *data* arc
//! `output → input` for every data edge. "Data item d₂ depends on d₁"
//! (w.r.t. a view) is reachability in this graph (§2.3); the full-assignment
//! algorithm (Lemma 1), the view-label functions `I`/`O`/`Z` (§4.3) and the
//! test oracles are all phrased over it.

use crate::deps::DepAssignment;
use crate::workflow::{InPortRef, OutPortRef, SimpleWorkflow};
use wf_digraph::{BitSet, DiGraph, NodeId};

/// A port of some instance in a simple workflow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PortRef {
    In(InPortRef),
    Out(OutPortRef),
}

/// Port graph with dense port indexing.
pub struct PortGraph {
    graph: DiGraph,
    /// Per node: base index of its input ports.
    in_base: Vec<u32>,
    /// Per node: base index of its output ports.
    out_base: Vec<u32>,
}

impl PortGraph {
    /// Builds the port graph of `w`, taking each instance's dependency
    /// matrix from `deps` (which must cover every module used by `w` —
    /// composites included, via a full assignment λ*).
    ///
    /// # Panics
    /// Panics if a module of `w` has no matrix in `deps`; callers are
    /// expected to have validated coverage (the safety checker does).
    pub fn build(w: &SimpleWorkflow, deps: &DepAssignment) -> Self {
        let mut in_base = Vec::with_capacity(w.node_count());
        let mut out_base = Vec::with_capacity(w.node_count());
        let mut next = 0u32;
        for &m in w.nodes() {
            let mat = deps
                .get(m)
                .unwrap_or_else(|| panic!("no dependency matrix for module {m} in port graph"));
            in_base.push(next);
            next += mat.rows() as u32;
            out_base.push(next);
            next += mat.cols() as u32;
        }
        let mut graph = DiGraph::with_nodes(next as usize);
        for (n, &m) in w.nodes().iter().enumerate() {
            let mat = deps.get(m).unwrap();
            for (i, o) in mat.iter_ones() {
                graph.add_edge(NodeId(in_base[n] + i as u32), NodeId(out_base[n] + o as u32));
            }
        }
        for e in w.edges() {
            graph.add_edge(
                NodeId(out_base[e.from.node.index()] + e.from.port as u32),
                NodeId(in_base[e.to.node.index()] + e.to.port as u32),
            );
        }
        Self { graph, in_base, out_base }
    }

    /// Dense index of an input port.
    #[inline]
    pub fn in_ix(&self, p: InPortRef) -> u32 {
        self.in_base[p.node.index()] + p.port as u32
    }

    /// Dense index of an output port.
    #[inline]
    pub fn out_ix(&self, p: OutPortRef) -> u32 {
        self.out_base[p.node.index()] + p.port as u32
    }

    #[inline]
    pub fn ix(&self, p: PortRef) -> u32 {
        match p {
            PortRef::In(q) => self.in_ix(q),
            PortRef::Out(q) => self.out_ix(q),
        }
    }

    pub fn port_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Ports reachable from `from` (reflexive), as a bitset over dense
    /// indices.
    pub fn reachable_from(&self, from: u32) -> BitSet {
        self.graph.reachable_from(NodeId(from))
    }

    /// Single reachability query (reflexive), BFS with early exit.
    pub fn reaches(&self, from: PortRef, to: PortRef) -> bool {
        let (s, t) = (self.ix(from), self.ix(to));
        if s == t {
            return true;
        }
        let mut seen = BitSet::with_capacity(self.port_count());
        seen.insert(s as usize);
        let mut stack = vec![NodeId(s)];
        while let Some(u) = stack.pop() {
            for &(_, v) in self.graph.out_edges(u) {
                if v.0 == t {
                    return true;
                }
                if seen.insert(v.0 as usize) {
                    stack.push(v);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ModuleId;
    use crate::module::ModuleSig;
    use crate::workflow::{NodeIx, WorkflowBuilder};

    /// Two modules x(1 in, 2 out) -> y(2 in, 1 out); x passes input to both
    /// outputs, y's output depends only on its *second* input.
    fn setup() -> (SimpleWorkflow, DepAssignment) {
        let sigs = vec![ModuleSig::new("x", 1, 2), ModuleSig::new("y", 2, 1)];
        let mut b = WorkflowBuilder::new();
        let n0 = b.node(ModuleId(0));
        let n1 = b.node(ModuleId(1));
        b.edge((n0, 0), (n1, 0));
        b.edge((n0, 1), (n1, 1));
        let w = b.finish(&sigs).unwrap();
        let mut deps = DepAssignment::new();
        deps.set_pairs(ModuleId(0), &sigs[0], [(0, 0), (0, 1)]);
        deps.set_pairs(ModuleId(1), &sigs[1], [(1, 0), (0, 0)]);
        (w, deps)
    }

    #[test]
    fn data_and_dependency_arcs_compose() {
        let (w, deps) = setup();
        let pg = PortGraph::build(&w, &deps);
        let x_in = PortRef::In(InPortRef { node: NodeIx(0), port: 0 });
        let y_out = PortRef::Out(OutPortRef { node: NodeIx(1), port: 0 });
        assert!(pg.reaches(x_in, y_out));
    }

    #[test]
    fn fine_grained_blocking() {
        // Make y's output depend only on input 1; x's input still reaches it
        // through output 1 -> y.in1. But if x only feeds output 0, it cannot.
        let sigs = vec![ModuleSig::new("x", 1, 2), ModuleSig::new("y", 2, 1)];
        let mut b = WorkflowBuilder::new();
        let n0 = b.node(ModuleId(0));
        let n1 = b.node(ModuleId(1));
        b.edge((n0, 0), (n1, 0));
        b.edge((n0, 1), (n1, 1));
        let w = b.finish(&sigs).unwrap();
        let mut deps = DepAssignment::new();
        deps.set_pairs(ModuleId(0), &sigs[0], [(0, 0), (0, 1)]);
        deps.set_pairs(ModuleId(1), &sigs[1], [(1, 0)]);
        let pg = PortGraph::build(&w, &deps);
        assert!(pg.reaches(
            PortRef::In(InPortRef { node: NodeIx(0), port: 0 }),
            PortRef::Out(OutPortRef { node: NodeIx(1), port: 0 })
        ));
        // y's input 0 does not reach y's output (dep edge only from input 1).
        assert!(!pg.reaches(
            PortRef::In(InPortRef { node: NodeIx(1), port: 0 }),
            PortRef::Out(OutPortRef { node: NodeIx(1), port: 0 })
        ));
    }

    #[test]
    fn reachability_is_reflexive() {
        let (w, deps) = setup();
        let pg = PortGraph::build(&w, &deps);
        let p = PortRef::In(InPortRef { node: NodeIx(1), port: 1 });
        assert!(pg.reaches(p, p));
    }

    #[test]
    fn no_backward_reachability() {
        let (w, deps) = setup();
        let pg = PortGraph::build(&w, &deps);
        assert!(!pg.reaches(
            PortRef::Out(OutPortRef { node: NodeIx(1), port: 0 }),
            PortRef::In(InPortRef { node: NodeIx(0), port: 0 })
        ));
    }

    #[test]
    fn reachable_set_matches_single_queries() {
        let (w, deps) = setup();
        let pg = PortGraph::build(&w, &deps);
        let from = InPortRef { node: NodeIx(0), port: 0 };
        let set = pg.reachable_from(pg.in_ix(from));
        // Enumerate all ports and compare set membership with reaches().
        let ports = vec![
            PortRef::In(from),
            PortRef::Out(OutPortRef { node: NodeIx(0), port: 0 }),
            PortRef::Out(OutPortRef { node: NodeIx(0), port: 1 }),
            PortRef::In(InPortRef { node: NodeIx(1), port: 0 }),
            PortRef::In(InPortRef { node: NodeIx(1), port: 1 }),
            PortRef::Out(OutPortRef { node: NodeIx(1), port: 0 }),
        ];
        for &p in &ports {
            assert_eq!(set.contains(pg.ix(p) as usize), pg.reaches(PortRef::In(from), p), "{p:?}");
        }
        // x.in0 reaches everything in this tiny workflow.
        assert_eq!(set.len(), pg.port_count());
    }

    #[test]
    #[should_panic(expected = "no dependency matrix")]
    fn missing_matrix_panics() {
        let (w, _) = setup();
        PortGraph::build(&w, &DepAssignment::new());
    }
}
