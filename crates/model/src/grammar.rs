//! Context-free workflow grammars (Definition 4) and properness
//! (Definition 5).

use crate::error::ModelError;
use crate::ids::{ModuleId, ProdId};
use crate::module::ModuleSig;
use crate::production::Production;
use crate::workflow::{DataEdge, InPortRef, NodeIx, OutPortRef, SimpleWorkflow};

/// A context-free workflow grammar `G = (Σ, Δ, S, P)`.
///
/// `Σ` is the module table, `Δ` the composite subset, `S` the start module
/// and `P` the production list. Production and module ids are **stable**:
/// views never renumber them, so production-graph edge ids `(k, i)` mean the
/// same thing in every view — the property that makes data labels reusable
/// across views.
#[derive(Clone, Debug)]
pub struct Grammar {
    modules: Vec<ModuleSig>,
    composite: Vec<bool>,
    start: ModuleId,
    productions: Vec<Production>,
    prods_of: Vec<Vec<ProdId>>,
}

impl Grammar {
    /// Validates and indexes a grammar. Checks performed:
    /// signatures have ports; the start module exists and is composite;
    /// every production's LHS is composite; every production's RHS and port
    /// bijection validate against the module table.
    ///
    /// Properness (Definition 5) is *not* required here — call
    /// [`Grammar::check_proper`]; the paper likewise separates the two.
    pub fn new(
        modules: Vec<ModuleSig>,
        composite: Vec<bool>,
        start: ModuleId,
        productions: Vec<Production>,
    ) -> Result<Self, ModelError> {
        assert_eq!(modules.len(), composite.len(), "composite mask length mismatch");
        for (i, sig) in modules.iter().enumerate() {
            if !sig.has_ports() {
                return Err(ModelError::PortlessModule { module: ModuleId(i as u32) });
            }
        }
        if start.index() >= modules.len() || !composite[start.index()] {
            return Err(ModelError::BadStartModule);
        }
        let mut prods_of: Vec<Vec<ProdId>> = vec![Vec::new(); modules.len()];
        for (k, p) in productions.iter().enumerate() {
            let id = ProdId(k as u32);
            if p.lhs.index() >= modules.len() || !composite[p.lhs.index()] {
                return Err(ModelError::LhsNotComposite { prod: id });
            }
            // RHS validated structurally at construction; re-validate the
            // bijections against this module table.
            p.validate(id, &modules)?;
            prods_of[p.lhs.index()].push(id);
        }
        Ok(Self { modules, composite, start, productions, prods_of })
    }

    #[inline]
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    #[inline]
    pub fn sig(&self, m: ModuleId) -> &ModuleSig {
        &self.modules[m.index()]
    }

    pub fn sigs(&self) -> &[ModuleSig] {
        &self.modules
    }

    #[inline]
    pub fn is_composite(&self, m: ModuleId) -> bool {
        self.composite[m.index()]
    }

    #[inline]
    pub fn start(&self) -> ModuleId {
        self.start
    }

    #[inline]
    pub fn production_count(&self) -> usize {
        self.productions.len()
    }

    #[inline]
    pub fn production(&self, k: ProdId) -> &Production {
        &self.productions[k.index()]
    }

    pub fn productions(&self) -> impl Iterator<Item = (ProdId, &Production)> {
        self.productions.iter().enumerate().map(|(k, p)| (ProdId(k as u32), p))
    }

    /// Productions whose LHS is `m`.
    pub fn productions_of(&self, m: ModuleId) -> &[ProdId] {
        &self.prods_of[m.index()]
    }

    pub fn modules(&self) -> impl Iterator<Item = ModuleId> {
        (0..self.modules.len() as u32).map(ModuleId)
    }

    pub fn composite_modules(&self) -> impl Iterator<Item = ModuleId> + '_ {
        self.modules().filter(|&m| self.is_composite(m))
    }

    pub fn atomic_modules(&self) -> impl Iterator<Item = ModuleId> + '_ {
        self.modules().filter(|&m| !self.is_composite(m))
    }

    /// Finds a module by name (fixtures and tests).
    pub fn module_named(&self, name: &str) -> Option<ModuleId> {
        self.modules.iter().position(|s| s.name == name).map(|i| ModuleId(i as u32))
    }

    /// Largest number of input or output ports over all modules — the
    /// constant `c` of Theorem 10's analysis.
    pub fn max_ports(&self) -> usize {
        self.modules.iter().map(|s| s.inputs().max(s.outputs())).max().unwrap_or(0)
    }

    /// Largest RHS node count over all productions.
    pub fn max_rhs_len(&self) -> usize {
        self.productions.iter().map(|p| p.rhs.node_count()).max().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Properness (Definition 5), parameterized by a view's expansion set so
    // the same machinery validates both grammars and views. `expand[m]`
    // tells whether module `m` may be rewritten; productions of unexpandable
    // modules are inactive.
    // ------------------------------------------------------------------

    /// True if production `k` is active under `expand`.
    #[inline]
    pub fn prod_active(&self, k: ProdId, expand: &[bool]) -> bool {
        expand[self.productions[k.index()].lhs.index()]
    }

    /// Modules derivable from the start module using active productions
    /// (the start module is derivable by definition).
    pub fn derivable_modules(&self, expand: &[bool]) -> Vec<bool> {
        let mut derivable = vec![false; self.modules.len()];
        derivable[self.start.index()] = true;
        let mut stack = vec![self.start];
        while let Some(m) = stack.pop() {
            if !expand[m.index()] {
                continue;
            }
            for &k in &self.prods_of[m.index()] {
                for &child in self.productions[k.index()].rhs.nodes() {
                    if !derivable[child.index()] {
                        derivable[child.index()] = true;
                        stack.push(child);
                    }
                }
            }
        }
        derivable
    }

    /// Modules that can derive a workflow of terminals only. Terminals under
    /// `expand` are exactly the unexpandable modules.
    pub fn productive_modules(&self, expand: &[bool]) -> Vec<bool> {
        let mut productive: Vec<bool> = (0..self.modules.len()).map(|m| !expand[m]).collect();
        loop {
            let mut changed = false;
            for p in &self.productions {
                if !expand[p.lhs.index()] || productive[p.lhs.index()] {
                    continue;
                }
                if p.rhs.nodes().iter().all(|c| productive[c.index()]) {
                    productive[p.lhs.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                return productive;
            }
        }
    }

    /// Checks Definition 5 under an expansion set: every expandable module
    /// is derivable and productive, and unit productions (single-node RHS)
    /// form no cycle `M ⇒+ M`.
    pub fn check_proper(&self, expand: &[bool]) -> Result<(), ModelError> {
        let derivable = self.derivable_modules(expand);
        let productive = self.productive_modules(expand);
        for m in self.modules() {
            if !expand[m.index()] {
                continue;
            }
            if !derivable[m.index()] {
                return Err(ModelError::Underivable { module: m });
            }
            if !productive[m.index()] {
                return Err(ModelError::Unproductive { module: m });
            }
        }
        // Unit-production cycles: M ⇒+ M is only possible through a chain of
        // productions whose RHS is a single module (rewriting can never
        // shrink a workflow).
        let mut unit = wf_digraph::DiGraph::with_nodes(self.modules.len());
        for p in &self.productions {
            if expand[p.lhs.index()] && p.rhs.node_count() == 1 {
                unit.add_edge(wf_digraph::NodeId(p.lhs.0), wf_digraph::NodeId(p.rhs.nodes()[0].0));
            }
        }
        if unit.is_cyclic() {
            // Find a witness on a unit cycle for the error message.
            let witness = self
                .modules()
                .find(|&m| {
                    expand[m.index()]
                        && unit
                            .out_edges(wf_digraph::NodeId(m.0))
                            .iter()
                            .any(|&(_, t)| unit.reachable_from(t).contains(m.index()))
                })
                .unwrap_or(self.start);
            return Err(ModelError::UnitCycle { module: witness });
        }
        Ok(())
    }

    /// Expansion mask for the *default* view: all composite modules.
    pub fn full_expand(&self) -> Vec<bool> {
        self.composite.clone()
    }
}

/// Raw production description used by [`GrammarBuilder`]: LHS, RHS node
/// modules, and `((from_pos, out_port), (to_pos, in_port))` edges.
pub type RawProduction = (ModuleId, Vec<ModuleId>, Vec<((usize, u8), (usize, u8))>);

/// Ergonomic construction of grammars for fixtures and generators.
pub struct GrammarBuilder {
    modules: Vec<ModuleSig>,
    composite: Vec<bool>,
    start: Option<ModuleId>,
    productions: Vec<RawProduction>,
}

impl GrammarBuilder {
    pub fn new() -> Self {
        Self { modules: Vec::new(), composite: Vec::new(), start: None, productions: Vec::new() }
    }

    /// Declares a composite module.
    pub fn composite(&mut self, name: &str, n_in: u8, n_out: u8) -> ModuleId {
        self.modules.push(ModuleSig::new(name, n_in, n_out));
        self.composite.push(true);
        ModuleId(self.modules.len() as u32 - 1)
    }

    /// Declares an atomic module.
    pub fn atomic(&mut self, name: &str, n_in: u8, n_out: u8) -> ModuleId {
        self.modules.push(ModuleSig::new(name, n_in, n_out));
        self.composite.push(false);
        ModuleId(self.modules.len() as u32 - 1)
    }

    pub fn start(&mut self, m: ModuleId) -> &mut Self {
        self.start = Some(m);
        self
    }

    /// Adds a production `lhs → (nodes, edges)` with canonical port maps.
    /// `edges` are `((from_pos, out_port), (to_pos, in_port))` pairs over
    /// node positions in `nodes`.
    pub fn production(
        &mut self,
        lhs: ModuleId,
        nodes: Vec<ModuleId>,
        edges: Vec<((usize, u8), (usize, u8))>,
    ) -> &mut Self {
        self.productions.push((lhs, nodes, edges));
        self
    }

    pub fn finish(self) -> Result<Grammar, ModelError> {
        let start = self.start.ok_or(ModelError::BadStartModule)?;
        let mut prods = Vec::with_capacity(self.productions.len());
        for (lhs, nodes, edges) in self.productions {
            let edges = edges
                .into_iter()
                .map(|((fp, fo), (tp, ti))| DataEdge {
                    from: OutPortRef { node: NodeIx(fp as u32), port: fo },
                    to: InPortRef { node: NodeIx(tp as u32), port: ti },
                })
                .collect();
            let rhs = SimpleWorkflow::new(nodes, edges, &self.modules)?;
            prods.push(Production::with_canonical_maps(lhs, rhs));
        }
        Grammar::new(self.modules, self.composite, start, prods)
    }
}

impl Default for GrammarBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// S -> (a); S -> (S') where S' -> (a): tiny grammar for properness.
    fn tiny() -> GrammarBuilder {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let a = b.atomic("a", 1, 1);
        b.start(s);
        b.production(s, vec![a], vec![]);
        b
    }

    #[test]
    fn builds_minimal_grammar() {
        let g = tiny().finish().unwrap();
        assert_eq!(g.module_count(), 2);
        assert_eq!(g.production_count(), 1);
        assert!(g.is_composite(g.start()));
        g.check_proper(&g.full_expand()).unwrap();
    }

    #[test]
    fn rejects_atomic_lhs() {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let a = b.atomic("a", 1, 1);
        b.start(s);
        b.production(a, vec![a], vec![]);
        assert!(matches!(b.finish(), Err(ModelError::LhsNotComposite { .. })));
    }

    #[test]
    fn rejects_portless_module() {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        b.atomic("weird", 0, 1);
        b.start(s);
        let a2 = ModuleId(1);
        b.production(s, vec![a2], vec![]);
        assert!(matches!(b.finish(), Err(ModelError::PortlessModule { .. })));
    }

    #[test]
    fn rejects_missing_start() {
        let mut b = GrammarBuilder::new();
        let _ = b.composite("S", 1, 1);
        assert!(matches!(b.finish(), Err(ModelError::BadStartModule)));
    }

    #[test]
    fn underivable_detected() {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let orphan = b.composite("X", 1, 1);
        let a = b.atomic("a", 1, 1);
        b.start(s);
        b.production(s, vec![a], vec![]);
        b.production(orphan, vec![a], vec![]);
        let g = b.finish().unwrap();
        assert_eq!(
            g.check_proper(&g.full_expand()),
            Err(ModelError::Underivable { module: orphan })
        );
    }

    #[test]
    fn unproductive_detected() {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let x = b.composite("X", 1, 1);
        b.start(s);
        // S -> X, X -> X: X never terminates.
        b.production(s, vec![x], vec![]);
        b.production(x, vec![x], vec![]);
        let g = b.finish().unwrap();
        assert!(matches!(g.check_proper(&g.full_expand()), Err(ModelError::Unproductive { .. })));
    }

    #[test]
    fn unit_cycle_detected() {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let x = b.composite("X", 1, 1);
        let a = b.atomic("a", 1, 1);
        b.start(s);
        // S -> X, X -> S (unit cycle), S -> a (so both are productive).
        b.production(s, vec![x], vec![]);
        b.production(x, vec![s], vec![]);
        b.production(s, vec![a], vec![]);
        let g = b.finish().unwrap();
        assert!(matches!(g.check_proper(&g.full_expand()), Err(ModelError::UnitCycle { .. })));
    }

    #[test]
    fn view_restriction_changes_properness() {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let x = b.composite("X", 1, 1);
        let a = b.atomic("a", 1, 1);
        b.start(s);
        b.production(s, vec![x], vec![]);
        b.production(x, vec![a], vec![]);
        let g = b.finish().unwrap();
        g.check_proper(&g.full_expand()).unwrap();
        // Restricting to {X} alone: X is no longer derivable (S cannot be
        // rewritten), so the view is improper.
        let mut expand = vec![false; g.module_count()];
        expand[x.index()] = true;
        assert!(matches!(g.check_proper(&expand), Err(ModelError::Underivable { .. })));
        // Restricting to {S}: X becomes a terminal; proper.
        let mut expand = vec![false; g.module_count()];
        expand[s.index()] = true;
        g.check_proper(&expand).unwrap();
    }

    #[test]
    fn recursion_is_not_a_unit_cycle() {
        // A -> (a, A) is recursive but not a unit production; properness holds
        // as long as a base production exists.
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let a_mod = b.composite("A", 1, 1);
        let x = b.atomic("x", 1, 1);
        b.start(s);
        b.production(s, vec![a_mod], vec![]);
        b.production(a_mod, vec![x, a_mod], vec![((0, 0), (1, 0))]);
        b.production(a_mod, vec![x], vec![]);
        let g = b.finish().unwrap();
        g.check_proper(&g.full_expand()).unwrap();
    }

    #[test]
    fn grammar_constants() {
        let g = tiny().finish().unwrap();
        assert_eq!(g.max_ports(), 1);
        assert_eq!(g.max_rhs_len(), 1);
        assert_eq!(g.module_named("a"), Some(ModuleId(1)));
        assert_eq!(g.module_named("zzz"), None);
    }
}
