//! Dense identifiers for grammar-level entities.

/// Index of a module (atomic or composite) in a grammar's module table.
///
/// Module identities are grammar-global and *stable across views*: a view
/// never renumbers modules, which is what lets view labels combine with data
/// labels produced without knowledge of any view.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ModuleId(pub u32);

impl ModuleId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a production in a grammar's production table.
///
/// This is the `k` of the paper's `(k, i)` production-graph edge identities
/// (§4.1); like module ids it is stable across views. The paper numbers
/// productions from 1; we use 0-based indices internally.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProdId(pub u32);

impl ProdId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ModuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl std::fmt::Display for ProdId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0 + 1) // 1-based like the paper's p₁, p₂, …
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_numbering() {
        assert_eq!(ProdId(0).to_string(), "p1");
        assert_eq!(ModuleId(3).to_string(), "m3");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ModuleId(1) < ModuleId(2));
        assert!(ProdId(0) < ProdId(1));
    }
}
