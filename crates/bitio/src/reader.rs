//! Sequential bit stream reader, the inverse of [`crate::BitWriter`].

use crate::bits::BitVec;

/// Error returned when a read runs past the end of the stream or a code is
/// malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadError {
    /// The stream ended before the requested field was complete.
    OutOfBits,
    /// A universal code was structurally invalid (e.g. > 64-bit γ prefix).
    Malformed,
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::OutOfBits => write!(f, "bit stream exhausted mid-field"),
            ReadError::Malformed => write!(f, "malformed universal code"),
        }
    }
}

impl std::error::Error for ReadError {}

/// Cursor over a [`BitVec`].
pub struct BitReader<'a> {
    bits: &'a BitVec,
    pos: usize,
}

impl<'a> BitReader<'a> {
    pub fn new(bits: &'a BitVec) -> Self {
        Self { bits, pos: 0 }
    }

    /// Current cursor position in bits.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits remaining.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Reads one bit.
    pub fn read_bit(&mut self) -> Result<bool, ReadError> {
        let b = self.bits.get(self.pos).ok_or(ReadError::OutOfBits)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a fixed-width little-endian field (inverse of
    /// [`crate::BitWriter::write_bits`]). `width == 0` reads the value 0.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, ReadError> {
        debug_assert!(width <= 64);
        if self.remaining() < width as usize {
            return Err(ReadError::OutOfBits);
        }
        let mut out = 0u64;
        let words = self.bits.words();
        let mut got = 0u32;
        while got < width {
            let word = self.pos / 64;
            let off = (self.pos % 64) as u32;
            let take = (64 - off).min(width - got);
            let chunk = (words[word] >> off) & mask(take);
            out |= chunk << got;
            got += take;
            self.pos += take as usize;
        }
        Ok(out)
    }

    /// Reads a unary-coded value (inverse of `write_unary`).
    pub fn read_unary(&mut self) -> Result<u64, ReadError> {
        let mut n = 0u64;
        loop {
            if self.read_bit()? {
                return Ok(n);
            }
            n += 1;
        }
    }

    /// Reads an Elias γ-coded value (inverse of `write_gamma`).
    pub fn read_gamma(&mut self) -> Result<u64, ReadError> {
        let zeros = self.read_unary()?; // consumes the leading 1 of n as well
        if zeros >= 64 {
            return Err(ReadError::Malformed);
        }
        // We already consumed the MSB (the 1 terminating the unary prefix);
        // `zeros` further bits follow.
        let rest = self.read_bits_msb(zeros as u32)?;
        Ok((1u64 << zeros) | rest)
    }

    /// Reads an Elias δ-coded value (inverse of `write_delta`).
    pub fn read_delta(&mut self) -> Result<u64, ReadError> {
        let nbits = self.read_gamma()?;
        if nbits == 0 || nbits > 64 {
            return Err(ReadError::Malformed);
        }
        let rest = self.read_bits_msb(nbits as u32 - 1)?;
        Ok((1u64 << (nbits - 1)) | rest)
    }

    /// Reads `width` bits MSB-first (γ/δ payloads are written MSB-first).
    fn read_bits_msb(&mut self, width: u32) -> Result<u64, ReadError> {
        let mut out = 0u64;
        for _ in 0..width {
            out = (out << 1) | self.read_bit()? as u64;
        }
        Ok(out)
    }
}

#[inline]
fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitWriter;

    #[test]
    fn roundtrip_mixed_fields() {
        let mut w = BitWriter::new();
        w.write_bits(0b1101, 4);
        w.write_gamma(17);
        w.write_bits(5, 3);
        w.write_delta(1000);
        w.write_unary(7);
        w.write_bits(u64::MAX, 64);
        let v = w.finish();

        let mut r = BitReader::new(&v);
        assert_eq!(r.read_bits(4).unwrap(), 0b1101);
        assert_eq!(r.read_gamma().unwrap(), 17);
        assert_eq!(r.read_bits(3).unwrap(), 5);
        assert_eq!(r.read_delta().unwrap(), 1000);
        assert_eq!(r.read_unary().unwrap(), 7);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn out_of_bits_error() {
        let mut w = BitWriter::new();
        w.write_bits(3, 2);
        let v = w.finish();
        let mut r = BitReader::new(&v);
        assert_eq!(r.read_bits(3), Err(ReadError::OutOfBits));
        // Position unchanged enough to retry smaller reads.
        assert_eq!(r.read_bits(2).unwrap(), 3);
    }

    #[test]
    fn empty_stream() {
        let v = crate::BitVec::new();
        let mut r = BitReader::new(&v);
        assert_eq!(r.read_bit(), Err(ReadError::OutOfBits));
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }
}
