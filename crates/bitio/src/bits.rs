//! A compact, immutable sequence of bits with exact length.

/// An immutable bit string produced by a [`crate::BitWriter`].
///
/// Bits are stored LSB-first inside `u64` words: bit `n` of the stream lives
/// at `storage[n / 64] >> (n % 64) & 1`. Equality and hashing respect the
/// logical length, not the storage capacity.
#[derive(Clone, Default)]
pub struct BitVec {
    storage: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit string.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn from_raw(storage: Vec<u64>, len: usize) -> Self {
        debug_assert!(storage.len() * 64 >= len);
        Self { storage, len }
    }

    /// Length in bits. This is the number the paper's space figures report.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bit string contains no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `idx`, or `None` past the end.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<bool> {
        (idx < self.len).then(|| (self.storage[idx / 64] >> (idx % 64)) & 1 == 1)
    }

    /// The backing `u64` words, LSB-first (bit `n` lives at
    /// `words()[n / 64] >> (n % 64) & 1`). Bits past [`BitVec::len`] in the
    /// last word are unspecified. This is the raw form snapshot containers
    /// persist; [`BitVec::from_words`] is the inverse.
    pub fn words(&self) -> &[u64] {
        &self.storage
    }

    /// Rebuilds a bit string from its backing words (inverse of
    /// [`BitVec::words`]). Returns `None` when the word count does not match
    /// `len` — exactly `⌈len / 64⌉` words are required, so callers reading
    /// untrusted input get a checkable error instead of a panic.
    pub fn from_words(storage: Vec<u64>, len: usize) -> Option<Self> {
        if storage.len() == len.div_ceil(64) {
            Some(Self { storage, len })
        } else {
            None
        }
    }

    /// Iterates over the bits from first to last.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i).unwrap())
    }
}

impl PartialEq for BitVec {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let full = self.len / 64;
        if self.storage[..full] != other.storage[..full] {
            return false;
        }
        let rem = self.len % 64;
        if rem == 0 {
            return true;
        }
        let mask = (1u64 << rem) - 1;
        (self.storage[full] & mask) == (other.storage[full] & mask)
    }
}

impl Eq for BitVec {}

impl std::hash::Hash for BitVec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        let full = self.len / 64;
        self.storage[..full].hash(state);
        let rem = self.len % 64;
        if rem != 0 {
            (self.storage[full] & ((1u64 << rem) - 1)).hash(state);
        }
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitWriter;

    #[test]
    fn empty_bitvec() {
        let v = BitVec::new();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert_eq!(v.get(0), None);
    }

    #[test]
    fn equality_ignores_trailing_garbage() {
        // Two vectors with the same logical bits must compare equal even if
        // built through different writer call sequences.
        let mut w1 = BitWriter::new();
        w1.write_bits(0b101, 3);
        let a = w1.finish();

        let mut w2 = BitWriter::new();
        w2.push_bit(true);
        w2.push_bit(false);
        w2.push_bit(true);
        let b = w2.finish();

        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn hash_matches_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        let mut w = BitWriter::new();
        w.write_bits(0xABCD, 16);
        set.insert(w.finish());
        let mut w = BitWriter::new();
        w.write_bits(0xABCD, 16);
        assert!(set.contains(&w.finish()));
    }

    #[test]
    fn words_from_words_roundtrip() {
        let mut w = BitWriter::new();
        for i in 0..130u64 {
            w.push_bit(i % 5 == 0);
        }
        let v = w.finish();
        let back = BitVec::from_words(v.words().to_vec(), v.len()).unwrap();
        assert_eq!(back, v);
        // Word-count mismatches are rejected, not asserted.
        assert!(BitVec::from_words(vec![0; 2], 130).is_none());
        assert!(BitVec::from_words(vec![0; 4], 130).is_none());
        assert!(BitVec::from_words(vec![], 0).is_some());
    }

    #[test]
    fn word_boundary_crossing() {
        let mut w = BitWriter::new();
        for i in 0..130 {
            w.push_bit(i % 3 == 0);
        }
        let v = w.finish();
        assert_eq!(v.len(), 130);
        for i in 0..130 {
            assert_eq!(v.get(i), Some(i % 3 == 0), "bit {i}");
        }
        assert_eq!(v.get(130), None);
    }
}
