//! Append-only bit stream writer.

use crate::bits::BitVec;

/// Builds a [`BitVec`] one field at a time.
///
/// Labels in the scheme are assigned online and never modified afterwards
/// (Definition 10), so the writer deliberately exposes only appends.
#[derive(Default)]
pub struct BitWriter {
    storage: Vec<u64>,
    len: usize,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bits written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        let word = self.len / 64;
        let off = self.len % 64;
        if word == self.storage.len() {
            self.storage.push(0);
        }
        if bit {
            self.storage[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Appends the low `width` bits of `value`, LSB first.
    ///
    /// # Panics
    /// In debug builds, panics if `value` does not fit in `width` bits.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        if width == 0 {
            return;
        }
        let word = self.len / 64;
        let off = (self.len % 64) as u32;
        if word == self.storage.len() {
            self.storage.push(0);
        }
        self.storage[word] |= value << off;
        if off + width > 64 {
            // Spills into the next word.
            self.storage.push(value >> (64 - off));
        } else if self.len + width as usize == (word + 1) * 64 {
            // Exactly fills the word; nothing to spill.
        }
        self.len += width as usize;
    }

    /// Appends `n` in unary: `n` zeros followed by a one.
    pub fn write_unary(&mut self, n: u64) {
        for _ in 0..n {
            self.push_bit(false);
        }
        self.push_bit(true);
    }

    /// Appends `n >= 1` with the Elias γ code: `⌊log₂ n⌋` zeros, then the
    /// `⌊log₂ n⌋ + 1` binary digits of `n` (MSB first, leading 1 included).
    ///
    /// # Panics
    /// Panics if `n == 0` (γ codes positive integers only).
    pub fn write_gamma(&mut self, n: u64) {
        assert!(n >= 1, "Elias gamma codes positive integers");
        let nbits = 64 - n.leading_zeros(); // ⌊log₂ n⌋ + 1
        for _ in 0..nbits - 1 {
            self.push_bit(false);
        }
        // MSB-first binary digits of n.
        for i in (0..nbits).rev() {
            self.push_bit((n >> i) & 1 == 1);
        }
    }

    /// Appends `n >= 1` with the Elias δ code: γ(⌊log₂ n⌋ + 1) followed by
    /// the `⌊log₂ n⌋` low digits of `n`. Asymptotically shorter than γ.
    pub fn write_delta(&mut self, n: u64) {
        assert!(n >= 1, "Elias delta codes positive integers");
        let nbits = 64 - n.leading_zeros();
        self.write_gamma(nbits as u64);
        for i in (0..nbits - 1).rev() {
            self.push_bit((n >> i) & 1 == 1);
        }
    }

    /// Finalizes the stream.
    pub fn finish(self) -> BitVec {
        BitVec::from_raw(self.storage, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_bits_within_word() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        let v = w.finish();
        assert_eq!(v.len(), 4);
        let got: Vec<bool> = v.iter().collect();
        // LSB first: 1, 1, 0, 1.
        assert_eq!(got, vec![true, true, false, true]);
    }

    #[test]
    fn write_bits_zero_width_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn write_bits_across_word_boundary() {
        let mut w = BitWriter::new();
        w.write_bits((1u64 << 60) - 1, 60);
        w.write_bits(0b1010, 4);
        w.write_bits(0xFF, 8);
        let v = w.finish();
        assert_eq!(v.len(), 72);
        assert_eq!(v.get(60), Some(false));
        assert_eq!(v.get(61), Some(true));
        assert_eq!(v.get(62), Some(false));
        assert_eq!(v.get(63), Some(true));
        for i in 64..72 {
            assert_eq!(v.get(i), Some(true));
        }
    }

    #[test]
    fn write_full_64_bit_word() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF_CAFE_F00D, 64);
        let v = w.finish();
        assert_eq!(v.len(), 64);
        assert_eq!(v.words()[0], 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn unary_lengths() {
        let mut w = BitWriter::new();
        w.write_unary(0);
        assert_eq!(w.len(), 1);
        w.write_unary(5);
        assert_eq!(w.len(), 7);
    }

    #[test]
    fn gamma_known_codewords() {
        // Classic table: γ(1)=1, γ(2)=010, γ(3)=011, γ(4)=00100.
        let enc = |n: u64| {
            let mut w = BitWriter::new();
            w.write_gamma(n);
            w.finish().iter().map(|b| if b { '1' } else { '0' }).collect::<String>()
        };
        assert_eq!(enc(1), "1");
        assert_eq!(enc(2), "010");
        assert_eq!(enc(3), "011");
        assert_eq!(enc(4), "00100");
        assert_eq!(enc(9), "0001001");
    }

    #[test]
    fn delta_known_codewords() {
        // δ(1)=1, δ(2)=0100, δ(3)=0101, δ(4)=01100, δ(9)=00100001.
        let enc = |n: u64| {
            let mut w = BitWriter::new();
            w.write_delta(n);
            w.finish().iter().map(|b| if b { '1' } else { '0' }).collect::<String>()
        };
        assert_eq!(enc(1), "1");
        assert_eq!(enc(2), "0100");
        assert_eq!(enc(3), "0101");
        assert_eq!(enc(4), "01100");
        assert_eq!(enc(9), "00100001");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gamma_rejects_zero() {
        BitWriter::new().write_gamma(0);
    }
}
