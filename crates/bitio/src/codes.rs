//! Closed-form lengths for the universal codes used by labels.
//!
//! The experiment harness frequently needs a label's size *without*
//! materializing its bits (e.g. when averaging over 10⁶ samples); these
//! helpers keep that accounting exact and in sync with the writer.

/// Length in bits of the Elias γ code for `n >= 1`.
#[inline]
pub fn gamma_len(n: u64) -> usize {
    assert!(n >= 1);
    let nbits = 64 - n.leading_zeros() as usize;
    2 * nbits - 1
}

/// Length in bits of the Elias δ code for `n >= 1`.
#[inline]
pub fn delta_len(n: u64) -> usize {
    assert!(n >= 1);
    let nbits = 64 - n.leading_zeros() as usize;
    gamma_len(nbits as u64) + nbits - 1
}

/// Length in bits of the unary code for `n`.
#[inline]
pub fn unary_len(n: u64) -> usize {
    n as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitReader, BitWriter};

    #[test]
    fn gamma_len_matches_writer() {
        for n in 1..2000u64 {
            let mut w = BitWriter::new();
            w.write_gamma(n);
            assert_eq!(w.len(), gamma_len(n), "n={n}");
        }
    }

    #[test]
    fn delta_len_matches_writer() {
        for n in (1..5000u64).step_by(7) {
            let mut w = BitWriter::new();
            w.write_delta(n);
            assert_eq!(w.len(), delta_len(n), "n={n}");
        }
    }

    #[test]
    fn unary_len_matches_writer() {
        for n in 0..64u64 {
            let mut w = BitWriter::new();
            w.write_unary(n);
            assert_eq!(w.len(), unary_len(n));
        }
    }

    #[test]
    fn gamma_is_logarithmic() {
        // The property Theorem 10 leans on: chain indices cost O(log i) bits.
        assert_eq!(gamma_len(1), 1);
        assert_eq!(gamma_len(2), 3);
        assert_eq!(gamma_len(1 << 10), 21);
        assert_eq!(gamma_len((1 << 20) - 1), 39);
    }

    #[test]
    fn roundtrip_large_values() {
        for n in [1u64, 2, 63, 64, 65, u32::MAX as u64, u64::MAX / 2] {
            let mut w = BitWriter::new();
            w.write_gamma(n);
            w.write_delta(n);
            let v = w.finish();
            let mut r = BitReader::new(&v);
            assert_eq!(r.read_gamma().unwrap(), n);
            assert_eq!(r.read_delta().unwrap(), n);
        }
    }
}
