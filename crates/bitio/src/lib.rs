//! Bit-exact serialization substrate for reachability labels.
//!
//! The VLDB'12 labeling paper reports *label length in bits* (Figures 17, 19,
//! 21 and 24), and its dynamic-labeling model (Definition 10) requires labels
//! to be assigned online and never modified. This crate provides the two
//! primitives those requirements force on an implementation:
//!
//! * [`BitWriter`] / [`BitReader`] — append-only bit streams with exact
//!   length accounting, so a label's size really is its wire size;
//! * prefix-free universal integer codes ([`codes`]) — chain indices inside
//!   recursive labels `(s, t, i)` are unbounded (they grow with the run), so
//!   they cannot use a fixed width chosen up front; Elias γ/δ codes keep them
//!   `O(log i)` bits while remaining decodable without length prefixes.
//!
//! Fixed-width fields (production ids, cycle ids, port indices) use
//! [`min_width`], the number of bits needed for the largest value the
//! *grammar* (not the run) can produce — a constant for a fixed specification,
//! exactly as assumed by Theorem 10's label-length analysis.

pub mod bits;
pub mod codes;
pub mod reader;
pub mod writer;

pub use bits::BitVec;
pub use reader::{BitReader, ReadError};
pub use writer::BitWriter;

/// Number of bits required to store any value in `0..=max_value` with a
/// fixed-width binary code. `min_width(0) == 0`: a field whose only possible
/// value is zero costs nothing on the wire.
#[inline]
pub fn min_width(max_value: u64) -> u32 {
    64 - max_value.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_width_boundaries() {
        assert_eq!(min_width(0), 0);
        assert_eq!(min_width(1), 1);
        assert_eq!(min_width(2), 2);
        assert_eq!(min_width(3), 2);
        assert_eq!(min_width(4), 3);
        assert_eq!(min_width(7), 3);
        assert_eq!(min_width(8), 4);
        assert_eq!(min_width(u64::MAX), 64);
    }

    #[test]
    fn min_width_roundtrip_contract() {
        // Every value in 0..=max fits in min_width(max) bits.
        for max in [0u64, 1, 5, 16, 255, 1023] {
            let w = min_width(max);
            for v in [0, max / 2, max] {
                if w == 64 {
                    continue;
                }
                assert!(v < (1u64 << w.max(1)) || w == 0, "v={v} max={max} w={w}");
            }
        }
    }
}
