//! Property tests: any sequence of writes reads back verbatim.

use proptest::prelude::*;
use wf_bitio::{BitReader, BitWriter};

#[derive(Debug, Clone)]
enum Field {
    Fixed { value: u64, width: u32 },
    Gamma(u64),
    Delta(u64),
    Unary(u64),
}

fn field_strategy() -> impl Strategy<Value = Field> {
    prop_oneof![
        (0u32..=64).prop_flat_map(|w| {
            let max = if w == 0 {
                0
            } else if w == 64 {
                u64::MAX
            } else {
                (1u64 << w) - 1
            };
            (0..=max).prop_map(move |v| Field::Fixed { value: v, width: w })
        }),
        (1u64..=u64::MAX / 2).prop_map(Field::Gamma),
        (1u64..=u64::MAX / 2).prop_map(Field::Delta),
        (0u64..200).prop_map(Field::Unary),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn writes_read_back(fields in proptest::collection::vec(field_strategy(), 0..40)) {
        let mut w = BitWriter::new();
        for f in &fields {
            match *f {
                Field::Fixed { value, width } => w.write_bits(value, width),
                Field::Gamma(n) => w.write_gamma(n),
                Field::Delta(n) => w.write_delta(n),
                Field::Unary(n) => w.write_unary(n),
            }
        }
        let bits = w.finish();
        let mut r = BitReader::new(&bits);
        for f in &fields {
            match *f {
                Field::Fixed { value, width } => prop_assert_eq!(r.read_bits(width).unwrap(), value),
                Field::Gamma(n) => prop_assert_eq!(r.read_gamma().unwrap(), n),
                Field::Delta(n) => prop_assert_eq!(r.read_delta().unwrap(), n),
                Field::Unary(n) => prop_assert_eq!(r.read_unary().unwrap(), n),
            }
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bit_by_bit_identity(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let mut w = BitWriter::new();
        for &b in &bits {
            w.push_bit(b);
        }
        let v = w.finish();
        prop_assert_eq!(v.len(), bits.len());
        let got: Vec<bool> = v.iter().collect();
        prop_assert_eq!(got, bits);
    }

    #[test]
    fn prefix_free_gamma(a in 1u64..10_000, b in 1u64..10_000) {
        // γ is a prefix code: decoding a stream of two values is unambiguous.
        let mut w = BitWriter::new();
        w.write_gamma(a);
        w.write_gamma(b);
        let v = w.finish();
        let mut r = BitReader::new(&v);
        prop_assert_eq!(r.read_gamma().unwrap(), a);
        prop_assert_eq!(r.read_gamma().unwrap(), b);
        prop_assert_eq!(r.remaining(), 0);
    }
}
