//! The batched query engine tying registry, store and scratch together.

use crate::error::EngineError;
use crate::frozen::{EngineCore, WorkerScratch};
use crate::registry::{ViewId, ViewRef, ViewRegistry};
use crate::store::{ItemId, LabelStore};
use std::io::{Read, Write};
use wf_bitio::{BitReader, BitWriter};
use wf_core::{DataLabel, Fvl, FvlError, VariantKind};
use wf_model::View;
use wf_snapshot::{read_container, spec_fingerprint, write_container, SnapshotError};

/// Section tags inside the snapshot payload (one byte each, in order).
/// `0x01`/`0x02` form a plain engine snapshot; a payload opening with
/// [`SECTION_GENERATION`] or [`SECTION_DELTA`] belongs to the generational
/// stack (`crate::generation`) and is rejected here — the two formats can
/// never be confused for one another.
pub(crate) const SECTION_STORE: u64 = 0x01;
pub(crate) const SECTION_REGISTRY: u64 = 0x02;
pub(crate) const SECTION_GENERATION: u64 = 0x03;
pub(crate) const SECTION_DELTA: u64 = 0x04;

/// A query-serving engine over one [`Fvl`] scheme: many views, one interned
/// label store, one reusable scratch.
///
/// The serving shape the paper's constant-time bound actually pays off in
/// is *many queries against one view* — repository search, lineage
/// tracing, per-view provenance feeds. `QueryEngine` serves that shape
/// allocation-free in steady state: the decode context per view is implicit
/// in the registry, path buffers and matrix scratch live in an engine-owned
/// [`WorkerScratch`], and the chain-power memo is keyed by each compiled
/// label's process-unique uid — so arbitrarily interleaved views stay warm
/// and can never poison one another.
///
/// For multi-core serving, [`QueryEngine::freeze`] yields the immutable,
/// `Sync` half ([`EngineCore`]) which answers queries through `&self` plus
/// a caller-owned [`WorkerScratch`] per thread; [`QueryEngine::par_query_batch`]
/// and [`QueryEngine::par_all_pairs`] are the one-call forms.
pub struct QueryEngine<'a> {
    fvl: &'a Fvl<'a>,
    registry: ViewRegistry,
    store: LabelStore,
    worker: WorkerScratch,
}

impl<'a> QueryEngine<'a> {
    pub fn new(fvl: &'a Fvl<'a>) -> Self {
        Self::with_shard_capacity(fvl, LabelStore::DEFAULT_SHARD_CAPACITY)
    }

    /// [`QueryEngine::new`] over a store of `shard_capacity`-item shards
    /// (see [`LabelStore::with_shard_capacity`]): tiny capacities exercise
    /// shard boundaries in tests, `u32::MAX` reproduces the pre-shard
    /// single-blob store.
    pub fn with_shard_capacity(fvl: &'a Fvl<'a>, shard_capacity: u32) -> Self {
        Self {
            fvl,
            registry: ViewRegistry::new(),
            store: LabelStore::with_shard_capacity(shard_capacity),
            worker: WorkerScratch::new(),
        }
    }

    pub fn fvl(&self) -> &'a Fvl<'a> {
        self.fvl
    }

    pub fn store(&self) -> &LabelStore {
        &self.store
    }

    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    /// Freezes the engine into its immutable serving core: a cheap,
    /// copyable bundle of references that answers queries through `&self`
    /// and a per-thread [`WorkerScratch`]. Registration and compilation
    /// need `&mut self` again, so a frozen core serves a *fixed* set of
    /// compiled views — exactly the steady state of a provenance service.
    pub fn freeze(&self) -> EngineCore<'_> {
        EngineCore::new(self.fvl, &self.registry, &self.store)
    }

    /// Registers a view without compiling any variant yet. Structurally
    /// identical views dedup to the existing id (and its compilations) —
    /// see [`ViewRegistry::add_view`].
    pub fn add_view(&mut self, view: View) -> ViewId {
        self.registry.add_view(view)
    }

    /// Compiles one `(view, variant)` label (idempotent); the returned
    /// handle is what queries are issued against.
    pub fn compile(&mut self, id: ViewId, kind: VariantKind) -> Result<ViewRef, FvlError> {
        self.registry.compile(self.fvl, id, kind)
    }

    /// Register + compile in one step.
    pub fn register_view(&mut self, view: View, kind: VariantKind) -> Result<ViewRef, FvlError> {
        let id = self.registry.add_view(view);
        self.registry.compile(self.fvl, id, kind)
    }

    /// Interns one data label. Panics if the store's dense id space is
    /// exhausted — [`QueryEngine::try_insert_label`] is the non-panicking
    /// form.
    pub fn insert_label(&mut self, d: &DataLabel) -> ItemId {
        self.store.insert(d)
    }

    /// [`QueryEngine::insert_label`] with the capacity contract surfaced
    /// as [`EngineError::StoreFull`] instead of a panic.
    pub fn try_insert_label(&mut self, d: &DataLabel) -> Result<ItemId, EngineError> {
        self.store.try_insert(d)
    }

    /// Interns a run's labels in order (so ids align with `DataId`s).
    pub fn insert_labels(&mut self, labels: &[DataLabel]) -> Vec<ItemId> {
        self.store.insert_all(labels)
    }

    /// Non-panicking [`QueryEngine::insert_labels`]: stops at the first
    /// label that cannot be interned, leaving earlier ones stored. The
    /// error is [`EngineError::BatchStoreFull`], carrying the index of the
    /// failing label so the caller can retry `labels[index..]`.
    pub fn try_insert_labels(&mut self, labels: &[DataLabel]) -> Result<Vec<ItemId>, EngineError> {
        self.store.try_insert_all(labels)
    }

    /// One dependency query: does `b` depend on `a` under the view?
    /// `None` iff either item is invisible in the view. Semantics match
    /// [`Fvl::query`] exactly; only the cost model differs.
    ///
    /// Panics on an uncompiled view or out-of-range item —
    /// [`QueryEngine::try_query`] is the non-panicking form.
    pub fn query(&mut self, view: ViewRef, a: ItemId, b: ItemId) -> Option<bool> {
        self.try_query(view, a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`QueryEngine::query`] with the handle-validity contract surfaced as
    /// a typed [`EngineError`] instead of a panic — for services that
    /// accept view handles or item ids from outside their own process.
    pub fn try_query(
        &mut self,
        view: ViewRef,
        a: ItemId,
        b: ItemId,
    ) -> Result<Option<bool>, EngineError> {
        let core = EngineCore::new(self.fvl, &self.registry, &self.store);
        core.try_query(&mut self.worker, view, a, b)
    }

    /// Answers a batch of pairs into a caller-owned buffer (cleared first);
    /// steady state performs no allocation. One visibility check + π per
    /// pair, context setup and memo warm-up amortized across the batch.
    ///
    /// Panics on an uncompiled view or out-of-range item —
    /// [`QueryEngine::try_query_batch_into`] is the non-panicking form.
    pub fn query_batch_into(
        &mut self,
        view: ViewRef,
        pairs: &[(ItemId, ItemId)],
        out: &mut Vec<Option<bool>>,
    ) {
        self.try_query_batch_into(view, pairs, out).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Typed-error form of [`QueryEngine::query_batch_into`]. The view and
    /// every item are validated before any pair is answered, so on `Err`
    /// the output buffer is left empty, never partially filled.
    pub fn try_query_batch_into(
        &mut self,
        view: ViewRef,
        pairs: &[(ItemId, ItemId)],
        out: &mut Vec<Option<bool>>,
    ) -> Result<(), EngineError> {
        let core = EngineCore::new(self.fvl, &self.registry, &self.store);
        core.try_query_batch_into(&mut self.worker, view, pairs, out)
    }

    /// Allocating convenience form of [`QueryEngine::query_batch_into`].
    pub fn query_batch(&mut self, view: ViewRef, pairs: &[(ItemId, ItemId)]) -> Vec<Option<bool>> {
        let mut out = Vec::with_capacity(pairs.len());
        self.query_batch_into(view, pairs, &mut out);
        out
    }

    /// [`QueryEngine::query_batch`] fanned out across `threads` scoped
    /// worker threads over the frozen core — takes `&self`, not `&mut
    /// self`: parallel serving never mutates the engine. Results are
    /// element-for-element identical to [`QueryEngine::query_batch`] (the
    /// shards are contiguous and merged deterministically).
    pub fn par_query_batch(
        &self,
        view: ViewRef,
        pairs: &[(ItemId, ItemId)],
        threads: usize,
    ) -> Vec<Option<bool>> {
        self.freeze().par_query_batch(view, pairs, threads)
    }

    /// Typed-error form of [`QueryEngine::par_query_batch`].
    pub fn try_par_query_batch(
        &self,
        view: ViewRef,
        pairs: &[(ItemId, ItemId)],
        threads: usize,
    ) -> Result<Vec<Option<bool>>, EngineError> {
        self.freeze().try_par_query_batch(view, pairs, threads)
    }

    /// Sweeps every ordered pair of `items`, collecting the dependent ones
    /// (`query == Some(true)`) into `out` (cleared first).
    ///
    /// Panics on an uncompiled view or out-of-range item.
    pub fn all_pairs_into(
        &mut self,
        view: ViewRef,
        items: &[ItemId],
        out: &mut Vec<(ItemId, ItemId)>,
    ) {
        let core = EngineCore::new(self.fvl, &self.registry, &self.store);
        core.try_all_pairs_into(&mut self.worker, view, items, out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allocating convenience form of [`QueryEngine::all_pairs_into`].
    pub fn all_pairs(&mut self, view: ViewRef, items: &[ItemId]) -> Vec<(ItemId, ItemId)> {
        let mut out = Vec::new();
        self.all_pairs_into(view, items, &mut out);
        out
    }

    /// [`QueryEngine::all_pairs`] sharded by rows across `threads` scoped
    /// workers (`&self`; output order identical to the sequential sweep).
    pub fn par_all_pairs(
        &self,
        view: ViewRef,
        items: &[ItemId],
        threads: usize,
    ) -> Vec<(ItemId, ItemId)> {
        self.freeze().par_all_pairs(view, items, threads)
    }

    /// Scratch diagnostics: (pooled matrices, memoized chain powers).
    pub fn scratch_stats(&self) -> (usize, usize) {
        self.worker.stats()
    }

    /// Persists everything this engine serves from — the interned label
    /// store (trie nodes in creation order, so shared prefixes stay shared
    /// on disk), every registered view and every compiled `ViewLabel`
    /// including the Query-Efficient power caches — under the versioned,
    /// checksummed `wf-snapshot` container. Scratch state (matrix pool,
    /// chain-power memo) is *not* persisted: it is a per-process warm-up
    /// artifact that rebuilds in a handful of queries.
    pub fn save(&self, to: &mut impl Write) -> Result<(), SnapshotError> {
        let mut w = BitWriter::new();
        write_engine_sections(self.fvl, &self.store, &self.registry, &mut w);
        let payload = w.finish();
        let fp = spec_fingerprint(&self.fvl.spec().grammar, self.fvl.prod_graph());
        write_container(to, fp, &payload)
    }

    /// Restores an engine from a snapshot taken by [`QueryEngine::save`]
    /// against the *same* specification (enforced by the header
    /// fingerprint — a snapshot of a different spec is rejected with
    /// [`SnapshotError::SpecMismatch`] before any payload bit is read).
    ///
    /// `ItemId`s and `ViewId`s are stable across save/load: the store's
    /// interning map is rebuilt from the persisted node list in creation
    /// order, and views keep their registration order. Handles are
    /// re-obtained with [`QueryEngine::compile`], which is a cheap lookup
    /// for every `(view, variant)` the snapshot already carries — a warm
    /// start never re-runs labeling, compilation or cycle-finding.
    ///
    /// Truncated, corrupted or version-mismatched input yields a typed
    /// [`SnapshotError`]; this constructor never panics on bad bytes.
    pub fn load(fvl: &'a Fvl<'a>, from: &mut impl Read) -> Result<Self, SnapshotError> {
        let container = read_container(from)?;
        let expected = spec_fingerprint(&fvl.spec().grammar, fvl.prod_graph());
        if container.fingerprint != expected {
            return Err(SnapshotError::SpecMismatch { expected, found: container.fingerprint });
        }
        let mut r = BitReader::new(&container.payload);
        let (store, registry) =
            read_engine_sections(fvl, &mut r, LabelStore::DEFAULT_SHARD_CAPACITY)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed("trailing payload bits"));
        }
        Ok(Self { fvl, registry, store, worker: WorkerScratch::new() })
    }
}

/// The store + registry payload sections shared by [`QueryEngine::save`]
/// and the generational snapshots (`crate::generation`).
pub(crate) fn write_engine_sections(
    fvl: &Fvl<'_>,
    store: &LabelStore,
    registry: &ViewRegistry,
    w: &mut BitWriter,
) {
    w.write_bits(SECTION_STORE, 8);
    store.write_snapshot(fvl.codec(), w);
    w.write_bits(SECTION_REGISTRY, 8);
    registry.write_snapshot(&fvl.spec().grammar, w);
}

/// Inverse of [`write_engine_sections`]. The wire format is shard-agnostic
/// (one merged trie — see [`LabelStore::write_snapshot`]); `shard_capacity`
/// is the layout the loaded store is re-sharded into.
pub(crate) fn read_engine_sections(
    fvl: &Fvl<'_>,
    r: &mut BitReader<'_>,
    shard_capacity: u32,
) -> Result<(LabelStore, ViewRegistry), SnapshotError> {
    expect_section(r, SECTION_STORE)?;
    let store = LabelStore::read_snapshot_with_capacity(
        r,
        fvl.codec(),
        &fvl.spec().grammar,
        fvl.prod_graph(),
        shard_capacity,
    )?;
    expect_section(r, SECTION_REGISTRY)?;
    let registry = ViewRegistry::read_snapshot(r, &fvl.spec().grammar, fvl.prod_graph())?;
    Ok((store, registry))
}

pub(crate) fn expect_section(r: &mut BitReader<'_>, tag: u64) -> Result<(), SnapshotError> {
    if r.read_bits(8)? != tag {
        return Err(SnapshotError::Malformed("unexpected section tag"));
    }
    Ok(())
}
