//! Typed serving-layer errors.

use crate::registry::ViewRef;
use crate::store::ItemId;

/// What can go wrong when issuing a query against an engine: the handle
/// refers to a `(view, variant)` that was never compiled here, or an item
/// id falls outside the interned store. Both are *caller* mistakes — the
/// engine itself never produces invalid handles — so the panicking entry
/// points treat them as bugs, while the `try_*` forms surface them to
/// services that accept handles from untrusted sessions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// The `(view, variant)` pair was registered but never compiled in this
    /// engine (or the id belongs to a different engine).
    ViewNotCompiled { view: ViewRef },
    /// The item id is not an index into this engine's label store.
    ItemOutOfRange { item: ItemId, len: usize },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ViewNotCompiled { view } => {
                write!(f, "view {:?}/{:?} was not compiled in this engine", view.id, view.kind)
            }
            EngineError::ItemOutOfRange { item, len } => {
                write!(f, "item {:?} is out of range for a store of {len} labels", item)
            }
        }
    }
}

impl std::error::Error for EngineError {}
