//! Typed serving-layer errors.

use crate::registry::ViewRef;
use crate::store::ItemId;

/// What can go wrong when issuing a query against (or inserting into) an
/// engine: the handle refers to a `(view, variant)` that was never
/// compiled here, an item id falls outside the interned store, or an
/// insert would exhaust the store's dense id space. The handle errors are
/// *caller* mistakes — the engine itself never produces invalid handles —
/// so the panicking entry points treat them as bugs, while the `try_*`
/// forms surface them to services that accept handles from untrusted
/// sessions (and must survive a full store).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// The `(view, variant)` pair was registered but never compiled in this
    /// engine (or the id belongs to a different engine).
    ViewNotCompiled { view: ViewRef },
    /// The item id is not an index into this engine's label store.
    ItemOutOfRange { item: ItemId, len: usize },
    /// The label store's id space is exhausted: interning one more path
    /// node (or label) would overflow the dense `u32` id range. `what`
    /// names the exhausted table. Unlike the two handle errors above this
    /// is a *capacity* condition — long-lived ingest loops reach it only
    /// near 2³² entries, but a service must see it as a typed error, not a
    /// panic, to fail the one insert and keep serving.
    StoreFull { what: &'static str, capacity: u64 },
    /// [`EngineError::StoreFull`], raised from a batch insert: `index` is
    /// the position within the batch of the label that could not be
    /// stored. Labels before it *are* stored (batch inserts are not
    /// transactional — ids stay dense), so a caller can retry exactly
    /// `labels[index..]` against a fresh store without double-inserting
    /// the prefix.
    BatchStoreFull { index: usize, what: &'static str, capacity: u64 },
    /// A non-blocking `try_push` found the ingest queue full: `queued` ops
    /// are waiting for the publisher. The op was **not** enqueued — the
    /// queue never silently drops — so the producer decides: retry,
    /// shed load, or switch to the blocking `push`. Like
    /// [`EngineError::StoreFull`] this is a capacity condition, not a bug.
    IngestBackpressure { queued: usize },
    /// The ingest queue was closed (pipeline shutting down) before the op
    /// could be enqueued; nothing was accepted.
    IngestClosed,
}

impl EngineError {
    /// Attaches a batch position to a capacity error: `StoreFull` becomes
    /// [`EngineError::BatchStoreFull`] at `index`; every other error (and
    /// an already-indexed one) passes through unchanged.
    pub(crate) fn at_batch_index(self, index: usize) -> Self {
        match self {
            EngineError::StoreFull { what, capacity } => {
                EngineError::BatchStoreFull { index, what, capacity }
            }
            other => other,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ViewNotCompiled { view } => {
                write!(f, "view {:?}/{:?} was not compiled in this engine", view.id, view.kind)
            }
            EngineError::ItemOutOfRange { item, len } => {
                write!(f, "item {:?} is out of range for a store of {len} labels", item)
            }
            EngineError::StoreFull { what, capacity } => {
                write!(f, "label store is full: {what} capacity of {capacity} entries exhausted")
            }
            EngineError::BatchStoreFull { index, what, capacity } => {
                write!(
                    f,
                    "label store is full at batch index {index}: {what} capacity of \
                     {capacity} entries exhausted (earlier labels are stored; retry the rest)"
                )
            }
            EngineError::IngestBackpressure { queued } => {
                write!(
                    f,
                    "ingest queue is full ({queued} ops queued); the op was not enqueued — \
                     retry, shed load, or use the blocking push"
                )
            }
            EngineError::IngestClosed => {
                write!(f, "ingest queue is closed; the pipeline is shutting down")
            }
        }
    }
}

impl std::error::Error for EngineError {}
