//! The generational engine: owned, atomically-published generations that
//! let writes land while reads keep flowing.
//!
//! [`crate::QueryEngine`] and [`crate::EngineCore`] are borrow-chained to
//! one [`Fvl`] on one stack frame: correct, fast — and *static*. Any
//! mutation (a new view, freshly labeled items) needs `&mut` access, which
//! invalidates every frozen reader; a serving process would have to stop
//! the world to grow. Real provenance stores never stop growing: runs are
//! append-heavy, and views accrete as users search and refine them.
//!
//! The split here is RCU-shaped — readers pay nothing, writers pay copies:
//!
//! * [`EngineGeneration`] — one immutable, *owned* engine state: shared
//!   scheme ([`Fvl::from_arc`], so no borrow chain), view registry, label
//!   store, and a sequence number. `Send + Sync` is a compile-checked
//!   invariant; a generation answers queries through `&self` exactly like
//!   the frozen core (it *is* one, via [`EngineGeneration::core`]).
//! * [`EngineWriter`] — the single writer. Mutations stage against a lazy
//!   copy-on-write clone of the base generation (registry clones are
//!   refcount bumps per compiled label; the store clone is a refcount bump
//!   per *shard*, and staging un-shares only the tail shards an insert
//!   batch lands in — see [`LabelStore`]), so nothing a reader can see is
//!   ever mutated in place, and the cost of a publish cycle tracks the
//!   *increment*, not the store size.
//! * [`LiveEngine`] — the publication point. `publish` swaps the current
//!   `Arc<EngineGeneration>` under a `std::sync::Mutex` (publishes are
//!   rare); readers obtain the current generation with a **lock-free fast
//!   path** — an atomic seqno check against a thread-local cache, then a
//!   lock-free `Arc` clone — and fall back to the brief mutex only on the
//!   first read after a publish. In-flight readers simply finish on the
//!   generation they hold; its memory is reclaimed when the last `Arc`
//!   drops. No reader ever blocks a writer, and a writer never blocks the
//!   query path.
//!
//! Persistence is generation-aware: [`EngineGeneration::save`] writes a
//! full base snapshot, [`EngineWriter::publish_with_delta`] appends a
//! *delta record* (just what this publish added) to the same stream, and
//! [`EngineGeneration::replay`] warm-starts by reading base ‖ delta ‖ …
//! until end of stream — restart cost proportional to what changed, not to
//! the store.

use crate::engine::{
    expect_section, read_engine_sections, write_engine_sections, SECTION_DELTA, SECTION_GENERATION,
};
use crate::error::EngineError;
use crate::frozen::{EngineCore, WorkerScratch};
use crate::registry::{ViewId, ViewRef, ViewRegistry};
use crate::staging::StagedState;
use crate::store::{ItemId, LabelStore};
use std::cell::RefCell;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use wf_bitio::{BitReader, BitWriter};
use wf_core::{DataLabel, Fvl, FvlError, VariantKind};
use wf_model::View;
use wf_snapshot::{
    oplog::{self, OplogOp},
    read_container, read_container_opt, read_label, spec_fingerprint, write_container,
    SnapshotError,
};

/// One immutable, owned engine state: everything the read path needs, with
/// no borrow reaching outside the `Arc` it is published in.
pub struct EngineGeneration {
    fvl: Arc<Fvl<'static>>,
    registry: ViewRegistry,
    store: LabelStore,
    seqno: u64,
}

// The whole point of owning the parts: a generation crosses threads freely
// behind its `Arc`, and `LiveEngine` is shared by every reader and the
// writer. If any field ever gains a borrow or interior mutability that
// breaks this, the build fails here.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<EngineGeneration>();
    shared_across_threads::<LiveEngine>();
};

impl EngineGeneration {
    /// The empty first generation (seqno 0): no items, no views. Mutations
    /// flow through an [`EngineWriter`] from here.
    pub fn empty(fvl: Arc<Fvl<'static>>) -> Self {
        Self::empty_with_shard_capacity(fvl, LabelStore::DEFAULT_SHARD_CAPACITY)
    }

    /// [`EngineGeneration::empty`] over a store of `shard_capacity`-item
    /// shards (see [`LabelStore::with_shard_capacity`]). The capacity is
    /// inherited by every later generation of the chain: staging clones the
    /// store, and the clone keeps its layout.
    pub fn empty_with_shard_capacity(fvl: Arc<Fvl<'static>>, shard_capacity: u32) -> Self {
        Self {
            fvl,
            registry: ViewRegistry::new(),
            store: LabelStore::with_shard_capacity(shard_capacity),
            seqno: 0,
        }
    }

    pub fn fvl(&self) -> &Arc<Fvl<'static>> {
        &self.fvl
    }

    /// The generation's position in the publish chain (0 = empty origin;
    /// each publish increments by exactly one).
    pub fn seqno(&self) -> u64 {
        self.seqno
    }

    pub fn store(&self) -> &LabelStore {
        &self.store
    }

    pub fn registry(&self) -> &ViewRegistry {
        &self.registry
    }

    /// The generation as a frozen serving core — the same lock-free,
    /// `Sync`, `&self` read path [`crate::QueryEngine::freeze`] yields,
    /// including the `par_*` fan-outs. Building one is free.
    pub fn core(&self) -> EngineCore<'_> {
        EngineCore::new(self.fvl.as_ref(), &self.registry, &self.store)
    }

    /// One dependency query against this generation (typed-error form).
    pub fn try_query(
        &self,
        ws: &mut WorkerScratch,
        view: ViewRef,
        a: ItemId,
        b: ItemId,
    ) -> Result<Option<bool>, EngineError> {
        self.core().try_query(ws, view, a, b)
    }

    /// A batch of pairs answered against this generation (allocating
    /// convenience; panics on bad handles like [`crate::QueryEngine`]).
    pub fn query_batch(
        &self,
        ws: &mut WorkerScratch,
        view: ViewRef,
        pairs: &[(ItemId, ItemId)],
    ) -> Vec<Option<bool>> {
        let mut out = Vec::with_capacity(pairs.len());
        self.core()
            .try_query_batch_into(ws, view, pairs, &mut out)
            .unwrap_or_else(|e| panic!("{e}"));
        out
    }

    /// Every dependent ordered pair of `items` under `view` (row-major).
    pub fn all_pairs(
        &self,
        ws: &mut WorkerScratch,
        view: ViewRef,
        items: &[ItemId],
    ) -> Vec<(ItemId, ItemId)> {
        let mut out = Vec::new();
        self.core().try_all_pairs_into(ws, view, items, &mut out).unwrap_or_else(|e| panic!("{e}"));
        out
    }

    fn fingerprint(&self) -> u64 {
        spec_fingerprint(&self.fvl.spec().grammar, self.fvl.prod_graph())
    }

    /// Persists this generation as a *base* snapshot: seqno, then the same
    /// store + registry sections a [`crate::QueryEngine`] snapshot carries,
    /// under the versioned, checksummed container. Delta records appended
    /// to the same stream by [`EngineWriter::publish_with_delta`] chain
    /// onto it; [`EngineGeneration::replay`] restores the latest state.
    pub fn save(&self, to: &mut impl Write) -> Result<(), SnapshotError> {
        let mut w = BitWriter::new();
        w.write_bits(SECTION_GENERATION, 8);
        w.write_gamma(self.seqno + 1);
        write_engine_sections(&self.fvl, &self.store, &self.registry, &mut w);
        write_container(to, self.fingerprint(), &w.finish())
    }

    /// Restores one base snapshot written by [`EngineGeneration::save`]
    /// (stopping at its end — see [`EngineGeneration::replay`] for the
    /// base-plus-deltas form).
    pub fn load(fvl: Arc<Fvl<'static>>, from: &mut impl Read) -> Result<Self, SnapshotError> {
        Self::load_with_shard_capacity(fvl, from, LabelStore::DEFAULT_SHARD_CAPACITY)
    }

    /// [`EngineGeneration::load`] re-sharding the store at `shard_capacity`
    /// — the wire format carries no layout (see
    /// [`LabelStore::write_snapshot`]), so a stream saved at any capacity
    /// (including pre-shard streams) loads at any other.
    pub fn load_with_shard_capacity(
        fvl: Arc<Fvl<'static>>,
        from: &mut impl Read,
        shard_capacity: u32,
    ) -> Result<Self, SnapshotError> {
        let container = read_container(from)?;
        let expected = spec_fingerprint(&fvl.spec().grammar, fvl.prod_graph());
        if container.fingerprint != expected {
            return Err(SnapshotError::SpecMismatch { expected, found: container.fingerprint });
        }
        let mut r = BitReader::new(&container.payload);
        expect_section(&mut r, SECTION_GENERATION)?;
        let seqno = r.read_gamma()? - 1;
        let (store, registry) = read_engine_sections(&fvl, &mut r, shard_capacity)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed("trailing payload bits"));
        }
        Ok(Self { fvl, registry, store, seqno })
    }

    /// Warm restart from an append-only stream: one base snapshot followed
    /// by any number of delta records, replayed in order. Each delta must
    /// chain exactly onto the generation before it (consecutive seqnos
    /// against the same spec fingerprint); gaps, reordering and every form
    /// of corruption are rejected with typed errors. Returns the newest
    /// generation — hand it to [`LiveEngine::new`] and serving resumes
    /// where the last publish left off.
    pub fn replay(
        fvl: Arc<Fvl<'static>>,
        from: &mut impl Read,
    ) -> Result<EngineGeneration, SnapshotError> {
        Self::replay_with_shard_capacity(fvl, from, LabelStore::DEFAULT_SHARD_CAPACITY)
    }

    /// [`EngineGeneration::replay`] re-sharding at `shard_capacity` (see
    /// [`EngineGeneration::load_with_shard_capacity`]); the deltas replay
    /// into the re-sharded store, crossing its boundaries wherever the ids
    /// land.
    pub fn replay_with_shard_capacity(
        fvl: Arc<Fvl<'static>>,
        from: &mut impl Read,
        shard_capacity: u32,
    ) -> Result<EngineGeneration, SnapshotError> {
        let mut gen = Self::load_with_shard_capacity(fvl, from, shard_capacity)?;
        let expected = gen.fingerprint();
        while let Some(container) = read_container_opt(from)? {
            if container.fingerprint != expected {
                return Err(SnapshotError::SpecMismatch { expected, found: container.fingerprint });
            }
            let mut r = BitReader::new(&container.payload);
            gen = gen.apply_delta(&mut r)?;
            if r.remaining() != 0 {
                return Err(SnapshotError::Malformed("trailing payload bits"));
            }
        }
        Ok(gen)
    }

    /// Applies one decoded delta record, yielding the successor generation.
    /// The payload is the op-log framing ([`wf_snapshot::oplog`]): the
    /// increment as typed ops in the order the publisher applied them.
    /// Replay reproduces exactly what was staged: labels re-intern into
    /// the same dense ids, views re-register (structural dedup makes that
    /// deterministic) and must land on their recorded ids, and compiled
    /// labels install into empty slots only.
    pub(crate) fn apply_delta(
        &self,
        r: &mut BitReader<'_>,
    ) -> Result<EngineGeneration, SnapshotError> {
        expect_section(r, SECTION_DELTA)?;
        let base = r.read_gamma()? - 1;
        let seqno = r.read_gamma()? - 1;
        if base != self.seqno || seqno != self.seqno + 1 {
            return Err(SnapshotError::Malformed("delta does not chain onto this generation"));
        }
        let grammar = &self.fvl.spec().grammar;
        let pg = self.fvl.prod_graph();
        let cycles =
            pg.cycles().map_err(|_| SnapshotError::Malformed("spec has no cycle tables"))?;
        let mut store = self.store.clone();
        let mut registry = self.registry.clone();

        let op_count = (r.read_gamma()? - 1) as usize;
        for _ in 0..op_count {
            match oplog::read_op(r, grammar, pg)? {
                OplogOp::InsertLabels { count } => {
                    for _ in 0..count {
                        let d = read_label(r, self.fvl.codec(), grammar, cycles)?;
                        store.try_insert(&d).map_err(|_| {
                            SnapshotError::Malformed("label store overflow during replay")
                        })?;
                    }
                }
                OplogOp::AddView { id, view } => {
                    if registry.add_view(view).0 != id {
                        return Err(SnapshotError::Malformed("view id drift during delta replay"));
                    }
                }
                OplogOp::CompileView { id, label } => {
                    registry.adopt_compiled(ViewId(id), label)?;
                }
            }
        }
        Ok(EngineGeneration { fvl: self.fvl.clone(), registry, store, seqno })
    }
}

/// The single-producer façade over the staging core (the crate-private
/// `StagedState`) — one thread mutating, publishing, and optionally
/// persisting a generation chain directly.
///
/// Mutations stage against a lazy copy-on-write clone of the base
/// generation — the first mutation after a publish pays the clone, and
/// readers of the published generations are never affected. `publish`
/// freezes the staged state into the next [`EngineGeneration`] and swaps
/// it into a [`LiveEngine`]; the writer then continues from the new base.
///
/// Concurrent producers do not share an `EngineWriter`: they feed an
/// [`crate::IngestQueue`] and the pipeline's publisher drives one writer
/// on their behalf ([`crate::IngestPipeline`]) — same staging core, same
/// publish path, same delta records, so a single-producer chain and a
/// multi-producer one are indistinguishable on disk and on replay.
///
/// Ids are stable across publishes: an [`ItemId`] or [`ViewRef`] handed
/// out while staging is valid in the generation that publish produces and
/// in every later one (the store and registry only grow).
pub struct EngineWriter {
    base: Arc<EngineGeneration>,
    staged: Option<StagedState>,
}

impl EngineWriter {
    /// A writer continuing the chain from `base` (freshly built, loaded,
    /// or the result of an earlier publish).
    pub fn new(base: Arc<EngineGeneration>) -> Self {
        Self { base, staged: None }
    }

    /// A writer starting a brand-new chain from the empty generation.
    pub fn from_fvl(fvl: Arc<Fvl<'static>>) -> Self {
        Self::new(Arc::new(EngineGeneration::empty(fvl)))
    }

    /// [`EngineWriter::from_fvl`] with an explicit store shard capacity
    /// (see [`EngineGeneration::empty_with_shard_capacity`]).
    pub fn from_fvl_with_shard_capacity(fvl: Arc<Fvl<'static>>, shard_capacity: u32) -> Self {
        Self::new(Arc::new(EngineGeneration::empty_with_shard_capacity(fvl, shard_capacity)))
    }

    /// The generation this writer's staged changes build on (the most
    /// recently published one, once anything was published).
    pub fn base(&self) -> &Arc<EngineGeneration> {
        &self.base
    }

    /// Whether anything is staged and unpublished.
    pub fn has_staged_changes(&self) -> bool {
        self.staged.is_some()
    }

    fn staged(&mut self) -> &mut StagedState {
        self.staged.get_or_insert_with(|| StagedState::from_base(&self.base))
    }

    /// Stages one data label; the returned id is valid from the next
    /// publish on. Panicking on a full store, like
    /// [`crate::QueryEngine::insert_label`].
    pub fn insert_label(&mut self, d: &DataLabel) -> ItemId {
        self.try_insert_label(d).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Typed-error form of [`EngineWriter::insert_label`]. The staged
    /// store is the single copy of the label — the delta writer
    /// re-materializes the `base.len()..staged.len()` id range on demand,
    /// so heavy ingest never pays double storage for its increment.
    pub fn try_insert_label(&mut self, d: &DataLabel) -> Result<ItemId, EngineError> {
        self.staged().try_insert(d)
    }

    /// Stages a slice of labels in order.
    pub fn insert_labels(&mut self, labels: &[DataLabel]) -> Vec<ItemId> {
        labels.iter().map(|d| self.insert_label(d)).collect()
    }

    /// Non-panicking [`EngineWriter::insert_labels`]: stops at the first
    /// label that cannot be staged, leaving the earlier ones staged. The
    /// error is [`EngineError::BatchStoreFull`] with the failing label's
    /// batch index, so the caller can retry `labels[index..]`.
    pub fn try_insert_labels(&mut self, labels: &[DataLabel]) -> Result<Vec<ItemId>, EngineError> {
        self.staged().try_insert_all(labels)
    }

    /// Stages a view registration (structural dedup applies: re-adding a
    /// known view returns its existing id and stages nothing).
    pub fn add_view(&mut self, view: View) -> ViewId {
        self.staged().add_view(view)
    }

    /// Stages the compilation of `(id, kind)` (idempotent across the whole
    /// chain: a label compiled in any earlier generation is reused).
    pub fn compile(&mut self, id: ViewId, kind: VariantKind) -> Result<ViewRef, FvlError> {
        let fvl = self.base.fvl.clone();
        self.staged().compile(&fvl, id, kind)
    }

    /// Register + compile in one step.
    pub fn register_view(&mut self, view: View, kind: VariantKind) -> Result<ViewRef, FvlError> {
        let id = self.add_view(view);
        self.compile(id, kind)
    }

    fn freeze_staged(&mut self, st: StagedState) -> Arc<EngineGeneration> {
        let gen = Arc::new(EngineGeneration {
            fvl: self.base.fvl.clone(),
            registry: st.registry,
            store: st.store,
            seqno: self.base.seqno + 1,
        });
        self.base = gen.clone();
        gen
    }

    /// Freezes the staged state into the next generation and publishes it
    /// on `live`. In-flight readers finish on their old generation; new
    /// reads see this one. With nothing staged this is a no-op returning
    /// the current base (publishing an unchanged state would only churn
    /// reader caches).
    pub fn publish(&mut self, live: &LiveEngine) -> Arc<EngineGeneration> {
        match self.staged.take() {
            None => self.base.clone(),
            Some(st) => {
                let gen = self.freeze_staged(st);
                live.publish(gen.clone());
                gen
            }
        }
    }

    /// [`EngineWriter::publish`] that first appends a delta record — what
    /// this publish added, nothing more — to `out`. Appending every
    /// publish to the stream that starts with a base
    /// [`EngineGeneration::save`] keeps an on-disk replica that
    /// [`EngineGeneration::replay`] can warm-start from at any moment; the
    /// write happens *before* the swap, so a crash between the two loses
    /// the publish, never the stream. On `Err` nothing is consumed: the
    /// staged state stays intact for a retry, no generation is published,
    /// and the record was handed to `out` as one buffered `write_all` (a
    /// sink that accepts writes atomically — or is truncated back to the
    /// last record boundary on recovery — keeps the stream replayable).
    pub fn publish_with_delta(
        &mut self,
        live: &LiveEngine,
        out: &mut impl Write,
    ) -> Result<Arc<EngineGeneration>, SnapshotError> {
        if self.staged.is_none() {
            return Ok(self.base.clone());
        }
        let record = self.delta_record()?;
        out.write_all(&record)?;
        let st = self.staged.take().expect("staged presence checked above");
        let gen = self.freeze_staged(st);
        live.publish(gen.clone());
        Ok(gen)
    }

    /// The staged increment as `(next_seqno, delta_record)` without
    /// consuming it — the durable pipeline appends the record (with
    /// retries) to its op-log *before* committing the publish, so the
    /// fsync is the acknowledgement barrier. `None` with nothing staged.
    pub(crate) fn staged_record(&self) -> Option<Result<(u64, Vec<u8>), SnapshotError>> {
        self.staged.as_ref()?;
        Some(self.delta_record().map(|record| (self.base.seqno + 1, record)))
    }

    /// Serializes the staged increment into one container-framed delta
    /// record — the op-log of this publish, in application order
    /// (borrowing the staged state — nothing is consumed).
    fn delta_record(&self) -> Result<Vec<u8>, SnapshotError> {
        let st = self.staged.as_ref().expect("caller checked staged presence");
        let fvl = &self.base.fvl;
        let mut w = BitWriter::new();
        w.write_bits(SECTION_DELTA, 8);
        st.write_delta(fvl, self.base.seqno, &mut w);
        let fp = spec_fingerprint(&fvl.spec().grammar, fvl.prod_graph());
        let mut record = Vec::new();
        write_container(&mut record, fp, &w.finish())?;
        Ok(record)
    }
}

/// Global id source for [`LiveEngine`]s — what keys the thread-local
/// reader cache, so generations of distinct live engines can never be
/// confused for one another.
static NEXT_LIVE_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread reader cache: `(live engine id, seqno, generation)` of
    /// the last generation this thread read. One entry suffices — a thread
    /// serving one live engine (the overwhelmingly common shape) hits it
    /// every time; alternating between several live engines falls back to
    /// the brief mutex path, never to wrong answers.
    static READER_CACHE: RefCell<Option<(u64, u64, Arc<EngineGeneration>)>> =
        const { RefCell::new(None) };
}

/// The publication point readers poll and the writer swaps.
///
/// Reads are wait-free in steady state: one atomic load, one thread-local
/// compare, one lock-free `Arc` refcount bump. The `Mutex` is touched only
/// by `publish` (rare by construction) and by the first read after a
/// publish — and it guards nothing but the pointer swap, so even that read
/// blocks for nanoseconds, never for the duration of anyone's query.
pub struct LiveEngine {
    id: u64,
    seq: AtomicU64,
    current: Mutex<Arc<EngineGeneration>>,
}

impl LiveEngine {
    pub fn new(initial: Arc<EngineGeneration>) -> Self {
        Self {
            id: NEXT_LIVE_ID.fetch_add(1, Ordering::Relaxed),
            seq: AtomicU64::new(initial.seqno),
            current: Mutex::new(initial),
        }
    }

    /// The seqno of the most recently published generation.
    pub fn seqno(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// The current generation via the mutex (no thread-local involvement;
    /// diagnostics and single-shot callers).
    pub fn snapshot(&self) -> Arc<EngineGeneration> {
        self.current.lock().expect("live engine mutex poisoned").clone()
    }

    /// The current generation via the lock-free fast path. Always returns
    /// *some published* generation; immediately after a publish it may be
    /// the previous one (a reader that must observe its own writer's
    /// publish should use [`LiveEngine::snapshot`]).
    ///
    /// The thread-local cache retains one `Arc` per thread until that
    /// thread's next `read` — an idle reader thread therefore keeps at
    /// most one old generation alive, a deliberate trade for a read path
    /// with no locks and no reclamation machinery.
    pub fn read(&self) -> Arc<EngineGeneration> {
        let seq = self.seq.load(Ordering::Acquire);
        let hit = READER_CACHE.with(|c| match &*c.borrow() {
            Some((id, s, gen)) if *id == self.id && *s == seq => Some(gen.clone()),
            _ => None,
        });
        if let Some(gen) = hit {
            return gen;
        }
        let gen = self.snapshot();
        READER_CACHE.with(|c| *c.borrow_mut() = Some((self.id, gen.seqno, gen.clone())));
        gen
    }

    /// Atomically replaces the current generation. Readers holding the old
    /// generation finish undisturbed; new reads see `gen`. Panics if `gen`
    /// does not advance the chain (a writer bug, not an input).
    pub fn publish(&self, gen: Arc<EngineGeneration>) {
        let mut cur = self.current.lock().expect("live engine mutex poisoned");
        assert!(
            gen.seqno > cur.seqno,
            "published generations must have strictly increasing seqnos ({} -> {})",
            cur.seqno,
            gen.seqno
        );
        *cur = gen;
        self.seq.store(cur.seqno, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;
    use wf_run::fixtures::figure3_run;

    fn shared_fvl() -> Arc<Fvl<'static>> {
        let ex = paper_example();
        Arc::new(Fvl::from_arc(Arc::new(ex.spec.clone())).unwrap())
    }

    #[test]
    fn writer_stages_and_publishes_without_disturbing_readers() {
        let ex = paper_example();
        let fvl = shared_fvl();
        let (run, ids) = figure3_run(&ex);
        let labels = Fvl::new(&ex.spec).unwrap().labeler(&run).labels().to_vec();

        let mut writer = EngineWriter::from_fvl(fvl);
        let items = writer.insert_labels(&labels);
        let u2 = writer.register_view(ex.view_u2(), VariantKind::Default).unwrap();
        let live = LiveEngine::new(writer.base().clone());
        assert_eq!(live.seqno(), 0, "nothing published yet");
        let g1 = writer.publish(&live);
        assert_eq!(g1.seqno(), 1);
        assert_eq!(live.seqno(), 1);

        // Example 8 answered by the published generation.
        let mut ws = WorkerScratch::new();
        let (d17, d31) = (items[ids.d17.0 as usize], items[ids.d31.0 as usize]);
        let old = live.read();
        assert_eq!(old.try_query(&mut ws, u2, d17, d31).unwrap(), Some(true));

        // Stage + publish a second view; the held generation is unchanged.
        let u1 = writer.register_view(ex.view_u1(), VariantKind::Default).unwrap();
        let g2 = writer.publish(&live);
        assert_eq!(g2.seqno(), 2);
        assert_eq!(old.seqno(), 1, "readers keep their generation across publishes");
        assert!(old.registry().label(u1).is_none(), "old generation never sees new views");
        let new = live.read();
        assert_eq!(new.seqno(), 2);
        assert_eq!(new.try_query(&mut ws, u1, d17, d31).unwrap(), Some(false));
        assert_eq!(new.try_query(&mut ws, u2, d17, d31).unwrap(), Some(true));

        // Publishing with nothing staged is a no-op.
        assert!(!writer.has_staged_changes());
        let g2b = writer.publish(&live);
        assert_eq!(g2b.seqno(), 2);
        assert_eq!(live.seqno(), 2);
    }

    #[test]
    fn read_fast_path_tracks_publishes() {
        let fvl = shared_fvl();
        let mut writer = EngineWriter::from_fvl(fvl);
        let live = LiveEngine::new(writer.base().clone());
        // Warm the thread-local cache, then publish and read again: the
        // fast path must move to the new generation (seqno check), and a
        // repeated read must hit the cache (same Arc).
        let a = live.read();
        assert_eq!(a.seqno(), 0);
        let ex = paper_example();
        writer.add_view(ex.view_u1());
        writer.publish(&live);
        let b = live.read();
        assert_eq!(b.seqno(), 1);
        let c = live.read();
        assert!(Arc::ptr_eq(&b, &c), "cached fast path returns the same generation");
    }

    #[test]
    fn compile_reuses_labels_across_generations() {
        let ex = paper_example();
        let fvl = shared_fvl();
        let mut writer = EngineWriter::from_fvl(fvl);
        let v = writer.register_view(ex.view_u1(), VariantKind::Default).unwrap();
        let live = LiveEngine::new(writer.base().clone());
        let g1 = writer.publish(&live);
        let uid1 = g1.registry().label(v).unwrap().uid();
        // A later generation that recompiles the same pair shares the
        // compiled label (same uid — scratch memos stay warm and sound).
        writer.add_view(ex.view_u2());
        let v_again = writer.compile(v.id, VariantKind::Default).unwrap();
        assert_eq!(v_again, v);
        let g2 = writer.publish(&live);
        assert_eq!(g2.registry().label(v).unwrap().uid(), uid1);
    }
}
