//! Self-healing recovery and background compaction over the durable
//! op-log (`wf_snapshot::durable`).
//!
//! The persisted shape is the familiar `base ‖ delta ‖ …` replay stream
//! (PR 5), split across two files: a base snapshot and an append-only
//! frame log, each frame wrapping one publish's delta record tagged with
//! its seqno. [`DurableEngine::open`] is the recovery reader:
//!
//! 1. the log layer scans to the last intact frame and truncates a torn
//!    tail (mid-stream damage stays a hard
//!    [`SnapshotError::LogCorrupted`]);
//! 2. frames whose `seq` tag is ≤ the base's seqno are *stale* — already
//!    folded into the base by a compaction whose log rewrite a crash
//!    interrupted — and are skipped without decoding;
//! 3. the rest replay in order through the same chain-checked
//!    `apply_delta` path a warm restart uses, and each frame's tag must
//!    match the seqno its delta produces.
//!
//! Compaction rewrites the replayed head into a fresh base (write-temp →
//! fsync → rename, both files) and drops the covered frames. The
//! expensive half — serializing the current generation — runs against an
//! immutable `Arc<EngineGeneration>` with **no lock held**, so producers
//! keep appending and readers keep answering; only the brief file swap
//! itself serializes with appends. Crash at any point leaves the old
//! base (full log intact) or the new base (stale head skipped): never
//! neither — see DESIGN.md §12 for the full crash matrix.

use crate::generation::{EngineGeneration, LiveEngine};
use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use wf_bitio::BitReader;
use wf_core::Fvl;
use wf_snapshot::{read_container, spec_fingerprint, DurableLog, SnapshotError, Storage};

/// What [`DurableEngine::open`] found, healed and replayed.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Seqno the base snapshot covered (0 for a fresh store).
    pub base_seqno: u64,
    /// Seqno serving resumes at (base + replayed frames).
    pub recovered_seqno: u64,
    /// Frames decoded and applied on top of the base.
    pub replayed_frames: u64,
    /// Frames skipped because the base already covered them (evidence of
    /// a crash between compaction's base rename and its log rewrite).
    pub stale_frames: u64,
    /// Torn-tail bytes truncated away (unacknowledged by construction).
    pub dropped_bytes: u64,
}

/// Log size after an append — what the publisher feeds the
/// [`CompactionPolicy`].
#[derive(Clone, Copy, Debug)]
pub struct LogStatus {
    /// Bytes currently in the op-log.
    pub bytes: u64,
    /// Frames currently in the op-log.
    pub frames: u64,
}

/// One compaction's outcome.
#[derive(Clone, Copy, Debug)]
pub struct CompactionStats {
    /// The seqno the new base covers.
    pub covered_seqno: u64,
    /// Log bytes reclaimed by dropping covered frames.
    pub reclaimed_bytes: u64,
    /// Log size after the rewrite.
    pub log: LogStatus,
}

/// When the publisher asks the background driver to compact: as soon as
/// the op-log exceeds either bound, replay cost is deemed too high and
/// the replayed head is folded into a fresh base.
#[derive(Clone, Copy, Debug)]
pub struct CompactionPolicy {
    /// Compact once the log holds this many bytes.
    pub max_log_bytes: u64,
    /// Compact once the log holds this many frames (publishes).
    pub max_log_frames: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self { max_log_bytes: 8 << 20, max_log_frames: 512 }
    }
}

impl CompactionPolicy {
    /// Whether a log of this size should be compacted.
    pub fn due(&self, log: LogStatus) -> bool {
        log.bytes >= self.max_log_bytes || log.frames >= self.max_log_frames
    }
}

/// Serialize `gen` into base-snapshot bytes — the slow half of a
/// compaction, deliberately a free function over `&EngineGeneration` so
/// callers run it *without* holding the [`DurableEngine`] lock.
pub fn serialize_base(gen: &EngineGeneration) -> Result<Vec<u8>, SnapshotError> {
    let mut bytes = Vec::new();
    gen.save(&mut bytes)?;
    Ok(bytes)
}

/// The engine's handle on its durable storage: a recovered
/// [`DurableLog`] plus the seqno bookkeeping that keeps appends chained
/// and compactions monotone.
pub struct DurableEngine {
    log: DurableLog,
    base_seqno: u64,
    last_seqno: u64,
}

impl DurableEngine {
    /// Open (or bootstrap) a durable store and recover the newest
    /// generation from it. A fresh directory gets an empty base written
    /// immediately, so every subsequent state is reachable from disk; an
    /// op-log without any base is rejected as malformed.
    pub fn open(
        fvl: Arc<Fvl<'static>>,
        storage: Box<dyn Storage>,
        shard_capacity: u32,
    ) -> Result<(Self, Arc<EngineGeneration>, RecoveryReport), SnapshotError> {
        let (mut log, opened) = DurableLog::open(storage)?;
        let base_bytes = match opened.base {
            Some(bytes) => bytes,
            None => {
                if !opened.records.is_empty() {
                    return Err(SnapshotError::Malformed("op-log present without a base snapshot"));
                }
                let empty = EngineGeneration::empty_with_shard_capacity(fvl, shard_capacity);
                let bytes = serialize_base(&empty)?;
                log.install_base(&bytes, 0)?;
                let durable = Self { log, base_seqno: 0, last_seqno: 0 };
                return Ok((durable, Arc::new(empty), RecoveryReport::default()));
            }
        };

        let mut gen = EngineGeneration::load_with_shard_capacity(
            fvl.clone(),
            &mut &base_bytes[..],
            shard_capacity,
        )?;
        let base_seqno = gen.seqno();
        let expected = spec_fingerprint(&fvl.spec().grammar, fvl.prod_graph());
        let mut report = RecoveryReport {
            base_seqno,
            recovered_seqno: base_seqno,
            dropped_bytes: opened.dropped_bytes,
            ..RecoveryReport::default()
        };
        for (seq, payload) in &opened.records {
            if *seq <= base_seqno {
                report.stale_frames += 1;
                continue;
            }
            let container = read_container(&mut &payload[..])?;
            if container.fingerprint != expected {
                return Err(SnapshotError::SpecMismatch { expected, found: container.fingerprint });
            }
            let mut r = BitReader::new(&container.payload);
            gen = gen.apply_delta(&mut r)?;
            if r.remaining() != 0 {
                return Err(SnapshotError::Malformed("trailing payload bits"));
            }
            if gen.seqno() != *seq {
                return Err(SnapshotError::Malformed("frame seq tag does not match its delta"));
            }
            report.replayed_frames += 1;
        }
        report.recovered_seqno = gen.seqno();
        let durable = Self { log, base_seqno, last_seqno: gen.seqno() };
        Ok((durable, Arc::new(gen), report))
    }

    /// Append one publish's delta record under its seqno and fsync — the
    /// acknowledgement barrier. `Ok` means the record survives any crash
    /// from here on.
    pub fn append(&mut self, seqno: u64, record: &[u8]) -> io::Result<LogStatus> {
        debug_assert_eq!(seqno, self.last_seqno + 1, "appends must chain");
        self.log.append(seqno, record)?;
        self.last_seqno = seqno;
        Ok(self.status())
    }

    /// Commit a compaction: atomically install `base` (covering every
    /// publish through `covered_seqno`), then drop the covered frames
    /// from the log. No-op (`None`) if an installed base already covers
    /// `covered_seqno` — a stale trigger, not an error.
    pub fn install_base(
        &mut self,
        base: &[u8],
        covered_seqno: u64,
    ) -> io::Result<Option<CompactionStats>> {
        if covered_seqno <= self.base_seqno {
            return Ok(None);
        }
        let reclaimed = self.log.install_base(base, covered_seqno)?;
        self.base_seqno = covered_seqno;
        self.last_seqno = self.last_seqno.max(covered_seqno);
        Ok(Some(CompactionStats { covered_seqno, reclaimed_bytes: reclaimed, log: self.status() }))
    }

    /// Current log size.
    pub fn status(&self) -> LogStatus {
        LogStatus { bytes: self.log.log_bytes(), frames: self.log.frames() }
    }

    /// Seqno the installed base covers.
    pub fn base_seqno(&self) -> u64 {
        self.base_seqno
    }

    /// Seqno of the newest durable publish.
    pub fn last_seqno(&self) -> u64 {
        self.last_seqno
    }
}

/// A shared, poison-tolerant handle on a [`DurableEngine`] — the
/// publisher appends through it while the [`CompactionDriver`] swaps
/// bases behind it.
pub type SharedDurable = Arc<Mutex<DurableEngine>>;

/// Wrap a recovered engine for pipeline use.
pub fn shared_durable(engine: DurableEngine) -> SharedDurable {
    Arc::new(Mutex::new(engine))
}

/// Lock a [`SharedDurable`] even if a previous holder panicked: the
/// on-disk state is always an append prefix plus atomic swaps, so the
/// worst a poisoned counter can do is mistime a compaction trigger.
pub fn lock_durable(durable: &SharedDurable) -> std::sync::MutexGuard<'_, DurableEngine> {
    durable.lock().unwrap_or_else(|p| p.into_inner())
}

/// Aggregate outcome of a driver's lifetime, in the pipeline report.
#[derive(Clone, Debug, Default)]
pub struct CompactionTotals {
    /// Compactions that installed a new base.
    pub compactions: u64,
    /// Log bytes reclaimed across them.
    pub reclaimed_bytes: u64,
    /// The most recent compaction failure, if any (compaction errors
    /// never stop serving — the log just keeps growing until the next
    /// successful pass).
    pub last_error: Option<String>,
}

struct DriverState {
    pending: bool,
    stop: bool,
    totals: CompactionTotals,
}

struct DriverShared {
    state: Mutex<DriverState>,
    cv: Condvar,
}

impl DriverShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, DriverState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The background compaction thread: parked until triggered, then folds
/// the *current* published generation into a fresh base. Serialization
/// happens against the immutable generation with no lock held; only the
/// file swap briefly serializes with the publisher's appends.
pub struct CompactionDriver {
    shared: Arc<DriverShared>,
    handle: JoinHandle<()>,
}

impl CompactionDriver {
    /// Spawn the driver over a shared durable store, compacting to
    /// whatever `live` serves when a trigger fires.
    pub fn spawn(durable: SharedDurable, live: Arc<LiveEngine>) -> Self {
        let shared = Arc::new(DriverShared {
            state: Mutex::new(DriverState {
                pending: false,
                stop: false,
                totals: CompactionTotals::default(),
            }),
            cv: Condvar::new(),
        });
        let sh = shared.clone();
        let handle = std::thread::Builder::new()
            .name("wf-compaction".into())
            .spawn(move || {
                loop {
                    let work = {
                        let mut st = sh.lock();
                        while !st.pending && !st.stop {
                            st = sh.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                        }
                        if st.pending {
                            // Clear before working: a trigger landing while
                            // we compact schedules another pass.
                            st.pending = false;
                            true
                        } else {
                            false
                        }
                    };
                    if work {
                        let outcome = compact_once(&durable, &live);
                        let mut st = sh.lock();
                        match outcome {
                            Ok(Some(stats)) => {
                                st.totals.compactions += 1;
                                st.totals.reclaimed_bytes += stats.reclaimed_bytes;
                            }
                            Ok(None) => {}
                            Err(e) => st.totals.last_error = Some(e),
                        }
                        continue;
                    }
                    break;
                }
            })
            .expect("spawning the compaction thread failed");
        Self { shared, handle }
    }

    /// Ask for a compaction pass (cheap; coalesces with a pending one).
    pub fn trigger(&self) {
        let mut st = self.shared.lock();
        st.pending = true;
        self.shared.cv.notify_one();
    }

    /// Finish any pending pass and join the thread.
    pub fn shutdown(self) -> CompactionTotals {
        {
            let mut st = self.shared.lock();
            st.stop = true;
            self.shared.cv.notify_one();
        }
        self.handle.join().expect("compaction thread panicked");
        let st = self.shared.lock();
        st.totals.clone()
    }
}

/// One compaction pass: snapshot the live generation, serialize it with
/// no lock held, then take the durable lock only for the atomic swap.
fn compact_once(
    durable: &SharedDurable,
    live: &LiveEngine,
) -> Result<Option<CompactionStats>, String> {
    let gen = live.snapshot();
    // Racing ahead of the log is impossible: the publisher appends before
    // it swaps, so every published generation is already durable.
    if gen.seqno() <= lock_durable(durable).base_seqno() {
        return Ok(None);
    }
    let bytes = serialize_base(&gen).map_err(|e| e.to_string())?;
    lock_durable(durable).install_base(&bytes, gen.seqno()).map_err(|e| e.to_string())
}
