//! `wf-engine` — the batched, allocation-free query-serving layer over FVL.
//!
//! The paper proves π answers a dependency query in constant time from
//! compact labels (§4.4, Theorem 10); this crate makes that constant small
//! under the workload shape a provenance service actually faces: *many
//! queries against few views over one labeled run*. Three pieces:
//!
//! * [`ViewRegistry`] — views registered once, their [`wf_core::ViewLabel`]s
//!   precompiled per §6.3 variant and addressed by dense [`ViewRef`]s;
//! * [`LabelStore`] — data labels interned with trie-shared path prefixes
//!   and addressed by dense [`ItemId`]s, partitioned into fixed-capacity
//!   copy-on-write shards so cloning a store is a directory copy and
//!   mutating it touches only the shards an insert batch lands in;
//! * [`QueryEngine`] — `query` / `query_batch` / `all_pairs` entry points
//!   threading one reusable [`wf_core::QueryScratch`] through the
//!   scratch-aware decode path ([`wf_core::pi_with`]), so steady-state
//!   serving performs no heap allocation and Default-variant recursion
//!   chains are exponentiated once per distinct exponent, not per query;
//! * [`EngineCore`] / [`WorkerScratch`] — the engine frozen into an
//!   immutable, `Sync` read path plus per-thread mutable state, so one
//!   compiled engine serves queries from as many cores as the host has:
//!   `par_query_batch` / `par_all_pairs` shard a workload across
//!   `std::thread::scope` workers and merge deterministically, answering
//!   exactly like the sequential path;
//! * [`EngineGeneration`] / [`EngineWriter`] / [`LiveEngine`] — the
//!   generational layer for *live updates under serving*: owned,
//!   immutable generations published by atomic `Arc` swap, a
//!   copy-on-write staging writer, and a lock-free reader fast path, so
//!   labels and views keep landing while readers keep answering (plus
//!   append-style delta persistence for warm restarts);
//! * [`IngestQueue`] / [`IngestPipeline`] — concurrent multi-producer
//!   ingest over that same staging core: producers submit typed
//!   [`IngestOp`]s into a bounded MPSC queue (typed backpressure, never
//!   silent drops) and a publisher thread batches, coalesces and
//!   publishes them on a [`PublishPolicy`] cadence, appending each
//!   publish to an op-log whose replay converges byte-identically with
//!   the live run;
//! * [`DurableEngine`] / [`CompactionDriver`] — crash-safe durability
//!   over that op-log: framed, checksummed, fsynced appends as the
//!   acknowledgement barrier, a recovery reader that heals torn tails
//!   and skips compaction-stale frames, background compaction that folds
//!   the replayed head into a fresh base by atomic rename, and a
//!   [`RetryPolicy`] absorbing transient sink faults.
//!
//! Engines additionally persist themselves: [`QueryEngine::save`] writes
//! the interned store, the registered views and every compiled label
//! (power caches included) into the versioned, checksummed `wf-snapshot`
//! container, and [`QueryEngine::load`] restores a serving-ready engine
//! without re-running labeling, view compilation or cycle-finding — the
//! "label once, query forever" economics of §4 survive process restarts.
//!
//! Semantics are identical to [`wf_core::Fvl::query`] — the agreement is
//! enforced by the engine tests here and by the workspace-level property
//! tests; only the cost model changes.
//!
//! ```
//! use wf_core::{Fvl, VariantKind};
//! use wf_engine::QueryEngine;
//! use wf_model::fixtures::paper_example;
//! use wf_run::fixtures::figure3_run;
//!
//! let ex = paper_example();
//! let fvl = Fvl::new(&ex.spec).unwrap();
//! let (run, ids) = figure3_run(&ex);
//! let labeler = fvl.labeler(&run);
//!
//! let mut engine = QueryEngine::new(&fvl);
//! let items = engine.insert_labels(labeler.labels());
//! let u2 = engine.register_view(ex.view_u2(), VariantKind::Default).unwrap();
//!
//! // Example 8 as a batch of one:
//! let d17 = items[ids.d17.0 as usize];
//! let d31 = items[ids.d31.0 as usize];
//! assert_eq!(engine.query_batch(u2, &[(d17, d31)]), vec![Some(true)]);
//! ```

mod durability;
mod engine;
mod error;
mod frozen;
mod generation;
mod ingest;
mod registry;
mod staging;
mod store;

pub use durability::{
    lock_durable, serialize_base, shared_durable, CompactionDriver, CompactionPolicy,
    CompactionStats, CompactionTotals, DurableEngine, LogStatus, RecoveryReport, SharedDurable,
};
pub use engine::QueryEngine;
pub use error::EngineError;
pub use frozen::{EngineCore, WorkerScratch};
pub use generation::{EngineGeneration, EngineWriter, LiveEngine};
pub use ingest::{
    classify_io_error, IngestError, IngestOp, IngestOutcome, IngestPipeline, IngestQueue,
    IngestStats, PipelineOptions, PipelineReport, PublishPolicy, RetryPolicy, SharedSink,
    SinkErrorClass, Ticket,
};
pub use registry::{ViewId, ViewRef, ViewRegistry};
pub use store::{ItemId, LabelStore};
// The error type `QueryEngine::save` / `QueryEngine::load` surface, so
// engine users need not name `wf-snapshot` directly.
pub use wf_snapshot::SnapshotError;
