//! The view registry: precompiled [`ViewLabel`]s keyed by view id + variant.
//!
//! View labels are static per view (§4.3) but expensive relative to a query
//! — building one walks every active production and, for Query-Efficient,
//! materializes chain caches. A serving layer therefore compiles each
//! `(view, variant)` combination exactly once and addresses it by a dense
//! [`ViewRef`] afterwards. (Scratch-memo soundness across views is carried
//! by [`ViewLabel::uid`], which every compiled label gets at build time.)

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use wf_analysis::ProdGraph;
use wf_bitio::{BitReader, BitWriter};
use wf_core::{Fvl, FvlError, VariantKind, ViewLabel};
use wf_model::{Grammar, View};
use wf_snapshot::{read_view, write_view, SnapshotError};

/// Dense id of a registered view (assigned by [`ViewRegistry::add_view`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ViewId(pub u32);

/// A compiled `(view, variant)` pair — the handle queries are issued
/// against.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ViewRef {
    pub id: ViewId,
    pub kind: VariantKind,
}

const VARIANTS: usize = 3;

fn slot(kind: VariantKind) -> usize {
    kind.code() as usize
}

/// Structural fingerprint of a view: its expand mask plus every perceived
/// dependency matrix, hashed in module order. Used as a dedup *index* only
/// — candidates still compare structurally before an id is reused, so a
/// hash collision can never alias two distinct views.
fn view_fingerprint(view: &View) -> u64 {
    let mut h = DefaultHasher::new();
    view.expand_mask().hash(&mut h);
    for (m, mat) in view.deps.iter() {
        m.hash(&mut h);
        mat.hash(&mut h);
    }
    h.finish()
}

/// Structural identity: same expand mask, same perceived matrices.
fn views_structurally_equal(a: &View, b: &View) -> bool {
    a.expand_mask() == b.expand_mask()
        && a.deps.iter().count() == b.deps.iter().count()
        && a.deps.iter().all(|(m, mat)| b.deps.get(m) == Some(mat))
}

/// Registered views plus their per-variant compiled labels.
///
/// Compiled labels are held behind [`Arc`], which makes cloning a registry
/// — the copy-on-write step of the generational engine — cost a refcount
/// bump per label instead of a deep copy of its matrices and power caches.
/// Shared labels keep their uid, so scratch memos warmed against one
/// generation stay warm (and sound — identical uid ⇒ identical label
/// content) across every generation that shares the compilation.
#[derive(Clone)]
pub struct ViewRegistry {
    views: Vec<View>,
    compiled: Vec<[Option<Arc<ViewLabel>>; VARIANTS]>,
    /// Structural-dedup index: fingerprint → candidate ids.
    by_fingerprint: HashMap<u64, Vec<ViewId>>,
}

impl ViewRegistry {
    pub fn new() -> Self {
        Self { views: Vec::new(), compiled: Vec::new(), by_fingerprint: HashMap::new() }
    }

    /// Registers a view. The registry owns its copy, so engines outlive
    /// caller-side view values. Registration *dedups structurally*: a view
    /// identical to an already registered one (same expand mask, same
    /// perceived matrices) returns the existing [`ViewId`] — and with it
    /// every label already compiled for it — instead of allocating a fresh
    /// id and recompiling from scratch. Repository traffic re-registers
    /// the same views constantly (every session "creates" its view of
    /// record); dedup makes that free.
    pub fn add_view(&mut self, view: View) -> ViewId {
        let fp = view_fingerprint(&view);
        if let Some(ids) = self.by_fingerprint.get(&fp) {
            for &id in ids {
                if views_structurally_equal(&self.views[id.0 as usize], &view) {
                    return id;
                }
            }
        }
        self.push_view(view, fp)
    }

    /// Appends a view unconditionally (still indexing its fingerprint for
    /// later dedup lookups). The snapshot read path uses this directly: it
    /// must reproduce the writing engine's id sequence *exactly*, and
    /// snapshots written before structural dedup existed may legitimately
    /// carry duplicate views under distinct ids.
    fn push_view(&mut self, view: View, fp: u64) -> ViewId {
        let id = ViewId(self.views.len() as u32);
        self.views.push(view);
        self.compiled.push([None, None, None]);
        self.by_fingerprint.entry(fp).or_default().push(id);
        id
    }

    pub fn view(&self, id: ViewId) -> &View {
        &self.views[id.0 as usize]
    }

    /// Compiles (or reuses) the label of `(id, kind)`. Idempotent: the
    /// interned label is built at most once per combination.
    pub fn compile(
        &mut self,
        fvl: &Fvl<'_>,
        id: ViewId,
        kind: VariantKind,
    ) -> Result<ViewRef, FvlError> {
        let cell = &mut self.compiled[id.0 as usize][slot(kind)];
        if cell.is_none() {
            *cell = Some(Arc::new(fvl.label_view(&self.views[id.0 as usize], kind)?));
        }
        Ok(ViewRef { id, kind })
    }

    /// Whether `(id, kind)` already has a compiled label — what a
    /// generation writer consults to record only *new* compilations in its
    /// delta.
    pub fn is_compiled(&self, id: ViewId, kind: VariantKind) -> bool {
        self.compiled.get(id.0 as usize).is_some_and(|slots| slots[slot(kind)].is_some())
    }

    /// Installs an externally decoded label into an *empty* `(id, kind)`
    /// slot — the delta-replay path. Rejects foreign ids, labels whose
    /// stored variant does not match the slot, and double installation.
    pub(crate) fn adopt_compiled(
        &mut self,
        id: ViewId,
        vl: ViewLabel,
    ) -> Result<ViewRef, SnapshotError> {
        let kind = vl.kind();
        let Some(slots) = self.compiled.get_mut(id.0 as usize) else {
            return Err(SnapshotError::Malformed("compiled label for unknown view"));
        };
        let cell = &mut slots[slot(kind)];
        if cell.is_some() {
            return Err(SnapshotError::Malformed("compiled label for an already compiled slot"));
        }
        *cell = Some(Arc::new(vl));
        Ok(ViewRef { id, kind })
    }

    /// The compiled label of a handle (`None` if never compiled, or if the
    /// id belongs to some other registry — foreign handles must surface as
    /// a typed error through the engine's `try_*` API, never a panic).
    pub fn label(&self, r: ViewRef) -> Option<&ViewLabel> {
        self.compiled.get(r.id.0 as usize).and_then(|slots| slots[slot(r.kind)].as_deref())
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Number of compiled `(view, variant)` labels.
    pub fn compiled_count(&self) -> usize {
        self.compiled.iter().flatten().filter(|c| c.is_some()).count()
    }

    /// Serializes every registered view and every compiled label: per view,
    /// the `(Δ′, λ′)` pair, one presence bit per variant slot, then the
    /// present labels in slot order.
    pub fn write_snapshot(&self, grammar: &Grammar, w: &mut BitWriter) {
        w.write_gamma(self.views.len() as u64 + 1);
        for (view, compiled) in self.views.iter().zip(&self.compiled) {
            write_view(w, grammar, view);
            for cell in compiled {
                w.push_bit(cell.is_some());
            }
            for cell in compiled.iter().flatten() {
                cell.write_snapshot(w);
            }
        }
    }

    /// Inverse of [`ViewRegistry::write_snapshot`]. Views re-pass grammar
    /// validation; each label's stored variant must match the slot it sits
    /// in. Loaded labels carry fresh uids, so a scratch shared with labels
    /// compiled earlier in this process stays sound. Registration bypasses
    /// structural dedup on purpose: the id sequence must reproduce the
    /// writing engine's exactly, and snapshots written before dedup
    /// existed may carry structural duplicates under distinct ids (the
    /// rebuilt fingerprint index still dedups every *future*
    /// [`ViewRegistry::add_view`] against them).
    pub fn read_snapshot(
        r: &mut BitReader<'_>,
        grammar: &Grammar,
        pg: &ProdGraph,
    ) -> Result<Self, SnapshotError> {
        let view_count = (r.read_gamma()? - 1) as usize;
        let mut reg = Self::new();
        for _ in 0..view_count {
            let view = read_view(r, grammar)?;
            let fp = view_fingerprint(&view);
            let id = reg.push_view(view, fp);
            let mut present = [false; VARIANTS];
            for p in &mut present {
                *p = r.read_bit()?;
            }
            for (s, &p) in present.iter().enumerate() {
                if !p {
                    continue;
                }
                let vl = ViewLabel::read_snapshot(r, grammar, pg)?;
                if vl.kind().code() as usize != s {
                    return Err(SnapshotError::Malformed("view label in wrong variant slot"));
                }
                reg.compiled[id.0 as usize][s] = Some(Arc::new(vl));
            }
        }
        Ok(reg)
    }
}

impl Default for ViewRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;

    #[test]
    fn compile_is_idempotent_and_keyed_by_variant() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let mut reg = ViewRegistry::new();
        let u1 = reg.add_view(ex.view_u1());
        let u2 = reg.add_view(ex.view_u2());
        assert_eq!(reg.view_count(), 2);
        assert_eq!(reg.compiled_count(), 0);

        let r1 = reg.compile(&fvl, u1, VariantKind::Default).unwrap();
        let r1b = reg.compile(&fvl, u1, VariantKind::Default).unwrap();
        assert_eq!(r1, r1b);
        assert_eq!(reg.compiled_count(), 1, "recompiling the same pair is a no-op");

        let r1q = reg.compile(&fvl, u1, VariantKind::QueryEfficient).unwrap();
        let r2 = reg.compile(&fvl, u2, VariantKind::Default).unwrap();
        assert_eq!(reg.compiled_count(), 3);
        assert!(reg.label(r1).is_some());
        assert!(reg.label(r1q).is_some());
        assert!(reg.label(r2).is_some());
        assert!(reg.label(ViewRef { id: u2, kind: VariantKind::QueryEfficient }).is_none());

        // Compiled labels carry pairwise-distinct uids — what keeps one
        // scratch's chain-power memo sound across interleaved views.
        let uids = [
            reg.label(r1).unwrap().uid(),
            reg.label(r1q).unwrap().uid(),
            reg.label(r2).unwrap().uid(),
        ];
        assert!(uids[0] != uids[1] && uids[1] != uids[2] && uids[0] != uids[2]);
    }

    /// Registering a structurally identical view must return the existing
    /// id and reuse its compilations — `compiled_count` is pinned to show
    /// no label is ever rebuilt for a duplicate registration.
    #[test]
    fn add_view_dedups_structurally_identical_views() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let mut reg = ViewRegistry::new();
        let u1 = reg.add_view(ex.view_u1());
        let r1 = reg.compile(&fvl, u1, VariantKind::Default).unwrap();
        assert_eq!(reg.compiled_count(), 1);

        // Same view, freshly constructed: same id, nothing recompiled.
        let again = reg.add_view(ex.view_u1());
        assert_eq!(again, u1, "structural duplicate must reuse the id");
        assert_eq!(reg.view_count(), 1);
        assert_eq!(reg.compiled_count(), 1, "dedup must not recompile");
        assert!(reg.label(r1).is_some());

        // The duplicate's handle resolves to the *existing* compilation.
        let r1_again = reg.compile(&fvl, again, VariantKind::Default).unwrap();
        assert_eq!(r1_again, r1);
        assert_eq!(reg.compiled_count(), 1);

        // A structurally different view still gets its own id.
        let u2 = reg.add_view(ex.view_u2());
        assert_ne!(u2, u1);
        assert_eq!(reg.view_count(), 2);
    }
}
