//! The view registry: precompiled [`ViewLabel`]s keyed by view id + variant.
//!
//! View labels are static per view (§4.3) but expensive relative to a query
//! — building one walks every active production and, for Query-Efficient,
//! materializes chain caches. A serving layer therefore compiles each
//! `(view, variant)` combination exactly once and addresses it by a dense
//! [`ViewRef`] afterwards. (Scratch-memo soundness across views is carried
//! by [`ViewLabel::uid`], which every compiled label gets at build time.)

use wf_analysis::ProdGraph;
use wf_bitio::{BitReader, BitWriter};
use wf_core::{Fvl, FvlError, VariantKind, ViewLabel};
use wf_model::{Grammar, View};
use wf_snapshot::{read_view, write_view, SnapshotError};

/// Dense id of a registered view (assigned by [`ViewRegistry::add_view`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ViewId(pub u32);

/// A compiled `(view, variant)` pair — the handle queries are issued
/// against.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ViewRef {
    pub id: ViewId,
    pub kind: VariantKind,
}

const VARIANTS: usize = 3;

fn slot(kind: VariantKind) -> usize {
    kind.code() as usize
}

/// Registered views plus their per-variant compiled labels.
pub struct ViewRegistry {
    views: Vec<View>,
    compiled: Vec<[Option<ViewLabel>; VARIANTS]>,
}

impl ViewRegistry {
    pub fn new() -> Self {
        Self { views: Vec::new(), compiled: Vec::new() }
    }

    /// Registers a view (uncompiled). The registry owns its copy, so
    /// engines outlive caller-side view values.
    pub fn add_view(&mut self, view: View) -> ViewId {
        let id = ViewId(self.views.len() as u32);
        self.views.push(view);
        self.compiled.push([None, None, None]);
        id
    }

    pub fn view(&self, id: ViewId) -> &View {
        &self.views[id.0 as usize]
    }

    /// Compiles (or reuses) the label of `(id, kind)`. Idempotent: the
    /// interned label is built at most once per combination.
    pub fn compile(
        &mut self,
        fvl: &Fvl<'_>,
        id: ViewId,
        kind: VariantKind,
    ) -> Result<ViewRef, FvlError> {
        let cell = &mut self.compiled[id.0 as usize][slot(kind)];
        if cell.is_none() {
            *cell = Some(fvl.label_view(&self.views[id.0 as usize], kind)?);
        }
        Ok(ViewRef { id, kind })
    }

    /// The compiled label of a handle (`None` if never compiled, or if the
    /// id belongs to some other registry — foreign handles must surface as
    /// a typed error through the engine's `try_*` API, never a panic).
    pub fn label(&self, r: ViewRef) -> Option<&ViewLabel> {
        self.compiled.get(r.id.0 as usize).and_then(|slots| slots[slot(r.kind)].as_ref())
    }

    /// Number of registered views.
    pub fn view_count(&self) -> usize {
        self.views.len()
    }

    /// Number of compiled `(view, variant)` labels.
    pub fn compiled_count(&self) -> usize {
        self.compiled.iter().flatten().filter(|c| c.is_some()).count()
    }

    /// Serializes every registered view and every compiled label: per view,
    /// the `(Δ′, λ′)` pair, one presence bit per variant slot, then the
    /// present labels in slot order.
    pub fn write_snapshot(&self, grammar: &Grammar, w: &mut BitWriter) {
        w.write_gamma(self.views.len() as u64 + 1);
        for (view, compiled) in self.views.iter().zip(&self.compiled) {
            write_view(w, grammar, view);
            for cell in compiled {
                w.push_bit(cell.is_some());
            }
            for cell in compiled.iter().flatten() {
                cell.write_snapshot(w);
            }
        }
    }

    /// Inverse of [`ViewRegistry::write_snapshot`]. Views re-pass grammar
    /// validation; each label's stored variant must match the slot it sits
    /// in. Loaded labels carry fresh uids, so a scratch shared with labels
    /// compiled earlier in this process stays sound.
    pub fn read_snapshot(
        r: &mut BitReader<'_>,
        grammar: &Grammar,
        pg: &ProdGraph,
    ) -> Result<Self, SnapshotError> {
        let view_count = (r.read_gamma()? - 1) as usize;
        let mut reg = Self::new();
        for _ in 0..view_count {
            let view = read_view(r, grammar)?;
            let id = reg.add_view(view);
            let mut present = [false; VARIANTS];
            for p in &mut present {
                *p = r.read_bit()?;
            }
            for (s, &p) in present.iter().enumerate() {
                if !p {
                    continue;
                }
                let vl = ViewLabel::read_snapshot(r, grammar, pg)?;
                if vl.kind().code() as usize != s {
                    return Err(SnapshotError::Malformed("view label in wrong variant slot"));
                }
                reg.compiled[id.0 as usize][s] = Some(vl);
            }
        }
        Ok(reg)
    }
}

impl Default for ViewRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;

    #[test]
    fn compile_is_idempotent_and_keyed_by_variant() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let mut reg = ViewRegistry::new();
        let u1 = reg.add_view(ex.view_u1());
        let u2 = reg.add_view(ex.view_u2());
        assert_eq!(reg.view_count(), 2);
        assert_eq!(reg.compiled_count(), 0);

        let r1 = reg.compile(&fvl, u1, VariantKind::Default).unwrap();
        let r1b = reg.compile(&fvl, u1, VariantKind::Default).unwrap();
        assert_eq!(r1, r1b);
        assert_eq!(reg.compiled_count(), 1, "recompiling the same pair is a no-op");

        let r1q = reg.compile(&fvl, u1, VariantKind::QueryEfficient).unwrap();
        let r2 = reg.compile(&fvl, u2, VariantKind::Default).unwrap();
        assert_eq!(reg.compiled_count(), 3);
        assert!(reg.label(r1).is_some());
        assert!(reg.label(r1q).is_some());
        assert!(reg.label(r2).is_some());
        assert!(reg.label(ViewRef { id: u2, kind: VariantKind::QueryEfficient }).is_none());

        // Compiled labels carry pairwise-distinct uids — what keeps one
        // scratch's chain-power memo sound across interleaved views.
        let uids = [
            reg.label(r1).unwrap().uid(),
            reg.label(r1q).unwrap().uid(),
            reg.label(r2).unwrap().uid(),
        ];
        assert!(uids[0] != uids[1] && uids[1] != uids[2] && uids[0] != uids[2]);
    }
}
