//! The staging core shared by [`crate::EngineWriter`] and the ingest
//! pipeline's publisher.
//!
//! Everything a publish adds is staged here first: copy-on-write clones of
//! the base generation's registry and store absorb mutations, and a
//! *journal* records the ops in application order. The journal is what the
//! delta record is written from — the op-log wire form
//! ([`wf_snapshot::oplog`]) frames the increment as the same typed ops the
//! ingest queue carries, in the order they were applied, so a replayed
//! stream re-applies exactly what the live publisher did. Contiguous
//! insert runs coalesce into one journal entry (the store only ever grows
//! at the tail, so adjacent inserts are one id range no matter how many
//! producers' ops they came from); view registrations and compilations
//! journal once per *new* registration or compilation, because dedup and
//! idempotent-compile make the repeats no-ops that replay must not see.
//!
//! The staged store is the single copy of the inserted labels — the delta
//! writer re-materializes the journaled id ranges on demand, so heavy
//! ingest never pays double storage for its increment.

use crate::error::EngineError;
use crate::generation::EngineGeneration;
use crate::registry::{ViewId, ViewRef, ViewRegistry};
use crate::store::{ItemId, LabelStore};
use std::sync::Arc;
use wf_bitio::BitWriter;
use wf_core::{DataLabel, Fvl, FvlError, VariantKind};
use wf_model::View;
use wf_snapshot::{oplog, write_label};

/// One journaled mutation, in application order.
pub(crate) enum StagedOp {
    /// Labels interned at ids `from..to` of the staged store.
    Insert { from: u32, to: u32 },
    /// A view newly registered under `id`.
    AddView(ViewId),
    /// A `(view, kind)` newly compiled.
    Compile(ViewRef),
}

/// The writer's working state between publishes.
pub(crate) struct StagedState {
    pub registry: ViewRegistry,
    pub store: LabelStore,
    journal: Vec<StagedOp>,
    /// Store length the journal covers so far; lets every insert path
    /// (single, batch, partial-batch-then-error) journal by observed
    /// growth instead of by claimed success.
    journaled_len: usize,
}

impl StagedState {
    pub fn from_base(base: &EngineGeneration) -> Self {
        Self {
            registry: base.registry().clone(),
            store: base.store().clone(),
            journal: Vec::new(),
            journaled_len: base.store().len(),
        }
    }

    /// Extends the journal to cover every label the store gained since the
    /// last call — adjacent insert runs fuse into one entry.
    fn journal_store_growth(&mut self) {
        let len = self.store.len();
        if len == self.journaled_len {
            return;
        }
        match self.journal.last_mut() {
            Some(StagedOp::Insert { to, .. }) if *to as usize == self.journaled_len => {
                *to = len as u32;
            }
            _ => self
                .journal
                .push(StagedOp::Insert { from: self.journaled_len as u32, to: len as u32 }),
        }
        self.journaled_len = len;
    }

    pub fn try_insert(&mut self, d: &DataLabel) -> Result<ItemId, EngineError> {
        let r = self.store.try_insert(d);
        self.journal_store_growth();
        r
    }

    /// Batch insert; on [`EngineError::BatchStoreFull`] the stored prefix
    /// is journaled (ids stay dense — replay must see it).
    pub fn try_insert_all(&mut self, labels: &[DataLabel]) -> Result<Vec<ItemId>, EngineError> {
        let r = self.store.try_insert_all(labels);
        self.journal_store_growth();
        r
    }

    pub fn add_view(&mut self, view: View) -> ViewId {
        let before = self.registry.view_count();
        let id = self.registry.add_view(view);
        if self.registry.view_count() > before {
            self.journal.push(StagedOp::AddView(id));
        }
        id
    }

    pub fn compile(
        &mut self,
        fvl: &Arc<Fvl<'static>>,
        id: ViewId,
        kind: VariantKind,
    ) -> Result<ViewRef, FvlError> {
        let was_compiled = self.registry.is_compiled(id, kind);
        let r = self.registry.compile(fvl.as_ref(), id, kind)?;
        if !was_compiled {
            self.journal.push(StagedOp::Compile(r));
        }
        Ok(r)
    }

    /// Serializes the staged increment as the `SECTION_DELTA` op-log
    /// payload chaining `base_seqno → base_seqno + 1` (framing per
    /// [`wf_snapshot::oplog`]; the caller seals the container).
    pub fn write_delta(&self, fvl: &Fvl<'static>, base_seqno: u64, w: &mut BitWriter) {
        let grammar = &fvl.spec().grammar;
        w.write_gamma(base_seqno + 1);
        w.write_gamma(base_seqno + 2);
        w.write_gamma(self.journal.len() as u64 + 1);
        for op in &self.journal {
            match op {
                StagedOp::Insert { from, to } => {
                    oplog::write_insert_header(w, (to - from) as usize);
                    for i in *from..*to {
                        write_label(w, fvl.codec(), &self.store.materialize(ItemId(i)));
                    }
                }
                StagedOp::AddView(id) => {
                    oplog::write_add_view(w, grammar, id.0, self.registry.view(*id));
                }
                StagedOp::Compile(vr) => {
                    let vl = self
                        .registry
                        .label(*vr)
                        .expect("staged compilations are present in the staged registry");
                    oplog::write_compile_view(w, vr.id.0, vl);
                }
            }
        }
    }
}
