//! The multi-producer ingest pipeline: queue → publisher → generations.
//!
//! [`crate::EngineWriter`] is single-producer by construction — one thread
//! staging against one copy-on-write clone. This module turns that writer
//! into the *back end* of a three-stage pipeline so any number of producer
//! threads can feed the same generation chain:
//!
//! 1. **[`IngestQueue`]** — a bounded MPSC ring (hand-rolled: a fixed slot
//!    array under one `Mutex`, two `Condvar`s, no dependencies). Producers
//!    submit typed [`IngestOp`]s and get back a [`Ticket`] that resolves
//!    to the seqno of the generation that published their op. A full queue
//!    is *backpressure*, never silent loss: [`IngestQueue::try_push`]
//!    returns [`EngineError::IngestBackpressure`] and
//!    [`IngestQueue::push`] blocks until a slot frees.
//! 2. **Publisher** — one background thread ([`IngestPipeline`]) draining
//!    the queue in batches and applying ops to the staging core in arrival
//!    order. Ops coalesce while staged: adjacent label inserts fuse into
//!    one id-range (and un-share each copy-on-write shard once per cycle,
//!    however many ops landed in it), duplicate view registrations and
//!    compilations collapse to no-ops. Publishes fire on a configurable
//!    cadence ([`PublishPolicy`]: ops, staged bytes, or deadline) and each
//!    one atomically swaps the next generation into the [`LiveEngine`] —
//!    readers never block, exactly as with a direct writer.
//! 3. **Op-log persistence** — with a sink attached, every publish appends
//!    its delta record (the op-log wire form, [`wf_snapshot::oplog`])
//!    before the swap, so `base ‖ deltas` replays to byte-identical
//!    generations no matter how many producers raced.
//!
//! Ordering and atomicity guarantees, precisely:
//!
//! * Ops are applied in queue (FIFO) order — one producer's ops happen in
//!   its submission order; ops of different producers interleave in their
//!   arrival order. [`Ticket::apply_index`] exposes the global position.
//! * A published generation contains a *prefix* of the applied op
//!   sequence: nothing is reordered across a publish, and no op is ever
//!   half-visible (staging is invisible to readers until the swap).
//! * An op that fails (store full, compile error) resolves its ticket with
//!   the typed error and the pipeline keeps going; a batch insert's stored
//!   prefix stays (ids remain dense) exactly like
//!   [`crate::EngineWriter::try_insert_labels`].
//! * Shutdown drains: ops enqueued before [`IngestQueue::close`] are
//!   applied and published; pushes after it fail with
//!   [`EngineError::IngestClosed`].

use crate::durability::{
    lock_durable, CompactionDriver, CompactionPolicy, CompactionTotals, SharedDurable,
};
use crate::error::EngineError;
use crate::generation::{EngineGeneration, EngineWriter, LiveEngine};
use std::io::{self, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wf_core::{DataLabel, FvlError, VariantKind};
use wf_model::View;

/// One typed mutation submitted to the pipeline.
///
/// Views are identified *structurally* (the registry dedups), so a
/// producer never needs to know whether another producer already
/// registered the view it compiles — both get the same [`crate::ViewId`]
/// in the published generation.
pub enum IngestOp {
    /// Intern a batch of data labels at the store tail.
    InsertLabels(Vec<DataLabel>),
    /// Register a view (no compilation).
    AddView(View),
    /// Register (dedup) and compile one `(view, kind)` variant.
    CompileView(View, VariantKind),
}

/// Why a submitted op did not make it into a generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The staging store rejected the op (e.g. capacity); for batch
    /// inserts the stored prefix stands, per the writer's contract.
    Engine(EngineError),
    /// View compilation failed; the registration half of a
    /// [`IngestOp::CompileView`] may still have staged (dedup makes the
    /// retry cheap).
    Compile(FvlError),
    /// The publish that would have covered this op could not persist its
    /// delta record; the pipeline stops rather than let the live chain
    /// outrun the op-log.
    Persist(String),
    /// The pipeline stopped (after a persist failure) before this op could
    /// be applied; nothing of it is staged.
    Shutdown,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Engine(e) => write!(f, "ingest op rejected: {e}"),
            IngestError::Compile(e) => write!(f, "ingest compile failed: {e}"),
            IngestError::Persist(e) => write!(f, "publish could not persist its delta: {e}"),
            IngestError::Shutdown => write!(f, "pipeline stopped before the op was applied"),
        }
    }
}

impl std::error::Error for IngestError {}

/// What a ticket resolves to: the seqno of the generation that made the
/// op visible, or the typed reason it never will be.
pub type IngestOutcome = Result<u64, IngestError>;

struct TicketState {
    outcome: Option<IngestOutcome>,
    /// Global application order (queue drain order), set when the
    /// publisher picks the op up — also on error outcomes.
    apply_index: Option<u64>,
    /// Push → resolution, nanoseconds (publish lag as the producer saw it).
    lag_ns: Option<u64>,
}

struct TicketCell {
    created: Instant,
    state: Mutex<TicketState>,
    cv: Condvar,
}

/// A producer's receipt for one submitted op.
///
/// Cheap to clone (it is an `Arc` handle); resolved exactly once by the
/// publisher. [`Ticket::wait`] blocks until the op's fate is known — for
/// an `Ok(seqno)`, the generation with that seqno (and every later one)
/// contains the op.
#[derive(Clone)]
pub struct Ticket {
    cell: Arc<TicketCell>,
}

impl Ticket {
    fn new() -> Self {
        Self {
            cell: Arc::new(TicketCell {
                created: Instant::now(),
                state: Mutex::new(TicketState { outcome: None, apply_index: None, lag_ns: None }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Ticket state is resolve-once plain data — a panicking holder
    /// cannot leave it half-updated in any way that matters, so poisoned
    /// locks are recovered rather than propagated (a wedged producer
    /// waiting on a ticket is strictly worse).
    fn lock(&self) -> std::sync::MutexGuard<'_, TicketState> {
        self.cell.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn resolve(&self, outcome: IngestOutcome) {
        let lag = self.cell.created.elapsed().as_nanos() as u64;
        let mut st = self.lock();
        if st.outcome.is_none() {
            st.outcome = Some(outcome);
            st.lag_ns = Some(lag);
            self.cell.cv.notify_all();
        }
    }

    fn mark_applied(&self, index: u64) {
        let mut st = self.lock();
        st.apply_index = Some(index);
    }

    /// The outcome if already resolved (non-blocking).
    pub fn try_outcome(&self) -> Option<IngestOutcome> {
        self.lock().outcome.clone()
    }

    /// Blocks until the publisher resolves this ticket.
    pub fn wait(&self) -> IngestOutcome {
        let mut st = self.lock();
        loop {
            if let Some(outcome) = &st.outcome {
                return outcome.clone();
            }
            st = self.cell.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// [`Ticket::wait`] bounded by `timeout`: `None` if the ticket is
    /// still unresolved when it elapses. The op stays in flight — a
    /// healthy pipeline resolves it later; a stalled or stopped one
    /// resolves it `Err` (persist failures and shutdown resolve every
    /// outstanding ticket), so `None` is purely "not yet", never "lost".
    pub fn wait_timeout(&self, timeout: Duration) -> Option<IngestOutcome> {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            if let Some(outcome) = &st.outcome {
                return Some(outcome.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) =
                self.cell.cv.wait_timeout(st, deadline - now).unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// Push-to-resolution latency in nanoseconds (after resolution).
    pub fn lag_ns(&self) -> Option<u64> {
        self.lock().lag_ns
    }

    /// The op's position in the global application order (after the
    /// publisher picked it up). Sorting `(ticket, op)` pairs by this index
    /// reconstructs the exact sequence a sequential writer would have to
    /// apply to reproduce the published generations.
    pub fn apply_index(&self) -> Option<u64> {
        self.lock().apply_index
    }
}

/// How the publisher drained (publisher-side status of one wait).
enum Drained {
    /// At least one op was moved into the batch.
    Ops,
    /// The wait deadline passed with the queue still empty.
    TimedOut,
    /// Queue closed and empty — the pipeline can finish.
    Closed,
}

struct Ring {
    slots: Box<[Option<(IngestOp, Ticket)>]>,
    head: usize,
    len: usize,
    closed: bool,
}

impl Ring {
    fn pop(&mut self) -> (IngestOp, Ticket) {
        let e = self.slots[self.head].take().expect("ring slot empty at head");
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        e
    }

    fn push(&mut self, e: (IngestOp, Ticket)) {
        let tail = (self.head + self.len) % self.slots.len();
        debug_assert!(self.slots[tail].is_none(), "ring slot occupied at tail");
        self.slots[tail] = Some(e);
        self.len += 1;
    }
}

/// The bounded MPSC hand-off between producers and the publisher.
///
/// A fixed ring of slots under one `Mutex`; `not_full` parks producers
/// when every slot is taken, `not_empty` parks the publisher when none
/// is. Capacity is the backpressure contract: the queue holds at most
/// `capacity` in-flight ops, and what it accepts it never drops — every
/// accepted op is eventually applied (or its ticket resolved with a typed
/// error), even across [`IngestQueue::close`].
pub struct IngestQueue {
    ring: Mutex<Ring>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl IngestQueue {
    /// A queue of at most `capacity` in-flight ops (`capacity ≥ 1`).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || None);
        Self {
            ring: Mutex::new(Ring {
                slots: slots.into_boxed_slice(),
                head: 0,
                len: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.ring.lock().expect("ingest queue mutex poisoned").slots.len()
    }

    /// Ops currently queued (racy by nature; for monitoring).
    pub fn len(&self) -> usize {
        self.ring.lock().expect("ingest queue mutex poisoned").len
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_closed(&self) -> bool {
        self.ring.lock().expect("ingest queue mutex poisoned").closed
    }

    /// Closes the queue: subsequent pushes fail with
    /// [`EngineError::IngestClosed`]; already-queued ops still drain.
    pub fn close(&self) {
        let mut ring = self.ring.lock().expect("ingest queue mutex poisoned");
        ring.closed = true;
        // Parked producers must re-check and fail; the publisher must see
        // closed-and-empty to finish.
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Blocking submit: parks while the queue is full, fails only if the
    /// queue is (or becomes) closed. Never drops an op.
    pub fn push(&self, op: IngestOp) -> Result<Ticket, EngineError> {
        let mut ring = self.ring.lock().expect("ingest queue mutex poisoned");
        loop {
            if ring.closed {
                return Err(EngineError::IngestClosed);
            }
            if ring.len < ring.slots.len() {
                let ticket = Ticket::new();
                ring.push((op, ticket.clone()));
                self.not_empty.notify_one();
                return Ok(ticket);
            }
            ring = self.not_full.wait(ring).expect("ingest queue mutex poisoned");
        }
    }

    /// Non-blocking submit: a full queue surfaces
    /// [`EngineError::IngestBackpressure`] with the queued count — the op
    /// was **not** accepted, so the producer can retry, shed, or fall back
    /// to the blocking [`IngestQueue::push`].
    pub fn try_push(&self, op: IngestOp) -> Result<Ticket, EngineError> {
        let mut ring = self.ring.lock().expect("ingest queue mutex poisoned");
        if ring.closed {
            return Err(EngineError::IngestClosed);
        }
        if ring.len == ring.slots.len() {
            return Err(EngineError::IngestBackpressure { queued: ring.len });
        }
        let ticket = Ticket::new();
        ring.push((op, ticket.clone()));
        self.not_empty.notify_one();
        Ok(ticket)
    }

    /// Publisher side: moves up to `max` ops into `out`, waiting (bounded
    /// by `timeout`, unbounded without one) while the queue is empty.
    fn drain_into(
        &self,
        out: &mut Vec<(IngestOp, Ticket)>,
        max: usize,
        timeout: Option<Duration>,
    ) -> Drained {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut ring = self.ring.lock().expect("ingest queue mutex poisoned");
        loop {
            if ring.len > 0 {
                let n = ring.len.min(max.max(1));
                for _ in 0..n {
                    out.push(ring.pop());
                }
                self.not_full.notify_all();
                return Drained::Ops;
            }
            if ring.closed {
                return Drained::Closed;
            }
            match deadline {
                None => ring = self.not_empty.wait(ring).expect("ingest queue mutex poisoned"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Drained::TimedOut;
                    }
                    let (g, _) = self
                        .not_empty
                        .wait_timeout(ring, d - now)
                        .expect("ingest queue mutex poisoned");
                    ring = g;
                }
            }
        }
    }
}

/// When the publisher freezes staged ops into the next generation.
///
/// A publish fires as soon as *any* trigger is met — ops applied since the
/// last publish, staged label payload (encoded size, the same bits the
/// delta record will carry), or time since the first unpublished op — and
/// always on shutdown. Small deadlines bound publish lag; large op/byte
/// budgets amortize the per-cycle copy-on-write and container costs.
#[derive(Clone, Copy, Debug)]
pub struct PublishPolicy {
    /// Queue capacity (in-flight ops) — the backpressure bound.
    pub queue_capacity: usize,
    /// Publish after this many applied ops.
    pub max_batch_ops: usize,
    /// Publish once staged labels reach this encoded size in bytes.
    pub max_batch_bytes: usize,
    /// Publish when the oldest unpublished op has waited this long.
    pub max_delay: Duration,
}

impl Default for PublishPolicy {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            max_batch_ops: 256,
            max_batch_bytes: 1 << 20,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// How the retry layer should treat one sink/storage failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkErrorClass {
    /// Worth retrying after a backoff (interruption, contention, timeout).
    Transient,
    /// Retrying cannot help (bad data, permissions, a full disk, …).
    Fatal,
}

/// Classify a sink/storage `io::Error` for the [`RetryPolicy`]. The
/// transient set is deliberately small — kinds that mean "the world was
/// busy", not "the world is broken": `Interrupted`, `WouldBlock`,
/// `TimedOut`. Everything else is fatal and surfaces immediately.
pub fn classify_io_error(e: &io::Error) -> SinkErrorClass {
    match e.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            SinkErrorClass::Transient
        }
        _ => SinkErrorClass::Fatal,
    }
}

/// Bounded retry-with-backoff for transient persistence failures.
///
/// Attempt `n` (0-based) sleeps `initial_backoff * 2^n`, capped at
/// `max_backoff`, before retrying; a fatal error or an exhausted budget
/// surfaces the last error — in the pipeline that resolves every covered
/// ticket `Err(Persist)` and stops the publisher, never hangs it.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            initial_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep after failed attempt `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.initial_backoff.saturating_mul(1u32 << attempt.min(20));
        exp.min(self.max_backoff)
    }

    /// Run `op` under this policy, sleeping between transient failures.
    /// `on_retry` is called once per retry (the pipeline counts them).
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> io::Result<T>,
        mut on_retry: impl FnMut(&io::Error),
    ) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let giving_up = classify_io_error(&e) == SinkErrorClass::Fatal
                        || attempt + 1 >= self.max_attempts.max(1);
                    if giving_up {
                        return Err(e);
                    }
                    on_retry(&e);
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }
}

/// A cloneable in-memory op-log sink: every clone appends to the same
/// buffer, so a test or service can hand one clone to
/// [`PipelineOptions::sink`] and read the accumulated stream from another
/// while (or after) the pipeline runs.
#[derive(Clone, Default)]
pub struct SharedSink {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl SharedSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer is plain bytes with no invariant a panicking writer
    /// could break mid-update (delta records land as one
    /// `extend_from_slice`), so a poisoned lock is recovered: one
    /// writer's panic must not wedge every later append.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<u8>> {
        self.buf.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// A snapshot of everything written so far. Delta records are
    /// appended atomically (one `write_all` each), so between publishes
    /// this is always a replayable stream suffix.
    pub fn contents(&self) -> Vec<u8> {
        self.lock().clone()
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Write for SharedSink {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.lock().extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Publish-notification callback, invoked with each published generation.
pub type PublishHook = Box<dyn FnMut(&Arc<EngineGeneration>) + Send>;

/// Optional pipeline attachments.
#[derive(Default)]
pub struct PipelineOptions {
    /// Op-log sink: every publish appends its delta record here *before*
    /// the generation swap (crash loses the publish, never the stream).
    pub sink: Option<Box<dyn Write + Send>>,
    /// Called with each published generation, after the swap — test and
    /// monitoring hook (runs on the publisher thread; keep it cheap).
    pub on_publish: Option<PublishHook>,
    /// Crash-safe storage ([`crate::DurableEngine`], usually from
    /// [`crate::DurableEngine::open`] recovery): every publish's delta is
    /// framed, appended and fsynced here before the swap, making the
    /// fsync the acknowledgement barrier.
    pub durable: Option<SharedDurable>,
    /// With [`PipelineOptions::durable`] set, spawn a background
    /// [`CompactionDriver`] and trigger it whenever the op-log exceeds
    /// these bounds. Ignored without durable storage.
    pub compaction: Option<CompactionPolicy>,
    /// Retry-with-backoff for transient persistence failures (applies to
    /// both `durable` appends and the plain `sink`).
    pub retry: RetryPolicy,
}

impl PipelineOptions {
    fn wants_record(&self) -> bool {
        self.durable.is_some() || self.sink.is_some()
    }
}

/// Publisher-side counters, returned in the [`PipelineReport`].
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestStats {
    /// Ops applied to the staging core (ticket resolved `Ok`).
    pub ops_applied: u64,
    /// Ops whose ticket resolved with an error.
    pub op_errors: u64,
    /// Generations published.
    pub publishes: u64,
    /// Data labels interned.
    pub labels_ingested: u64,
    /// Transient persistence failures absorbed by the [`RetryPolicy`].
    pub persist_retries: u64,
}

/// What [`IngestPipeline::shutdown`] hands back: the writer (now based on
/// the final published generation and ready for direct single-producer
/// use or a new pipeline), the op-log sink, and the run's counters.
pub struct PipelineReport {
    pub writer: EngineWriter,
    pub sink: Option<Box<dyn Write + Send>>,
    pub stats: IngestStats,
    /// `Some` if a publish failed to persist its delta (the pipeline
    /// stopped there; tickets after that point resolved `Shutdown`).
    pub persist_error: Option<String>,
    /// Background compaction totals (`Some` iff a driver ran).
    pub compaction: Option<CompactionTotals>,
}

/// The running pipeline: one publisher thread behind an [`IngestQueue`].
///
/// ```
/// use std::sync::Arc;
/// use wf_core::{Fvl, VariantKind};
/// use wf_engine::{EngineWriter, IngestOp, IngestPipeline, LiveEngine, PublishPolicy};
/// use wf_model::fixtures::paper_example;
/// use wf_run::fixtures::figure3_run;
///
/// let ex = paper_example();
/// let fvl = Arc::new(Fvl::from_arc(Arc::new(ex.spec.clone())).unwrap());
/// let labels = fvl.labeler(&figure3_run(&ex).0).labels().to_vec();
///
/// let writer = EngineWriter::from_fvl(fvl);
/// let live = Arc::new(LiveEngine::new(writer.base().clone()));
/// let pipeline = IngestPipeline::spawn(writer, live.clone(), PublishPolicy::default());
///
/// // Any thread with a queue handle is a producer:
/// let q = pipeline.queue().clone();
/// let t1 = q.push(IngestOp::InsertLabels(labels)).unwrap();
/// let t2 = q.push(IngestOp::CompileView(ex.view_u2(), VariantKind::Default)).unwrap();
/// let seq = t1.wait().unwrap();
/// assert!(live.snapshot().seqno() >= seq, "the op's generation is live");
///
/// let report = pipeline.shutdown();
/// assert_eq!(report.stats.op_errors, 0);
/// # drop(t2);
/// ```
pub struct IngestPipeline {
    queue: Arc<IngestQueue>,
    handle: JoinHandle<PipelineReport>,
}

impl IngestPipeline {
    /// Spawns the publisher thread over `writer`, publishing into `live`.
    pub fn spawn(writer: EngineWriter, live: Arc<LiveEngine>, policy: PublishPolicy) -> Self {
        Self::spawn_with(writer, live, policy, PipelineOptions::default())
    }

    /// [`IngestPipeline::spawn`] with an op-log sink and/or publish hook.
    pub fn spawn_with(
        writer: EngineWriter,
        live: Arc<LiveEngine>,
        policy: PublishPolicy,
        options: PipelineOptions,
    ) -> Self {
        let queue = Arc::new(IngestQueue::with_capacity(policy.queue_capacity));
        let q = queue.clone();
        let handle = std::thread::Builder::new()
            .name("wf-ingest-publisher".into())
            .spawn(move || publisher_loop(writer, live, q, policy, options))
            .expect("spawning the publisher thread failed");
        Self { queue, handle }
    }

    /// The producer-facing handle; clone it into as many threads as you
    /// have producers.
    pub fn queue(&self) -> &Arc<IngestQueue> {
        &self.queue
    }

    /// Graceful shutdown: closes the queue, lets the publisher drain and
    /// publish everything already accepted, and joins it.
    pub fn shutdown(self) -> PipelineReport {
        self.queue.close();
        self.handle.join().expect("publisher thread panicked")
    }
}

fn publisher_loop(
    mut writer: EngineWriter,
    live: Arc<LiveEngine>,
    queue: Arc<IngestQueue>,
    policy: PublishPolicy,
    mut options: PipelineOptions,
) -> PipelineReport {
    let mut stats = IngestStats::default();
    let mut batch: Vec<(IngestOp, Ticket)> = Vec::new();
    let mut pending: Vec<Ticket> = Vec::new();
    let mut staged_ops = 0usize;
    let mut staged_bits = 0u64;
    let mut deadline: Option<Instant> = None;
    let mut apply_index = 0u64;
    let mut persist_error: Option<String> = None;
    let driver = match (&options.durable, options.compaction) {
        (Some(durable), Some(_)) => Some(CompactionDriver::spawn(durable.clone(), live.clone())),
        _ => None,
    };

    'run: loop {
        let timeout = deadline.map(|d| d.saturating_duration_since(Instant::now()));
        let room = policy.max_batch_ops.saturating_sub(staged_ops).max(1);
        batch.clear();
        let status = queue.drain_into(&mut batch, room, timeout);

        for (op, ticket) in batch.drain(..) {
            ticket.mark_applied(apply_index);
            apply_index += 1;
            staged_ops += 1;
            match apply_op(&mut writer, op, &mut staged_bits, &mut stats) {
                Ok(()) => {
                    stats.ops_applied += 1;
                    pending.push(ticket);
                }
                Err(e) => {
                    // A failed op can still have staged a prefix (batch
                    // inserts) — the publish below carries it; only the
                    // ticket reports the failure.
                    stats.op_errors += 1;
                    ticket.resolve(Err(e));
                }
            }
        }
        if deadline.is_none() && staged_ops > 0 {
            deadline = Some(Instant::now() + policy.max_delay);
        }

        let closing = matches!(status, Drained::Closed);
        let due = closing
            || matches!(status, Drained::TimedOut)
            || staged_ops >= policy.max_batch_ops
            || (staged_bits / 8) as usize >= policy.max_batch_bytes;

        if due && staged_ops > 0 {
            if writer.has_staged_changes() {
                let published = persist_and_publish(
                    &mut writer,
                    &live,
                    &mut options,
                    &mut stats,
                    driver.as_ref(),
                );
                match published {
                    Ok(gen) => {
                        stats.publishes += 1;
                        for t in pending.drain(..) {
                            t.resolve(Ok(gen.seqno()));
                        }
                        if let Some(hook) = options.on_publish.as_mut() {
                            hook(&gen);
                        }
                    }
                    Err(msg) => {
                        // The op-log could not record this publish (the
                        // retry budget included); fail the covered tickets
                        // and stop instead of letting the live chain
                        // diverge from the stream.
                        for t in pending.drain(..) {
                            t.resolve(Err(IngestError::Persist(msg.clone())));
                        }
                        persist_error = Some(msg);
                        break 'run;
                    }
                }
            } else {
                // Every op in the window was a no-op (dedup'd views,
                // empty inserts): their effects are already visible.
                let seq = writer.base().seqno();
                for t in pending.drain(..) {
                    t.resolve(Ok(seq));
                }
            }
            staged_ops = 0;
            staged_bits = 0;
            deadline = None;
        } else if matches!(status, Drained::TimedOut) {
            deadline = None;
        }

        if closing {
            break;
        }
    }

    // A persist failure aborts mid-stream: resolve everything still queued
    // (and anything applied but unpublished) so no producer blocks forever.
    queue.close();
    loop {
        batch.clear();
        if matches!(queue.drain_into(&mut batch, usize::MAX, None), Drained::Closed) {
            break;
        }
        for (_, ticket) in batch.drain(..) {
            stats.op_errors += 1;
            ticket.resolve(Err(IngestError::Shutdown));
        }
    }
    for t in pending.drain(..) {
        t.resolve(Err(IngestError::Shutdown));
    }

    let compaction = driver.map(CompactionDriver::shutdown);
    PipelineReport { writer, sink: options.sink, stats, persist_error, compaction }
}

/// Publish one staged batch, persisting its delta record first. With
/// durable storage the order is: frame + append + fsync (retried under
/// the [`RetryPolicy`] for transient errors) → optional plain sink →
/// generation swap. `Err` consumes nothing: the staged state survives
/// for the caller's persist-failure path.
fn persist_and_publish(
    writer: &mut EngineWriter,
    live: &LiveEngine,
    options: &mut PipelineOptions,
    stats: &mut IngestStats,
    driver: Option<&CompactionDriver>,
) -> Result<Arc<EngineGeneration>, String> {
    if !options.wants_record() {
        return Ok(writer.publish(live));
    }
    let (seqno, record) = match writer.staged_record() {
        None => return Ok(writer.publish(live)),
        Some(Ok(pair)) => pair,
        Some(Err(e)) => return Err(e.to_string()),
    };
    let retry = options.retry;
    let mut log_status = None;
    if let Some(durable) = options.durable.as_ref() {
        let status = retry
            .run(|| lock_durable(durable).append(seqno, &record), |_e| stats.persist_retries += 1)
            .map_err(|e| e.to_string())?;
        log_status = Some(status);
    }
    if let Some(sink) = options.sink.as_mut() {
        retry
            .run(|| sink.write_all(&record), |_e| stats.persist_retries += 1)
            .map_err(|e| e.to_string())?;
    }
    let gen = writer.publish(live);
    debug_assert_eq!(gen.seqno(), seqno, "published seqno must match the persisted record");
    if let (Some(driver), Some(policy), Some(status)) = (driver, options.compaction, log_status) {
        if policy.due(status) {
            driver.trigger();
        }
    }
    Ok(gen)
}

fn apply_op(
    writer: &mut EngineWriter,
    op: IngestOp,
    staged_bits: &mut u64,
    stats: &mut IngestStats,
) -> Result<(), IngestError> {
    match op {
        IngestOp::InsertLabels(labels) => {
            // Encoded sizes first (immutable borrow), insert second: the
            // staged-bytes trigger counts exactly the stored prefix.
            let bits: Vec<u64> = {
                let codec = writer.base().fvl().codec();
                labels.iter().map(|d| codec.encoded_bits(d) as u64).collect()
            };
            let r = writer.try_insert_labels(&labels);
            let inserted = match &r {
                Ok(ids) => ids.len(),
                Err(EngineError::BatchStoreFull { index, .. }) => *index,
                Err(_) => 0,
            };
            stats.labels_ingested += inserted as u64;
            *staged_bits += bits[..inserted].iter().sum::<u64>();
            r.map(|_| ()).map_err(IngestError::Engine)
        }
        IngestOp::AddView(view) => {
            writer.add_view(view);
            Ok(())
        }
        IngestOp::CompileView(view, kind) => {
            writer.register_view(view, kind).map(|_| ()).map_err(IngestError::Compile)
        }
    }
}

// Producers hand ops across threads and the publisher owns the writer on
// its own thread — compile-checked, like the generation types.
const _: () = {
    const fn send<T: Send>() {}
    const fn send_sync<T: Send + Sync>() {}
    send::<EngineWriter>();
    send::<Ticket>();
    send::<IngestOp>();
    send_sync::<IngestQueue>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frozen::WorkerScratch;
    use wf_core::Fvl;
    use wf_model::fixtures::paper_example;
    use wf_run::fixtures::figure3_run;

    fn shared_fvl() -> Arc<Fvl<'static>> {
        let ex = paper_example();
        Arc::new(Fvl::from_arc(Arc::new(ex.spec.clone())).unwrap())
    }

    #[test]
    fn try_push_surfaces_backpressure_and_push_blocks_without_dropping() {
        let q = Arc::new(IngestQueue::with_capacity(2));
        let t_a = q.try_push(IngestOp::InsertLabels(Vec::new())).unwrap();
        let _t_b = q.try_push(IngestOp::AddView(paper_example().view_u1())).unwrap();
        // Full: the typed error reports the depth and accepts nothing.
        match q.try_push(IngestOp::InsertLabels(Vec::new())) {
            Err(EngineError::IngestBackpressure { queued }) => assert_eq!(queued, 2),
            Err(other) => panic!("expected backpressure, got {other:?}"),
            Ok(_) => panic!("a full queue must not accept ops"),
        }
        assert_eq!(q.len(), 2, "a rejected try_push must not consume a slot");

        // The blocking push parks until the publisher side makes room,
        // then lands its op — nothing is dropped on either path.
        let q2 = q.clone();
        let blocked = std::thread::spawn(move || {
            q2.push(IngestOp::InsertLabels(Vec::new())).unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!blocked.is_finished(), "push on a full queue must block, not drop");
        let mut out = Vec::new();
        assert!(matches!(q.drain_into(&mut out, 1, None), Drained::Ops));
        blocked.join().unwrap();
        assert_eq!(q.len(), 2, "the parked push claimed the freed slot");

        // Closing fails producers but keeps queued ops drainable.
        q.close();
        assert!(matches!(
            q.push(IngestOp::InsertLabels(Vec::new())),
            Err(EngineError::IngestClosed)
        ));
        assert!(matches!(
            q.try_push(IngestOp::InsertLabels(Vec::new())),
            Err(EngineError::IngestClosed)
        ));
        out.clear();
        assert!(matches!(q.drain_into(&mut out, usize::MAX, None), Drained::Ops));
        assert_eq!(out.len(), 2);
        assert!(matches!(q.drain_into(&mut out, usize::MAX, None), Drained::Closed));
        drop(t_a);
    }

    #[test]
    fn pipeline_applies_ops_and_resolves_tickets_in_order() {
        let ex = paper_example();
        let fvl = shared_fvl();
        let (run, ids) = figure3_run(&ex);
        let labels = Fvl::new(&ex.spec).unwrap().labeler(&run).labels().to_vec();

        let writer = EngineWriter::from_fvl(fvl);
        let live = Arc::new(LiveEngine::new(writer.base().clone()));
        let pipeline = IngestPipeline::spawn(writer, live.clone(), PublishPolicy::default());
        let q = pipeline.queue().clone();

        let t1 = q.push(IngestOp::InsertLabels(labels.clone())).unwrap();
        let t2 = q.push(IngestOp::CompileView(ex.view_u2(), VariantKind::Default)).unwrap();
        // A structurally identical view from "another producer" dedups.
        let t3 = q.push(IngestOp::CompileView(ex.view_u2(), VariantKind::Default)).unwrap();
        let (s1, s2, s3) = (t1.wait().unwrap(), t2.wait().unwrap(), t3.wait().unwrap());
        assert!(s1 >= 1 && s2 >= s1 && s3 >= s2, "seqnos follow queue order");
        assert!(t1.apply_index().unwrap() < t2.apply_index().unwrap());
        assert!(t1.lag_ns().is_some());

        // The published generation answers Example 8.
        let gen = live.snapshot();
        assert!(gen.seqno() >= s3);
        let u2 =
            crate::registry::ViewRef { id: crate::registry::ViewId(0), kind: VariantKind::Default };
        let mut ws = WorkerScratch::new();
        let (a, b) = (crate::store::ItemId(ids.d17.0), crate::store::ItemId(ids.d31.0));
        assert_eq!(gen.try_query(&mut ws, u2, a, b).unwrap(), Some(true));

        let report = pipeline.shutdown();
        assert_eq!(report.stats.op_errors, 0);
        assert_eq!(report.stats.labels_ingested, labels.len() as u64);
        assert_eq!(report.writer.base().seqno(), live.snapshot().seqno());
        assert!(report.persist_error.is_none());
    }

    #[test]
    fn deadline_trigger_publishes_without_more_traffic() {
        let ex = paper_example();
        let fvl = shared_fvl();
        let writer = EngineWriter::from_fvl(fvl);
        let live = Arc::new(LiveEngine::new(writer.base().clone()));
        // Op/byte budgets far out of reach: only the deadline can fire.
        let policy = PublishPolicy {
            max_batch_ops: 1_000_000,
            max_batch_bytes: usize::MAX,
            max_delay: Duration::from_millis(5),
            ..PublishPolicy::default()
        };
        let pipeline = IngestPipeline::spawn(writer, live.clone(), policy);
        let t = pipeline.queue().push(IngestOp::AddView(ex.view_u1())).unwrap();
        let seq = t.wait().expect("deadline publish resolves the ticket");
        assert_eq!(live.seqno(), seq);
        pipeline.shutdown();
    }

    #[test]
    fn failed_ops_resolve_with_typed_errors_and_do_not_stall_the_pipeline() {
        let ex = paper_example();
        let fvl = shared_fvl();
        let writer = EngineWriter::from_fvl(fvl);
        let live = Arc::new(LiveEngine::new(writer.base().clone()));
        let pipeline = IngestPipeline::spawn(writer, live.clone(), PublishPolicy::default());
        let q = pipeline.queue().clone();

        // An unsafe compile fails its ticket with the FvlError…
        let bad = q.push(IngestOp::CompileView(ex.view_u1(), VariantKind::SpaceEfficient));
        // …while a later valid op still lands.
        let good = q.push(IngestOp::AddView(ex.view_u2())).unwrap();
        let outcome = bad.unwrap().wait();
        match outcome {
            Ok(_) => {
                // If the workload's U1 is safe for SpaceEfficient this arm
                // is legal; the pipeline-liveness half is what matters.
            }
            Err(IngestError::Compile(_)) => {}
            Err(other) => panic!("expected a compile error, got {other:?}"),
        }
        good.wait().unwrap();
        let report = pipeline.shutdown();
        assert!(report.persist_error.is_none());
    }
}
