//! The interned data-label store: dense [`ItemId`]s over trie-shared paths,
//! partitioned into copy-on-write shards.
//!
//! A provenance service holds the labels of *every* item of a run (often
//! millions) and serves queries against arbitrary pairs of them. Owning
//! [`DataLabel`]s store each parse-tree path as its own `Vec<EdgeLabel>`,
//! even though sibling labels share almost all of their edges — the paper
//! itself observes that "the size of φr(d) can be reduced almost by half by
//! factoring out the common prefix" (§4.2.2), and a run's labels
//! collectively share far more than pairwise prefixes.
//!
//! [`LabelStore`] exploits that: paths are interned into a trie keyed by
//! `(parent node, edge label)`, so every shared prefix is stored exactly
//! once per shard. A stored label is then two `(path node, port)` pairs,
//! and an [`ItemId`] is a dense index suitable for slicing, batching and
//! bitmap bookkeeping.
//!
//! # Sharding (the generational-engine contract)
//!
//! The store is a *persistent* (structure-sharing) data structure: items
//! are partitioned into fixed-capacity shards, each behind an `Arc`, and
//! the store itself is just the shard directory. The invariants
//! (DESIGN.md S10):
//!
//! * **Id ranges never straddle shards.** Every shard except the last
//!   holds exactly [`LabelStore::shard_capacity`] labels, so shard lookup
//!   is pure arithmetic (`id / capacity`) — no search, no extra memory
//!   traffic on the read path.
//! * **Trie prefix sharing is per-shard.** Each shard interns its own
//!   slice of the paths; nothing in a query ever reaches across shards,
//!   so a shard is immutable the moment it fills.
//! * **Cloning is O(#shards), mutating is O(touched shards).** `Clone`
//!   copies the directory (one refcount bump per shard); an insert batch
//!   `Arc::make_mut`s only the tail shard(s) it lands in. This is what
//!   turns the generational writer's publish from an O(n) blob copy into
//!   an O(touched) increment — publish latency stays flat as the store
//!   grows to millions of items (`update_throughput` bench).
//!
//! The on-disk format is *unchanged* from the single-blob store:
//! [`LabelStore::write_snapshot`] merges the per-shard tries back into the
//! one creation-order trie of the §5 wire format (byte-identical to what
//! the pre-shard store wrote, since labels are always interned in id
//! order), and [`LabelStore::read_snapshot`] re-shards on load. Old
//! streams load into sharded stores; new streams load in old readers.

use crate::error::EngineError;
use std::collections::HashMap;
use std::sync::Arc;
use wf_analysis::ProdGraph;
use wf_bitio::{BitReader, BitWriter};
use wf_core::{DataLabel, LabelCodec, LabelRef, PortLabel, PortRef};
use wf_model::{Grammar, ModuleId};
use wf_run::EdgeLabel;
use wf_snapshot::{edge_target_module, SnapshotError};

/// Dense id of a stored data label (assigned in insertion order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ItemId(pub u32);

/// Sentinel parent of the trie root (the empty path).
const ROOT: u32 = u32::MAX;

/// One stored label: `(path node, port)` per side, `None` mirroring
/// [`DataLabel`]'s boundary cases. Path nodes index the owning shard's
/// trie.
#[derive(Clone, Copy, Debug)]
struct StoredLabel {
    out: Option<(u32, u8)>,
    inp: Option<(u32, u8)>,
}

/// One fixed-capacity slice of the store: its labels plus the trie their
/// paths are interned into. Shards never reference one another, so a full
/// shard is immutable forever and shares structure across every generation
/// that contains it.
#[derive(Clone, Default)]
struct Shard {
    /// Trie node → (parent node, edge). Node ids are creation-ordered and
    /// local to this shard.
    nodes: Vec<(u32, EdgeLabel)>,
    /// `(parent, edge) → node` — the interning index.
    intern: HashMap<(u32, EdgeLabel), u32>,
    labels: Vec<StoredLabel>,
    /// Total edges across this shard's labels *before* sharing (metric).
    raw_edges: usize,
}

impl Shard {
    fn try_intern_path(&mut self, path: &[EdgeLabel], cap: u32) -> Result<u32, EngineError> {
        let mut cur = ROOT;
        for &e in path {
            cur = match self.intern.get(&(cur, e)) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len() as u32;
                    if n >= cap {
                        return Err(EngineError::StoreFull {
                            what: "trie node",
                            capacity: cap as u64,
                        });
                    }
                    self.nodes.push((cur, e));
                    self.intern.insert((cur, e), n);
                    n
                }
            };
        }
        Ok(cur)
    }

    /// Writes the root→node path into `buf` (cleared first). Reusable-buffer
    /// form: the serving path materializes into per-worker scratch vectors.
    fn write_path(&self, mut node: u32, buf: &mut Vec<EdgeLabel>) {
        buf.clear();
        while node != ROOT {
            let (parent, e) = self.nodes[node as usize];
            buf.push(e);
            node = parent;
        }
        buf.reverse();
    }
}

/// Interned label storage with shared-prefix paths and dense item ids,
/// partitioned into copy-on-write shards (see the module docs).
///
/// Cloning a store is the copy-on-write step of the generational engine:
/// the clone shares every shard with the original, so a writer can keep
/// interning into its copy — un-sharing only the shards it touches —
/// while readers serve from the original.
#[derive(Clone)]
pub struct LabelStore {
    /// The shard directory. Every shard but the last holds exactly
    /// `shard_capacity` labels.
    shards: Vec<Arc<Shard>>,
    shard_capacity: u32,
    /// Total stored labels (cached; equals the sum of shard lengths).
    len: usize,
}

impl LabelStore {
    /// Items per shard for stores built with [`LabelStore::new`]. A
    /// publish pays one ≤-capacity tail-shard copy plus an n/capacity
    /// directory clone; the directory clone's per-shard constant (Arc
    /// traffic on stage, publish and generation drop) is what shows up
    /// at the million-item end of the bench sweep, so the default sits
    /// above √n: 4096 keeps a 10⁶-item store at 256 shards and the
    /// whole cycle in the tens of microseconds at every swept size.
    pub const DEFAULT_SHARD_CAPACITY: u32 = 4096;

    pub fn new() -> Self {
        Self::with_shard_capacity(Self::DEFAULT_SHARD_CAPACITY)
    }

    /// A store whose shards hold `shard_capacity` labels each. Tiny
    /// capacities exercise shard boundaries in tests; `u32::MAX`
    /// effectively disables sharding (one ever-growing shard — the
    /// pre-shard store, used as the bench baseline and the differential
    /// reference).
    pub fn with_shard_capacity(shard_capacity: u32) -> Self {
        assert!(shard_capacity >= 1, "shard capacity must be at least 1");
        Self { shards: Vec::new(), shard_capacity, len: 0 }
    }

    /// Items per shard of this store.
    pub fn shard_capacity(&self) -> u32 {
        self.shard_capacity
    }

    /// Number of shards currently in the directory.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// How many shards the id range `base_len..self.len()` spans — the
    /// shards a writer that staged exactly that increment had to touch
    /// (copy, or freshly create). What the `update_throughput` bench
    /// reports along its "touched shards" axis.
    pub fn shards_touched_since(&self, base_len: usize) -> usize {
        if self.len <= base_len {
            return 0;
        }
        let cap = self.shard_capacity as usize;
        (self.len - 1) / cap - base_len / cap + 1
    }

    /// Interns one label; returns its dense id. Insertion order defines the
    /// id sequence, so inserting a run's labels in data-item order makes
    /// `ItemId(i)` coincide with the run's `DataId(i)`.
    ///
    /// Panics if the store's `u32` id space is exhausted (≈ 4 × 10⁹ trie
    /// nodes or labels) — [`LabelStore::try_insert`] is the non-panicking
    /// form for ingest services that must survive a full store.
    pub fn insert(&mut self, d: &DataLabel) -> ItemId {
        self.try_insert(d).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`LabelStore::insert`] with the capacity contract surfaced as a
    /// typed [`EngineError::StoreFull`] instead of a panic. A failed insert
    /// stores no label; path nodes interned before the overflow was
    /// detected remain in the tail shard's trie (they are consistent and
    /// re-usable — the next successful insert of a sharing label picks
    /// them up).
    pub fn try_insert(&mut self, d: &DataLabel) -> Result<ItemId, EngineError> {
        self.try_insert_bounded(d, ROOT)
    }

    /// Capacity-parameterized core of [`LabelStore::try_insert`]; `cap` is
    /// `ROOT` in production and tiny in tests (a 2³²-node trie cannot be
    /// built to exercise the overflow path for real). `cap` bounds the
    /// total label count and each shard's trie node count.
    pub(crate) fn try_insert_bounded(
        &mut self,
        d: &DataLabel,
        cap: u32,
    ) -> Result<ItemId, EngineError> {
        if self.len as u64 >= cap as u64 {
            return Err(EngineError::StoreFull { what: "label id", capacity: cap as u64 });
        }
        let id = ItemId(self.len as u32);
        // Open a fresh shard when the tail is at capacity — never earlier,
        // so every non-tail shard is exactly full and id→shard stays pure
        // arithmetic.
        if self.shards.last().is_none_or(|s| s.labels.len() as u64 >= self.shard_capacity as u64) {
            self.shards.push(Arc::new(Shard::default()));
        }
        let tail = self.shards.last_mut().expect("tail shard was just ensured");
        // The copy-on-write step: the first insert into a shard some
        // published generation still shares pays the copy; every later
        // insert finds the Arc unique and mutates in place.
        let shard = Arc::make_mut(tail);
        let out = match &d.out {
            Some(p) => Some((shard.try_intern_path(&p.path, cap)?, p.port)),
            None => None,
        };
        let inp = match &d.inp {
            Some(p) => Some((shard.try_intern_path(&p.path, cap)?, p.port)),
            None => None,
        };
        // Count raw edges only once the label is definitely stored, so a
        // rejected insert cannot skew the sharing metric.
        shard.raw_edges +=
            d.out.as_ref().map_or(0, |p| p.path.len()) + d.inp.as_ref().map_or(0, |p| p.path.len());
        shard.labels.push(StoredLabel { out, inp });
        self.len += 1;
        Ok(id)
    }

    /// Interns a slice of labels, returning their ids (in order). Panics on
    /// id-space exhaustion, like [`LabelStore::insert`].
    pub fn insert_all(&mut self, labels: &[DataLabel]) -> Vec<ItemId> {
        labels.iter().map(|d| self.insert(d)).collect()
    }

    /// Non-panicking [`LabelStore::insert_all`]: stops at the first label
    /// that cannot be interned, leaving every earlier label stored. The
    /// error is [`EngineError::BatchStoreFull`], carrying the index of the
    /// label that failed — `labels[..index]` are stored, so a caller can
    /// retry `labels[index..]` against a fresh store (or shard) without
    /// double-inserting the prefix.
    pub fn try_insert_all(&mut self, labels: &[DataLabel]) -> Result<Vec<ItemId>, EngineError> {
        self.try_insert_all_bounded(labels, ROOT)
    }

    /// Capacity-parameterized core of [`LabelStore::try_insert_all`] (see
    /// [`LabelStore::try_insert_bounded`]).
    pub(crate) fn try_insert_all_bounded(
        &mut self,
        labels: &[DataLabel],
        cap: u32,
    ) -> Result<Vec<ItemId>, EngineError> {
        labels
            .iter()
            .enumerate()
            .map(|(index, d)| self.try_insert_bounded(d, cap).map_err(|e| e.at_batch_index(index)))
            .collect()
    }

    /// Number of stored labels.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(stored trie edges, raw label edges)` across all shards — how much
    /// the shared-prefix tries saved over per-label path storage.
    pub fn edge_stats(&self) -> (usize, usize) {
        self.shards
            .iter()
            .fold((0, 0), |(nodes, raw), s| (nodes + s.nodes.len(), raw + s.raw_edges))
    }

    /// The shard holding `id`, and `id`'s label index within it.
    fn locate(&self, id: ItemId) -> (&Shard, usize) {
        let shard = &self.shards[(id.0 / self.shard_capacity) as usize];
        (shard, (id.0 % self.shard_capacity) as usize)
    }

    /// A borrowed [`LabelRef`] over caller-owned path buffers — the form
    /// [`wf_core::pi_with`] consumes. Ports are copied; paths are
    /// materialized into `out_buf` / `inp_buf` (tiny: label paths are
    /// `O(|Δ|)` long, Lemma 4 — reachability matrices dwarf this). Shard
    /// lookup is one divide; the walk itself touches a single shard.
    pub fn label_ref<'b>(
        &self,
        id: ItemId,
        out_buf: &'b mut Vec<EdgeLabel>,
        inp_buf: &'b mut Vec<EdgeLabel>,
    ) -> LabelRef<'b> {
        let (shard, local) = self.locate(id);
        let stored = shard.labels[local];
        let out = stored.out.map(|(node, port)| {
            shard.write_path(node, out_buf);
            PortRef { path: &*out_buf, port }
        });
        let inp = stored.inp.map(|(node, port)| {
            shard.write_path(node, inp_buf);
            PortRef { path: &*inp_buf, port }
        });
        LabelRef { out, inp }
    }

    /// Serializes the store in the v1 (pre-shard) wire format: the trie
    /// nodes in creation order (so shared prefixes stay shared on disk —
    /// each node is its parent link plus one edge in the §5 wire format),
    /// then the dense label table, then the raw-edge metric. Per-shard
    /// tries are merged back into one creation-order trie by re-interning
    /// every label in id order — labels are only ever interned in id
    /// order, so the merged trie is *identical* to what the pre-shard
    /// store wrote and snapshots stay byte-compatible in both directions.
    /// Node references use a γ-coded `root+1 / node+2` scheme because a
    /// stored path can legitimately be the *empty* path (boundary items of
    /// the start production point at the trie root).
    pub fn write_snapshot(&self, codec: &LabelCodec, w: &mut BitWriter) {
        let mut merged = Shard::default();
        let mut labels: Vec<StoredLabel> = Vec::with_capacity(self.len);
        let mut buf = Vec::new();
        let mut raw_edges = 0usize;
        for shard in &self.shards {
            raw_edges += shard.raw_edges;
            for l in &shard.labels {
                let mut side = |side: Option<(u32, u8)>| {
                    side.map(|(node, port)| {
                        shard.write_path(node, &mut buf);
                        let n = merged
                            .try_intern_path(&buf, ROOT)
                            .expect("merged trie cannot exceed the per-shard id space");
                        (n, port)
                    })
                };
                let (out, inp) = (side(l.out), side(l.inp));
                labels.push(StoredLabel { out, inp });
            }
        }
        w.write_gamma(merged.nodes.len() as u64 + 1);
        for &(parent, e) in &merged.nodes {
            w.write_gamma(node_code(parent));
            codec.write_edge(w, &e);
        }
        w.write_gamma(labels.len() as u64 + 1);
        for l in &labels {
            for side in [l.out, l.inp] {
                w.push_bit(side.is_some());
                if let Some((node, port)) = side {
                    w.write_gamma(node_code(node));
                    w.write_bits(port as u64, 8);
                }
            }
        }
        w.write_gamma(raw_edges as u64 + 1);
    }

    /// Inverse of [`LabelStore::write_snapshot`], re-sharding at
    /// [`LabelStore::DEFAULT_SHARD_CAPACITY`] — see
    /// [`LabelStore::read_snapshot_with_capacity`].
    pub fn read_snapshot(
        r: &mut BitReader<'_>,
        codec: &LabelCodec,
        grammar: &Grammar,
        pg: &ProdGraph,
    ) -> Result<Self, SnapshotError> {
        Self::read_snapshot_with_capacity(r, codec, grammar, pg, Self::DEFAULT_SHARD_CAPACITY)
    }

    /// Inverse of [`LabelStore::write_snapshot`]. The wire format carries
    /// one merged trie; the store is rebuilt by re-interning every decoded
    /// label into shards of `shard_capacity` (insertion order is id order,
    /// so ids come back identical). Decoding also validates the trie:
    /// forward parent references and duplicate `(parent, edge)` keys are
    /// rejected as malformed. Every edge's fields are range-checked
    /// against the grammar and every stored port against its path's
    /// terminal module, so nothing a later query indexes with can be out
    /// of range — bad bytes fail *here*, typed, not inside π.
    pub fn read_snapshot_with_capacity(
        r: &mut BitReader<'_>,
        codec: &LabelCodec,
        grammar: &Grammar,
        pg: &ProdGraph,
        shard_capacity: u32,
    ) -> Result<Self, SnapshotError> {
        let cycles = pg
            .cycles()
            .map_err(|_| SnapshotError::Malformed("production graph has no cycle tables"))?;
        let node_count = (r.read_gamma()? - 1) as usize;
        if node_count >= ROOT as usize {
            return Err(SnapshotError::Malformed("trie larger than the id space"));
        }
        let mut nodes = Vec::with_capacity(node_count.min(1 << 20));
        let mut intern = HashMap::with_capacity(node_count.min(1 << 20));
        // The module each trie node's path ends at — what its labels' ports
        // index into (the empty path, i.e. the root, ends at the start
        // module).
        let mut node_module: Vec<ModuleId> = Vec::with_capacity(node_count.min(1 << 20));
        for n in 0..node_count {
            let parent = decode_node(r.read_gamma()?, n)?;
            let e = codec.read_edge(r)?;
            // Each edge must continue its parent's path — the chaining rule
            // shared with the delta-label reader
            // ([`wf_snapshot::edge_target_module`]); without it a forged
            // trie would feed π mismatched matrix dimensions.
            let parent_module =
                if parent == ROOT { grammar.start() } else { node_module[parent as usize] };
            let module = edge_target_module(grammar, cycles, parent_module, e)?;
            if intern.insert((parent, e), n as u32).is_some() {
                return Err(SnapshotError::Malformed("duplicate trie edge"));
            }
            nodes.push((parent, e));
            node_module.push(module);
        }
        let module_of =
            |node: u32| if node == ROOT { grammar.start() } else { node_module[node as usize] };
        let path_of = |mut node: u32| {
            let mut path = Vec::new();
            while node != ROOT {
                let (parent, e) = nodes[node as usize];
                path.push(e);
                node = parent;
            }
            path.reverse();
            path
        };
        let label_count = (r.read_gamma()? - 1) as usize;
        let mut store = Self::with_shard_capacity(shard_capacity);
        for _ in 0..label_count {
            let side = |r: &mut BitReader<'_>,
                        outputs: bool|
             -> Result<Option<(u32, u8)>, SnapshotError> {
                if !r.read_bit()? {
                    return Ok(None);
                }
                let node = decode_node(r.read_gamma()?, node_count)?;
                let port = r.read_bits(8)? as u8;
                let sig = grammar.sig(module_of(node));
                let arity = if outputs { sig.outputs() } else { sig.inputs() };
                if port as usize >= arity {
                    return Err(SnapshotError::Malformed("label port out of range"));
                }
                Ok(Some((node, port)))
            };
            let out = side(r, true)?;
            let inp = side(r, false)?;
            if out.is_none() && inp.is_none() {
                return Err(SnapshotError::Malformed("label with no endpoint"));
            }
            let d = DataLabel {
                out: out.map(|(node, port)| PortLabel::new(path_of(node), port)),
                inp: inp.map(|(node, port)| PortLabel::new(path_of(node), port)),
            };
            store
                .try_insert(&d)
                .map_err(|_| SnapshotError::Malformed("store overflow while re-sharding"))?;
        }
        let raw_edges = (r.read_gamma()? - 1) as usize;
        // The metric is a pure function of the stored labels; a stream
        // whose recorded value disagrees with the labels it carries was
        // not written by any honest writer.
        if store.edge_stats().1 != raw_edges {
            return Err(SnapshotError::Malformed("raw edge metric disagrees with stored labels"));
        }
        Ok(store)
    }

    /// Rebuilds the owning [`DataLabel`] (allocates; diagnostics and tests).
    pub fn materialize(&self, id: ItemId) -> DataLabel {
        let (shard, local) = self.locate(id);
        let stored = shard.labels[local];
        let port = |(node, port): (u32, u8)| {
            let mut path = Vec::new();
            shard.write_path(node, &mut path);
            PortLabel::new(path, port)
        };
        DataLabel { out: stored.out.map(port), inp: stored.inp.map(port) }
    }
}

impl Default for LabelStore {
    fn default() -> Self {
        Self::new()
    }
}

/// γ-friendly code of a trie node reference: `1` for the root sentinel,
/// `node + 2` otherwise (γ codes positive integers only).
fn node_code(node: u32) -> u64 {
    if node == ROOT {
        1
    } else {
        node as u64 + 2
    }
}

/// Inverse of [`node_code`]; `bound` is the number of already-known nodes,
/// so parents reference strictly earlier nodes and labels reference any
/// node of the finished trie.
fn decode_node(code: u64, bound: usize) -> Result<u32, SnapshotError> {
    if code == 1 {
        return Ok(ROOT);
    }
    let node = code - 2;
    if node >= bound as u64 {
        return Err(SnapshotError::Malformed("trie node reference out of range"));
    }
    Ok(node as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_core::Fvl;
    use wf_model::fixtures::paper_example;
    use wf_run::fixtures::figure3_run;

    #[test]
    fn roundtrips_every_figure3_label() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let mut store = LabelStore::new();
        let ids = store.insert_all(labeler.labels());
        assert_eq!(store.len(), run.item_count());
        for (i, d) in labeler.labels().iter().enumerate() {
            assert_eq!(&store.materialize(ids[i]), d, "item {i}");
        }
    }

    /// The same roundtrip with a shard capacity small enough that every
    /// shard boundary of the Figure 3 run is crossed: ids stay dense,
    /// non-tail shards are exactly full, and every label materializes
    /// identically from whichever shard it landed in.
    #[test]
    fn tiny_shards_roundtrip_across_boundaries() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        for cap in [1u32, 2, 3, 7] {
            let mut store = LabelStore::with_shard_capacity(cap);
            let ids = store.insert_all(labeler.labels());
            let n = labeler.labels().len();
            assert_eq!(store.len(), n);
            assert_eq!(store.shard_count(), n.div_ceil(cap as usize), "cap {cap}");
            for (i, d) in labeler.labels().iter().enumerate() {
                assert_eq!(&store.materialize(ids[i]), d, "cap {cap} item {i}");
            }
            let (mut ob, mut ib) = (Vec::new(), Vec::new());
            for (i, d) in labeler.labels().iter().enumerate() {
                let r = store.label_ref(ids[i], &mut ob, &mut ib);
                assert_eq!(r.out.is_some(), d.out.is_some(), "cap {cap} item {i}");
                assert_eq!(r.inp.is_some(), d.inp.is_some(), "cap {cap} item {i}");
            }
        }
    }

    /// Cloning shares every shard; inserting into the clone un-shares only
    /// the tail — the O(touched) contract the generational writer's
    /// publish cost rests on.
    #[test]
    fn clone_shares_shards_and_insert_touches_only_the_tail() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labels = fvl.labeler(&run).labels().to_vec();
        let mut store = LabelStore::with_shard_capacity(8);
        store.insert_all(&labels);
        let shard_count = store.shard_count();
        assert!(shard_count >= 3, "the Figure 3 run should span several 8-item shards");

        let mut staged = store.clone();
        for (a, b) in store.shards.iter().zip(&staged.shards) {
            assert!(Arc::ptr_eq(a, b), "a clone must share every shard");
        }
        let base_len = store.len();
        staged.insert(&labels[0]);
        let touched = staged.shards_touched_since(base_len);
        assert!(touched <= 2, "one insert touches at most the tail and a fresh shard");
        // Every full shard below the touched range is still the same Arc.
        let untouched = staged.shard_count() - touched;
        for (a, b) in store.shards.iter().zip(&staged.shards).take(untouched) {
            assert!(Arc::ptr_eq(a, b), "inserts must not copy untouched shards");
        }
        // The original is unaffected (readers never see staged state).
        assert_eq!(store.len(), base_len);
    }

    #[test]
    fn label_refs_match_owned_refs() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let mut store = LabelStore::new();
        let ids = store.insert_all(labeler.labels());
        let (mut ob, mut ib) = (Vec::new(), Vec::new());
        for (i, d) in labeler.labels().iter().enumerate() {
            let r = store.label_ref(ids[i], &mut ob, &mut ib);
            assert_eq!(r.out.is_some(), d.out.is_some());
            if let (Some(stored), Some(owned)) = (r.out, d.out.as_ref()) {
                assert_eq!(stored.path, &owned.path[..]);
                assert_eq!(stored.port, owned.port);
            }
            if let (Some(stored), Some(owned)) = (r.inp, d.inp.as_ref()) {
                assert_eq!(stored.path, &owned.path[..]);
                assert_eq!(stored.port, owned.port);
            }
        }
    }

    #[test]
    fn snapshot_roundtrips_store_and_rebuilds_intern() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let mut store = LabelStore::new();
        let ids = store.insert_all(labeler.labels());

        let mut w = BitWriter::new();
        store.write_snapshot(fvl.codec(), &mut w);
        let bits = w.finish();
        let pg = fvl.prod_graph();
        let mut r = BitReader::new(&bits);
        let back = LabelStore::read_snapshot(&mut r, fvl.codec(), &ex.spec.grammar, pg).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back.len(), store.len());
        assert_eq!(back.edge_stats(), store.edge_stats());
        for &id in &ids {
            assert_eq!(back.materialize(id), store.materialize(id), "{id:?}");
        }
        // The rebuilt intern map must keep interning consistently: inserting
        // an existing label afresh reuses the shared trie (no new nodes).
        let mut grown = back;
        let (nodes_before, _) = grown.edge_stats();
        grown.insert(&store.materialize(ids[0]));
        assert_eq!(grown.edge_stats().0, nodes_before, "re-insert must not grow the trie");
    }

    /// The wire format is shard-agnostic: a store sliced into tiny shards
    /// serializes to the exact bytes the single-shard (pre-shard, PR-5)
    /// store writes, and both load back answer-identically at any
    /// capacity. This is the byte-compatibility contract of DESIGN.md S10.
    #[test]
    fn snapshot_bytes_are_identical_across_shard_capacities() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labels = fvl.labeler(&run).labels().to_vec();
        let snapshot = |cap: u32| {
            let mut store = LabelStore::with_shard_capacity(cap);
            store.insert_all(&labels);
            let mut w = BitWriter::new();
            store.write_snapshot(fvl.codec(), &mut w);
            w.finish()
        };
        let single = snapshot(u32::MAX);
        for cap in [1u32, 3, 8] {
            assert_eq!(snapshot(cap), single, "cap {cap} must write identical bytes");
        }
        // Loading re-shards at the requested capacity without changing any
        // label.
        let pg = fvl.prod_graph();
        let mut r = BitReader::new(&single);
        let back =
            LabelStore::read_snapshot_with_capacity(&mut r, fvl.codec(), &ex.spec.grammar, pg, 3)
                .unwrap();
        assert_eq!(back.shard_capacity(), 3);
        assert_eq!(back.shard_count(), labels.len().div_ceil(3));
        for (i, d) in labels.iter().enumerate() {
            assert_eq!(&back.materialize(ItemId(i as u32)), d, "item {i}");
        }
    }

    #[test]
    fn snapshot_rejects_structural_corruption() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let g = &ex.spec.grammar;
        let pg = fvl.prod_graph();
        let read = |bits: &wf_bitio::BitVec| {
            LabelStore::read_snapshot(&mut BitReader::new(bits), fvl.codec(), g, pg)
        };
        // A forward parent reference (node 0 pointing at node 5) is invalid.
        let mut w = BitWriter::new();
        w.write_gamma(2); // one node
        w.write_gamma(7); // parent = 5: out of range for node 0
        fvl.codec().write_edge(&mut w, &EdgeLabel::Plain { k: wf_model::ProdId(0), i: 0 });
        assert!(matches!(read(&w.finish()), Err(SnapshotError::Malformed(_))));
        // A label with neither endpoint is invalid.
        let mut w = BitWriter::new();
        w.write_gamma(1); // zero nodes
        w.write_gamma(2); // one label
        w.push_bit(false);
        w.push_bit(false);
        w.write_gamma(1);
        assert!(matches!(read(&w.finish()), Err(SnapshotError::Malformed(_))));
        // An edge whose position is past its own production's RHS is
        // invalid even though it fits the codec's fixed field width (sized
        // by the grammar-wide maximum RHS).
        let (k_small, n_small) = g
            .productions()
            .map(|(k, p)| (k, p.rhs.node_count()))
            .find(|&(_, n)| n < g.max_rhs_len())
            .expect("paper grammar has productions below the max RHS length");
        let mut w = BitWriter::new();
        w.write_gamma(2); // one node
        w.write_gamma(1); // parent = root
        fvl.codec().write_edge(&mut w, &EdgeLabel::Plain { k: k_small, i: n_small as u32 });
        w.write_gamma(1); // zero labels
        w.write_gamma(1);
        assert!(matches!(read(&w.finish()), Err(SnapshotError::Malformed(_))));
        // A boundary label whose port is past the start module's arity is
        // invalid (ports index signature matrices at query time).
        let mut w = BitWriter::new();
        w.write_gamma(1); // zero nodes
        w.write_gamma(2); // one label
        w.push_bit(false); // no out side
        w.push_bit(true); // inp side at the root...
        w.write_gamma(1); // ...node = ROOT (empty path, start module)
        w.write_bits(200, 8); // ...port 200
        w.write_gamma(1);
        assert!(matches!(read(&w.finish()), Err(SnapshotError::Malformed(_))));
        // A lying raw-edge metric (the labels sum to something else) is
        // invalid: the metric is derivable, so a mismatch proves forgery.
        let ex_store = {
            let (run, _) = figure3_run(&ex);
            let labeler = fvl.labeler(&run);
            let mut s = LabelStore::new();
            s.insert_all(labeler.labels());
            s
        };
        let mut w = BitWriter::new();
        ex_store.write_snapshot(fvl.codec(), &mut w);
        let honest = w.finish();
        // Rewrite just the trailing metric.
        let mut r = BitReader::new(&honest);
        let mut forged = BitWriter::new();
        let node_count = r.read_gamma().unwrap() - 1;
        forged.write_gamma(node_count + 1);
        for _ in 0..node_count {
            forged.write_gamma(r.read_gamma().unwrap());
            let e = fvl.codec().read_edge(&mut r).unwrap();
            fvl.codec().write_edge(&mut forged, &e);
        }
        let label_count = r.read_gamma().unwrap() - 1;
        forged.write_gamma(label_count + 1);
        for _ in 0..label_count {
            for _ in 0..2 {
                let present = r.read_bit().unwrap();
                forged.push_bit(present);
                if present {
                    forged.write_gamma(r.read_gamma().unwrap());
                    forged.write_bits(r.read_bits(8).unwrap(), 8);
                }
            }
        }
        let true_metric = r.read_gamma().unwrap();
        forged.write_gamma(true_metric + 100);
        assert!(matches!(read(&forged.finish()), Err(SnapshotError::Malformed(_))));
    }

    /// Id-space exhaustion must surface as a typed [`EngineError::StoreFull`]
    /// through the `try_*` path (the panicking forms document the same
    /// contract). A 2³²-node trie cannot be built in a test, so the
    /// capacity-parameterized core is exercised with a tiny bound; the
    /// public path uses the same code with `cap = ROOT`.
    #[test]
    fn overflow_is_a_typed_error_through_try_insert() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let labels = labeler.labels();

        // A bound big enough for the first label but not the whole run.
        let mut store = LabelStore::new();
        let mut full = None;
        for (i, d) in labels.iter().enumerate() {
            match store.try_insert_bounded(d, 4) {
                Ok(id) => assert_eq!(id.0 as usize, i, "ids stay dense until overflow"),
                Err(e) => {
                    assert!(
                        matches!(e, EngineError::StoreFull { capacity: 4, .. }),
                        "expected StoreFull, got {e:?}"
                    );
                    full = Some(i);
                    break;
                }
            }
        }
        let failed_at = full.expect("a 4-node budget cannot hold the Figure 3 run");
        // The failed insert stored no label; the store stays consistent
        // and serviceable (earlier labels still materialize).
        assert_eq!(store.len(), failed_at);
        for (i, d) in labels.iter().enumerate().take(failed_at) {
            assert_eq!(&store.materialize(ItemId(i as u32)), d);
        }
        // The unbounded path accepts the same labels fine.
        assert!(store.try_insert(&labels[failed_at]).is_ok());
    }

    /// Batch inserts report *which* label hit the capacity wall — the
    /// regression pin for the retry contract, placed at an exact shard
    /// boundary so the failing index is also the first id of a shard that
    /// never got created.
    #[test]
    fn batch_overflow_reports_the_failing_index_at_a_shard_boundary() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labels = fvl.labeler(&run).labels().to_vec();
        assert!(labels.len() >= 6, "the Figure 3 run has enough labels for two shards");

        // Shards of 2, id budget of exactly 4: the batch fails at index 4,
        // precisely where shard 2 would have to open.
        let mut store = LabelStore::with_shard_capacity(2);
        let err = store.try_insert_all_bounded(&labels, 4).expect_err("the budget must run out");
        match err {
            EngineError::BatchStoreFull { index, what, capacity } => {
                assert_eq!(index, 4, "the failing label's batch index");
                assert_eq!(what, "label id");
                assert_eq!(capacity, 4);
            }
            other => panic!("expected BatchStoreFull, got {other:?}"),
        }
        // The prefix is stored: exactly two full shards, ids 0..4.
        assert_eq!(store.len(), 4);
        assert_eq!(store.shard_count(), 2);
        for (i, d) in labels.iter().enumerate().take(4) {
            assert_eq!(&store.materialize(ItemId(i as u32)), d);
        }
        // The reported index is exactly where the caller resumes: retrying
        // `labels[index..]` stores the remainder with densely continuing
        // ids and no duplicates.
        let resumed = store.try_insert_all(&labels[4..]).expect("an unbounded retry succeeds");
        assert_eq!(resumed.first(), Some(&ItemId(4)));
        assert_eq!(store.len(), labels.len());
        for (i, d) in labels.iter().enumerate() {
            assert_eq!(&store.materialize(ItemId(i as u32)), d);
        }
    }

    #[test]
    fn trie_shares_prefixes() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let mut store = LabelStore::new();
        store.insert_all(labeler.labels());
        let (stored, raw) = store.edge_stats();
        assert!(
            stored * 2 < raw,
            "trie should at least halve path storage: {stored} stored vs {raw} raw"
        );
    }
}
