//! The interned data-label store: dense [`ItemId`]s over trie-shared paths.
//!
//! A provenance service holds the labels of *every* item of a run (often
//! millions) and serves queries against arbitrary pairs of them. Owning
//! [`DataLabel`]s store each parse-tree path as its own `Vec<EdgeLabel>`,
//! even though sibling labels share almost all of their edges — the paper
//! itself observes that "the size of φr(d) can be reduced almost by half by
//! factoring out the common prefix" (§4.2.2), and a run's labels
//! collectively share far more than pairwise prefixes.
//!
//! [`LabelStore`] exploits that: paths are interned into a trie keyed by
//! `(parent node, edge label)`, so every shared prefix — within one label,
//! across labels, across the whole run — is stored exactly once. A stored
//! label is then two `(path node, port)` pairs, and an [`ItemId`] is a dense
//! index suitable for slicing, batching and bitmap bookkeeping.

use crate::error::EngineError;
use std::collections::HashMap;
use wf_analysis::ProdGraph;
use wf_bitio::{BitReader, BitWriter};
use wf_core::{DataLabel, LabelCodec, LabelRef, PortLabel, PortRef};
use wf_model::{Grammar, ModuleId};
use wf_run::EdgeLabel;
use wf_snapshot::{edge_target_module, SnapshotError};

/// Dense id of a stored data label (assigned in insertion order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ItemId(pub u32);

/// Sentinel parent of the trie root (the empty path).
const ROOT: u32 = u32::MAX;

/// One stored label: `(path node, port)` per side, `None` mirroring
/// [`DataLabel`]'s boundary cases.
#[derive(Clone, Copy, Debug)]
struct StoredLabel {
    out: Option<(u32, u8)>,
    inp: Option<(u32, u8)>,
}

/// Interned label storage with shared-prefix paths and dense item ids.
///
/// Cloning a store is the copy-on-write step of the generational engine:
/// the clone shares nothing, so a writer can keep interning into its copy
/// while readers serve from the original.
#[derive(Clone)]
pub struct LabelStore {
    /// Trie node → (parent node, edge). Node ids are creation-ordered.
    nodes: Vec<(u32, EdgeLabel)>,
    /// `(parent, edge) → node` — the interning index.
    intern: HashMap<(u32, EdgeLabel), u32>,
    labels: Vec<StoredLabel>,
    /// Total edges across all inserted labels *before* sharing (metric).
    raw_edges: usize,
}

impl LabelStore {
    pub fn new() -> Self {
        Self { nodes: Vec::new(), intern: HashMap::new(), labels: Vec::new(), raw_edges: 0 }
    }

    /// Interns one label; returns its dense id. Insertion order defines the
    /// id sequence, so inserting a run's labels in data-item order makes
    /// `ItemId(i)` coincide with the run's `DataId(i)`.
    ///
    /// Panics if the store's `u32` id space is exhausted (≈ 4 × 10⁹ trie
    /// nodes or labels) — [`LabelStore::try_insert`] is the non-panicking
    /// form for ingest services that must survive a full store.
    pub fn insert(&mut self, d: &DataLabel) -> ItemId {
        self.try_insert(d).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`LabelStore::insert`] with the capacity contract surfaced as a
    /// typed [`EngineError::StoreFull`] instead of a panic. A failed insert
    /// stores no label; path nodes interned before the overflow was
    /// detected remain in the trie (they are consistent and re-usable —
    /// the next successful insert of a sharing label picks them up).
    pub fn try_insert(&mut self, d: &DataLabel) -> Result<ItemId, EngineError> {
        self.try_insert_bounded(d, ROOT)
    }

    /// Capacity-parameterized core of [`LabelStore::try_insert`]; `cap` is
    /// `ROOT` in production and tiny in tests (a 2³²-node trie cannot be
    /// built to exercise the overflow path for real).
    pub(crate) fn try_insert_bounded(
        &mut self,
        d: &DataLabel,
        cap: u32,
    ) -> Result<ItemId, EngineError> {
        if self.labels.len() as u64 >= cap as u64 {
            return Err(EngineError::StoreFull { what: "label id", capacity: cap as u64 });
        }
        let id = ItemId(self.labels.len() as u32);
        let out = match &d.out {
            Some(p) => Some((self.try_intern_path(&p.path, cap)?, p.port)),
            None => None,
        };
        let inp = match &d.inp {
            Some(p) => Some((self.try_intern_path(&p.path, cap)?, p.port)),
            None => None,
        };
        // Count raw edges only once the label is definitely stored, so a
        // rejected insert cannot skew the sharing metric.
        self.raw_edges +=
            d.out.as_ref().map_or(0, |p| p.path.len()) + d.inp.as_ref().map_or(0, |p| p.path.len());
        self.labels.push(StoredLabel { out, inp });
        Ok(id)
    }

    /// Interns a slice of labels, returning their ids (in order). Panics on
    /// id-space exhaustion, like [`LabelStore::insert`].
    pub fn insert_all(&mut self, labels: &[DataLabel]) -> Vec<ItemId> {
        labels.iter().map(|d| self.insert(d)).collect()
    }

    /// Non-panicking [`LabelStore::insert_all`]: stops at the first label
    /// that cannot be interned, leaving every earlier label stored.
    pub fn try_insert_all(&mut self, labels: &[DataLabel]) -> Result<Vec<ItemId>, EngineError> {
        labels.iter().map(|d| self.try_insert(d)).collect()
    }

    fn try_intern_path(&mut self, path: &[EdgeLabel], cap: u32) -> Result<u32, EngineError> {
        let mut cur = ROOT;
        for &e in path {
            cur = match self.intern.get(&(cur, e)) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len() as u32;
                    if n >= cap {
                        return Err(EngineError::StoreFull {
                            what: "trie node",
                            capacity: cap as u64,
                        });
                    }
                    self.nodes.push((cur, e));
                    self.intern.insert((cur, e), n);
                    n
                }
            };
        }
        Ok(cur)
    }

    /// Number of stored labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// `(stored trie edges, raw label edges)` — how much the shared-prefix
    /// trie saved over per-label path storage.
    pub fn edge_stats(&self) -> (usize, usize) {
        (self.nodes.len(), self.raw_edges)
    }

    /// Writes the root→node path into `buf` (cleared first). Reusable-buffer
    /// form: the serving path materializes into per-engine scratch vectors.
    fn write_path(&self, mut node: u32, buf: &mut Vec<EdgeLabel>) {
        buf.clear();
        while node != ROOT {
            let (parent, e) = self.nodes[node as usize];
            buf.push(e);
            node = parent;
        }
        buf.reverse();
    }

    /// A borrowed [`LabelRef`] over caller-owned path buffers — the form
    /// [`wf_core::pi_with`] consumes. Ports are copied; paths are
    /// materialized into `out_buf` / `inp_buf` (tiny: label paths are
    /// `O(|Δ|)` long, Lemma 4 — reachability matrices dwarf this).
    pub fn label_ref<'b>(
        &self,
        id: ItemId,
        out_buf: &'b mut Vec<EdgeLabel>,
        inp_buf: &'b mut Vec<EdgeLabel>,
    ) -> LabelRef<'b> {
        let stored = self.labels[id.0 as usize];
        let out = stored.out.map(|(node, port)| {
            self.write_path(node, out_buf);
            PortRef { path: &*out_buf, port }
        });
        let inp = stored.inp.map(|(node, port)| {
            self.write_path(node, inp_buf);
            PortRef { path: &*inp_buf, port }
        });
        LabelRef { out, inp }
    }

    /// Serializes the store: the trie nodes in creation order (so shared
    /// prefixes stay shared on disk — each node is its parent link plus one
    /// edge in the §5 wire format), then the dense label table, then the
    /// raw-edge metric. Node references use a γ-coded `root+1 / node+2`
    /// scheme because a stored path can legitimately be the *empty* path
    /// (boundary items of the start production point at the trie root).
    pub fn write_snapshot(&self, codec: &LabelCodec, w: &mut BitWriter) {
        w.write_gamma(self.nodes.len() as u64 + 1);
        for &(parent, e) in &self.nodes {
            w.write_gamma(node_code(parent));
            codec.write_edge(w, &e);
        }
        w.write_gamma(self.labels.len() as u64 + 1);
        for l in &self.labels {
            for side in [l.out, l.inp] {
                w.push_bit(side.is_some());
                if let Some((node, port)) = side {
                    w.write_gamma(node_code(node));
                    w.write_bits(port as u64, 8);
                }
            }
        }
        w.write_gamma(self.raw_edges as u64 + 1);
    }

    /// Inverse of [`LabelStore::write_snapshot`]. The interning `HashMap`
    /// is **not** persisted — it is rebuilt from the node list (insertion
    /// order is creation order, so ids come back identical), which also
    /// validates the trie: forward parent references and duplicate
    /// `(parent, edge)` keys are rejected as malformed. Every edge's fields
    /// are range-checked against the grammar and every stored port against
    /// its path's terminal module, so nothing a later query indexes with
    /// can be out of range — bad bytes fail *here*, typed, not inside π.
    pub fn read_snapshot(
        r: &mut BitReader<'_>,
        codec: &LabelCodec,
        grammar: &Grammar,
        pg: &ProdGraph,
    ) -> Result<Self, SnapshotError> {
        let cycles = pg
            .cycles()
            .map_err(|_| SnapshotError::Malformed("production graph has no cycle tables"))?;
        let node_count = (r.read_gamma()? - 1) as usize;
        if node_count >= ROOT as usize {
            return Err(SnapshotError::Malformed("trie larger than the id space"));
        }
        let mut nodes = Vec::with_capacity(node_count.min(1 << 20));
        let mut intern = HashMap::with_capacity(node_count.min(1 << 20));
        // The module each trie node's path ends at — what its labels' ports
        // index into (the empty path, i.e. the root, ends at the start
        // module).
        let mut node_module: Vec<ModuleId> = Vec::with_capacity(node_count.min(1 << 20));
        for n in 0..node_count {
            let parent = decode_node(r.read_gamma()?, n)?;
            let e = codec.read_edge(r)?;
            // Each edge must continue its parent's path — the chaining rule
            // shared with the delta-label reader
            // ([`wf_snapshot::edge_target_module`]); without it a forged
            // trie would feed π mismatched matrix dimensions.
            let parent_module =
                if parent == ROOT { grammar.start() } else { node_module[parent as usize] };
            let module = edge_target_module(grammar, cycles, parent_module, e)?;
            if intern.insert((parent, e), n as u32).is_some() {
                return Err(SnapshotError::Malformed("duplicate trie edge"));
            }
            nodes.push((parent, e));
            node_module.push(module);
        }
        let module_of =
            |node: u32| if node == ROOT { grammar.start() } else { node_module[node as usize] };
        let label_count = (r.read_gamma()? - 1) as usize;
        let mut labels = Vec::with_capacity(label_count.min(1 << 20));
        for _ in 0..label_count {
            let side = |r: &mut BitReader<'_>,
                        outputs: bool|
             -> Result<Option<(u32, u8)>, SnapshotError> {
                if !r.read_bit()? {
                    return Ok(None);
                }
                let node = decode_node(r.read_gamma()?, node_count)?;
                let port = r.read_bits(8)? as u8;
                let sig = grammar.sig(module_of(node));
                let arity = if outputs { sig.outputs() } else { sig.inputs() };
                if port as usize >= arity {
                    return Err(SnapshotError::Malformed("label port out of range"));
                }
                Ok(Some((node, port)))
            };
            let out = side(r, true)?;
            let inp = side(r, false)?;
            if out.is_none() && inp.is_none() {
                return Err(SnapshotError::Malformed("label with no endpoint"));
            }
            labels.push(StoredLabel { out, inp });
        }
        let raw_edges = (r.read_gamma()? - 1) as usize;
        Ok(Self { nodes, intern, labels, raw_edges })
    }

    /// Rebuilds the owning [`DataLabel`] (allocates; diagnostics and tests).
    pub fn materialize(&self, id: ItemId) -> DataLabel {
        let stored = self.labels[id.0 as usize];
        let port = |(node, port): (u32, u8)| {
            let mut path = Vec::new();
            self.write_path(node, &mut path);
            PortLabel::new(path, port)
        };
        DataLabel { out: stored.out.map(port), inp: stored.inp.map(port) }
    }
}

impl Default for LabelStore {
    fn default() -> Self {
        Self::new()
    }
}

/// γ-friendly code of a trie node reference: `1` for the root sentinel,
/// `node + 2` otherwise (γ codes positive integers only).
fn node_code(node: u32) -> u64 {
    if node == ROOT {
        1
    } else {
        node as u64 + 2
    }
}

/// Inverse of [`node_code`]; `bound` is the number of already-known nodes,
/// so parents reference strictly earlier nodes and labels reference any
/// node of the finished trie.
fn decode_node(code: u64, bound: usize) -> Result<u32, SnapshotError> {
    if code == 1 {
        return Ok(ROOT);
    }
    let node = code - 2;
    if node >= bound as u64 {
        return Err(SnapshotError::Malformed("trie node reference out of range"));
    }
    Ok(node as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_core::Fvl;
    use wf_model::fixtures::paper_example;
    use wf_run::fixtures::figure3_run;

    #[test]
    fn roundtrips_every_figure3_label() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let mut store = LabelStore::new();
        let ids = store.insert_all(labeler.labels());
        assert_eq!(store.len(), run.item_count());
        for (i, d) in labeler.labels().iter().enumerate() {
            assert_eq!(&store.materialize(ids[i]), d, "item {i}");
        }
    }

    #[test]
    fn label_refs_match_owned_refs() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let mut store = LabelStore::new();
        let ids = store.insert_all(labeler.labels());
        let (mut ob, mut ib) = (Vec::new(), Vec::new());
        for (i, d) in labeler.labels().iter().enumerate() {
            let r = store.label_ref(ids[i], &mut ob, &mut ib);
            assert_eq!(r.out.is_some(), d.out.is_some());
            if let (Some(stored), Some(owned)) = (r.out, d.out.as_ref()) {
                assert_eq!(stored.path, &owned.path[..]);
                assert_eq!(stored.port, owned.port);
            }
            if let (Some(stored), Some(owned)) = (r.inp, d.inp.as_ref()) {
                assert_eq!(stored.path, &owned.path[..]);
                assert_eq!(stored.port, owned.port);
            }
        }
    }

    #[test]
    fn snapshot_roundtrips_store_and_rebuilds_intern() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let mut store = LabelStore::new();
        let ids = store.insert_all(labeler.labels());

        let mut w = BitWriter::new();
        store.write_snapshot(fvl.codec(), &mut w);
        let bits = w.finish();
        let pg = fvl.prod_graph();
        let mut r = BitReader::new(&bits);
        let back = LabelStore::read_snapshot(&mut r, fvl.codec(), &ex.spec.grammar, pg).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back.len(), store.len());
        assert_eq!(back.edge_stats(), store.edge_stats());
        for &id in &ids {
            assert_eq!(back.materialize(id), store.materialize(id), "{id:?}");
        }
        // The rebuilt intern map must keep interning consistently: inserting
        // an existing label afresh reuses the shared trie (no new nodes).
        let mut grown = back;
        let (nodes_before, _) = grown.edge_stats();
        grown.insert(&store.materialize(ids[0]));
        assert_eq!(grown.edge_stats().0, nodes_before, "re-insert must not grow the trie");
    }

    #[test]
    fn snapshot_rejects_structural_corruption() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let g = &ex.spec.grammar;
        let pg = fvl.prod_graph();
        let read = |bits: &wf_bitio::BitVec| {
            LabelStore::read_snapshot(&mut BitReader::new(bits), fvl.codec(), g, pg)
        };
        // A forward parent reference (node 0 pointing at node 5) is invalid.
        let mut w = BitWriter::new();
        w.write_gamma(2); // one node
        w.write_gamma(7); // parent = 5: out of range for node 0
        fvl.codec().write_edge(&mut w, &EdgeLabel::Plain { k: wf_model::ProdId(0), i: 0 });
        assert!(matches!(read(&w.finish()), Err(SnapshotError::Malformed(_))));
        // A label with neither endpoint is invalid.
        let mut w = BitWriter::new();
        w.write_gamma(1); // zero nodes
        w.write_gamma(2); // one label
        w.push_bit(false);
        w.push_bit(false);
        w.write_gamma(1);
        assert!(matches!(read(&w.finish()), Err(SnapshotError::Malformed(_))));
        // An edge whose position is past its own production's RHS is
        // invalid even though it fits the codec's fixed field width (sized
        // by the grammar-wide maximum RHS).
        let (k_small, n_small) = g
            .productions()
            .map(|(k, p)| (k, p.rhs.node_count()))
            .find(|&(_, n)| n < g.max_rhs_len())
            .expect("paper grammar has productions below the max RHS length");
        let mut w = BitWriter::new();
        w.write_gamma(2); // one node
        w.write_gamma(1); // parent = root
        fvl.codec().write_edge(&mut w, &EdgeLabel::Plain { k: k_small, i: n_small as u32 });
        w.write_gamma(1); // zero labels
        w.write_gamma(1);
        assert!(matches!(read(&w.finish()), Err(SnapshotError::Malformed(_))));
        // A boundary label whose port is past the start module's arity is
        // invalid (ports index signature matrices at query time).
        let mut w = BitWriter::new();
        w.write_gamma(1); // zero nodes
        w.write_gamma(2); // one label
        w.push_bit(false); // no out side
        w.push_bit(true); // inp side at the root...
        w.write_gamma(1); // ...node = ROOT (empty path, start module)
        w.write_bits(200, 8); // ...port 200
        w.write_gamma(1);
        assert!(matches!(read(&w.finish()), Err(SnapshotError::Malformed(_))));
    }

    /// Id-space exhaustion must surface as a typed [`EngineError::StoreFull`]
    /// through the `try_*` path (the panicking forms document the same
    /// contract). A 2³²-node trie cannot be built in a test, so the
    /// capacity-parameterized core is exercised with a tiny bound; the
    /// public path uses the same code with `cap = ROOT`.
    #[test]
    fn overflow_is_a_typed_error_through_try_insert() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let labels = labeler.labels();

        // A bound big enough for the first label but not the whole run.
        let mut store = LabelStore::new();
        let mut full = None;
        for (i, d) in labels.iter().enumerate() {
            match store.try_insert_bounded(d, 4) {
                Ok(id) => assert_eq!(id.0 as usize, i, "ids stay dense until overflow"),
                Err(e) => {
                    assert!(
                        matches!(e, EngineError::StoreFull { capacity: 4, .. }),
                        "expected StoreFull, got {e:?}"
                    );
                    full = Some(i);
                    break;
                }
            }
        }
        let failed_at = full.expect("a 4-node budget cannot hold the Figure 3 run");
        // The failed insert stored no label; the store stays consistent
        // and serviceable (earlier labels still materialize).
        assert_eq!(store.len(), failed_at);
        for (i, d) in labels.iter().enumerate().take(failed_at) {
            assert_eq!(&store.materialize(ItemId(i as u32)), d);
        }
        // The unbounded path accepts the same labels fine.
        assert!(store.try_insert(&labels[failed_at]).is_ok());
    }

    #[test]
    fn trie_shares_prefixes() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let mut store = LabelStore::new();
        store.insert_all(labeler.labels());
        let (stored, raw) = store.edge_stats();
        assert!(
            stored * 2 < raw,
            "trie should at least halve path storage: {stored} stored vs {raw} raw"
        );
    }
}
