//! The interned data-label store: dense [`ItemId`]s over trie-shared paths.
//!
//! A provenance service holds the labels of *every* item of a run (often
//! millions) and serves queries against arbitrary pairs of them. Owning
//! [`DataLabel`]s store each parse-tree path as its own `Vec<EdgeLabel>`,
//! even though sibling labels share almost all of their edges — the paper
//! itself observes that "the size of φr(d) can be reduced almost by half by
//! factoring out the common prefix" (§4.2.2), and a run's labels
//! collectively share far more than pairwise prefixes.
//!
//! [`LabelStore`] exploits that: paths are interned into a trie keyed by
//! `(parent node, edge label)`, so every shared prefix — within one label,
//! across labels, across the whole run — is stored exactly once. A stored
//! label is then two `(path node, port)` pairs, and an [`ItemId`] is a dense
//! index suitable for slicing, batching and bitmap bookkeeping.

use std::collections::HashMap;
use wf_core::{DataLabel, LabelRef, PortLabel, PortRef};
use wf_run::EdgeLabel;

/// Dense id of a stored data label (assigned in insertion order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ItemId(pub u32);

/// Sentinel parent of the trie root (the empty path).
const ROOT: u32 = u32::MAX;

/// One stored label: `(path node, port)` per side, `None` mirroring
/// [`DataLabel`]'s boundary cases.
#[derive(Clone, Copy, Debug)]
struct StoredLabel {
    out: Option<(u32, u8)>,
    inp: Option<(u32, u8)>,
}

/// Interned label storage with shared-prefix paths and dense item ids.
pub struct LabelStore {
    /// Trie node → (parent node, edge). Node ids are creation-ordered.
    nodes: Vec<(u32, EdgeLabel)>,
    /// `(parent, edge) → node` — the interning index.
    intern: HashMap<(u32, EdgeLabel), u32>,
    labels: Vec<StoredLabel>,
    /// Total edges across all inserted labels *before* sharing (metric).
    raw_edges: usize,
}

impl LabelStore {
    pub fn new() -> Self {
        Self { nodes: Vec::new(), intern: HashMap::new(), labels: Vec::new(), raw_edges: 0 }
    }

    /// Interns one label; returns its dense id. Insertion order defines the
    /// id sequence, so inserting a run's labels in data-item order makes
    /// `ItemId(i)` coincide with the run's `DataId(i)`.
    pub fn insert(&mut self, d: &DataLabel) -> ItemId {
        let id = ItemId(self.labels.len() as u32);
        let out = d.out.as_ref().map(|p| (self.intern_path(&p.path), p.port));
        let inp = d.inp.as_ref().map(|p| (self.intern_path(&p.path), p.port));
        self.labels.push(StoredLabel { out, inp });
        id
    }

    /// Interns a slice of labels, returning their ids (in order).
    pub fn insert_all(&mut self, labels: &[DataLabel]) -> Vec<ItemId> {
        labels.iter().map(|d| self.insert(d)).collect()
    }

    fn intern_path(&mut self, path: &[EdgeLabel]) -> u32 {
        self.raw_edges += path.len();
        let mut cur = ROOT;
        for &e in path {
            cur = match self.intern.get(&(cur, e)) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len() as u32;
                    assert!(n < ROOT, "label store trie overflow");
                    self.nodes.push((cur, e));
                    self.intern.insert((cur, e), n);
                    n
                }
            };
        }
        cur
    }

    /// Number of stored labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// `(stored trie edges, raw label edges)` — how much the shared-prefix
    /// trie saved over per-label path storage.
    pub fn edge_stats(&self) -> (usize, usize) {
        (self.nodes.len(), self.raw_edges)
    }

    /// Writes the root→node path into `buf` (cleared first). Reusable-buffer
    /// form: the serving path materializes into per-engine scratch vectors.
    fn write_path(&self, mut node: u32, buf: &mut Vec<EdgeLabel>) {
        buf.clear();
        while node != ROOT {
            let (parent, e) = self.nodes[node as usize];
            buf.push(e);
            node = parent;
        }
        buf.reverse();
    }

    /// A borrowed [`LabelRef`] over caller-owned path buffers — the form
    /// [`wf_core::pi_with`] consumes. Ports are copied; paths are
    /// materialized into `out_buf` / `inp_buf` (tiny: label paths are
    /// `O(|Δ|)` long, Lemma 4 — reachability matrices dwarf this).
    pub fn label_ref<'b>(
        &self,
        id: ItemId,
        out_buf: &'b mut Vec<EdgeLabel>,
        inp_buf: &'b mut Vec<EdgeLabel>,
    ) -> LabelRef<'b> {
        let stored = self.labels[id.0 as usize];
        let out = stored.out.map(|(node, port)| {
            self.write_path(node, out_buf);
            PortRef { path: &*out_buf, port }
        });
        let inp = stored.inp.map(|(node, port)| {
            self.write_path(node, inp_buf);
            PortRef { path: &*inp_buf, port }
        });
        LabelRef { out, inp }
    }

    /// Rebuilds the owning [`DataLabel`] (allocates; diagnostics and tests).
    pub fn materialize(&self, id: ItemId) -> DataLabel {
        let stored = self.labels[id.0 as usize];
        let port = |(node, port): (u32, u8)| {
            let mut path = Vec::new();
            self.write_path(node, &mut path);
            PortLabel::new(path, port)
        };
        DataLabel { out: stored.out.map(port), inp: stored.inp.map(port) }
    }
}

impl Default for LabelStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_core::Fvl;
    use wf_model::fixtures::paper_example;
    use wf_run::fixtures::figure3_run;

    #[test]
    fn roundtrips_every_figure3_label() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let mut store = LabelStore::new();
        let ids = store.insert_all(labeler.labels());
        assert_eq!(store.len(), run.item_count());
        for (i, d) in labeler.labels().iter().enumerate() {
            assert_eq!(&store.materialize(ids[i]), d, "item {i}");
        }
    }

    #[test]
    fn label_refs_match_owned_refs() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let mut store = LabelStore::new();
        let ids = store.insert_all(labeler.labels());
        let (mut ob, mut ib) = (Vec::new(), Vec::new());
        for (i, d) in labeler.labels().iter().enumerate() {
            let r = store.label_ref(ids[i], &mut ob, &mut ib);
            assert_eq!(r.out.is_some(), d.out.is_some());
            if let (Some(stored), Some(owned)) = (r.out, d.out.as_ref()) {
                assert_eq!(stored.path, &owned.path[..]);
                assert_eq!(stored.port, owned.port);
            }
            if let (Some(stored), Some(owned)) = (r.inp, d.inp.as_ref()) {
                assert_eq!(stored.path, &owned.path[..]);
                assert_eq!(stored.port, owned.port);
            }
        }
    }

    #[test]
    fn trie_shares_prefixes() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let mut store = LabelStore::new();
        store.insert_all(labeler.labels());
        let (stored, raw) = store.edge_stats();
        assert!(
            stored * 2 < raw,
            "trie should at least halve path storage: {stored} stored vs {raw} raw"
        );
    }
}
