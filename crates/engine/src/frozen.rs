//! The frozen serving core: an immutable, `Sync` read path over a compiled
//! engine, plus the per-worker mutable state that makes queries cheap.
//!
//! [`crate::QueryEngine`] is structurally single-threaded: its scratch,
//! path buffers and chain-power memos are engine-owned, so `query` takes
//! `&mut self` and a service built on it is capped at one core. The split
//! here separates what a query *reads* from what it *mutates*:
//!
//! * [`EngineCore`] — registry, label store and scheme references, all
//!   accessed through `&self`. Every field is plain owned data (asserted
//!   `Send + Sync` at compile time in `wf-core`/`wf-boolmat`), so one core
//!   can be shared by any number of worker threads.
//! * [`WorkerScratch`] — one worker's mutable state: the [`QueryScratch`]
//!   (matrix pool + uid-keyed chain-power memo) and the four `EdgeLabel`
//!   path buffers the store materializes borrowed labels into. Workers
//!   never share scratches, so there is no locking anywhere on the query
//!   path; each worker's memo warms up independently and stays warm.
//!
//! [`EngineCore::par_query_batch`] and [`EngineCore::par_all_pairs`] fan a
//! workload out across `std::thread::scope` workers over contiguous shards
//! and merge deterministically: results are written into (or concatenated
//! in) shard order, so the output is element-for-element identical to the
//! sequential path no matter the thread count or scheduling.

use crate::error::EngineError;
use crate::registry::{ViewRef, ViewRegistry};
use crate::store::{ItemId, LabelStore};
use wf_core::{is_visible_ref, pi_with, DecodeCtx, Fvl, QueryScratch};
use wf_profile::Stage;
use wf_run::EdgeLabel;

/// One worker's mutable query state: scratch (pool + memo) and the label
/// path buffers. Create one per thread — construction is cheap and the
/// buffers warm up within a handful of queries.
#[derive(Default)]
pub struct WorkerScratch {
    pub(crate) scratch: QueryScratch,
    pub(crate) buf_o1: Vec<EdgeLabel>,
    pub(crate) buf_i1: Vec<EdgeLabel>,
    pub(crate) buf_o2: Vec<EdgeLabel>,
    pub(crate) buf_i2: Vec<EdgeLabel>,
    /// Evaluation-order indices for grouped batches (reused across calls).
    pub(crate) order: Vec<u32>,
}

impl WorkerScratch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the chain-power memo, recycling its matrices into the pool
    /// (bounds memo memory in very long-lived workers).
    pub fn clear_memo(&mut self) {
        self.scratch.clear_memo();
    }

    /// Scratch diagnostics: (pooled matrices, memoized chain powers).
    pub fn stats(&self) -> (usize, usize) {
        (self.scratch.pooled_mats(), self.scratch.memoized_powers())
    }
}

/// Visibility pre-check + π over store-interned items — the per-pair
/// kernel shared by the sequential and parallel paths.
pub(crate) fn query_pair(
    store: &LabelStore,
    ctx: &DecodeCtx<'_>,
    ws: &mut WorkerScratch,
    a: ItemId,
    b: ItemId,
) -> Option<bool> {
    let (r1, r2) = {
        let _f = wf_profile::scope(Stage::LabelFetch);
        (
            store.label_ref(a, &mut ws.buf_o1, &mut ws.buf_i1),
            store.label_ref(b, &mut ws.buf_o2, &mut ws.buf_i2),
        )
    };
    if !is_visible_ref(r1, ctx.vl, ctx.pg) || !is_visible_ref(r2, ctx.vl, ctx.pg) {
        return None;
    }
    pi_with(ctx, &mut ws.scratch, r1, r2)
}

/// The all-pairs row sweep: every `rows × items` ordered pair with both
/// endpoints visible and `π == true`, pushed onto `out` in row-major
/// order. One kernel for the sequential path (`rows == items`) and each
/// parallel shard, so the two can never drift apart semantically.
fn sweep_rows(
    store: &LabelStore,
    ctx: &DecodeCtx<'_>,
    ws: &mut WorkerScratch,
    rows: &[ItemId],
    items: &[ItemId],
    out: &mut Vec<(ItemId, ItemId)>,
) {
    for &a in rows {
        let r1 = {
            let _f = wf_profile::scope(Stage::LabelFetch);
            store.label_ref(a, &mut ws.buf_o1, &mut ws.buf_i1)
        };
        if !is_visible_ref(r1, ctx.vl, ctx.pg) {
            continue;
        }
        for &b in items {
            let r2 = {
                let _f = wf_profile::scope(Stage::LabelFetch);
                store.label_ref(b, &mut ws.buf_o2, &mut ws.buf_i2)
            };
            if !is_visible_ref(r2, ctx.vl, ctx.pg) {
                continue;
            }
            if pi_with(ctx, &mut ws.scratch, r1, r2) == Some(true) {
                out.push((a, b));
            }
        }
    }
}

/// The immutable half of a serving engine: everything a query reads,
/// behind `&self`. Obtained from [`crate::QueryEngine::freeze`] (or built
/// directly from the parts); holds only references, so freezing is free
/// and many cores can coexist.
#[derive(Clone, Copy)]
pub struct EngineCore<'e> {
    fvl: &'e Fvl<'e>,
    registry: &'e ViewRegistry,
    store: &'e LabelStore,
}

// The whole point of the split: a core is shareable across threads. If a
// field ever gains interior mutability, this fails to compile.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<EngineCore<'static>>();
    const fn moved_into_a_thread<T: Send>() {}
    moved_into_a_thread::<WorkerScratch>();
};

impl<'e> EngineCore<'e> {
    pub fn new(fvl: &'e Fvl<'e>, registry: &'e ViewRegistry, store: &'e LabelStore) -> Self {
        Self { fvl, registry, store }
    }

    pub fn fvl(&self) -> &'e Fvl<'e> {
        self.fvl
    }

    pub fn registry(&self) -> &'e ViewRegistry {
        self.registry
    }

    pub fn store(&self) -> &'e LabelStore {
        self.store
    }

    /// The decode context of one compiled view — build once per (view,
    /// batch) and reuse; it is `Sync`, so one context can serve every
    /// worker of a fan-out (the Space-Efficient port-graph cache inside it
    /// is then also shared, built once instead of once per worker).
    pub fn context(&self, view: ViewRef) -> Result<DecodeCtx<'e>, EngineError> {
        let vl = self.registry.label(view).ok_or(EngineError::ViewNotCompiled { view })?;
        Ok(DecodeCtx::new(&self.fvl.spec().grammar, self.fvl.prod_graph(), vl))
    }

    fn check_item(&self, item: ItemId) -> Result<(), EngineError> {
        let len = self.store.len();
        if (item.0 as usize) < len {
            Ok(())
        } else {
            Err(EngineError::ItemOutOfRange { item, len })
        }
    }

    /// One dependency query (semantics of [`wf_core::Fvl::query`]): `None`
    /// iff either item is invisible in the view.
    pub fn try_query(
        &self,
        ws: &mut WorkerScratch,
        view: ViewRef,
        a: ItemId,
        b: ItemId,
    ) -> Result<Option<bool>, EngineError> {
        let ctx = self.context(view)?;
        self.check_item(a)?;
        self.check_item(b)?;
        Ok(query_pair(self.store, &ctx, ws, a, b))
    }

    /// Panicking form of [`EngineCore::try_query`] for callers that own
    /// their handles (compiled the view themselves, interned the items
    /// themselves) — for those, an error is a bug, not an input.
    pub fn query(
        &self,
        ws: &mut WorkerScratch,
        view: ViewRef,
        a: ItemId,
        b: ItemId,
    ) -> Option<bool> {
        self.try_query(ws, view, a, b).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Answers a batch of pairs into `out` (cleared first), reusing one
    /// worker's scratch across the whole batch; steady state performs no
    /// allocation. Validates the view and every item before answering
    /// anything, so a failed call leaves `out` empty rather than partial.
    ///
    /// Evaluation is *grouped*, not in input order: the batch is sorted
    /// (through a reused index buffer) by `(a, b)` item id, so every run of
    /// pairs sharing a first item fetches and visibility-checks `a`'s label
    /// once, and neighboring ids — interned in insertion order, so sharing
    /// production-path prefixes and store shards — keep the scratch's
    /// chain-power memo and the store's trie nodes hot. Results are written
    /// back through the index, so `out` is element-for-element identical to
    /// input-order evaluation (π is pure per pair; see
    /// `grouped_batch_matches_per_call_queries` in `tests/serving.rs`).
    pub fn try_query_batch_into(
        &self,
        ws: &mut WorkerScratch,
        view: ViewRef,
        pairs: &[(ItemId, ItemId)],
        out: &mut Vec<Option<bool>>,
    ) -> Result<(), EngineError> {
        out.clear();
        let ctx = self.context(view)?;
        for &(a, b) in pairs {
            self.check_item(a)?;
            self.check_item(b)?;
        }
        let _batch = wf_profile::scope(Stage::Batch);
        out.resize(pairs.len(), None);
        let WorkerScratch { scratch, buf_o1, buf_i1, buf_o2, buf_i2, order } = ws;
        order.clear();
        order.extend(0..pairs.len() as u32);
        order.sort_unstable_by_key(|&i| {
            let (a, b) = pairs[i as usize];
            (a.0, b.0)
        });
        let mut at = 0;
        while at < order.len() {
            let a = pairs[order[at] as usize].0;
            let r1 = {
                let _f = wf_profile::scope(Stage::LabelFetch);
                self.store.label_ref(a, buf_o1, buf_i1)
            };
            let visible1 = is_visible_ref(r1, ctx.vl, ctx.pg);
            while at < order.len() {
                let slot = order[at] as usize;
                let (a2, b) = pairs[slot];
                if a2 != a {
                    break;
                }
                out[slot] = if !visible1 {
                    None
                } else {
                    let r2 = {
                        let _f = wf_profile::scope(Stage::LabelFetch);
                        self.store.label_ref(b, buf_o2, buf_i2)
                    };
                    if is_visible_ref(r2, ctx.vl, ctx.pg) {
                        pi_with(&ctx, scratch, r1, r2)
                    } else {
                        None
                    }
                };
                at += 1;
            }
        }
        Ok(())
    }

    /// Sweeps every ordered pair of `items`, collecting the dependent ones
    /// (`Some(true)`) into `out` (cleared first), in row-major order.
    pub fn try_all_pairs_into(
        &self,
        ws: &mut WorkerScratch,
        view: ViewRef,
        items: &[ItemId],
        out: &mut Vec<(ItemId, ItemId)>,
    ) -> Result<(), EngineError> {
        out.clear();
        let ctx = self.context(view)?;
        for &a in items {
            self.check_item(a)?;
        }
        let _batch = wf_profile::scope(Stage::Batch);
        sweep_rows(self.store, &ctx, ws, items, items, out);
        Ok(())
    }

    /// [`EngineCore::try_query_batch_into`] fanned out across `threads`
    /// scoped workers. The pair slice is split into contiguous chunks, each
    /// worker answers its chunk with its own [`WorkerScratch`] into a
    /// disjoint slice of the output, and one shared [`DecodeCtx`] serves
    /// them all — the result is element-for-element identical to the
    /// sequential batch regardless of thread count or scheduling.
    ///
    /// `threads` is clamped to `1..=pairs.len()`; pass
    /// `std::thread::available_parallelism()` for a sensible default.
    pub fn try_par_query_batch(
        &self,
        view: ViewRef,
        pairs: &[(ItemId, ItemId)],
        threads: usize,
    ) -> Result<Vec<Option<bool>>, EngineError> {
        let mut scratches: Vec<WorkerScratch> =
            (0..threads.clamp(1, pairs.len().max(1))).map(|_| WorkerScratch::new()).collect();
        self.try_par_query_batch_with(&mut scratches, view, pairs)
    }

    /// [`EngineCore::try_par_query_batch`] over caller-owned worker
    /// scratches — the steady-state serving form. One worker runs per
    /// scratch; a service that keeps `scratches` alive across batches gets
    /// the same allocation-free, memo-warm steady state per worker that
    /// the sequential batch path has, instead of re-warming pools and
    /// chain-power memos on every call.
    pub fn try_par_query_batch_with(
        &self,
        scratches: &mut [WorkerScratch],
        view: ViewRef,
        pairs: &[(ItemId, ItemId)],
    ) -> Result<Vec<Option<bool>>, EngineError> {
        assert!(!scratches.is_empty(), "parallel batches need at least one worker scratch");
        let ctx = self.context(view)?;
        for &(a, b) in pairs {
            self.check_item(a)?;
            self.check_item(b)?;
        }
        let mut out = vec![None; pairs.len()];
        if pairs.is_empty() {
            return Ok(out);
        }
        let chunk = pairs.len().div_ceil(scratches.len());
        let store = self.store;
        let ctx = &ctx;
        std::thread::scope(|s| {
            // `zip` pairs each input chunk with its disjoint output chunk
            // (and its own scratch); writes land exactly where the
            // sequential loop would put them. With fewer pairs than
            // scratches, trailing scratches simply idle this batch.
            for ((in_chunk, out_chunk), ws) in
                pairs.chunks(chunk).zip(out.chunks_mut(chunk)).zip(scratches.iter_mut())
            {
                s.spawn(move || {
                    let _batch = wf_profile::scope(Stage::Batch);
                    for (slot, &(a, b)) in out_chunk.iter_mut().zip(in_chunk) {
                        *slot = query_pair(store, ctx, ws, a, b);
                    }
                });
            }
        });
        Ok(out)
    }

    /// Panicking form of [`EngineCore::try_par_query_batch`].
    pub fn par_query_batch(
        &self,
        view: ViewRef,
        pairs: &[(ItemId, ItemId)],
        threads: usize,
    ) -> Vec<Option<bool>> {
        self.try_par_query_batch(view, pairs, threads).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`EngineCore::try_all_pairs_into`] sharded by *rows* across scoped
    /// workers: each worker sweeps a contiguous range of `items` against
    /// all of `items`, collecting its dependent pairs locally; shards are
    /// concatenated in order, which is exactly the sequential row-major
    /// output.
    pub fn try_par_all_pairs(
        &self,
        view: ViewRef,
        items: &[ItemId],
        threads: usize,
    ) -> Result<Vec<(ItemId, ItemId)>, EngineError> {
        let ctx = self.context(view)?;
        for &a in items {
            self.check_item(a)?;
        }
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let threads = threads.clamp(1, items.len());
        let chunk = items.len().div_ceil(threads);
        let store = self.store;
        let ctx = &ctx;
        let shards = std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|rows| {
                    s.spawn(move || {
                        let _batch = wf_profile::scope(Stage::Batch);
                        let mut ws = WorkerScratch::new();
                        let mut local = Vec::new();
                        sweep_rows(store, ctx, &mut ws, rows, items, &mut local);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("all-pairs worker panicked"))
                .collect::<Vec<_>>()
        });
        Ok(shards.concat())
    }

    /// Panicking form of [`EngineCore::try_par_all_pairs`].
    pub fn par_all_pairs(
        &self,
        view: ViewRef,
        items: &[ItemId],
        threads: usize,
    ) -> Vec<(ItemId, ItemId)> {
        self.try_par_all_pairs(view, items, threads).unwrap_or_else(|e| panic!("{e}"))
    }
}
