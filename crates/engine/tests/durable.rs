//! Crash-safe durability end to end: the durable pipeline must never
//! lose an acknowledged op, every torn prefix of the op-log must recover
//! to a published generation's exact state or fail typed (never panic,
//! never answer wrongly), and background compaction must trim the log
//! without changing what recovery rebuilds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;
use wf_analysis::ProdGraph;
use wf_core::{Fvl, VariantKind};
use wf_engine::{
    serialize_base, shared_durable, CompactionPolicy, DurableEngine, EngineGeneration,
    EngineWriter, IngestOp, IngestPipeline, LiveEngine, PipelineOptions, PublishPolicy,
    WorkerScratch,
};
use wf_snapshot::{FaultKind, FaultPlan, MemStorage};
use wf_workloads::{bioaid, sample, views, Workload};

fn shared_fvl(w: &Workload) -> Arc<Fvl<'static>> {
    Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).unwrap())
}

fn save_bytes(gen: &EngineGeneration) -> Vec<u8> {
    serialize_base(gen).expect("serializing a generation cannot fail in memory")
}

/// Build a durable chain of several publishes (with one mid-chain
/// compaction) directly through the writer, returning the shared storage
/// handle and the save-bytes of every published generation by seqno.
fn build_chain(seed: u64) -> (MemStorage, Vec<Vec<u8>>, Arc<Fvl<'static>>) {
    let w = bioaid(seed % 3);
    let fvl = shared_fvl(&w);
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(seed);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 80);
    let labels = fvl.labeler(&run).labels().to_vec();
    let view = views::random_safe_view(&w, &mut rng, 4);

    let storage = MemStorage::new();
    let (mut durable, gen0, report) =
        DurableEngine::open(fvl.clone(), Box::new(storage.clone()), 64).expect("fresh open");
    assert_eq!(report.recovered_seqno, 0);
    let live = LiveEngine::new(gen0.clone());
    let mut writer = EngineWriter::new(gen0.clone());
    let mut golden = vec![save_bytes(&gen0)];

    let chunks: Vec<&[wf_core::DataLabel]> = labels.chunks(labels.len() / 5 + 1).collect();
    for (i, chunk) in chunks.iter().enumerate() {
        writer.insert_labels(chunk);
        if i == 1 {
            writer.register_view(view.clone(), VariantKind::Default).unwrap();
        }
        let mut record = Vec::new();
        let gen = writer.publish_with_delta(&live, &mut record).unwrap();
        durable.append(gen.seqno(), &record).unwrap();
        golden.push(save_bytes(&gen));
        if i == 2 {
            // Fold the head into a fresh base mid-chain so recovery must
            // handle base_seqno > 0 and frames both sides of it.
            let base = save_bytes(&gen);
            let stats = durable.install_base(&base, gen.seqno()).unwrap().expect("compacts");
            assert_eq!(stats.covered_seqno, gen.seqno());
        }
    }
    (storage, golden, fvl)
}

/// The satellite property: truncate the durable op-log at **every** byte
/// offset. Each prefix either recovers to a published generation's exact
/// state (identical save bytes, element-identical answers) or fails with
/// a typed error — never a panic, never a wrong answer.
#[test]
fn every_byte_truncation_recovers_a_published_prefix_or_fails_typed() {
    for seed in [3u64, 11, 42] {
        let (storage, golden, fvl) = build_chain(seed);
        let (base, log) = storage.contents();
        let base = base.expect("chain has a base");
        let base_covered = 4u64.min(golden.len() as u64 - 1);
        for cut in 0..=log.len() {
            let truncated = MemStorage::with_state(Some(base.clone()), log[..cut].to_vec());
            let opened = std::panic::catch_unwind(|| {
                DurableEngine::open(fvl.clone(), Box::new(truncated), 64)
            })
            .unwrap_or_else(|_| panic!("seed {seed} cut {cut}: recovery panicked"));
            match opened {
                Ok((_, gen, report)) => {
                    let seq = gen.seqno();
                    assert!(
                        seq >= base_covered.min(report.base_seqno) && (seq as usize) < golden.len(),
                        "seed {seed} cut {cut}: recovered seqno {seq} out of range"
                    );
                    assert_eq!(
                        save_bytes(&gen),
                        golden[seq as usize],
                        "seed {seed} cut {cut}: recovered state diverges from published seqno {seq}"
                    );
                    assert_eq!(report.recovered_seqno, seq);
                }
                Err(_typed) => {
                    // Typed rejection is legal for prefixes that corrupt
                    // the *base* chain invariants; reaching here without
                    // a panic is the property.
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized chains stay recoverable at every truncation, and the
    /// final state always recovers exactly.
    #[test]
    fn truncation_property_holds_on_random_chains(seed in 100u64..10_000) {
        let (storage, golden, fvl) = build_chain(seed);
        let (base, log) = storage.contents();
        let base = base.expect("chain has a base");
        // Full log: exact final state.
        let full = MemStorage::with_state(Some(base.clone()), log.clone());
        let (_, gen, report) = DurableEngine::open(fvl.clone(), Box::new(full), 64).unwrap();
        prop_assert_eq!(gen.seqno() as usize, golden.len() - 1);
        prop_assert_eq!(report.dropped_bytes, 0);
        prop_assert_eq!(&save_bytes(&gen), golden.last().unwrap());
        // A sampled set of cuts (the exhaustive sweep runs in the
        // deterministic test above).
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC07);
        for _ in 0..40 {
            let cut = rand::Rng::gen_range(&mut rng, 0..=log.len());
            let truncated = MemStorage::with_state(Some(base.clone()), log[..cut].to_vec());
            if let Ok((_, gen, _)) = DurableEngine::open(fvl.clone(), Box::new(truncated), 64) {
                let seq = gen.seqno() as usize;
                prop_assert!(seq < golden.len());
                prop_assert_eq!(&save_bytes(&gen), &golden[seq]);
            }
        }
    }
}

/// The durable pipeline round trip: ingest through producers, crash
/// (drop everything), reopen, and the recovered generation must be
/// byte-identical to the last acknowledged live state — including after
/// background compactions trimmed the log.
#[test]
fn durable_pipeline_with_compaction_recovers_exactly() {
    let w = bioaid(7);
    let fvl = shared_fvl(&w);
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(909);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 200);
    let labels = fvl.labeler(&run).labels().to_vec();
    let view = views::random_safe_view(&w, &mut rng, 5);

    let storage = MemStorage::new();
    let (durable, gen0, _) =
        DurableEngine::open(fvl.clone(), Box::new(storage.clone()), 64).unwrap();
    let live = Arc::new(LiveEngine::new(gen0.clone()));
    let shared = shared_durable(durable);
    let policy = PublishPolicy {
        max_batch_ops: 8,
        max_delay: Duration::from_millis(1),
        ..PublishPolicy::default()
    };
    let options = PipelineOptions {
        durable: Some(shared.clone()),
        // Tiny thresholds: compact after every few publishes.
        compaction: Some(CompactionPolicy { max_log_bytes: 1 << 14, max_log_frames: 4 }),
        ..PipelineOptions::default()
    };
    let pipeline =
        IngestPipeline::spawn_with(EngineWriter::new(gen0), live.clone(), policy, options);
    let q = pipeline.queue().clone();
    let mut tickets = Vec::new();
    for chunk in labels.chunks(9) {
        tickets.push(q.push(IngestOp::InsertLabels(chunk.to_vec())).unwrap());
    }
    tickets.push(q.push(IngestOp::CompileView(view.clone(), VariantKind::Default)).unwrap());
    for t in &tickets {
        t.wait().expect("acknowledged");
    }
    let report = pipeline.shutdown();
    assert!(report.persist_error.is_none());
    let totals = report.compaction.expect("driver ran");
    assert!(totals.compactions >= 1, "tiny thresholds must have compacted");
    assert!(totals.last_error.is_none(), "compaction failed: {:?}", totals.last_error);

    let final_gen = live.snapshot();
    // "Crash": forget the pipeline, reopen from the surviving bytes.
    let (recovered_durable, recovered, rec) =
        DurableEngine::open(fvl.clone(), Box::new(storage.survivor()), 64).unwrap();
    assert_eq!(rec.recovered_seqno, final_gen.seqno());
    assert_eq!(save_bytes(&recovered), save_bytes(&final_gen));
    assert_eq!(recovered_durable.last_seqno(), final_gen.seqno());

    // Element-identical answers on the recovered engine.
    let mut ws = WorkerScratch::new();
    let vref = wf_engine::ViewRef { id: wf_engine::ViewId(0), kind: VariantKind::Default };
    let sample: Vec<_> =
        (0..recovered.store().len().min(40) as u32).map(wf_engine::ItemId).collect();
    assert_eq!(
        recovered.all_pairs(&mut ws, vref, &sample),
        final_gen.all_pairs(&mut ws, vref, &sample)
    );
}

/// Transient storage faults are absorbed by the retry policy; fatal ones
/// stop the pipeline with every ticket resolved `Err`, never hung.
#[test]
fn transient_faults_retry_and_fatal_faults_resolve_tickets() {
    let w = bioaid(2);
    let fvl = shared_fvl(&w);
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(55);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 60);
    let labels = fvl.labeler(&run).labels().to_vec();

    // Two transient failures on the first two append calls: the retry
    // policy must absorb both and acknowledge everything.
    let storage = MemStorage::with_plan(FaultPlan::new().transient_calls(0, 2));
    let (durable, gen0, _) =
        DurableEngine::open(fvl.clone(), Box::new(storage.clone()), 64).unwrap();
    let live = Arc::new(LiveEngine::new(gen0.clone()));
    let options =
        PipelineOptions { durable: Some(shared_durable(durable)), ..PipelineOptions::default() };
    let pipeline = IngestPipeline::spawn_with(
        EngineWriter::new(gen0),
        live.clone(),
        PublishPolicy { max_delay: Duration::from_millis(1), ..PublishPolicy::default() },
        options,
    );
    let t = pipeline.queue().push(IngestOp::InsertLabels(labels.clone())).unwrap();
    t.wait().expect("retries absorb transient faults");
    let report = pipeline.shutdown();
    assert!(report.persist_error.is_none());
    assert!(report.stats.persist_retries >= 1, "retries must be counted");
    // The surviving log replays to the acknowledged state.
    let (_, recovered, _) =
        DurableEngine::open(fvl.clone(), Box::new(storage.survivor()), 64).unwrap();
    assert_eq!(recovered.seqno(), live.snapshot().seqno());

    // A fatal fault (permission denied) gives up immediately: the ticket
    // resolves Err(Persist) and the pipeline reports the failure.
    let storage = MemStorage::with_plan(
        FaultPlan::new().at_call(0, FaultKind::Fail(std::io::ErrorKind::PermissionDenied)),
    );
    let (durable, gen0, _) = DurableEngine::open(fvl.clone(), Box::new(storage), 64).unwrap();
    let live = Arc::new(LiveEngine::new(gen0.clone()));
    let options =
        PipelineOptions { durable: Some(shared_durable(durable)), ..PipelineOptions::default() };
    let pipeline = IngestPipeline::spawn_with(
        EngineWriter::new(gen0),
        live.clone(),
        PublishPolicy { max_delay: Duration::from_millis(1), ..PublishPolicy::default() },
        options,
    );
    let t = pipeline.queue().push(IngestOp::InsertLabels(labels)).unwrap();
    match t.wait() {
        Err(wf_engine::IngestError::Persist(msg)) => {
            assert!(msg.contains("injected fault"), "unexpected persist error: {msg}")
        }
        other => panic!("expected a persist failure, got {other:?}"),
    }
    let report = pipeline.shutdown();
    assert!(report.persist_error.is_some());
    assert_eq!(report.stats.persist_retries, 0, "fatal errors must not burn retries");
}

/// `wait_timeout` bounds waiting on a stalled pipeline: `None` while the
/// op is in flight, the real outcome once the publisher gets to it.
#[test]
fn wait_timeout_bounds_stalled_waits() {
    let w = bioaid(1);
    let fvl = shared_fvl(&w);
    let writer = EngineWriter::from_fvl(fvl);
    let live = Arc::new(LiveEngine::new(writer.base().clone()));
    // A policy that effectively never publishes on its own.
    let policy = PublishPolicy {
        max_batch_ops: usize::MAX,
        max_batch_bytes: usize::MAX,
        max_delay: Duration::from_secs(3600),
        ..PublishPolicy::default()
    };
    let pipeline = IngestPipeline::spawn(writer, live, policy);
    let t = pipeline
        .queue()
        .push(IngestOp::AddView(views::random_safe_view(&w, &mut StdRng::seed_from_u64(9), 3)))
        .unwrap();
    assert!(
        t.wait_timeout(Duration::from_millis(30)).is_none(),
        "an unpublished op must time out, not resolve"
    );
    // Shutdown publishes the staged op; the same ticket now resolves.
    let report = pipeline.shutdown();
    assert!(t.wait_timeout(Duration::from_millis(100)).expect("resolved").is_ok());
    assert_eq!(report.stats.op_errors, 0);
}
