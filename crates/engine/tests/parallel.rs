//! The parallel read path must be indistinguishable from the sequential
//! one: same answers, element for element, for every variant and any
//! thread count — and concurrent workers with separate scratches must stay
//! sound even when they interleave views arbitrarily.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_analysis::ProdGraph;
use wf_core::{Fvl, VariantKind};
use wf_engine::{EngineError, ItemId, QueryEngine, ViewRef, WorkerScratch};
use wf_workloads::queries::{sample_pairs, PairDist};
use wf_workloads::{bioaid, sample, views};

const VARIANTS: [VariantKind; 3] =
    [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `par_query_batch` agrees element-wise with the sequential batch for
    /// all three variants and thread counts {1, 2, 4} (including counts
    /// exceeding the pair count, which the clamp handles).
    #[test]
    fn par_query_batch_agrees_with_sequential(
        seed in 0u64..300,
        run_size in 60usize..300,
        view_size in 2usize..10,
    ) {
        let w = bioaid(seed % 7);
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
        let labeler = fvl.labeler(&run);
        let view = views::random_safe_view(&w, &mut rng, view_size);

        let mut engine = QueryEngine::new(&fvl);
        let items = engine.insert_labels(labeler.labels());
        let vid = engine.add_view(view);
        let pairs = sample_pairs(&run, &mut rng, 200, PairDist::Uniform);
        let id_pairs: Vec<_> =
            pairs.iter().map(|&(a, b)| (items[a.0 as usize], items[b.0 as usize])).collect();

        // One set of worker scratches reused across every variant and
        // thread count below: warm, cross-view scratch reuse must be as
        // sound in the parallel path as it is sequentially.
        let mut warm: Vec<_> = (0..4).map(|_| WorkerScratch::new()).collect();
        for kind in VARIANTS {
            let vref = engine.compile(vid, kind).unwrap();
            let sequential = engine.query_batch(vref, &id_pairs);
            for threads in [1usize, 2, 4] {
                let parallel = engine.par_query_batch(vref, &id_pairs, threads);
                prop_assert_eq!(&parallel, &sequential, "{:?} x{} threads", kind, threads);
                let reused = engine
                    .freeze()
                    .try_par_query_batch_with(&mut warm[..threads], vref, &id_pairs)
                    .unwrap();
                prop_assert_eq!(&reused, &sequential, "{:?} x{} warm scratches", kind, threads);
            }
        }
    }

    /// Row-sharded `par_all_pairs` returns exactly the sequential sweep —
    /// same pairs, same (row-major) order.
    #[test]
    fn par_all_pairs_agrees_with_sequential(
        seed in 0u64..300,
        run_size in 40usize..160,
    ) {
        let w = bioaid(seed % 5);
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
        let labeler = fvl.labeler(&run);
        let view = views::random_safe_view(&w, &mut rng, 8);

        let mut engine = QueryEngine::new(&fvl);
        let items = engine.insert_labels(labeler.labels());
        let vref = engine.register_view(view, VariantKind::Default).unwrap();
        let subset: Vec<_> = items.iter().copied().step_by(2).collect();
        let sequential = engine.all_pairs(vref, &subset);
        for threads in [1usize, 2, 4] {
            let parallel = engine.par_all_pairs(vref, &subset, threads);
            prop_assert_eq!(&parallel, &sequential, "x{} threads", threads);
        }
    }
}

/// Two workers hammering *different* views through one shared frozen core,
/// each with its own `WorkerScratch`, must both answer exactly like the
/// sequential engine: per-worker chain-power memos are keyed by view uid,
/// so concurrent interleaving across views cannot poison either side.
#[test]
fn interleaved_views_across_threads_stay_sound() {
    let w = bioaid(13);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(13);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 400);
    let labeler = fvl.labeler(&run);
    let view_a = views::random_safe_view(&w, &mut rng, 6);
    let view_b = views::random_safe_view(&w, &mut rng, 12);

    let mut engine = QueryEngine::new(&fvl);
    let items = engine.insert_labels(labeler.labels());
    let ra = engine.register_view(view_a, VariantKind::Default).unwrap();
    let rb = engine.register_view(view_b, VariantKind::SpaceEfficient).unwrap();

    let pairs =
        sample_pairs(&run, &mut rng, 300, PairDist::HotKey { hot_items: 16, hot_prob: 0.5 });
    let id_pairs: Vec<_> =
        pairs.iter().map(|&(a, b)| (items[a.0 as usize], items[b.0 as usize])).collect();

    // Sequential reference, per view.
    let want_a = engine.query_batch(ra, &id_pairs);
    let want_b = engine.query_batch(rb, &id_pairs);

    let core = engine.freeze();
    let id_pairs = &id_pairs;
    std::thread::scope(|s| {
        // Each worker alternates between the two views on every query —
        // the worst case for memo confusion — with its own scratch. The
        // two workers run opposite phases, so at any instant the core is
        // (likely) serving both views at once.
        for flip in [0usize, 1] {
            let (want_a, want_b) = (&want_a, &want_b);
            s.spawn(move || {
                let mut ws = WorkerScratch::new();
                for (i, &(a, b)) in id_pairs.iter().enumerate() {
                    let (view, want) =
                        if (i + flip) % 2 == 0 { (ra, want_a[i]) } else { (rb, want_b[i]) };
                    let got = core.query(&mut ws, view, a, b);
                    assert_eq!(got, want, "worker {flip}, query {i}");
                }
                // The worker's scratch warmed up per-view memo entries and
                // stayed private; clearing it is local to this worker.
                assert!(ws.stats().0 > 0 || ws.stats().1 > 0);
                ws.clear_memo();
            });
        }
    });
}

/// The typed API surfaces caller mistakes as values; the classic entry
/// points still panic (documented contract).
#[test]
fn try_api_reports_uncompiled_views_and_bad_items() {
    let w = bioaid(2);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(2);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 80);
    let labeler = fvl.labeler(&run);
    let view = views::random_safe_view(&w, &mut rng, 6);

    let mut engine = QueryEngine::new(&fvl);
    let items = engine.insert_labels(labeler.labels());
    let vid = engine.add_view(view);
    let compiled = engine.compile(vid, VariantKind::Default).unwrap();

    // A handle for a variant that was never compiled.
    let uncompiled = ViewRef { id: vid, kind: VariantKind::QueryEfficient };
    assert_eq!(
        engine.try_query(uncompiled, items[0], items[1]),
        Err(EngineError::ViewNotCompiled { view: uncompiled })
    );
    let mut out = Vec::new();
    out.push(Some(true)); // must be cleared, not appended to, on error
    assert!(engine.try_query_batch_into(uncompiled, &[(items[0], items[1])], &mut out).is_err());
    assert!(out.is_empty(), "failed batch must leave the output empty");

    // An item id from some other engine's store.
    let alien = ItemId(items.len() as u32 + 7);
    assert_eq!(
        engine.try_query(compiled, items[0], alien),
        Err(EngineError::ItemOutOfRange { item: alien, len: items.len() })
    );
    assert!(engine.try_par_query_batch(compiled, &[(alien, items[0])], 2).is_err());
    assert_eq!(
        engine.freeze().try_par_all_pairs(uncompiled, &items[..4], 2),
        Err(EngineError::ViewNotCompiled { view: uncompiled })
    );

    // Errors render for operators.
    let msg = EngineError::ItemOutOfRange { item: alien, len: items.len() }.to_string();
    assert!(msg.contains("out of range"), "{msg}");

    // Valid input still answers through every path.
    let got = engine.try_query(compiled, items[0], items[1]).unwrap();
    assert_eq!(got, engine.query(compiled, items[0], items[1]));

    // And the panicking wrapper does panic on the bad handle.
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.query(uncompiled, items[0], items[1])
    }));
    assert!(panicked.is_err(), "query on an uncompiled view must panic");
}

/// Empty inputs are served, not special-cased away.
#[test]
fn parallel_paths_handle_empty_inputs() {
    let w = bioaid(4);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(4);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 50);
    let labeler = fvl.labeler(&run);
    let view = views::random_safe_view(&w, &mut rng, 6);

    let mut engine = QueryEngine::new(&fvl);
    engine.insert_labels(labeler.labels());
    let vref = engine.register_view(view, VariantKind::Default).unwrap();
    assert!(engine.par_query_batch(vref, &[], 4).is_empty());
    assert!(engine.par_all_pairs(vref, &[], 4).is_empty());
}
