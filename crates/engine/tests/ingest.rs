//! The ingest pipeline under fire: racing producers must converge to the
//! same chain a sequential writer would build, the op-log must replay to
//! byte-identical generations, and shutdown must drain — every accepted
//! op resolves, none is silently dropped.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use wf_analysis::ProdGraph;
use wf_core::{Fvl, VariantKind};
use wf_engine::{
    EngineError, EngineGeneration, EngineWriter, IngestOp, IngestPipeline, LiveEngine,
    PipelineOptions, PublishPolicy, SharedSink, WorkerScratch,
};
use wf_workloads::{bioaid, sample, views, Workload};

fn shared_fvl(w: &Workload) -> Arc<Fvl<'static>> {
    Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).unwrap())
}

/// Four producers race label chunks and view compilations through the
/// pipeline while the op-log records every publish. Afterwards: all
/// tickets resolved `Ok` in per-producer submission order, the live chain
/// contains every label exactly once, and replaying `base ‖ op-log`
/// yields a generation whose `save` bytes equal the live generation's —
/// the multi-producer run and its replay are indistinguishable.
#[test]
fn racing_producers_converge_and_the_oplog_replays_byte_identically() {
    let w = bioaid(5);
    let fvl = shared_fvl(&w);
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(77);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 240);
    let labels = fvl.labeler(&run).labels().to_vec();
    let view_a = views::random_safe_view(&w, &mut rng, 4);
    let view_b = views::random_safe_view(&w, &mut rng, 8);

    // Base generation: seeded directly through the façade, saved as the
    // stream head the op-log chains onto.
    let mut writer = EngineWriter::from_fvl(fvl.clone());
    writer.insert_labels(&labels[..labels.len() / 5]);
    writer.register_view(view_a.clone(), VariantKind::Default).unwrap();
    let live = Arc::new(LiveEngine::new(writer.base().clone()));
    writer.publish(&live);
    let mut stream = Vec::new();
    writer.base().save(&mut stream).unwrap();

    let policy = PublishPolicy {
        queue_capacity: 64,
        max_batch_ops: 16,
        max_delay: std::time::Duration::from_millis(1),
        ..PublishPolicy::default()
    };
    let sink = SharedSink::new();
    let options =
        PipelineOptions { sink: Some(Box::new(sink.clone())), ..PipelineOptions::default() };
    let pipeline = IngestPipeline::spawn_with(writer, live.clone(), policy, options);

    // Four producers, each owning a disjoint slice of the remaining pool;
    // two also race structurally-identical view compilations (dedup must
    // make the duplicates no-ops on every interleaving).
    let rest = &labels[labels.len() / 5..];
    let per = rest.len() / 4;
    std::thread::scope(|s| {
        for p in 0..4usize {
            let q = pipeline.queue().clone();
            let slice = &rest[p * per..(p + 1) * per];
            let (va, vb) = (view_a.clone(), view_b.clone());
            s.spawn(move || {
                let mut tickets = Vec::new();
                for chunk in slice.chunks(7) {
                    tickets.push(q.push(IngestOp::InsertLabels(chunk.to_vec())).unwrap());
                }
                if p % 2 == 0 {
                    tickets.push(
                        q.push(IngestOp::CompileView(va, VariantKind::QueryEfficient)).unwrap(),
                    );
                    tickets.push(q.push(IngestOp::CompileView(vb, VariantKind::Default)).unwrap());
                }
                // Per-producer ordering: seqnos and apply indexes follow
                // this producer's submission order.
                let mut last_seq = 0u64;
                let mut last_ix = 0u64;
                for t in &tickets {
                    let seq = t.wait().expect("accepted ops must publish");
                    let ix = t.apply_index().expect("applied ops carry their order");
                    assert!(seq >= last_seq, "a producer's ops publish in submission order");
                    assert!(ix >= last_ix, "a producer's ops apply in submission order");
                    last_seq = seq;
                    last_ix = ix;
                }
            });
        }
    });

    let report = pipeline.shutdown();
    assert_eq!(report.stats.op_errors, 0);
    assert_eq!(report.stats.labels_ingested, (per * 4) as u64);
    assert!(report.stats.publishes >= 1);
    assert!(report.persist_error.is_none());

    // Every label landed exactly once; both views compiled despite races.
    let final_gen = live.snapshot();
    assert_eq!(final_gen.store().len(), labels.len() / 5 + per * 4);
    assert_eq!(final_gen.registry().view_count(), 2);
    assert_eq!(final_gen.registry().compiled_count(), 3);

    // The op-log chains onto the base stream; replay must be
    // byte-identical to the live result.
    stream.extend_from_slice(&sink.contents());
    let replayed = EngineGeneration::replay(shared_fvl(&w), &mut stream.as_slice()).unwrap();
    assert_eq!(replayed.seqno(), final_gen.seqno());
    let (mut a, mut b) = (Vec::new(), Vec::new());
    final_gen.save(&mut a).unwrap();
    replayed.save(&mut b).unwrap();
    assert_eq!(a, b, "replayed op-log must reproduce the live generation byte-for-byte");

    // And the replayed generation answers like the live one.
    let mut ws = WorkerScratch::new();
    let items: Vec<_> =
        (0..final_gen.store().len() as u32).step_by(9).map(wf_engine::ItemId).collect();
    for vref in [
        wf_engine::ViewRef { id: wf_engine::ViewId(0), kind: VariantKind::Default },
        wf_engine::ViewRef { id: wf_engine::ViewId(0), kind: VariantKind::QueryEfficient },
        wf_engine::ViewRef { id: wf_engine::ViewId(1), kind: VariantKind::Default },
    ] {
        assert_eq!(
            replayed.all_pairs(&mut ws, vref, &items),
            final_gen.all_pairs(&mut ws, vref, &items),
        );
    }

    // Warm restart *continues the chain*: a new pipeline over the replayed
    // generation publishes seqno n+1 and the stream keeps replaying.
    let writer2 = EngineWriter::new(Arc::new(replayed));
    let live2 = Arc::new(LiveEngine::new(writer2.base().clone()));
    let sink2 = SharedSink::new();
    let pipeline2 = IngestPipeline::spawn_with(
        writer2,
        live2.clone(),
        PublishPolicy::default(),
        PipelineOptions { sink: Some(Box::new(sink2.clone())), ..PipelineOptions::default() },
    );
    let t = pipeline2.queue().push(IngestOp::InsertLabels(labels[..3].to_vec())).unwrap();
    let resumed_seq = t.wait().unwrap();
    assert_eq!(resumed_seq, final_gen.seqno() + 1);
    pipeline2.shutdown();
    stream.extend_from_slice(&sink2.contents());
    let resumed = EngineGeneration::replay(shared_fvl(&w), &mut stream.as_slice()).unwrap();
    assert_eq!(resumed.seqno(), resumed_seq);
    assert_eq!(resumed.store().len(), live2.snapshot().store().len());
}

/// The backpressure contract at the pipeline level: with a tiny queue and
/// many eager producers, `try_push` sheds with the typed error (op not
/// accepted), blocking `push` parks and lands everything, and shutdown
/// resolves every accepted ticket — accepted ops are never dropped even
/// when close races the producers.
#[test]
fn backpressure_sheds_typed_and_shutdown_drains_every_accepted_op() {
    let w = bioaid(1);
    let fvl = shared_fvl(&w);
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(9);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 80);
    let labels = fvl.labeler(&run).labels().to_vec();

    let writer = EngineWriter::from_fvl(fvl);
    let live = Arc::new(LiveEngine::new(writer.base().clone()));
    // A queue of 2 with generous batch budgets: producers outpace the
    // publisher and must hit backpressure.
    let policy = PublishPolicy {
        queue_capacity: 2,
        max_batch_ops: 64,
        max_delay: std::time::Duration::from_millis(1),
        ..PublishPolicy::default()
    };
    let pipeline = IngestPipeline::spawn(writer, live.clone(), policy);

    let mut accepted = Vec::new();
    let mut backpressured = 0usize;
    let q = pipeline.queue().clone();
    for chunk in labels.chunks(3) {
        // Non-blocking first; on backpressure fall back to the blocking
        // push, which must land the op.
        match q.try_push(IngestOp::InsertLabels(chunk.to_vec())) {
            Ok(t) => accepted.push((t, chunk.len())),
            Err(EngineError::IngestBackpressure { queued }) => {
                assert!(queued >= 1, "backpressure reports the queue depth");
                backpressured += 1;
                accepted
                    .push((q.push(IngestOp::InsertLabels(chunk.to_vec())).unwrap(), chunk.len()));
            }
            Err(other) => panic!("unexpected push error: {other}"),
        }
    }

    let report = pipeline.shutdown();
    let landed: usize = accepted
        .iter()
        .map(|(t, n)| {
            t.wait().expect("every accepted op resolves Ok");
            n
        })
        .sum();
    assert_eq!(landed, labels.len(), "every accepted label landed exactly once");
    assert_eq!(live.snapshot().store().len(), labels.len());
    assert_eq!(report.stats.labels_ingested, labels.len() as u64);
    assert_eq!(report.stats.op_errors, 0);
    // On a single-core box the publisher may keep up sporadically, but the
    // accounting above holds either way; when backpressure did fire, the
    // fallback blocking pushes must still have landed everything.
    let _ = backpressured;

    // After shutdown the queue is closed for good.
    assert!(matches!(q.push(IngestOp::InsertLabels(Vec::new())), Err(EngineError::IngestClosed)));
}
