//! Snapshot persistence: a loaded engine must be indistinguishable from the
//! engine that wrote the snapshot — same answers, same ids, same trie — and
//! bad bytes must be rejected with typed errors, never a panic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_analysis::ProdGraph;
use wf_core::{Fvl, VariantKind};
use wf_engine::{QueryEngine, SnapshotError, ViewRef};
use wf_workloads::{bioaid, sample, views};

const VARIANTS: [VariantKind; 3] =
    [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient];

/// Builds an engine with a labeled run and one view compiled under every
/// variant, returning the snapshot bytes alongside.
fn build_and_save(seed: u64, run_size: usize, view_size: usize) -> Vec<u8> {
    let w = bioaid(seed);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(seed);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
    let labeler = fvl.labeler(&run);
    let view = views::random_safe_view(&w, &mut rng, view_size);

    let mut engine = QueryEngine::new(&fvl);
    engine.insert_labels(labeler.labels());
    let vid = engine.add_view(view);
    for kind in VARIANTS {
        engine.compile(vid, kind).unwrap();
    }
    let mut bytes = Vec::new();
    engine.save(&mut bytes).unwrap();
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A snapshot-loaded engine answers `all_pairs` (and with it every
    /// pairwise query, visibility included) identically to a freshly
    /// labeled one, for all three variants. The item subset deliberately
    /// includes the run's boundary items — labels whose `out` or `inp`
    /// side is `None` exercise the store's root-pointing empty paths.
    #[test]
    fn loaded_engine_agrees_with_fresh_one(
        seed in 0u64..500,
        view_size in 2usize..10,
        run_size in 40usize..200,
    ) {
        let w = bioaid(seed % 5);
        let fvl = Fvl::new(&w.spec).unwrap();
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, run_size);
        let labeler = fvl.labeler(&run);
        let view = views::random_safe_view(&w, &mut rng, view_size);

        let mut fresh = QueryEngine::new(&fvl);
        let items = fresh.insert_labels(labeler.labels());
        let vid = fresh.add_view(view);
        for kind in VARIANTS {
            fresh.compile(vid, kind).unwrap();
        }
        let mut bytes = Vec::new();
        fresh.save(&mut bytes).unwrap();
        let mut loaded = QueryEngine::load(&fvl, &mut bytes.as_slice()).unwrap();

        prop_assert_eq!(loaded.store().len(), fresh.store().len());
        prop_assert_eq!(loaded.store().edge_stats(), fresh.store().edge_stats());
        prop_assert_eq!(loaded.registry().view_count(), 1);
        prop_assert_eq!(loaded.registry().compiled_count(), 3);

        // Boundary items first (None-sided labels), then a spread of the
        // run's interior.
        let mut subset: Vec<_> = run
            .initial_inputs()
            .chain(run.final_outputs())
            .map(|d| items[d.0 as usize])
            .collect();
        subset.extend(items.iter().copied().step_by(5));
        subset.truncate(40);
        for kind in VARIANTS {
            let vref = ViewRef { id: vid, kind };
            prop_assert_eq!(
                loaded.all_pairs(vref, &subset),
                fresh.all_pairs(vref, &subset),
                "{:?}", kind
            );
        }
    }
}

/// Mutate-after-load: a loaded engine is a *live* engine, not a read-only
/// replica. Inserting more labels and registering a new view after a load,
/// then saving and loading again, must agree with a cold-built engine that
/// saw everything from the start — ids, trie sharing and `all_pairs`
/// answers included. (Before this pin, only pristine save→load was
/// covered.)
#[test]
fn mutate_after_load_roundtrips_like_a_cold_engine() {
    let w = bioaid(9);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(9);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 200);
    let labeler = fvl.labeler(&run);
    let labels = labeler.labels();
    let half = labels.len() / 2;
    let view_a = views::random_safe_view(&w, &mut rng, 6);
    let view_b = views::random_safe_view(&w, &mut rng, 10);

    // Save with half the labels and one view…
    let mut engine = QueryEngine::new(&fvl);
    engine.insert_labels(&labels[..half]);
    let va = engine.add_view(view_a.clone());
    engine.compile(va, VariantKind::Default).unwrap();
    let mut bytes = Vec::new();
    engine.save(&mut bytes).unwrap();
    drop(engine);

    // …load, grow (rest of the labels + a second view), save again…
    let mut grown = QueryEngine::load(&fvl, &mut bytes.as_slice()).unwrap();
    let more_ids = grown.insert_labels(&labels[half..]);
    assert_eq!(more_ids.first().map(|id| id.0 as usize), Some(half), "ids continue densely");
    let vb = grown.add_view(view_b.clone());
    for kind in VARIANTS {
        grown.compile(vb, kind).unwrap();
    }
    let mut bytes2 = Vec::new();
    grown.save(&mut bytes2).unwrap();

    // …and the re-load must be indistinguishable from a cold build.
    let mut warm = QueryEngine::load(&fvl, &mut bytes2.as_slice()).unwrap();
    let mut cold = QueryEngine::new(&fvl);
    let items = cold.insert_labels(labels);
    assert_eq!(cold.add_view(view_a), va);
    assert_eq!(cold.add_view(view_b), vb);
    assert_eq!(warm.store().len(), cold.store().len());
    assert_eq!(
        warm.store().edge_stats().0,
        cold.store().edge_stats().0,
        "the grown trie shares prefixes exactly like a cold one"
    );
    cold.compile(va, VariantKind::Default).unwrap();
    for kind in VARIANTS {
        cold.compile(vb, kind).unwrap();
    }
    for (vid, kinds) in [(va, &VARIANTS[1..2]), (vb, &VARIANTS[..])] {
        for &kind in kinds {
            let vref = warm.compile(vid, kind).unwrap();
            assert_eq!(
                warm.all_pairs(vref, &items),
                cold.all_pairs(vref, &items),
                "{kind:?} diverges after mutate-and-reload"
            );
        }
    }
}

#[test]
fn truncation_at_every_byte_is_rejected_typed() {
    let bytes = build_and_save(3, 60, 6);
    // Every strict prefix must fail with a typed error — never panic,
    // never succeed (the container checks the declared length first).
    let w = bioaid(3);
    let fvl = Fvl::new(&w.spec).unwrap();
    for cut in 0..bytes.len() {
        match QueryEngine::load(&fvl, &mut &bytes[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("prefix of {cut} bytes loaded successfully"),
        }
    }
}

#[test]
fn corruption_of_any_byte_is_rejected_typed() {
    let bytes = build_and_save(4, 60, 6);
    let w = bioaid(4);
    let fvl = Fvl::new(&w.spec).unwrap();
    // Flip one bit in each of a spread of byte positions (every byte would
    // be slow at release-test sizes); all flips must be caught.
    for i in (0..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x10;
        assert!(
            QueryEngine::load(&fvl, &mut bad.as_slice()).is_err(),
            "bit flip at byte {i} went undetected"
        );
    }
}

#[test]
fn version_and_spec_mismatches_are_typed() {
    let bytes = build_and_save(5, 60, 6);
    let w = bioaid(5);
    let fvl = Fvl::new(&w.spec).unwrap();

    // Foreign format version.
    let mut versioned = bytes.clone();
    versioned[8] = 0x7F;
    assert!(matches!(
        QueryEngine::load(&fvl, &mut versioned.as_slice()),
        Err(SnapshotError::UnsupportedVersion { found: 0x7F, .. })
    ));

    // Snapshot of a different specification.
    let other = bioaid(1);
    let other_fvl = Fvl::new(&other.spec).unwrap();
    assert!(matches!(
        QueryEngine::load(&other_fvl, &mut bytes.as_slice()),
        Err(SnapshotError::SpecMismatch { .. })
    ));

    // Not a snapshot at all.
    assert!(matches!(
        QueryEngine::load(&fvl, &mut &b"definitely not a snapshot"[..]),
        Err(SnapshotError::BadMagic)
    ));
    // Empty stream.
    assert!(matches!(QueryEngine::load(&fvl, &mut &b""[..]), Err(SnapshotError::Truncated)));
}

/// A warm-restart stream whose delta record carries a *valid* checksum but
/// a forged label — one whose first edge uses a production that does not
/// expand the start module. The integrity layer admits the container, so
/// only the path-chaining validator behind it
/// ([`wf_snapshot::edge_target_module`]) stands between the forgery and π
/// being handed mismatched matrices. It must reject structurally — a
/// `Malformed`, never `ChecksumMismatch` (the checksum is honest here) and
/// never a panic — and the stream's base prefix must stay replayable.
#[test]
fn valid_checksum_delta_with_broken_label_chain_is_rejected_structurally() {
    use std::sync::Arc;
    use wf_bitio::BitWriter;
    use wf_engine::{EngineGeneration, EngineWriter, LiveEngine};
    use wf_run::EdgeLabel;
    use wf_snapshot::{spec_fingerprint, write_container};

    let w = bioaid(8);
    let fvl = Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).unwrap());
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(8);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 60);
    let mut writer = EngineWriter::from_fvl(fvl.clone());
    writer.insert_labels(fvl.labeler(&run).labels());
    let live = LiveEngine::new(writer.base().clone());
    let g1 = writer.publish(&live);
    let mut stream = Vec::new();
    g1.save(&mut stream).unwrap();
    let base_len = stream.len();

    // Hand-assemble the delta record exactly as the writer frames it
    // (0x04 section tag, γ base/new seqnos chaining onto g1, one op-log
    // entry: an insert run of one label) — except the label's edge is
    // forged.
    let g = &w.spec.grammar;
    let (k_deep, _) = g
        .productions()
        .find(|(_, p)| p.lhs != g.start())
        .expect("workload grammar has non-start productions");
    let mut bw = BitWriter::new();
    bw.write_bits(0x04, 8); // SECTION_DELTA
    bw.write_gamma(g1.seqno() + 1);
    bw.write_gamma(g1.seqno() + 2);
    bw.write_gamma(2); // one op…
    wf_snapshot::oplog::write_insert_header(&mut bw, 1); // …inserting one label…
    bw.push_bit(true); // …out side only…
    bw.push_bit(false);
    bw.write_gamma(2); // …with a one-edge path that breaks at the root.
    fvl.codec().write_edge(&mut bw, &EdgeLabel::Plain { k: k_deep, i: 0 });
    bw.write_bits(0, 8);
    write_container(&mut stream, spec_fingerprint(g, fvl.prod_graph()), &bw.finish()).unwrap();

    match EngineGeneration::replay(fvl.clone(), &mut stream.as_slice()) {
        Err(SnapshotError::Malformed(_)) => {}
        Err(other) => panic!("forged delta must fail structurally, got {other}"),
        Ok(_) => panic!("forged delta must not replay"),
    }
    let recovered = EngineGeneration::replay(fvl, &mut &stream[..base_len])
        .expect("the honest base prefix still replays");
    assert_eq!(recovered.seqno(), g1.seqno());
}

#[test]
fn save_load_save_is_byte_identical() {
    // Determinism check: a loaded engine re-saves to the exact same bytes,
    // so snapshots can be content-addressed / diffed.
    let bytes = build_and_save(6, 80, 8);
    let w = bioaid(6);
    let fvl = Fvl::new(&w.spec).unwrap();
    let loaded = QueryEngine::load(&fvl, &mut bytes.as_slice()).unwrap();
    let mut again = Vec::new();
    loaded.save(&mut again).unwrap();
    assert_eq!(again, bytes);
}

#[test]
fn loaded_engine_serves_and_reaches_steady_state() {
    // A loaded engine is not just correct once: it serves batches
    // allocation-free like a fresh one (scratch reaches a fixed point).
    let w = bioaid(7);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(7);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 300);
    let labeler = fvl.labeler(&run);
    let view = views::random_safe_view(&w, &mut rng, 8);

    let mut engine = QueryEngine::new(&fvl);
    let items = engine.insert_labels(labeler.labels());
    let vid = engine.add_view(view);
    engine.compile(vid, VariantKind::Default).unwrap();
    let mut bytes = Vec::new();
    engine.save(&mut bytes).unwrap();
    drop(engine);

    let mut loaded = QueryEngine::load(&fvl, &mut bytes.as_slice()).unwrap();
    // compile() on an already-compiled pair is a cheap handle lookup.
    let vref = loaded.compile(vid, VariantKind::Default).unwrap();
    let pairs = sample::sample_query_pairs(&run, &mut rng, 300);
    let id_pairs: Vec<_> =
        pairs.iter().map(|&(a, b)| (items[a.0 as usize], items[b.0 as usize])).collect();
    let mut out = Vec::with_capacity(id_pairs.len());
    loaded.query_batch_into(vref, &id_pairs, &mut out);
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let want = fvl.query(
            &fvl.label_view(loaded.registry().view(vid), VariantKind::Default).unwrap(),
            labeler.label(a),
            labeler.label(b),
        );
        assert_eq!(out[i], want, "pair {i}");
    }
    loaded.query_batch_into(vref, &id_pairs, &mut out);
    let warm = loaded.scratch_stats();
    for _ in 0..3 {
        loaded.query_batch_into(vref, &id_pairs, &mut out);
        assert_eq!(loaded.scratch_stats(), warm, "loaded engine scratch grew after warm-up");
    }
}
