//! The sharded store against the single-shard reference: element-identical
//! answers, whatever the shard capacity.
//!
//! Sharding is a pure cost-model change — `shard_capacity` must never be
//! observable through answers, snapshots or replay. These tests drive a
//! tiny-capacity sharded engine and a `capacity = u32::MAX` reference
//! (one unbounded shard: the pre-shard store, byte-for-byte — it is also
//! the bench baseline) through the same churn streams, across all three
//! §6.3 variants, and require identical answers at every published
//! generation, after save → load at a *different* capacity, and after
//! delta replay whose inserts cross shard boundaries mid-record.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wf_analysis::ProdGraph;
use wf_core::{Fvl, VariantKind};
use wf_engine::{EngineGeneration, EngineWriter, ItemId, LiveEngine, QueryEngine, WorkerScratch};
use wf_workloads::churn::{churn_stream, ChurnOp, ChurnSpec, InsertLocality};
use wf_workloads::{bioaid, sample, views, Workload};

const VARIANTS: [VariantKind; 3] =
    [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient];

fn shared_fvl(w: &Workload) -> Arc<Fvl<'static>> {
    Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).unwrap())
}

/// Materializes a [`ChurnOp::RegisterView`] seed the same way everywhere
/// (the sharded writer and the reference must derive the identical view).
fn churn_view(w: &Workload, vseed: u64) -> (wf_model::View, VariantKind) {
    let mut vrng = StdRng::seed_from_u64(vseed);
    let composites = w.spec.grammar.composite_modules().count().max(1);
    let size = vrng.gen_range(1..=composites);
    (views::random_safe_view(w, &mut vrng, size), VARIANTS[(vseed % 3) as usize])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// One churn stream (skewed insert bursts, so single inserts span
    /// several tiny shards), applied in lockstep to a sharded writer chain
    /// and a single-shard sequential reference. At every publish, both
    /// must give element-identical `query_batch` answers for every
    /// compiled view; at the end, `all_pairs` over every item must match,
    /// and so must a save → load → `all_pairs` roundtrip at a *different*
    /// shard capacity plus a full base‖delta replay — for all three
    /// variants.
    #[test]
    fn sharded_engine_is_element_identical_to_single_shard_reference(
        seed in 0u64..200,
        cap in 2u32..6,
    ) {
        let w = bioaid(seed % 3);
        let fvl = shared_fvl(&w);
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, 120);
        let mut labels = fvl.labeler(&run).labels().to_vec();
        let view0 = views::random_safe_view(&w, &mut rng, 8);
        let initial = labels.len() / 2;

        let spec = ChurnSpec {
            initial_items: initial,
            insert_weight: 0.5,
            view_weight: 0.1,
            query_weight: 0.4,
            insert_chunk: 3,
            // Bursts up to 8 * chunk = 24 labels: a single staged insert
            // spans many `cap`-sized shards.
            locality: InsertLocality::Skewed { burst: 8 },
            batch: 24,
            ..ChurnSpec::default()
        };
        let ops = churn_stream(&mut rng, 18, &spec);
        // Pad the label pool to cover the stream's total insert demand
        // (duplicates get fresh ids, so population arithmetic is exact).
        let needed = initial
            + ops.iter().map(|op| match op { ChurnOp::Insert { count } => *count, _ => 0 }).sum::<usize>();
        let mut i = 0usize;
        while labels.len() < needed {
            labels.push(labels[i].clone());
            i += 1;
        }
        // Comparison batches: the stream's own query pairs, folded onto
        // the initial population so they are valid in every generation.
        let mut pairs: Vec<(ItemId, ItemId)> = ops
            .iter()
            .filter_map(|op| match op { ChurnOp::QueryBatch { pairs } => Some(pairs), _ => None })
            .flatten()
            .map(|&(a, b)| (ItemId(a % initial as u32), ItemId(b % initial as u32)))
            .take(48)
            .collect();
        if pairs.is_empty() {
            pairs = sample::sample_query_pairs(&run, &mut rng, 48)
                .into_iter()
                .map(|(a, b)| (ItemId(a.0 % initial as u32), ItemId(b.0 % initial as u32)))
                .collect();
        }

        for kind in VARIANTS {
            // The sharded chain under test.
            let mut writer = EngineWriter::from_fvl_with_shard_capacity(fvl.clone(), cap);
            writer.insert_labels(&labels[..initial]);
            let vref = writer.register_view(view0.clone(), kind).unwrap();
            let live = LiveEngine::new(writer.base().clone());
            let g1 = writer.publish(&live);
            prop_assert!(
                g1.store().shard_count() > 1,
                "capacity {} over {} items must produce multiple shards", cap, initial
            );
            let mut stream = Vec::new();
            g1.save(&mut stream).unwrap();

            // The single-shard sequential reference (the pre-shard store).
            let mut reference = QueryEngine::with_shard_capacity(fvl.as_ref(), u32::MAX);
            reference.insert_labels(&labels[..initial]);
            let rref = reference.register_view(view0.clone(), kind).unwrap();
            prop_assert_eq!(rref, vref, "registration order fixes handles on both sides");

            let mut ws = WorkerScratch::new();
            let mut next_label = initial;
            let mut view_refs = vec![vref];
            for (ix, op) in ops.iter().enumerate() {
                match op {
                    ChurnOp::Insert { count } => {
                        writer.insert_labels(&labels[next_label..next_label + count]);
                        reference.insert_labels(&labels[next_label..next_label + count]);
                        next_label += count;
                    }
                    ChurnOp::RegisterView { seed: vseed } => {
                        let (view, vkind) = churn_view(&w, *vseed);
                        let a = writer.register_view(view.clone(), vkind).unwrap();
                        let b = reference.register_view(view, vkind).unwrap();
                        prop_assert_eq!(a, b);
                        view_refs.push(a);
                    }
                    ChurnOp::QueryBatch { .. } => {}
                }
                if (ix + 1) % 3 == 0 && writer.has_staged_changes() {
                    let gen = writer.publish_with_delta(&live, &mut stream).unwrap();
                    for &vr in &view_refs {
                        prop_assert_eq!(
                            gen.query_batch(&mut ws, vr, &pairs),
                            reference.query_batch(vr, &pairs),
                            "sharded (cap {}) diverges from single-shard at seqno {} on {:?}/{:?}",
                            cap, gen.seqno(), vr, kind
                        );
                    }
                }
            }
            let final_gen = writer.publish_with_delta(&live, &mut stream).unwrap();

            // Element-identical over *every* ordered pair of every item.
            let items: Vec<ItemId> = (0..next_label as u32).map(ItemId).collect();
            let expected = reference.all_pairs(vref, &items);
            prop_assert_eq!(
                &final_gen.all_pairs(&mut ws, vref, &items), &expected,
                "final all_pairs diverges (cap {}, {:?})", cap, kind
            );

            // save → load at a *different* capacity → all_pairs: the wire
            // format is layout-free, so any capacity reads any stream.
            let mut saved = Vec::new();
            final_gen.save(&mut saved).unwrap();
            let other_cap = cap + 3;
            let reloaded = EngineGeneration::load_with_shard_capacity(
                shared_fvl(&w), &mut saved.as_slice(), other_cap,
            ).unwrap();
            prop_assert_eq!(reloaded.store().len(), next_label);
            prop_assert_eq!(
                &reloaded.all_pairs(&mut ws, vref, &items), &expected,
                "reloaded at capacity {} diverges (saved at {}, {:?})", other_cap, cap, kind
            );

            // Base ‖ delta replay, re-sharded both ways: every delta's
            // inserts land across shard boundaries of the replayed store.
            for replay_cap in [cap, u32::MAX] {
                let replayed = EngineGeneration::replay_with_shard_capacity(
                    shared_fvl(&w), &mut stream.as_slice(), replay_cap,
                ).unwrap();
                prop_assert_eq!(replayed.seqno(), final_gen.seqno());
                prop_assert_eq!(replayed.store().len(), next_label);
                prop_assert_eq!(
                    &replayed.all_pairs(&mut ws, vref, &items), &expected,
                    "replay at capacity {} diverges (written at {}, {:?})", replay_cap, cap, kind
                );
            }
        }
    }
}

/// A pre-shard-format stream (what PR 5 wrote — identical bytes to what a
/// single-shard store writes today) loads into a sharded store, and a
/// sharded stream loads into a single-shard store: capacity is invisible
/// on the wire in both directions, and a truncated stream stays a typed
/// error, never a panic.
#[test]
fn streams_cross_shard_capacities_in_both_directions() {
    let w = bioaid(1);
    let fvl = shared_fvl(&w);
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(5);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 100);
    let labels = fvl.labeler(&run).labels().to_vec();
    let view = views::random_safe_view(&w, &mut rng, 6);

    let save_with = |cap: u32| {
        let mut writer = EngineWriter::from_fvl_with_shard_capacity(fvl.clone(), cap);
        writer.insert_labels(&labels);
        writer.register_view(view.clone(), VariantKind::Default).unwrap();
        let live = LiveEngine::new(writer.base().clone());
        let gen = writer.publish(&live);
        let mut out = Vec::new();
        gen.save(&mut out).unwrap();
        out
    };
    let from_single = save_with(u32::MAX);
    let from_sharded = save_with(4);
    assert_eq!(from_single, from_sharded, "the wire format carries no shard layout");

    let items: Vec<ItemId> = (0..labels.len() as u32).map(ItemId).collect();
    let mut ws = WorkerScratch::new();
    let mut expected = None;
    for load_cap in [2u32, 64, u32::MAX] {
        let gen = EngineGeneration::load_with_shard_capacity(
            shared_fvl(&w),
            &mut from_single.as_slice(),
            load_cap,
        )
        .unwrap();
        assert_eq!(gen.store().len(), labels.len());
        let vref = wf_engine::ViewRef { id: wf_engine::ViewId(0), kind: VariantKind::Default };
        assert!(gen.registry().label(vref).is_some(), "the saved view arrived compiled");
        let pairs = gen.all_pairs(&mut ws, vref, &items);
        match &expected {
            None => expected = Some(pairs),
            Some(e) => assert_eq!(&pairs, e, "capacity {load_cap} changes answers"),
        }
    }

    // Truncation stays typed whatever the target capacity.
    let cut = from_single.len() - 9;
    assert!(matches!(
        EngineGeneration::load_with_shard_capacity(shared_fvl(&w), &mut &from_single[..cut], 3),
        Err(wf_engine::SnapshotError::Truncated)
    ));
}
