//! Serving-layer integration: the engine must answer byte-for-byte like the
//! reference per-call path, under realistic (generated) workloads, across
//! variants, and with views interleaved arbitrarily.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_analysis::ProdGraph;
use wf_core::{Fvl, VariantKind};
use wf_engine::QueryEngine;
use wf_workloads::{bioaid, sample, views};

const VARIANTS: [VariantKind; 3] =
    [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient];

#[test]
fn batch_agrees_with_reference_across_variants() {
    let w = bioaid(11);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(11);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 600);
    let labeler = fvl.labeler(&run);
    let view = views::random_safe_view(&w, &mut rng, 8);

    let mut engine = QueryEngine::new(&fvl);
    let items = engine.insert_labels(labeler.labels());
    let pairs = sample::sample_query_pairs(&run, &mut rng, 500);
    let id_pairs: Vec<_> =
        pairs.iter().map(|&(a, b)| (items[a.0 as usize], items[b.0 as usize])).collect();

    let vid = engine.add_view(view.clone());
    for kind in VARIANTS {
        let vref = engine.compile(vid, kind).unwrap();
        let vl = fvl.label_view(&view, kind).unwrap();
        let batch = engine.query_batch(vref, &id_pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let reference = fvl.query(&vl, labeler.label(a), labeler.label(b));
            assert_eq!(batch[i], reference, "{kind:?} pair {i}: {a:?} -> {b:?}");
        }
    }
}

/// Interleaving queries across different views must not poison the
/// chain-power memo (the retag mechanism recycles it on every switch).
#[test]
fn interleaved_views_stay_sound() {
    let w = bioaid(3);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(3);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 400);
    let labeler = fvl.labeler(&run);
    let view_a = views::random_safe_view(&w, &mut rng, 6);
    let view_b = views::random_safe_view(&w, &mut rng, 12);

    let mut engine = QueryEngine::new(&fvl);
    let items = engine.insert_labels(labeler.labels());
    let ra = engine.register_view(view_a.clone(), VariantKind::Default).unwrap();
    let rb = engine.register_view(view_b.clone(), VariantKind::Default).unwrap();
    let vla = fvl.label_view(&view_a, VariantKind::Default).unwrap();
    let vlb = fvl.label_view(&view_b, VariantKind::Default).unwrap();

    let pairs = sample::sample_query_pairs(&run, &mut rng, 300);
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let (vref, vl) = if i % 2 == 0 { (ra, &vla) } else { (rb, &vlb) };
        let got = engine.query(vref, items[a.0 as usize], items[b.0 as usize]);
        let want = fvl.query(vl, labeler.label(a), labeler.label(b));
        assert_eq!(got, want, "query {i} on view {}", if i % 2 == 0 { "A" } else { "B" });
    }
}

#[test]
fn all_pairs_matches_pairwise_queries() {
    let w = bioaid(5);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(5);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 120);
    let labeler = fvl.labeler(&run);
    let view = views::random_safe_view(&w, &mut rng, 8);
    let vl = fvl.label_view(&view, VariantKind::Default).unwrap();

    let mut engine = QueryEngine::new(&fvl);
    let items = engine.insert_labels(labeler.labels());
    let vref = engine.register_view(view, VariantKind::Default).unwrap();

    let subset: Vec<_> = items.iter().copied().step_by(3).collect();
    let dependent = engine.all_pairs(vref, &subset);
    let mut expected = Vec::new();
    for &a in &subset {
        for &b in &subset {
            let da = labeler.label(wf_run::DataId(a.0));
            let db = labeler.label(wf_run::DataId(b.0));
            if fvl.query(&vl, da, db) == Some(true) {
                expected.push((a, b));
            }
        }
    }
    assert_eq!(dependent, expected);
    assert!(!dependent.is_empty(), "a run always has some dependent pairs");
}

/// The batched path evaluates in grouped (sorted-by-item) order to reuse
/// label fetches and keep memo locality — but its *output* must stay
/// element-for-element identical to per-call queries in input order, for
/// any input arrangement: duplicated pairs, shared first items, reversed
/// and shuffled orders.
#[test]
fn grouped_batch_matches_per_call_queries() {
    let w = bioaid(13);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(13);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 300);
    let labeler = fvl.labeler(&run);
    let view = views::random_safe_view(&w, &mut rng, 6);

    let mut engine = QueryEngine::new(&fvl);
    let items = engine.insert_labels(labeler.labels());
    let vref = engine.register_view(view, VariantKind::Default).unwrap();

    let base = sample::sample_query_pairs(&run, &mut rng, 200);
    let mut id_pairs: Vec<_> =
        base.iter().map(|&(a, b)| (items[a.0 as usize], items[b.0 as usize])).collect();
    // Stress the grouping: duplicate a prefix (equal (a, b) keys), give one
    // hot item a long run of partners, then reverse the whole thing so the
    // evaluation order differs maximally from the input order.
    let dupes: Vec<_> = id_pairs[..40].to_vec();
    id_pairs.extend(dupes);
    let hot = items[0];
    id_pairs.extend(items.iter().rev().take(64).map(|&b| (hot, b)));
    id_pairs.reverse();

    let batch = engine.query_batch(vref, &id_pairs);
    assert_eq!(batch.len(), id_pairs.len());
    for (i, &(a, b)) in id_pairs.iter().enumerate() {
        assert_eq!(batch[i], engine.query(vref, a, b), "pair {i}: {a:?} -> {b:?}");
    }
}

/// After warm-up, repeated batches must not grow the scratch: the batched
/// path is allocation-free in steady state.
#[test]
fn steady_state_is_allocation_free() {
    let w = bioaid(7);
    let fvl = Fvl::new(&w.spec).unwrap();
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(7);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 500);
    let labeler = fvl.labeler(&run);
    let view = views::random_safe_view(&w, &mut rng, 8);

    let mut engine = QueryEngine::new(&fvl);
    let items = engine.insert_labels(labeler.labels());
    let vref = engine.register_view(view, VariantKind::Default).unwrap();
    let pairs = sample::sample_query_pairs(&run, &mut rng, 400);
    let id_pairs: Vec<_> =
        pairs.iter().map(|&(a, b)| (items[a.0 as usize], items[b.0 as usize])).collect();

    let mut out = Vec::with_capacity(id_pairs.len());
    engine.query_batch_into(vref, &id_pairs, &mut out);
    engine.query_batch_into(vref, &id_pairs, &mut out);
    let warm = engine.scratch_stats();
    for _ in 0..3 {
        engine.query_batch_into(vref, &id_pairs, &mut out);
        assert_eq!(engine.scratch_stats(), warm, "scratch grew after warm-up");
    }
}
