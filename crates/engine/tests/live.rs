//! The generational engine under fire: delta persistence must replay to
//! exactly the published state, and readers racing a publishing writer
//! must only ever observe answers of *some* published generation —
//! element-identical to a sequential single-generation engine built to
//! that generation's state. No torn reads, no locks on the query path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wf_analysis::ProdGraph;
use wf_core::{Fvl, VariantKind};
use wf_engine::{
    EngineGeneration, EngineWriter, ItemId, LiveEngine, QueryEngine, SnapshotError, WorkerScratch,
};
use wf_workloads::churn::{churn_stream, ChurnOp, ChurnSpec};
use wf_workloads::{bioaid, sample, views, Workload};

const VARIANTS: [VariantKind; 3] =
    [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient];

fn shared_fvl(w: &Workload) -> Arc<Fvl<'static>> {
    Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).unwrap())
}

/// Base save + two delta-publishes, then a warm restart from the combined
/// append-only stream: the replayed generation must agree with the live
/// one — and with a cold-built single-generation engine — on `all_pairs`
/// over every item, for every compiled view.
#[test]
fn base_plus_deltas_replay_to_the_published_state() {
    let w = bioaid(3);
    let fvl = shared_fvl(&w);
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(11);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 160);
    let labels = fvl.labeler(&run).labels().to_vec();
    let view_a = views::random_safe_view(&w, &mut rng, 6);
    let view_b = views::random_safe_view(&w, &mut rng, 10);
    let (third, two_thirds) = (labels.len() / 3, 2 * labels.len() / 3);

    // Generation 1: first third + view A (Default). Saved as the base.
    let mut writer = EngineWriter::from_fvl(fvl.clone());
    writer.insert_labels(&labels[..third]);
    let ra = writer.register_view(view_a.clone(), VariantKind::Default).unwrap();
    let live = LiveEngine::new(writer.base().clone());
    let g1 = writer.publish(&live);
    let mut stream = Vec::new();
    g1.save(&mut stream).unwrap();

    // Generation 2 (delta): second third + view B (Query-Efficient).
    let base_len = stream.len();
    writer.insert_labels(&labels[third..two_thirds]);
    let rb = writer.register_view(view_b.clone(), VariantKind::QueryEfficient).unwrap();
    writer.publish_with_delta(&live, &mut stream).unwrap();
    let delta1_end = stream.len();

    // Generation 3 (delta): the rest + view A under a second variant.
    writer.insert_labels(&labels[two_thirds..]);
    let ra_se = writer.compile(ra.id, VariantKind::SpaceEfficient).unwrap();
    let g3 = writer.publish_with_delta(&live, &mut stream).unwrap();
    assert_eq!(g3.seqno(), 3);

    // Warm restart: replay the whole stream against a fresh scheme.
    let fvl2 = shared_fvl(&w);
    let replayed = EngineGeneration::replay(fvl2, &mut stream.as_slice()).unwrap();
    assert_eq!(replayed.seqno(), 3);
    assert_eq!(replayed.store().len(), labels.len());
    assert_eq!(replayed.store().edge_stats(), g3.store().edge_stats());
    assert_eq!(replayed.registry().view_count(), 2);
    assert_eq!(replayed.registry().compiled_count(), 3);

    // Cold reference: one single-generation engine with everything.
    let mut cold = QueryEngine::new(fvl.as_ref());
    let items = cold.insert_labels(&labels);
    let ca = cold.register_view(view_a, VariantKind::Default).unwrap();
    let cb = cold.register_view(view_b, VariantKind::QueryEfficient).unwrap();
    let ca_se = cold.compile(ca.id, VariantKind::SpaceEfficient).unwrap();

    let mut ws = WorkerScratch::new();
    for (live_ref, cold_ref) in [(ra, ca), (rb, cb), (ra_se, ca_se)] {
        let expected = cold.all_pairs(cold_ref, &items);
        assert_eq!(
            replayed.all_pairs(&mut ws, live_ref, &items),
            expected,
            "replayed generation diverges on {live_ref:?}"
        );
        assert_eq!(
            g3.all_pairs(&mut ws, live_ref, &items),
            expected,
            "published generation diverges on {live_ref:?}"
        );
    }

    // A truncated stream (mid-delta) is rejected, not half-applied.
    let cut = stream.len() - 7;
    assert!(matches!(
        EngineGeneration::replay(shared_fvl(&w), &mut &stream[..cut]),
        Err(SnapshotError::Truncated)
    ));
    // Deltas replayed out of order break the chain with a typed error:
    // base ‖ delta2 (a gap) and base ‖ delta1 ‖ delta1 (a repeat) both
    // fail the consecutive-seqno check instead of half-applying.
    let (base, delta1, delta2) =
        (&stream[..base_len], &stream[base_len..delta1_end], &stream[delta1_end..]);
    for bad in [vec![base, delta2], vec![base, delta1, delta1]] {
        assert!(matches!(
            EngineGeneration::replay(shared_fvl(&w), &mut bad.concat().as_slice()),
            Err(SnapshotError::Malformed(_))
        ));
    }
}

/// A named churn mix for the racing proptest: the fixed interleaving the
/// test used to hard-code is replaced by generated op streams, biased two
/// ways to stress different publish shapes.
#[derive(Clone, Copy, Debug)]
enum Mix {
    /// Mostly label inserts: generations grow fast, registries rarely.
    InsertHeavy,
    /// Mostly view registrations: registries grow (and compile) under
    /// serving, stores rarely.
    ViewHeavy,
}

impl Mix {
    fn spec(self, initial: usize) -> ChurnSpec {
        match self {
            Mix::InsertHeavy => ChurnSpec {
                initial_items: initial,
                insert_weight: 0.7,
                view_weight: 0.05,
                query_weight: 0.25,
                insert_chunk: 10,
                batch: 48,
                ..ChurnSpec::default()
            },
            Mix::ViewHeavy => ChurnSpec {
                initial_items: initial,
                insert_weight: 0.15,
                view_weight: 0.55,
                query_weight: 0.3,
                insert_chunk: 6,
                batch: 48,
                ..ChurnSpec::default()
            },
        }
    }
}

/// Materializes a [`ChurnOp::RegisterView`] seed the same way everywhere
/// (writer and references must derive the identical view).
fn churn_view(w: &Workload, vseed: u64) -> (wf_model::View, VariantKind) {
    let mut vrng = StdRng::seed_from_u64(vseed);
    let composites = w.spec.grammar.composite_modules().count().max(1);
    let size = vrng.gen_range(1..=composites);
    (views::random_safe_view(w, &mut vrng, size), VARIANTS[(vseed % 3) as usize])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Readers racing a writer that replays a *generated churn stream*
    /// (view-heavy and insert-heavy mixes from `wf-workloads::churn`,
    /// publishing every few ops): every batch a reader answers must be
    /// element-identical to the answers of a sequential single-generation
    /// [`QueryEngine`] built to the state of the generation the reader
    /// was served — i.e. every observation is of *some* published
    /// generation, never a torn mix, regardless of how inserts, view
    /// registrations and publishes interleave.
    #[test]
    fn racing_readers_observe_only_published_generations(
        seed in 0u64..200,
        mix in prop_oneof![Just(Mix::InsertHeavy), Just(Mix::ViewHeavy)],
    ) {
        let w = bioaid(seed % 3);
        let fvl = shared_fvl(&w);
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, 160);
        let mut labels = fvl.labeler(&run).labels().to_vec();
        let view0 = views::random_safe_view(&w, &mut rng, 8);
        let initial = labels.len() / 2;

        let ops = churn_stream(&mut rng, 24, &mix.spec(initial));
        // Pad the label pool to cover the stream's total insert demand
        // (duplicates get fresh ids, so population arithmetic is exact).
        let needed = initial
            + ops.iter().map(|op| match op { ChurnOp::Insert { count } => *count, _ => 0 }).sum::<usize>();
        let mut i = 0usize;
        while labels.len() < needed {
            labels.push(labels[i].clone());
            i += 1;
        }
        // Reader batches: the stream's own query pairs, folded onto the
        // initial population so they are valid in every generation.
        let mut pairs: Vec<(ItemId, ItemId)> = ops
            .iter()
            .filter_map(|op| match op { ChurnOp::QueryBatch { pairs } => Some(pairs), _ => None })
            .flatten()
            .map(|&(a, b)| (ItemId(a % initial as u32), ItemId(b % initial as u32)))
            .take(64)
            .collect();
        if pairs.is_empty() {
            pairs = sample::sample_query_pairs(&run, &mut rng, 64)
                .into_iter()
                .map(|(a, b)| (ItemId(a.0 % initial as u32), ItemId(b.0 % initial as u32)))
                .collect();
        }

        for kind in VARIANTS {
            let mut writer = EngineWriter::from_fvl(fvl.clone());
            writer.insert_labels(&labels[..initial]);
            let vref = writer.register_view(view0.clone(), kind).unwrap();
            let live = LiveEngine::new(writer.base().clone());
            writer.publish(&live);

            // The writer replays the churn stream, publishing every
            // `publish_every` ops; the journal records the exact state
            // (label count, view seeds) behind each published seqno so the
            // sequential references can be rebuilt afterwards.
            let publish_every = 4usize;
            let mut journal: Vec<(u64, usize, Vec<u64>)> = vec![(1, initial, Vec::new())];
            let expected_final = {
                // Publishes that will actually happen: only ops that stage
                // state (inserts / views) make a publish non-empty.
                let mut seqno = 1u64;
                let mut staged = false;
                for (ix, op) in ops.iter().enumerate() {
                    staged |= !matches!(op, ChurnOp::QueryBatch { .. });
                    if (ix + 1) % publish_every == 0 && staged {
                        seqno += 1;
                        staged = false;
                    }
                }
                if staged { seqno + 1 } else { seqno }
            };

            let observations = std::thread::scope(|s| {
                let live = &live;
                let pairs = &pairs;
                let readers: Vec<_> = (0..2)
                    .map(|_| {
                        s.spawn(move || {
                            let mut ws = WorkerScratch::new();
                            let mut seen = Vec::new();
                            for _ in 0..20_000 {
                                let gen = live.read();
                                let ans = gen.query_batch(&mut ws, vref, pairs);
                                let done = gen.seqno() == expected_final;
                                seen.push((gen.seqno(), ans));
                                if done {
                                    break;
                                }
                            }
                            seen
                        })
                    })
                    .collect();

                let mut writer = writer;
                let mut next_label = initial;
                let mut view_seeds: Vec<u64> = Vec::new();
                for (ix, op) in ops.iter().enumerate() {
                    match op {
                        ChurnOp::Insert { count } => {
                            writer.insert_labels(&labels[next_label..next_label + count]);
                            next_label += count;
                        }
                        ChurnOp::RegisterView { seed: vseed } => {
                            let (view, vkind) = churn_view(&w, *vseed);
                            writer.register_view(view, vkind).unwrap();
                            view_seeds.push(*vseed);
                        }
                        ChurnOp::QueryBatch { .. } => {} // readers own the queries
                    }
                    if (ix + 1) % publish_every == 0 && writer.has_staged_changes() {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        let g = writer.publish(live);
                        journal.push((g.seqno(), next_label, view_seeds.clone()));
                    }
                }
                if writer.has_staged_changes() {
                    let g = writer.publish(live);
                    journal.push((g.seqno(), next_label, view_seeds.clone()));
                }

                let mut all = Vec::new();
                for r in readers {
                    all.extend(r.join().expect("reader panicked"));
                }
                all
            });
            prop_assert_eq!(journal.last().unwrap().0, expected_final, "{:?}", mix);

            // Verify each observation against a sequential reference built
            // to exactly that generation's journaled state.
            for (seqno, label_count, view_seeds) in &journal {
                let mut reference = QueryEngine::new(fvl.as_ref());
                reference.insert_labels(&labels[..*label_count]);
                let rref = reference.register_view(view0.clone(), kind).unwrap();
                prop_assert_eq!(rref, vref, "handles are chain-stable");
                for vseed in view_seeds {
                    let (view, vkind) = churn_view(&w, *vseed);
                    reference.register_view(view, vkind).unwrap();
                }
                let expected = reference.query_batch(rref, &pairs);
                for (s, ans) in observations.iter().filter(|(s, _)| s == seqno) {
                    prop_assert_eq!(
                        ans,
                        &expected,
                        "{:?}/{:?}: observation of generation {} is not the sequential answer",
                        kind,
                        mix,
                        s
                    );
                }
            }
            // Liveness: both readers reached the final generation.
            prop_assert!(
                observations.iter().filter(|(s, _)| *s == expected_final).count() >= 2,
                "readers must observe the final publish"
            );
        }
    }
}
