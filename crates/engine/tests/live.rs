//! The generational engine under fire: delta persistence must replay to
//! exactly the published state, and readers racing a publishing writer
//! must only ever observe answers of *some* published generation —
//! element-identical to a sequential single-generation engine built to
//! that generation's state. No torn reads, no locks on the query path.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use wf_analysis::ProdGraph;
use wf_core::{Fvl, VariantKind};
use wf_engine::{
    EngineGeneration, EngineWriter, LiveEngine, QueryEngine, SnapshotError, WorkerScratch,
};
use wf_workloads::{bioaid, sample, views, Workload};

const VARIANTS: [VariantKind; 3] =
    [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient];

fn shared_fvl(w: &Workload) -> Arc<Fvl<'static>> {
    Arc::new(Fvl::from_arc(Arc::new(w.spec.clone())).unwrap())
}

/// Base save + two delta-publishes, then a warm restart from the combined
/// append-only stream: the replayed generation must agree with the live
/// one — and with a cold-built single-generation engine — on `all_pairs`
/// over every item, for every compiled view.
#[test]
fn base_plus_deltas_replay_to_the_published_state() {
    let w = bioaid(3);
    let fvl = shared_fvl(&w);
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(11);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 160);
    let labels = fvl.labeler(&run).labels().to_vec();
    let view_a = views::random_safe_view(&w, &mut rng, 6);
    let view_b = views::random_safe_view(&w, &mut rng, 10);
    let (third, two_thirds) = (labels.len() / 3, 2 * labels.len() / 3);

    // Generation 1: first third + view A (Default). Saved as the base.
    let mut writer = EngineWriter::from_fvl(fvl.clone());
    writer.insert_labels(&labels[..third]);
    let ra = writer.register_view(view_a.clone(), VariantKind::Default).unwrap();
    let live = LiveEngine::new(writer.base().clone());
    let g1 = writer.publish(&live);
    let mut stream = Vec::new();
    g1.save(&mut stream).unwrap();

    // Generation 2 (delta): second third + view B (Query-Efficient).
    let base_len = stream.len();
    writer.insert_labels(&labels[third..two_thirds]);
    let rb = writer.register_view(view_b.clone(), VariantKind::QueryEfficient).unwrap();
    writer.publish_with_delta(&live, &mut stream).unwrap();
    let delta1_end = stream.len();

    // Generation 3 (delta): the rest + view A under a second variant.
    writer.insert_labels(&labels[two_thirds..]);
    let ra_se = writer.compile(ra.id, VariantKind::SpaceEfficient).unwrap();
    let g3 = writer.publish_with_delta(&live, &mut stream).unwrap();
    assert_eq!(g3.seqno(), 3);

    // Warm restart: replay the whole stream against a fresh scheme.
    let fvl2 = shared_fvl(&w);
    let replayed = EngineGeneration::replay(fvl2, &mut stream.as_slice()).unwrap();
    assert_eq!(replayed.seqno(), 3);
    assert_eq!(replayed.store().len(), labels.len());
    assert_eq!(replayed.store().edge_stats(), g3.store().edge_stats());
    assert_eq!(replayed.registry().view_count(), 2);
    assert_eq!(replayed.registry().compiled_count(), 3);

    // Cold reference: one single-generation engine with everything.
    let mut cold = QueryEngine::new(fvl.as_ref());
    let items = cold.insert_labels(&labels);
    let ca = cold.register_view(view_a, VariantKind::Default).unwrap();
    let cb = cold.register_view(view_b, VariantKind::QueryEfficient).unwrap();
    let ca_se = cold.compile(ca.id, VariantKind::SpaceEfficient).unwrap();

    let mut ws = WorkerScratch::new();
    for (live_ref, cold_ref) in [(ra, ca), (rb, cb), (ra_se, ca_se)] {
        let expected = cold.all_pairs(cold_ref, &items);
        assert_eq!(
            replayed.all_pairs(&mut ws, live_ref, &items),
            expected,
            "replayed generation diverges on {live_ref:?}"
        );
        assert_eq!(
            g3.all_pairs(&mut ws, live_ref, &items),
            expected,
            "published generation diverges on {live_ref:?}"
        );
    }

    // A truncated stream (mid-delta) is rejected, not half-applied.
    let cut = stream.len() - 7;
    assert!(matches!(
        EngineGeneration::replay(shared_fvl(&w), &mut &stream[..cut]),
        Err(SnapshotError::Truncated)
    ));
    // Deltas replayed out of order break the chain with a typed error:
    // base ‖ delta2 (a gap) and base ‖ delta1 ‖ delta1 (a repeat) both
    // fail the consecutive-seqno check instead of half-applying.
    let (base, delta1, delta2) =
        (&stream[..base_len], &stream[base_len..delta1_end], &stream[delta1_end..]);
    for bad in [vec![base, delta2], vec![base, delta1, delta1]] {
        assert!(matches!(
            EngineGeneration::replay(shared_fvl(&w), &mut bad.concat().as_slice()),
            Err(SnapshotError::Malformed(_))
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Readers racing a publishing writer, across all three variants:
    /// every batch a reader answers must be element-identical to the
    /// answers of a sequential, single-generation [`QueryEngine`] built to
    /// the state of the generation the reader was served — i.e. every
    /// observation is of *some* published generation, never a torn mix.
    #[test]
    fn racing_readers_observe_only_published_generations(seed in 0u64..200) {
        let w = bioaid(seed % 3);
        let fvl = shared_fvl(&w);
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(seed);
        let (_, run) = sample::sample_run(&w, &pg, &mut rng, 120);
        let labels = fvl.labeler(&run).labels().to_vec();
        let view = views::random_safe_view(&w, &mut rng, 8);
        let initial = labels.len() / 2;
        // Pairs over the initial items only: valid in every generation.
        let pairs: Vec<_> = sample::sample_query_pairs(&run, &mut rng, 64)
            .into_iter()
            .map(|(a, b)| {
                use wf_engine::ItemId;
                (ItemId(a.0 % initial as u32), ItemId(b.0 % initial as u32))
            })
            .collect();

        for kind in VARIANTS {
            let mut writer = EngineWriter::from_fvl(fvl.clone());
            writer.insert_labels(&labels[..initial]);
            let vref = writer.register_view(view.clone(), kind).unwrap();
            let live = LiveEngine::new(writer.base().clone());
            writer.publish(&live);

            // The writer will publish `chunks` more generations, each
            // adding a slice of the remaining labels.
            let tail = &labels[initial..];
            let chunks = 4usize;
            let final_seqno = 1 + chunks as u64;
            let observations = std::thread::scope(|s| {
                let live = &live;
                let pairs = &pairs;
                let readers: Vec<_> = (0..2)
                    .map(|_| {
                        s.spawn(move || {
                            let mut ws = WorkerScratch::new();
                            let mut seen = Vec::new();
                            for _ in 0..10_000 {
                                let gen = live.read();
                                let ans = gen.query_batch(&mut ws, vref, pairs);
                                let done = gen.seqno() == final_seqno;
                                seen.push((gen.seqno(), ans));
                                if done {
                                    break;
                                }
                            }
                            seen
                        })
                    })
                    .collect();
                let mut writer = writer;
                for (i, chunk) in tail.chunks(tail.len().div_ceil(chunks)).enumerate() {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    writer.insert_labels(chunk);
                    let g = writer.publish(live);
                    prop_assert_eq!(g.seqno(), 2 + i as u64);
                }
                let mut all = Vec::new();
                for r in readers {
                    all.extend(r.join().expect("reader panicked"));
                }
                all
            });

            // Verify each observation against a sequential reference built
            // to exactly that generation's state.
            let label_count_at = |seqno: u64| {
                let extra = (seqno.saturating_sub(1)) as usize
                    * tail.len().div_ceil(chunks);
                initial + extra.min(tail.len())
            };
            for seqno in 1..=final_seqno {
                let mut reference = QueryEngine::new(fvl.as_ref());
                reference.insert_labels(&labels[..label_count_at(seqno)]);
                let rref = reference.register_view(view.clone(), kind).unwrap();
                prop_assert_eq!(rref, vref, "handles are chain-stable");
                let expected = reference.query_batch(rref, &pairs);
                for (s, ans) in observations.iter().filter(|(s, _)| *s == seqno) {
                    prop_assert_eq!(
                        ans,
                        &expected,
                        "{:?}: observation of generation {} is not the sequential answer",
                        kind,
                        s
                    );
                }
            }
            // Liveness: both readers reached the final generation.
            prop_assert!(
                observations.iter().filter(|(s, _)| *s == final_seqno).count() >= 2,
                "readers must observe the final publish"
            );
        }
    }
}
