//! Scoped profiling counters for the query hot path.
//!
//! The decode pipeline (`wf-core::decode`) and the engine batch path are
//! instrumented with [`scope`] guards and [`count`] ticks keyed by [`Stage`].
//! Each guard records one invocation plus the monotonic nanoseconds between
//! construction and drop into **thread-local `Cell`s** — no atomics, no
//! locks, no allocation on the measured path. Counters from threads that
//! have already exited are flushed into process-wide atomics by the
//! thread-local destructor, so reports see scoped worker threads too.
//!
//! Everything is compiled to a no-op unless the `enabled` cargo feature is
//! on (downstream crates forward it as their own `profile` feature). With
//! the feature off, `scope` returns a zero-sized guard and the optimizer
//! deletes the call entirely; the instrumented binaries are bit-for-bit as
//! fast as uninstrumented ones.
//!
//! Timing is *inclusive*: a [`Stage::Pi`] scope contains the
//! [`Stage::Matmul`] scopes it triggers, so nested stage totals can exceed
//! their parent only across threads, never within one (the smoke test in
//! `wf-core` pins this nesting invariant).

/// The instrumented pipeline stages, in rough hot-path order.
///
/// `PowMemoHit`/`PowMemoMiss` are count-only (their cost is attributed to
/// the enclosing [`Stage::ChainEval`] scope); the rest carry nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Stage {
    /// Materializing the two endpoint labels out of the sharded store.
    LabelFetch = 0,
    /// Building/searching a per-production port graph (Space-Efficient
    /// decode recomputes; Default hits the `OnceLock` cache).
    PortGraphWalk = 1,
    /// One boolean matrix product (`matmul_into` and friends).
    Matmul = 2,
    /// One matrix transpose (`transpose_into`).
    Transpose = 3,
    /// One `chain_into` fold over a parse-tree path (contains its matmuls).
    ChainEval = 4,
    /// A power request answered from the `PowMemo`/`PowerCache`.
    PowMemoHit = 5,
    /// A power request that had to run square-and-multiply.
    PowMemoMiss = 6,
    /// One full `pi` decode (Algorithm 2), visibility checks excluded.
    Pi = 7,
    /// One engine batch call (`query_batch` / `all_pairs` / a parallel
    /// worker's chunk), containing everything above.
    Batch = 8,
}

/// Number of [`Stage`] variants; also the length of the arrays in
/// [`ProfileReport`].
pub const STAGE_COUNT: usize = 9;

/// All stages, index-aligned with the report arrays.
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::LabelFetch,
    Stage::PortGraphWalk,
    Stage::Matmul,
    Stage::Transpose,
    Stage::ChainEval,
    Stage::PowMemoHit,
    Stage::PowMemoMiss,
    Stage::Pi,
    Stage::Batch,
];

impl Stage {
    /// Stable snake_case name, used as the JSON key in bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::LabelFetch => "label_fetch",
            Stage::PortGraphWalk => "port_graph_walk",
            Stage::Matmul => "matmul",
            Stage::Transpose => "transpose",
            Stage::ChainEval => "chain_eval",
            Stage::PowMemoHit => "pow_memo_hit",
            Stage::PowMemoMiss => "pow_memo_miss",
            Stage::Pi => "pi",
            Stage::Batch => "batch",
        }
    }
}

/// Aggregated counters, produced by [`take_report`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProfileReport {
    /// Invocations per stage, indexed by `Stage as usize`.
    pub calls: [u64; STAGE_COUNT],
    /// Inclusive nanoseconds per stage, indexed by `Stage as usize`.
    pub ns: [u64; STAGE_COUNT],
}

impl ProfileReport {
    #[inline]
    pub fn calls_of(&self, s: Stage) -> u64 {
        self.calls[s as usize]
    }

    #[inline]
    pub fn ns_of(&self, s: Stage) -> u64 {
        self.ns[s as usize]
    }

    /// True iff no counter ticked (always true with the feature off).
    pub fn is_empty(&self) -> bool {
        self.calls.iter().all(|&c| c == 0) && self.ns.iter().all(|&n| n == 0)
    }

    /// Stages ranked by inclusive nanoseconds, hottest first; count-only
    /// stages (zero ns) rank by calls after every timed stage.
    pub fn ranked(&self) -> [Stage; STAGE_COUNT] {
        let mut order = STAGES;
        order.sort_by_key(|&s| {
            (std::cmp::Reverse(self.ns_of(s)), std::cmp::Reverse(self.calls_of(s)))
        });
        order
    }
}

/// Whether the counters are compiled in.
#[inline(always)]
pub fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{ProfileReport, Stage, STAGE_COUNT};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    /// Counters flushed from exited threads (and drained by `take_report`).
    static GLOBAL_CALLS: [AtomicU64; STAGE_COUNT] = [const { AtomicU64::new(0) }; STAGE_COUNT];
    static GLOBAL_NS: [AtomicU64; STAGE_COUNT] = [const { AtomicU64::new(0) }; STAGE_COUNT];

    struct Cells {
        calls: [Cell<u64>; STAGE_COUNT],
        ns: [Cell<u64>; STAGE_COUNT],
    }

    impl Cells {
        const fn new() -> Self {
            Cells {
                calls: [const { Cell::new(0) }; STAGE_COUNT],
                ns: [const { Cell::new(0) }; STAGE_COUNT],
            }
        }

        fn flush(&self) {
            for i in 0..STAGE_COUNT {
                let c = self.calls[i].replace(0);
                if c != 0 {
                    GLOBAL_CALLS[i].fetch_add(c, Ordering::Relaxed);
                }
                let n = self.ns[i].replace(0);
                if n != 0 {
                    GLOBAL_NS[i].fetch_add(n, Ordering::Relaxed);
                }
            }
        }
    }

    impl Drop for Cells {
        fn drop(&mut self) {
            self.flush();
        }
    }

    thread_local! {
        static CELLS: Cells = const { Cells::new() };
    }

    /// Times one stage invocation from construction to drop.
    pub struct ScopeGuard {
        stage: Stage,
        start: Instant,
    }

    impl Drop for ScopeGuard {
        #[inline]
        fn drop(&mut self) {
            let elapsed = self.start.elapsed().as_nanos() as u64;
            let i = self.stage as usize;
            // `try_with`: a guard may drop during thread teardown, after
            // the thread-local itself was destructed (and flushed).
            let _ = CELLS.try_with(|c| {
                c.calls[i].set(c.calls[i].get() + 1);
                c.ns[i].set(c.ns[i].get() + elapsed);
            });
        }
    }

    #[inline]
    pub fn scope(stage: Stage) -> ScopeGuard {
        ScopeGuard { stage, start: Instant::now() }
    }

    #[inline]
    pub fn count(stage: Stage) {
        let i = stage as usize;
        let _ = CELLS.try_with(|c| c.calls[i].set(c.calls[i].get() + 1));
    }

    pub fn take_report() -> ProfileReport {
        // Move the calling thread's cells into the globals, then drain the
        // globals. Live *other* threads keep their unflushed deltas — the
        // contract is "aggregate what has completed", which covers both the
        // single-threaded benches and scoped workers that joined already.
        CELLS.with(|c| c.flush());
        let mut r = ProfileReport::default();
        for i in 0..STAGE_COUNT {
            r.calls[i] = GLOBAL_CALLS[i].swap(0, Ordering::Relaxed);
            r.ns[i] = GLOBAL_NS[i].swap(0, Ordering::Relaxed);
        }
        r
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{ProfileReport, Stage};

    /// Zero-sized no-op stand-in; the optimizer removes it entirely.
    pub struct ScopeGuard;

    #[inline(always)]
    pub fn scope(_stage: Stage) -> ScopeGuard {
        ScopeGuard
    }

    #[inline(always)]
    pub fn count(_stage: Stage) {}

    #[inline(always)]
    pub fn take_report() -> ProfileReport {
        ProfileReport::default()
    }
}

pub use imp::{count, scope, take_report, ScopeGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors_are_index_aligned() {
        let mut r = ProfileReport::default();
        r.calls[Stage::Matmul as usize] = 7;
        r.ns[Stage::Matmul as usize] = 900;
        assert_eq!(r.calls_of(Stage::Matmul), 7);
        assert_eq!(r.ns_of(Stage::Matmul), 900);
        assert!(!r.is_empty());
        assert_eq!(r.ranked()[0], Stage::Matmul);
    }

    #[test]
    fn ranked_orders_by_ns_then_calls() {
        let mut r = ProfileReport::default();
        r.ns[Stage::Matmul as usize] = 500;
        r.ns[Stage::Pi as usize] = 900;
        r.calls[Stage::PowMemoHit as usize] = 12; // count-only stage
        let ranked = r.ranked();
        assert_eq!(ranked[0], Stage::Pi);
        assert_eq!(ranked[1], Stage::Matmul);
        assert_eq!(ranked[2], Stage::PowMemoHit);
    }

    #[test]
    fn stage_names_are_unique() {
        let mut names: Vec<_> = STAGES.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn counters_accumulate_and_reset() {
        let _ = take_report(); // drain anything from sibling tests
        {
            let _g = scope(Stage::Matmul);
            std::hint::black_box(0u64);
        }
        count(Stage::PowMemoHit);
        let r = take_report();
        assert_eq!(r.calls_of(Stage::Matmul), 1);
        assert_eq!(r.calls_of(Stage::PowMemoHit), 1);
        let r2 = take_report();
        assert_eq!(r2.calls_of(Stage::Matmul), 0, "take_report must reset");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn exited_threads_flush_into_the_report() {
        let _ = take_report();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _g = scope(Stage::Batch);
                    count(Stage::PowMemoMiss);
                });
            }
        });
        let r = take_report();
        assert_eq!(r.calls_of(Stage::Batch), 4);
        assert_eq!(r.calls_of(Stage::PowMemoMiss), 4);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_reports_nothing() {
        {
            let _g = scope(Stage::Matmul);
        }
        count(Stage::PowMemoHit);
        assert!(take_report().is_empty());
        assert!(!is_enabled());
        assert_eq!(std::mem::size_of::<ScopeGuard>(), 0);
    }
}
