//! Replayable derivations and the random run sampler of the evaluation.

use crate::run::{InstanceId, Run, RunError, StepId};
use rand::Rng;
use wf_analysis::ProdGraph;
use wf_model::{Grammar, ProdId};

/// A derivation script: the sequence of `(instance, production)` choices.
/// Replaying it on a fresh [`Run`] is deterministic because instance ids are
/// allocated in creation order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Derivation {
    pub steps: Vec<(InstanceId, ProdId)>,
}

impl Derivation {
    /// Replays the script into a run.
    pub fn replay(&self, grammar: &Grammar) -> Result<Run, RunError> {
        self.replay_with(grammar, |_, _| {})
    }

    /// Replays the script, invoking `observer` after every step — this is
    /// how labelers consume derivations *online* (Definition 10: labels are
    /// assigned per step and never revised).
    pub fn replay_with(
        &self,
        grammar: &Grammar,
        mut observer: impl FnMut(&Run, StepId),
    ) -> Result<Run, RunError> {
        let mut run = Run::start(grammar);
        for &(inst, prod) in &self.steps {
            let s = run.apply(grammar, inst, prod)?;
            observer(&run, s);
        }
        Ok(run)
    }

    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Per-module cheapest terminating production, by total derivation size.
/// Used to wind a random derivation down once the size target is reached.
fn terminating_productions(grammar: &Grammar) -> Vec<Option<ProdId>> {
    const INF: u64 = u64::MAX / 4;
    let n = grammar.module_count();
    let mut cost = vec![INF; n];
    for m in grammar.atomic_modules() {
        cost[m.index()] = 0;
    }
    let mut best: Vec<Option<ProdId>> = vec![None; n];
    loop {
        let mut changed = false;
        for (k, p) in grammar.productions() {
            let total: u64 = p.rhs.nodes().iter().map(|c| cost[c.index()].saturating_add(1)).sum();
            if total < cost[p.lhs.index()] {
                cost[p.lhs.index()] = total;
                best[p.lhs.index()] = Some(k);
                changed = true;
            }
        }
        if !changed {
            return best;
        }
    }
}

/// Samples a random derivation of roughly `target_items` data items
/// (§6.1: "we simulated runs by applying a random sequence of productions,
/// varying their sizes from 1K to 32K").
///
/// Growth phase: expand a uniformly random open instance, preferring
/// recursive productions (RHS reaches back to the LHS in `P(G)`) with
/// probability 3/4 so deep runs are actually reachable. Wind-down phase:
/// expand every remaining open instance along its cheapest terminating
/// production, which provably converges.
pub fn random_derivation(
    grammar: &Grammar,
    pg: &ProdGraph,
    rng: &mut impl Rng,
    target_items: usize,
) -> Derivation {
    let term = terminating_productions(grammar);
    // Modules lying on a production-graph cycle (SCC-based so this also
    // works for non-strict grammars like Figure 10's).
    let on_cycle: Vec<bool> = {
        let mut on_cycle = vec![false; grammar.module_count()];
        for scc in pg.graph().sccs() {
            let cyclic =
                scc.len() > 1 || pg.graph().out_edges(scc[0]).iter().any(|&(_, t)| t == scc[0]);
            if cyclic {
                for n in scc {
                    on_cycle[n.0 as usize] = true;
                }
            }
        }
        on_cycle
    };
    // dist[m] = production steps needed before an on-cycle instance exists
    // below an instance of m (0 when m itself is on a cycle).
    const INF: u64 = u64::MAX / 4;
    let mut dist: Vec<u64> =
        (0..grammar.module_count()).map(|m| if on_cycle[m] { 0 } else { INF }).collect();
    let mut toward_cycle: Vec<Option<ProdId>> = vec![None; grammar.module_count()];
    loop {
        let mut changed = false;
        for (k, p) in grammar.productions() {
            if on_cycle[p.lhs.index()] {
                continue;
            }
            let best_child = p.rhs.nodes().iter().map(|c| dist[c.index()]).min().unwrap_or(INF);
            let cand = best_child.saturating_add(1);
            if cand < dist[p.lhs.index()] {
                dist[p.lhs.index()] = cand;
                toward_cycle[p.lhs.index()] = Some(k);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let is_recursive_prod = |k: ProdId| {
        let p = grammar.production(k);
        p.rhs.nodes().iter().any(|&c| pg.reaches(c, p.lhs))
    };
    let mut run = Run::start(grammar);
    let mut steps = Vec::new();
    // Growth phase. Invariant: as long as the target is unmet and recursion
    // is reachable at all, each iteration either unrolls a cycle or moves an
    // instance strictly closer to one, so arbitrary sizes are attainable.
    while run.item_count() < target_items {
        let cycle_open: Vec<InstanceId> = run
            .open_instances()
            .iter()
            .copied()
            .filter(|&i| on_cycle[run.instance(i).module.index()])
            .collect();
        let (inst, k) = if !cycle_open.is_empty() {
            let inst = cycle_open[rng.gen_range(0..cycle_open.len())];
            let m = run.instance(inst).module;
            let prods = grammar.productions_of(m);
            let recursive: Vec<ProdId> =
                prods.iter().copied().filter(|&k| is_recursive_prod(k)).collect();
            // The sole remaining cycle instance must keep recursing, or the
            // run could be forced to terminate under-size.
            let k = if cycle_open.len() == 1 || rng.gen_bool(0.75) {
                recursive[rng.gen_range(0..recursive.len())]
            } else {
                prods[rng.gen_range(0..prods.len())]
            };
            (inst, k)
        } else {
            // Re-establish a cycle instance by steering the closest capable
            // instance toward one.
            let capable: Vec<InstanceId> = run
                .open_instances()
                .iter()
                .copied()
                .filter(|&i| dist[run.instance(i).module.index()] < INF)
                .collect();
            if capable.is_empty() {
                break; // no recursion reachable: the grammar caps run size
            }
            let inst = capable[rng.gen_range(0..capable.len())];
            let k = toward_cycle[run.instance(inst).module.index()]
                .expect("capable module has a cycle-ward production");
            (inst, k)
        };
        run.apply(grammar, inst, k).expect("open instance accepts its production");
        steps.push((inst, k));
        // Occasional random side expansion (never of a cycle instance) for
        // structural variety.
        if rng.gen_bool(0.5) {
            let side: Vec<InstanceId> = run
                .open_instances()
                .iter()
                .copied()
                .filter(|&i| !on_cycle[run.instance(i).module.index()])
                .collect();
            if !side.is_empty() {
                let inst = side[rng.gen_range(0..side.len())];
                let sm = run.instance(inst).module;
                let sprods = grammar.productions_of(sm);
                let sk = sprods[rng.gen_range(0..sprods.len())];
                run.apply(grammar, inst, sk).expect("open instance accepts its production");
                steps.push((inst, sk));
            }
        }
    }
    // Wind-down phase.
    while let Some(&inst) = run.open_instances().first() {
        let m = run.instance(inst).module;
        let k = term[m.index()].expect("proper grammars have terminating productions");
        run.apply(grammar, inst, k).expect("wind-down production applies");
        steps.push((inst, k));
    }
    Derivation { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_model::fixtures::paper_example;

    #[test]
    fn random_derivations_complete_and_hit_target() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let mut rng = StdRng::seed_from_u64(42);
        for target in [10, 100, 1000] {
            let d = random_derivation(g, &pg, &mut rng, target);
            let run = d.replay(g).unwrap();
            assert!(run.is_complete());
            assert!(run.item_count() >= target, "target {target}, got {}", run.item_count());
            // Wind-down keeps overshoot moderate: the biggest single
            // production adds ≤ max |W| items per step, and termination is
            // cheapest-first; allow a generous structural bound.
            assert!(run.item_count() < target * 3 + 200);
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let mut rng = StdRng::seed_from_u64(7);
        let d = random_derivation(g, &pg, &mut rng, 300);
        let r1 = d.replay(g).unwrap();
        let r2 = d.replay(g).unwrap();
        assert_eq!(r1.item_count(), r2.item_count());
        assert_eq!(r1.instance_count(), r2.instance_count());
    }

    #[test]
    fn same_seed_same_derivation() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let d1 = random_derivation(g, &pg, &mut StdRng::seed_from_u64(9), 200);
        let d2 = random_derivation(g, &pg, &mut StdRng::seed_from_u64(9), 200);
        assert_eq!(d1, d2);
    }

    #[test]
    fn observer_sees_every_step() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let d = random_derivation(g, &pg, &mut StdRng::seed_from_u64(1), 50);
        let mut seen = 0usize;
        let run = d.replay_with(g, |_, _| seen += 1).unwrap();
        assert_eq!(seen, run.step_count());
        assert_eq!(seen, d.len());
    }

    #[test]
    fn terminating_productions_cover_all_composites() {
        let ex = paper_example();
        let term = terminating_productions(&ex.spec.grammar);
        for m in ex.spec.grammar.composite_modules() {
            let k = term[m.index()].expect("every composite terminates");
            assert_eq!(ex.spec.grammar.production(k).lhs, m);
        }
        // D's cheapest exit is p7 (D -> f), not the recursive p6.
        assert_eq!(term[ex.d_mod.index()], Some(ex.prods[6]));
    }
}
