//! Projection of a run onto a view: `R_U` of Definition 9.
//!
//! Restricting a derivation to the productions of `Δ′` means: an instance is
//! *visible* iff every expansion on its ancestor chain rewrote a `Δ′`
//! module; a step is *projected* iff it expanded a visible `Δ′` instance; a
//! data item is visible iff the step that created it is projected (the start
//! module's boundary items are always visible). Visible instances that are
//! unexpandable-in-view — or simply not yet expanded — are the *leaves* of
//! the projected run, and carry the view's λ′ dependencies.

use crate::run::{DataId, InstanceId, Run, StepId};
use wf_model::{Grammar, View};

/// Visibility of a run's instances, steps and items under a view.
#[derive(Clone, Debug)]
pub struct RunProjection {
    visible_instance: Vec<bool>,
    visible_item: Vec<bool>,
    projected_step: Vec<bool>,
}

impl RunProjection {
    pub fn new(grammar: &Grammar, run: &Run, view: &View) -> Self {
        let mut visible_instance = vec![false; run.instance_count()];
        let mut visible_item = vec![false; run.item_count()];
        let mut projected_step = vec![false; run.step_count()];
        visible_instance[0] = true;
        // Boundary items of the start module.
        for (ix, vis) in visible_item.iter_mut().enumerate() {
            if run.item(DataId(ix as u32)).step.is_none() {
                *vis = true;
            }
        }
        // Steps are created in order; a step's parent instance always
        // precedes its children, so one forward pass settles everything.
        for s in run.steps() {
            let st = run.step(s);
            let parent_visible = visible_instance[st.instance.0 as usize];
            let parent_module = run.instance(st.instance).module;
            let projected = parent_visible && view.expands(parent_module);
            projected_step[s.0 as usize] = projected;
            if projected {
                for c in st.children.clone() {
                    visible_instance[c as usize] = true;
                }
                for d in st.items.clone() {
                    visible_item[d as usize] = true;
                }
            }
        }
        let _ = grammar;
        Self { visible_instance, visible_item, projected_step }
    }

    #[inline]
    pub fn instance_visible(&self, i: InstanceId) -> bool {
        self.visible_instance[i.0 as usize]
    }

    #[inline]
    pub fn item_visible(&self, d: DataId) -> bool {
        self.visible_item[d.0 as usize]
    }

    /// True iff the step survives the projection (its expansion is part of
    /// the view of the run).
    #[inline]
    pub fn step_projected(&self, s: StepId) -> bool {
        self.projected_step[s.0 as usize]
    }

    /// A visible instance is a *leaf of the projected run* iff its expansion
    /// step (if any) is not projected.
    pub fn is_view_leaf(&self, run: &Run, i: InstanceId) -> bool {
        self.instance_visible(i) && run.expansion_of(i).is_none_or(|s| !self.step_projected(s))
    }

    pub fn visible_item_count(&self) -> usize {
        self.visible_item.iter().filter(|&&v| v).count()
    }

    pub fn visible_items(&self) -> impl Iterator<Item = DataId> + '_ {
        self.visible_item.iter().enumerate().filter(|(_, &v)| v).map(|(i, _)| DataId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure3_run;
    use wf_model::fixtures::paper_example;

    #[test]
    fn default_view_sees_everything() {
        let ex = paper_example();
        let (run, _) = figure3_run(&ex);
        let u1 = ex.view_u1();
        let proj = RunProjection::new(&ex.spec.grammar, &run, &u1);
        for i in 0..run.instance_count() {
            assert!(proj.instance_visible(InstanceId(i as u32)));
        }
        assert_eq!(proj.visible_item_count(), run.item_count());
        for s in run.steps() {
            assert!(proj.step_projected(s));
        }
    }

    /// Example 7/8: in U₂ the details of every C are hidden — C instances
    /// are visible (they appear in W1/W2/W3) but are leaves; everything
    /// inside them (b:2, D:1, f:1, …, and items d21…) is invisible.
    #[test]
    fn u2_hides_c_internals() {
        let ex = paper_example();
        let (run, ids) = figure3_run(&ex);
        let u2 = ex.view_u2();
        let proj = RunProjection::new(&ex.spec.grammar, &run, &u2);
        // C:4 itself is visible but is a leaf.
        assert!(proj.instance_visible(ids.c4));
        assert!(proj.is_view_leaf(&run, ids.c4));
        // Its children are not visible.
        assert!(!proj.instance_visible(ids.b2));
        assert!(!proj.instance_visible(ids.d1));
        assert!(!proj.instance_visible(ids.f1));
        // d21 (the b:2 -> D:1 item) is hidden; d17 (input of C:4, created
        // at A:3's expansion which is projected) is visible.
        assert!(!proj.item_visible(ids.d21));
        assert!(proj.item_visible(ids.d17));
        // A-instances stay visible and expanded (A ∈ Δ′).
        assert!(proj.instance_visible(ids.a3));
        assert!(!proj.is_view_leaf(&run, ids.a3));
    }

    /// Partial runs: an unexpanded composite is a leaf even in the default
    /// view.
    #[test]
    fn unexpanded_composites_are_leaves() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let mut run = crate::run::Run::start(g);
        run.apply(g, InstanceId(0), ex.prods[0]).unwrap();
        let u1 = ex.view_u1();
        let proj = RunProjection::new(g, &run, &u1);
        let a1 = run.nth_open_of(ex.a_mod, 0).unwrap();
        assert!(proj.is_view_leaf(&run, a1));
    }
}
