//! The run of Figures 3 and 4, replayed on the running example.

use crate::run::{DataId, InstanceId, Run};
use wf_model::fixtures::PaperExample;

/// Handles into the Figure 3/4 run. Instance names follow the figures
/// (`C:4` is the fourth C created); data handles use the paper's item names
/// where the text pins them down.
pub struct Fig3Ids {
    /// `S:1` — the root.
    pub s1: InstanceId,
    /// `A:1`, `A:2`, `A:3` of the unrolled A/B recursion.
    pub a1: InstanceId,
    pub a2: InstanceId,
    pub a3: InstanceId,
    /// `B:1`, `B:2`.
    pub b1: InstanceId,
    pub b2_mod: InstanceId,
    /// `C:1` … `C:4` (only `C:4` is expanded, as in the figure).
    pub c1: InstanceId,
    pub c2: InstanceId,
    pub c3: InstanceId,
    pub c4: InstanceId,
    /// Inside `C:4` (Figure 4): `b:2`, `D:1..3`, `E:1`, `f:1..4`, `c:2`,`c:3`.
    pub b2: InstanceId,
    pub d1: InstanceId,
    pub d2: InstanceId,
    pub d3: InstanceId,
    pub e1_mod: InstanceId,
    pub f1: InstanceId,
    pub f2: InstanceId,
    pub f3: InstanceId,
    pub f4: InstanceId,
    /// Example 8's data items: `d17` enters `C:4`, `d31` leaves it.
    pub d17: DataId,
    pub d31: DataId,
    /// Example 15's data item `d21` = (b:2.out1st → D:1.in2nd), hidden in U₂.
    pub d21: DataId,
}

/// Replays the Figure 3 derivation prefix: the A/B recursion unrolled to
/// `A:3`, `C:4` fully expanded per Figure 4 (`D` looping twice over `f`,
/// then exiting; `E` expanding to `f:4, c:3`), `C:1..C:3` left unexpanded
/// exactly as the figure elides them. The result is a *partial* run — which
/// dynamic labeling must handle anyway.
pub fn figure3_run(ex: &PaperExample) -> (Run, Fig3Ids) {
    let g = &ex.spec.grammar;
    let p = &ex.prods;
    let mut run = Run::start(g);
    let apply = |run: &mut Run, inst: u32, prod: usize| {
        run.apply(g, InstanceId(inst), p[prod]).unwrap();
    };
    apply(&mut run, 0, 0); // p1 @ S:1   -> a:1 b:1 A:1 C:1 c:1 d:1   (1..6)
    apply(&mut run, 3, 1); // p2 @ A:1   -> d:2 B:1 C:2               (7..9)
    apply(&mut run, 8, 3); // p4 @ B:1   -> e:1 A:2                   (10,11)
    apply(&mut run, 11, 1); // p2 @ A:2  -> d:3 B:2 C:3               (12..14)
    apply(&mut run, 13, 3); // p4 @ B:2  -> e:2 A:3                   (15,16)
    apply(&mut run, 16, 2); // p3 @ A:3  -> e:3 C:4                   (17,18)
    apply(&mut run, 18, 4); // p5 @ C:4  -> b:2 D:1 E:1 c:2           (19..22)
    apply(&mut run, 20, 5); // p6 @ D:1  -> f:1 D:2                   (23,24)
    apply(&mut run, 24, 5); // p6 @ D:2  -> f:2 D:3                   (25,26)
    apply(&mut run, 26, 6); // p7 @ D:3  -> f:3                       (27)
    apply(&mut run, 21, 7); // p8 @ E:1  -> f:4 c:3                   (28,29)

    let ids = Fig3Ids {
        s1: InstanceId(0),
        a1: InstanceId(3),
        a2: InstanceId(11),
        a3: InstanceId(16),
        b1: InstanceId(8),
        b2_mod: InstanceId(13),
        c1: InstanceId(4),
        c2: InstanceId(9),
        c3: InstanceId(14),
        c4: InstanceId(18),
        b2: InstanceId(19),
        d1: InstanceId(20),
        d2: InstanceId(24),
        d3: InstanceId(26),
        e1_mod: InstanceId(21),
        f1: InstanceId(23),
        f2: InstanceId(25),
        f3: InstanceId(27),
        f4: InstanceId(28),
        // Item 26 = (e:2.out1 -> A:3.in1): resolves to C:4's second input.
        d17: DataId(26),
        // Item 23 = (B:2.out0 -> C:3.in0): its producer resolves through
        // A:3 to C:4's first output.
        d31: DataId(23),
        // Item 29 = (b:2.out0 -> D:1.in1), first item of C:4's expansion.
        d21: DataId(29),
    };
    debug_assert_eq!(run.instance_count(), 30);
    debug_assert_eq!(run.item_count(), 41); // 5 boundary + 36 internal
    (run, ids)
}

/// Completes the Figure 3 run: expands `C:1..C:3` (each `D` exits via p7
/// immediately, each `E` via p8), yielding an all-atomic run `R ∈ L(Gλ)`.
pub fn figure3_run_complete(ex: &PaperExample) -> (Run, Fig3Ids) {
    let g = &ex.spec.grammar;
    let (mut run, ids) = figure3_run(ex);
    while let Some(&inst) = run.open_instances().first() {
        let m = run.instance(inst).module;
        let prod = if m == ex.c_mod {
            ex.prods[4]
        } else if m == ex.d_mod {
            ex.prods[6]
        } else if m == ex.e_mod {
            ex.prods[7]
        } else {
            unreachable!("only C, D, E remain open in the Figure 3 run")
        };
        run.apply(g, inst, prod).unwrap();
    }
    (run, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;

    #[test]
    fn figure3_shape() {
        let ex = paper_example();
        let (run, ids) = figure3_run(&ex);
        let g = &ex.spec.grammar;
        let name = |i: InstanceId| g.sig(run.instance(i).module).name.clone();
        assert_eq!(name(ids.s1), "S");
        assert_eq!(name(ids.a3), "A");
        assert_eq!(name(ids.c4), "C");
        assert_eq!(name(ids.b2), "b");
        assert_eq!(name(ids.d3), "D");
        assert_eq!(name(ids.f4), "f");
        // C:1..C:3 still open; D:1, D:2 expanded.
        assert_eq!(run.open_instances().len(), 3);
        assert!(run.expansion_of(ids.d1).is_some());
        assert!(run.expansion_of(ids.c1).is_none());
        // d21's endpoints match Example 15: first output port of b:2 to
        // second input port of D:1.
        let d21 = run.item(ids.d21);
        assert_eq!(d21.producer, Some((ids.b2, 0)));
        assert_eq!(d21.consumer, Some((ids.d1, 1)));
        // d17 is consumed (at creation level) by A:3's second input.
        let d17 = run.item(ids.d17);
        assert_eq!(d17.consumer, Some((ids.a3, 1)));
        // d31 is produced (at creation level) by B:2's first output.
        let d31 = run.item(ids.d31);
        assert_eq!(d31.producer, Some((ids.b2_mod, 0)));
    }

    #[test]
    fn figure3_completion() {
        let ex = paper_example();
        let (run, _) = figure3_run_complete(&ex);
        assert!(run.is_complete());
        // 3 extra C expansions (6 items each) + 3 D->f (0 items) + 3 E->(f,c)
        // (2 items each): 41 + 18 + 6 = 65 items.
        assert_eq!(run.item_count(), 65);
    }
}
