//! The compressed parse tree (Definitions 17–18) and its dynamic,
//! top-down construction (§4.2.3).
//!
//! The *basic* parse tree nests one node per production application, so its
//! depth grows with the run. The *compressed* tree flattens every unfolded
//! recursion: the chain `A:1 ⊃ B:1 ⊃ A:2 ⊃ B:2 ⊃ A:3` of nested expansions
//! becomes five ordered children of one **recursive node**, labeled
//! `(s, t, i)` — cycle `s` of the production graph, unfolded starting at its
//! `t`-th edge, chain position `i`. Every other parent→child edge keeps its
//! production-graph identity `(k, i)`. Because the grammar is strictly
//! linear-recursive, each module belongs to at most one cycle, the tree is
//! well-defined, and its depth is bounded by `2·|Δ|` (Lemma 4) — which is
//! why port labels (paths in this tree) are `O(log n)` bits.

use crate::run::{InstanceId, Run, StepId};
use wf_analysis::ProdGraph;
use wf_model::{Grammar, ProdId};

/// A parent→child edge label in the compressed parse tree (§4.2.2).
/// The paper's 1-based `(k, i)` / `(s, t, i)` triples are 0-based here.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeLabel {
    /// Child `i` of a production application `pₖ` (a production-graph edge).
    Plain { k: ProdId, i: u32 },
    /// Chain position `i` under a recursive node denoting cycle `s`
    /// unfolded from its `t`-th edge.
    Rec { s: u32, t: u32, i: u64 },
}

/// Node index within a [`CompressedTree`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TreeNodeId(pub u32);

#[derive(Clone, Debug)]
enum NodeKind {
    /// A module instance of the run.
    Module(InstanceId),
    /// A recursive node: cycle `s` starting at edge `t`, with the current
    /// number of chain children.
    Recursive { s: u32, t: u32, children: u64 },
}

#[derive(Clone, Debug)]
struct Node {
    kind: NodeKind,
    parent: Option<(TreeNodeId, EdgeLabel)>,
    depth: u32,
}

/// A compressed parse tree built incrementally as a derivation unfolds.
///
/// The same builder serves FVL (over the full run) and DRL (over the
/// view-projected run): the caller simply skips invisible steps and passes
/// the production graph of the grammar it labels against.
#[derive(Clone, Debug)]
pub struct CompressedTree {
    nodes: Vec<Node>,
    /// Dense map instance → module node.
    node_of: Vec<Option<TreeNodeId>>,
    root: TreeNodeId,
}

impl CompressedTree {
    /// Creates the tree for a fresh run: the start module's node, wrapped in
    /// a recursive root if the start module is itself recursive (§4.2.3,
    /// initialization case).
    pub fn new(grammar: &Grammar, pg: &ProdGraph, root_instance: InstanceId) -> Self {
        let start = grammar.start();
        let mut nodes = Vec::new();
        let root;
        match pg.cycle_of(start) {
            Some((s, t)) => {
                nodes.push(Node {
                    kind: NodeKind::Recursive { s, t, children: 1 },
                    parent: None,
                    depth: 0,
                });
                root = TreeNodeId(0);
                nodes.push(Node {
                    kind: NodeKind::Module(root_instance),
                    parent: Some((root, EdgeLabel::Rec { s, t, i: 0 })),
                    depth: 1,
                });
            }
            None => {
                nodes.push(Node { kind: NodeKind::Module(root_instance), parent: None, depth: 0 });
                root = TreeNodeId(0);
            }
        }
        let module_node = TreeNodeId(nodes.len() as u32 - 1);
        let mut node_of = vec![None; root_instance.0 as usize + 1];
        node_of[root_instance.0 as usize] = Some(module_node);
        Self { nodes, node_of, root }
    }

    /// Incorporates one production application (§4.2.3's three insertion
    /// rules). The expanded instance must already have a node.
    pub fn on_step(&mut self, pg: &ProdGraph, run: &Run, step: StepId) {
        let st = run.step(step).clone();
        let u = self.node_of(InstanceId(st.instance.0)).expect("expanded instance not in tree");
        let k = st.prod;
        let m_u = run.instance(st.instance).module;
        let u_cycle = pg.cycle_of(m_u);
        for (pos, child) in st.children.clone().enumerate() {
            let child_inst = InstanceId(child);
            let m_i = run.instance(child_inst).module;
            let i = pos as u32;
            let node = match pg.cycle_of(m_i) {
                // Rule 1: non-recursive child hangs off u directly.
                None => self.push_module(child_inst, u, EdgeLabel::Plain { k, i }),
                Some((s_i, t_i)) => {
                    if u_cycle.is_some_and(|(s_u, _)| s_u == s_i) {
                        // Rule 2a: continuing the recursion — next sibling of
                        // u under its recursive parent.
                        let (r, u_label) = self.nodes[u.0 as usize]
                            .parent
                            .expect("recursive module node must sit under a recursive node");
                        debug_assert!(matches!(u_label, EdgeLabel::Rec { .. }));
                        let (s, t, next) = match &mut self.nodes[r.0 as usize].kind {
                            NodeKind::Recursive { s, t, children } => {
                                let next = *children;
                                *children += 1;
                                (*s, *t, next)
                            }
                            NodeKind::Module(_) => unreachable!("parent must be recursive"),
                        };
                        debug_assert_eq!(s, s_i);
                        // The chain edge must be the cycle's next edge.
                        debug_assert_eq!(
                            pg.cycles().unwrap()[s as usize]
                                .edge_at(t as usize + next as usize - 1),
                            (k, i),
                            "chain extension must follow the cycle's edge order"
                        );
                        self.push_module(child_inst, r, EdgeLabel::Rec { s, t, i: next })
                    } else {
                        // Rule 2b: entering a new recursion — fresh recursive
                        // node under u, child at chain position 0.
                        let r = self.push_node(
                            NodeKind::Recursive { s: s_i, t: t_i, children: 1 },
                            Some((u, EdgeLabel::Plain { k, i })),
                        );
                        self.push_module(child_inst, r, EdgeLabel::Rec { s: s_i, t: t_i, i: 0 })
                    }
                }
            };
            let _ = node;
        }
    }

    fn push_node(&mut self, kind: NodeKind, parent: Option<(TreeNodeId, EdgeLabel)>) -> TreeNodeId {
        let depth = parent.map_or(0, |(p, _)| self.nodes[p.0 as usize].depth + 1);
        self.nodes.push(Node { kind, parent, depth });
        TreeNodeId(self.nodes.len() as u32 - 1)
    }

    fn push_module(
        &mut self,
        inst: InstanceId,
        parent: TreeNodeId,
        label: EdgeLabel,
    ) -> TreeNodeId {
        let id = self.push_node(NodeKind::Module(inst), Some((parent, label)));
        if inst.0 as usize >= self.node_of.len() {
            self.node_of.resize(inst.0 as usize + 1, None);
        }
        self.node_of[inst.0 as usize] = Some(id);
        id
    }

    /// The module node of an instance, if it is in this tree (view-projected
    /// trees omit invisible instances).
    #[inline]
    pub fn node_of(&self, inst: InstanceId) -> Option<TreeNodeId> {
        self.node_of.get(inst.0 as usize).copied().flatten()
    }

    /// Edge labels from the root down to `node` (the port-label path of
    /// §4.2.2).
    pub fn path_of(&self, node: TreeNodeId) -> Vec<EdgeLabel> {
        let mut path = Vec::with_capacity(self.nodes[node.0 as usize].depth as usize);
        let mut cur = node;
        while let Some((parent, label)) = self.nodes[cur.0 as usize].parent {
            path.push(label);
            cur = parent;
        }
        path.reverse();
        path
    }

    pub fn depth_of(&self, node: TreeNodeId) -> u32 {
        self.nodes[node.0 as usize].depth
    }

    /// Maximum node depth — bounded by `2·|Δ|` + 1 (Lemma 4; +1 for a
    /// recursive root).
    pub fn depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn root(&self) -> TreeNodeId {
        self.root
    }

    /// The instance a module node denotes (`None` for recursive nodes).
    pub fn instance_of(&self, node: TreeNodeId) -> Option<InstanceId> {
        match self.nodes[node.0 as usize].kind {
            NodeKind::Module(i) => Some(i),
            NodeKind::Recursive { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Run;
    use wf_model::fixtures::paper_example;

    /// Drives the Figure 3 derivation prefix and checks the tree against
    /// Figure 14.
    #[test]
    fn figure14_structure() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let mut run = Run::start(g);
        let mut tree = CompressedTree::new(g, &pg, InstanceId(0));
        let drive = |run: &mut Run, tree: &mut CompressedTree, inst: u32, prod: usize| {
            let s = run.apply(g, InstanceId(inst), ex.prods[prod]).unwrap();
            tree.on_step(&pg, run, s);
        };
        // p1 @ S:1 -> children a:1 b:1 A:1 C:1 c:1 d:1 (ids 1..=6).
        drive(&mut run, &mut tree, 0, 0);
        // p2 @ A:1 (id 3) -> d:2 B:1 C:2 (ids 7,8,9).
        drive(&mut run, &mut tree, 3, 1);
        // p4 @ B:1 (id 8) -> e:1 A:2 (ids 10,11).
        drive(&mut run, &mut tree, 8, 3);
        // p2 @ A:2 (id 11) -> d:3 B:2 C:3 (ids 12,13,14).
        drive(&mut run, &mut tree, 11, 1);
        // p4 @ B:2 (id 13) -> e:2 A:3 (ids 15,16).
        drive(&mut run, &mut tree, 13, 3);
        // p3 @ A:3 (id 16) -> e:3 C:4 (ids 17,18).
        drive(&mut run, &mut tree, 16, 2);
        // p5 @ C:4 (id 18) -> b:2 D:1 E:1 c:2 (ids 19..=22).
        drive(&mut run, &mut tree, 18, 4);
        // p6 @ D:1 (id 20) -> f:1 D:2 (ids 23,24).
        drive(&mut run, &mut tree, 20, 5);
        // p6 @ D:2 (id 24) -> f:2 D:3 (ids 25,26).
        drive(&mut run, &mut tree, 24, 5);
        // p7 @ D:3 (id 26) -> f:3 (id 27).
        drive(&mut run, &mut tree, 26, 6);
        // p8 @ E:1 (id 21) -> f:4 c:3 (ids 28,29).
        drive(&mut run, &mut tree, 21, 7);

        // A:1, B:1, A:2, B:2, A:3 are flattened under one recursive node:
        // their paths all have the same length and share the parent.
        let path_a1 = tree.path_of(tree.node_of(InstanceId(3)).unwrap());
        let path_a3 = tree.path_of(tree.node_of(InstanceId(16)).unwrap());
        assert_eq!(path_a1.len(), 2); // (1,3)-ish plain edge + rec edge
        assert_eq!(path_a3.len(), 2);
        // Example 15's path for A:3: {(1,3), (1,1,5)} 1-based =
        // Plain{p1, 2}, Rec{s:0, t:0, i:4} 0-based.
        assert_eq!(path_a3[0], EdgeLabel::Plain { k: ex.prods[0], i: 2 });
        assert_eq!(path_a3[1], EdgeLabel::Rec { s: 0, t: 0, i: 4 });
        // b:2 under C:4 under A:3: path {(1,3),(1,1,5),(3,2),(5,1)} 1-based.
        let path_b2 = tree.path_of(tree.node_of(InstanceId(19)).unwrap());
        assert_eq!(
            path_b2,
            vec![
                EdgeLabel::Plain { k: ex.prods[0], i: 2 },
                EdgeLabel::Rec { s: 0, t: 0, i: 4 },
                EdgeLabel::Plain { k: ex.prods[2], i: 1 },
                EdgeLabel::Plain { k: ex.prods[4], i: 0 },
            ]
        );
        // The D-chain D:1 D:2 D:3 flattens under a second recursive node
        // with labels (2,1,1..3) 1-based = Rec{s:1,t:0,i:0..2}.
        let path_d1 = tree.path_of(tree.node_of(InstanceId(20)).unwrap());
        let path_d3 = tree.path_of(tree.node_of(InstanceId(26)).unwrap());
        assert_eq!(path_d1.last(), Some(&EdgeLabel::Rec { s: 1, t: 0, i: 0 }));
        assert_eq!(path_d3.last(), Some(&EdgeLabel::Rec { s: 1, t: 0, i: 2 }));
        assert_eq!(path_d1.len(), path_d3.len());
        // f:4 and c:3 under E:1 via plain edges (8,1),(8,2) 1-based.
        let path_f4 = tree.path_of(tree.node_of(InstanceId(28)).unwrap());
        assert_eq!(path_f4.last(), Some(&EdgeLabel::Plain { k: ex.prods[7], i: 0 }));
    }

    /// Lemma 4: tree depth never exceeds 2·|Δ| (+1 for a recursive root).
    #[test]
    fn depth_bound_on_deep_recursion() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let mut run = Run::start(g);
        let mut tree = CompressedTree::new(g, &pg, InstanceId(0));
        let s = run.apply(g, InstanceId(0), ex.prods[0]).unwrap();
        tree.on_step(&pg, &run, s);
        // Unroll the A/B recursion 50 times.
        for _ in 0..50 {
            let a = run.nth_open_of(ex.a_mod, 0).unwrap();
            let s = run.apply(g, a, ex.prods[1]).unwrap();
            tree.on_step(&pg, &run, s);
            let b = run.nth_open_of(ex.b_mod, 0).unwrap();
            let s = run.apply(g, b, ex.prods[3]).unwrap();
            tree.on_step(&pg, &run, s);
        }
        let n_composite = g.composite_modules().count() as u32;
        assert!(tree.depth() <= 2 * n_composite + 1, "depth {}", tree.depth());
        // The last A sits at chain index 100.
        let a_last = run.nth_open_of(ex.a_mod, 0).unwrap();
        let path = tree.path_of(tree.node_of(a_last).unwrap());
        assert_eq!(path.last(), Some(&EdgeLabel::Rec { s: 0, t: 0, i: 100 }));
    }
}
