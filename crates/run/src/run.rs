//! Runs and the online derivation engine.

use wf_model::{Grammar, ModuleId, ProdId};

/// Identifier of a module instance created during a derivation. Instance 0
/// is always the start module.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstanceId(pub u32);

/// Identifier of a data item. The first `n_in + n_out` ids are the start
/// module's boundary items, labeled before any production is applied
/// (Definition 10: "initially, φ assigns a label to each input and output
/// of S").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DataId(pub u32);

/// Index of a derivation step.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StepId(pub u32);

/// How an instance came to exist.
#[derive(Clone, Copy, Debug)]
pub struct Origin {
    /// The instance whose expansion created this one.
    pub parent: InstanceId,
    /// The step performing the expansion.
    pub step: StepId,
    /// Position in the production's right-hand side.
    pub pos: u32,
}

/// A module instance in the run.
#[derive(Clone, Debug)]
pub struct Instance {
    pub module: ModuleId,
    /// `None` for the root (start module).
    pub origin: Option<Origin>,
}

/// A data item. Endpoints are recorded at *creation level*: the instances
/// adjacent to the item's data edge when the production introducing it was
/// applied. Later expansions re-route the item to deeper instances through
/// the productions' port bijections but never change these fields — exactly
/// like labels, which are assigned once (Definition 10).
#[derive(Clone, Copy, Debug)]
pub struct Item {
    /// Producing `(instance, output port)`; `None` for the run's initial
    /// inputs.
    pub producer: Option<(InstanceId, u8)>,
    /// Consuming `(instance, input port)`; `None` for the run's final
    /// outputs.
    pub consumer: Option<(InstanceId, u8)>,
    /// The step that created the item; `None` for the start module's
    /// boundary items.
    pub step: Option<StepId>,
}

/// One production application.
#[derive(Clone, Debug)]
pub struct Step {
    pub instance: InstanceId,
    pub prod: ProdId,
    /// Child instances, contiguous: `children.start .. children.end`.
    pub children: std::ops::Range<u32>,
    /// Data items created by this step, contiguous.
    pub items: std::ops::Range<u32>,
}

/// Why a production application was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The instance does not exist.
    NoSuchInstance(InstanceId),
    /// The instance was already expanded by an earlier step.
    AlreadyExpanded(InstanceId),
    /// The production's LHS differs from the instance's module.
    WrongModule { instance: InstanceId, expected: ModuleId, prod: ProdId },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::NoSuchInstance(i) => write!(f, "no such instance {}", i.0),
            RunError::AlreadyExpanded(i) => write!(f, "instance {} already expanded", i.0),
            RunError::WrongModule { instance, expected, prod } => {
                write!(
                    f,
                    "production {prod} does not rewrite module {expected} of instance {}",
                    instance.0
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

/// A (possibly partial) run with its full derivation history.
#[derive(Clone, Debug)]
pub struct Run {
    instances: Vec<Instance>,
    items: Vec<Item>,
    steps: Vec<Step>,
    /// Per instance: the step that expanded it, if any.
    expanded_by: Vec<Option<StepId>>,
    /// Unexpanded composite instances, in creation order.
    open: Vec<InstanceId>,
    n_initial_inputs: u32,
}

impl Run {
    /// The degenerate run with no instances, items or steps.
    ///
    /// Not reachable by derivation — [`Run::start`] always seeds the start
    /// module's boundary items — but serving-layer consumers (workload
    /// generators, snapshot placeholders awaiting a history) must behave
    /// sensibly when handed one, so it is constructible and they are tested
    /// against it. Id-based accessors ([`Run::item`], [`Run::instance`])
    /// have nothing to return and panic as they do for any out-of-range id.
    pub fn empty() -> Self {
        Self {
            instances: Vec::new(),
            items: Vec::new(),
            steps: Vec::new(),
            expanded_by: Vec::new(),
            open: Vec::new(),
            n_initial_inputs: 0,
        }
    }

    /// Starts a derivation: a single instance of the start module with its
    /// boundary data items.
    pub fn start(grammar: &Grammar) -> Self {
        let start = grammar.start();
        let sig = grammar.sig(start);
        let root = InstanceId(0);
        let mut items = Vec::with_capacity(sig.inputs() + sig.outputs());
        for p in 0..sig.inputs() as u8 {
            items.push(Item { producer: None, consumer: Some((root, p)), step: None });
        }
        for p in 0..sig.outputs() as u8 {
            items.push(Item { producer: Some((root, p)), consumer: None, step: None });
        }
        Self {
            instances: vec![Instance { module: start, origin: None }],
            items,
            steps: Vec::new(),
            expanded_by: vec![None],
            open: vec![root],
            n_initial_inputs: sig.inputs() as u32,
        }
    }

    /// Applies production `prod` to `instance`. Returns the step id; the new
    /// instances and items are reachable through [`Run::step`].
    pub fn apply(
        &mut self,
        grammar: &Grammar,
        instance: InstanceId,
        prod: ProdId,
    ) -> Result<StepId, RunError> {
        let inst =
            self.instances.get(instance.0 as usize).ok_or(RunError::NoSuchInstance(instance))?;
        if self.expanded_by[instance.0 as usize].is_some() {
            return Err(RunError::AlreadyExpanded(instance));
        }
        let p = grammar.production(prod);
        if p.lhs != inst.module {
            return Err(RunError::WrongModule { instance, expected: inst.module, prod });
        }
        let step_id = StepId(self.steps.len() as u32);
        let child_base = self.instances.len() as u32;
        for (pos, &m) in p.rhs.nodes().iter().enumerate() {
            self.instances.push(Instance {
                module: m,
                origin: Some(Origin { parent: instance, step: step_id, pos: pos as u32 }),
            });
            self.expanded_by.push(None);
            if grammar.is_composite(m) {
                self.open.push(InstanceId(child_base + pos as u32));
            }
        }
        let item_base = self.items.len() as u32;
        for e in p.rhs.edges() {
            self.items.push(Item {
                producer: Some((InstanceId(child_base + e.from.node.0), e.from.port)),
                consumer: Some((InstanceId(child_base + e.to.node.0), e.to.port)),
                step: Some(step_id),
            });
        }
        self.steps.push(Step {
            instance,
            prod,
            children: child_base..self.instances.len() as u32,
            items: item_base..self.items.len() as u32,
        });
        self.expanded_by[instance.0 as usize] = Some(step_id);
        self.open.retain(|&i| i != instance);
        Ok(step_id)
    }

    #[inline]
    pub fn instance(&self, i: InstanceId) -> &Instance {
        &self.instances[i.0 as usize]
    }

    #[inline]
    pub fn item(&self, d: DataId) -> &Item {
        &self.items[d.0 as usize]
    }

    #[inline]
    pub fn step(&self, s: StepId) -> &Step {
        &self.steps[s.0 as usize]
    }

    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of data items so far — the `n` of every complexity statement.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    pub fn items(&self) -> impl Iterator<Item = DataId> {
        (0..self.items.len() as u32).map(DataId)
    }

    pub fn steps(&self) -> impl Iterator<Item = StepId> {
        (0..self.steps.len() as u32).map(StepId)
    }

    /// The step that expanded `i`, if any.
    #[inline]
    pub fn expansion_of(&self, i: InstanceId) -> Option<StepId> {
        self.expanded_by[i.0 as usize]
    }

    /// Unexpanded composite instances, in creation order. Empty iff the run
    /// is complete (all-atomic, `R ∈ L(G)`).
    pub fn open_instances(&self) -> &[InstanceId] {
        &self.open
    }

    pub fn is_complete(&self) -> bool {
        self.open.is_empty()
    }

    /// The run's initial input items (inputs of the start module).
    pub fn initial_inputs(&self) -> impl Iterator<Item = DataId> {
        (0..self.n_initial_inputs).map(DataId)
    }

    /// The run's final output items (outputs of the start module).
    pub fn final_outputs(&self) -> impl Iterator<Item = DataId> + '_ {
        (self.n_initial_inputs..self.boundary_item_count() as u32).map(DataId)
    }

    fn boundary_item_count(&self) -> usize {
        self.n_initial_inputs as usize
            + self.items[self.n_initial_inputs as usize..]
                .iter()
                .take_while(|it| it.step.is_none())
                .count()
    }

    /// Finds the `n`-th unexpanded instance of a module — handy in tests to
    /// say "expand the second C".
    pub fn nth_open_of(&self, module: ModuleId, n: usize) -> Option<InstanceId> {
        self.open.iter().copied().filter(|&i| self.instance(i).module == module).nth(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;

    #[test]
    fn start_creates_boundary_items() {
        let ex = paper_example();
        let run = Run::start(&ex.spec.grammar);
        assert_eq!(run.instance_count(), 1);
        assert_eq!(run.item_count(), 5); // S(2,3)
        assert_eq!(run.initial_inputs().count(), 2);
        assert_eq!(run.final_outputs().count(), 3);
        assert_eq!(run.open_instances(), &[InstanceId(0)]);
        assert!(!run.is_complete());
        let d0 = run.item(DataId(0));
        assert!(d0.producer.is_none());
        assert_eq!(d0.consumer, Some((InstanceId(0), 0)));
        let d4 = run.item(DataId(4));
        assert_eq!(d4.producer, Some((InstanceId(0), 2)));
        assert!(d4.consumer.is_none());
    }

    #[test]
    fn apply_p1_creates_w1_instances_and_items() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let mut run = Run::start(g);
        let s0 = run.apply(g, InstanceId(0), ex.prods[0]).unwrap();
        let step = run.step(s0);
        assert_eq!(step.children.len(), 6);
        assert_eq!(step.items.len(), 10);
        assert_eq!(run.item_count(), 15);
        // Composite children A and C are now open.
        let names: Vec<&str> = run
            .open_instances()
            .iter()
            .map(|&i| g.sig(run.instance(i).module).name.as_str())
            .collect();
        assert_eq!(names, vec!["A", "C"]);
    }

    #[test]
    fn apply_rejects_bad_requests() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let mut run = Run::start(g);
        // Wrong module: p2 rewrites A, not S.
        assert!(matches!(
            run.apply(g, InstanceId(0), ex.prods[1]),
            Err(RunError::WrongModule { .. })
        ));
        run.apply(g, InstanceId(0), ex.prods[0]).unwrap();
        assert_eq!(
            run.apply(g, InstanceId(0), ex.prods[0]),
            Err(RunError::AlreadyExpanded(InstanceId(0)))
        );
        assert!(matches!(
            run.apply(g, InstanceId(99), ex.prods[0]),
            Err(RunError::NoSuchInstance(_))
        ));
    }

    #[test]
    fn nth_open_selects_in_creation_order() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let mut run = Run::start(g);
        run.apply(g, InstanceId(0), ex.prods[0]).unwrap();
        let a1 = run.nth_open_of(ex.a_mod, 0).unwrap();
        run.apply(g, a1, ex.prods[1]).unwrap(); // A -> (d, B, C)
                                                // Two C's now: C:1 from W1 and C:2 from W2.
        assert!(run.nth_open_of(ex.c_mod, 1).is_some());
        assert!(run.nth_open_of(ex.c_mod, 2).is_none());
    }

    #[test]
    fn completing_a_run() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let mut run = Run::start(g);
        run.apply(g, InstanceId(0), ex.prods[0]).unwrap();
        // Expand A via p3 (e, C), then every C via p5, D via p7, E via p8...
        while let Some(&i) = run.open_instances().first() {
            let m = run.instance(i).module;
            let prod = if m == ex.a_mod {
                ex.prods[2] // A -> W3, avoid the A/B recursion
            } else if m == ex.c_mod {
                ex.prods[4]
            } else if m == ex.d_mod {
                ex.prods[6] // D -> (f), exit the loop
            } else if m == ex.e_mod {
                ex.prods[7]
            } else {
                panic!("unexpected open module");
            };
            run.apply(g, i, prod).unwrap();
        }
        assert!(run.is_complete());
        // All instances atomic or expanded.
        for s in run.steps() {
            let _ = run.step(s);
        }
        assert!(run.item_count() > 20);
    }
}
