//! Materializing the view of a run and the ground-truth dependency oracle.
//!
//! The view of a run `R_U` is itself a simple workflow over the view's leaf
//! instances; [`FlatRun`] builds it explicitly, resolving every visible data
//! item's endpoints *downward* through the port bijections of the projected
//! expansions. [`RunOracle`] then answers "does `d₂` depend on `d₁` w.r.t.
//! `U`" by brute-force port-graph reachability — the semantics every
//! labeling scheme must reproduce, and the reference the test suites
//! compare against.
//!
//! Unexpanded composite leaves (partial runs) carry their λ\* matrices: for
//! a *safe* view, λ\* is exactly the dependency every completion of the run
//! will exhibit (Definition 13), so the oracle is well-defined mid-run.

use crate::run::{DataId, InstanceId, Run};
use crate::viewproj::RunProjection;
use wf_analysis::{full_assignment, SafetyError};
use wf_digraph::{DiGraph, NodeId};
use wf_model::{
    DataEdge, DepAssignment, Grammar, InPortRef, NodeIx, OutPortRef, PortGraph, PortRef,
    SimpleWorkflow, ViewSpec,
};

/// The view of a run, flattened to a simple workflow over leaf instances.
pub struct FlatRun {
    pub workflow: SimpleWorkflow,
    /// Leaf instance of each workflow node.
    pub leaf_of_node: Vec<InstanceId>,
    /// Workflow node of each leaf instance (dense by instance id).
    node_of_leaf: Vec<Option<NodeIx>>,
    /// Per item: resolved `(producer, consumer)` in workflow coordinates;
    /// `None` for invisible items.
    resolved: Vec<Option<(Option<OutPortRef>, Option<InPortRef>)>>,
}

impl FlatRun {
    /// Flattens `run` under `view`/`proj`.
    pub fn new(grammar: &Grammar, run: &Run, proj: &RunProjection) -> Self {
        // Collect leaves in creation order.
        let mut node_of_leaf: Vec<Option<NodeIx>> = vec![None; run.instance_count()];
        let mut leaves = Vec::new();
        for i in 0..run.instance_count() as u32 {
            let inst = InstanceId(i);
            if proj.is_view_leaf(run, inst) {
                leaves.push(inst);
            }
        }

        let resolve_consumer = |mut inst: InstanceId, mut port: u8| -> (InstanceId, u8) {
            loop {
                if proj.is_view_leaf(run, inst) {
                    return (inst, port);
                }
                let step = run.step(run.expansion_of(inst).expect("non-leaf is expanded"));
                let p = grammar.production(step.prod);
                let target = p.input_map[port as usize];
                inst = InstanceId(step.children.start + target.node.0);
                port = target.port;
            }
        };
        let resolve_producer = |mut inst: InstanceId, mut port: u8| -> (InstanceId, u8) {
            loop {
                if proj.is_view_leaf(run, inst) {
                    return (inst, port);
                }
                let step = run.step(run.expansion_of(inst).expect("non-leaf is expanded"));
                let p = grammar.production(step.prod);
                let target = p.output_map[port as usize];
                inst = InstanceId(step.children.start + target.node.0);
                port = target.port;
            }
        };

        // Resolve all visible items; gather leaf-level edges.
        type RawEndpoint = Option<(InstanceId, u8)>;
        let mut resolved_raw: Vec<Option<(RawEndpoint, RawEndpoint)>> =
            vec![None; run.item_count()];
        for d in proj.visible_items() {
            let item = run.item(d);
            let prod = item.producer.map(|(i, p)| resolve_producer(i, p));
            let cons = item.consumer.map(|(i, p)| resolve_consumer(i, p));
            resolved_raw[d.0 as usize] = Some((prod, cons));
        }

        // Topologically order the leaves by the resolved edges.
        let leaf_pos: std::collections::HashMap<InstanceId, usize> =
            leaves.iter().enumerate().map(|(ix, &l)| (l, ix)).collect();
        let mut g = DiGraph::with_nodes(leaves.len());
        for r in resolved_raw.iter().flatten() {
            if let (Some((pi, _)), Some((ci, _))) = r {
                if pi != ci {
                    g.add_edge(NodeId(leaf_pos[pi] as u32), NodeId(leaf_pos[ci] as u32));
                }
            }
        }
        let order = g.topo_sort().expect("view of a run is acyclic");
        for (node_ix, leaf_ix) in order.iter().enumerate() {
            node_of_leaf[leaves[leaf_ix.0 as usize].0 as usize] = Some(NodeIx(node_ix as u32));
        }
        let mut leaf_of_node = vec![InstanceId(0); leaves.len()];
        for &l in &leaves {
            leaf_of_node[node_of_leaf[l.0 as usize].unwrap().index()] = l;
        }

        // Build the simple workflow.
        let nodes: Vec<_> = leaf_of_node.iter().map(|&l| run.instance(l).module).collect();
        let mut edges = Vec::new();
        let mut resolved: Vec<Option<(Option<OutPortRef>, Option<InPortRef>)>> =
            vec![None; run.item_count()];
        for (ix, r) in resolved_raw.iter().enumerate() {
            let Some((prod, cons)) = r else { continue };
            let out = prod
                .map(|(i, p)| OutPortRef { node: node_of_leaf[i.0 as usize].unwrap(), port: p });
            let inp =
                cons.map(|(i, p)| InPortRef { node: node_of_leaf[i.0 as usize].unwrap(), port: p });
            if let (Some(from), Some(to)) = (out, inp) {
                edges.push(DataEdge { from, to });
            }
            resolved[ix] = Some((out, inp));
        }
        let workflow = SimpleWorkflow::new(nodes, edges, grammar.sigs())
            .expect("flattened view of a run is a valid simple workflow");

        Self { workflow, leaf_of_node, node_of_leaf, resolved }
    }

    /// Resolved endpoints of a visible item, in workflow coordinates.
    pub fn endpoints(&self, d: DataId) -> Option<(Option<OutPortRef>, Option<InPortRef>)> {
        self.resolved.get(d.0 as usize).copied().flatten()
    }

    pub fn node_of(&self, leaf: InstanceId) -> Option<NodeIx> {
        self.node_of_leaf.get(leaf.0 as usize).copied().flatten()
    }
}

/// Ground-truth dependency oracle over the view of a run.
pub struct RunOracle {
    flat: FlatRun,
    pg: PortGraph,
}

impl RunOracle {
    /// Builds the oracle; fails only if the view is unsafe (no λ\*).
    pub fn new(
        grammar: &Grammar,
        spec_view: &ViewSpec<'_>,
        run: &Run,
    ) -> Result<Self, SafetyError> {
        let proj = RunProjection::new(grammar, run, spec_view.view);
        let flat = FlatRun::new(grammar, run, &proj);
        let lambda: DepAssignment = full_assignment(spec_view)?;
        let pg = PortGraph::build(&flat.workflow, &lambda);
        Ok(Self { flat, pg })
    }

    /// "Does `d₂` depend on `d₁`?" — §2.3's query, by brute-force
    /// reachability. Returns `None` if either item is invisible in the view.
    pub fn depends_on(&self, d1: DataId, d2: DataId) -> Option<bool> {
        let (o1, i1) = self.flat.endpoints(d1)?;
        let (o2, i2) = self.flat.endpoints(d2)?;
        // Case I: d1 is a final output, or d2 is an initial input.
        if i1.is_none() || o2.is_none() {
            return Some(false);
        }
        let answer = match (o1, i2) {
            // Both intermediate: i2 reachable from o1.
            (Some(o1), Some(i2)) => self.pg.reaches(PortRef::Out(o1), PortRef::In(i2)),
            // d1 initial input: start from its consumer port.
            (None, Some(i2)) => self.pg.reaches(PortRef::In(i1.unwrap()), PortRef::In(i2)),
            // d2 final output: end at its producer port.
            (Some(o1), None) => self.pg.reaches(PortRef::Out(o1), PortRef::Out(o2.unwrap())),
            (None, None) => self.pg.reaches(PortRef::In(i1.unwrap()), PortRef::Out(o2.unwrap())),
        };
        Some(answer)
    }

    pub fn is_visible(&self, d: DataId) -> bool {
        self.flat.endpoints(d).is_some()
    }

    pub fn flat(&self) -> &FlatRun {
        &self.flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure3_run, figure3_run_complete};
    use wf_model::fixtures::paper_example;

    /// Example 8: "does d31 depend on d17?" — no in U₁, yes in U₂.
    #[test]
    fn example8_view_dependent_answer() {
        let ex = paper_example();
        let (run, ids) = figure3_run(&ex);
        let g = &ex.spec.grammar;

        let u1 = ex.view_u1();
        let vs1 = ViewSpec::new(&ex.spec, &u1);
        let oracle1 = RunOracle::new(g, &vs1, &run).unwrap();
        assert_eq!(oracle1.depends_on(ids.d17, ids.d31), Some(false));

        let u2 = ex.view_u2();
        let vs2 = ViewSpec::new(&ex.spec, &u2);
        let oracle2 = RunOracle::new(g, &vs2, &run).unwrap();
        assert_eq!(oracle2.depends_on(ids.d17, ids.d31), Some(true));
    }

    /// d21 is visible in the default view, hidden in U₂.
    #[test]
    fn visibility_of_hidden_items() {
        let ex = paper_example();
        let (run, ids) = figure3_run(&ex);
        let g = &ex.spec.grammar;
        let u1 = ex.view_u1();
        let vs1 = ViewSpec::new(&ex.spec, &u1);
        let oracle1 = RunOracle::new(g, &vs1, &run).unwrap();
        assert!(oracle1.is_visible(ids.d21));
        let u2 = ex.view_u2();
        let vs2 = ViewSpec::new(&ex.spec, &u2);
        let oracle2 = RunOracle::new(g, &vs2, &run).unwrap();
        assert!(!oracle2.is_visible(ids.d21));
        assert_eq!(oracle2.depends_on(ids.d21, ids.d31), None);
    }

    /// Boundary-case semantics: nothing depends on a final output; an
    /// initial input depends on nothing.
    #[test]
    fn boundary_cases() {
        let ex = paper_example();
        let (run, _) = figure3_run_complete(&ex);
        let g = &ex.spec.grammar;
        let u1 = ex.view_u1();
        let vs = ViewSpec::new(&ex.spec, &u1);
        let oracle = RunOracle::new(g, &vs, &run).unwrap();
        let input0 = run.initial_inputs().next().unwrap();
        let output0 = run.final_outputs().next().unwrap();
        // Final outputs depend on initial inputs (λ*(S)[0][0] = 1).
        assert_eq!(oracle.depends_on(input0, output0), Some(true));
        // Nothing depends on a final output; initial inputs depend on nothing.
        assert_eq!(oracle.depends_on(output0, input0), Some(false));
        assert_eq!(oracle.depends_on(output0, output0), Some(false));
        assert_eq!(oracle.depends_on(input0, input0), Some(false));
    }

    /// λ*(S) of the default view agrees with the oracle on the complete run:
    /// boundary-to-boundary queries reproduce Figure 7's S matrix.
    #[test]
    fn boundary_matrix_matches_lambda_star() {
        let ex = paper_example();
        let (run, _) = figure3_run_complete(&ex);
        let g = &ex.spec.grammar;
        let u1 = ex.view_u1();
        let vs = ViewSpec::new(&ex.spec, &u1);
        let oracle = RunOracle::new(g, &vs, &run).unwrap();
        let lambda = wf_analysis::full_assignment_default(&ex.spec).unwrap();
        let s_mat = lambda.get(ex.s).unwrap();
        let inputs: Vec<_> = run.initial_inputs().collect();
        let outputs: Vec<_> = run.final_outputs().collect();
        for (x, &di) in inputs.iter().enumerate() {
            for (y, &do_) in outputs.iter().enumerate() {
                assert_eq!(oracle.depends_on(di, do_), Some(s_mat.get(x, y)), "S in{x} -> out{y}");
            }
        }
    }

    /// The partial run's oracle agrees with the complete run's on items
    /// visible in both (safety: expanding C:1..C:3 cannot change answers).
    #[test]
    fn partial_and_complete_runs_agree() {
        let ex = paper_example();
        let (partial, _) = figure3_run(&ex);
        let (complete, _) = figure3_run_complete(&ex);
        let g = &ex.spec.grammar;
        let u1 = ex.view_u1();
        let vs = ViewSpec::new(&ex.spec, &u1);
        let o_partial = RunOracle::new(g, &vs, &partial).unwrap();
        let o_complete = RunOracle::new(g, &vs, &complete).unwrap();
        for a in 0..partial.item_count() as u32 {
            for b in 0..partial.item_count() as u32 {
                assert_eq!(
                    o_partial.depends_on(DataId(a), DataId(b)),
                    o_complete.depends_on(DataId(a), DataId(b)),
                    "items {a},{b}"
                );
            }
        }
    }
}
