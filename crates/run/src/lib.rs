//! Workflow executions: derivations, runs, parse trees and oracles.
//!
//! A **run** is derived from the start module by applying productions one at
//! a time (the *derivation-based* dynamic model of Definition 10 — labels
//! must be assignable per step, knowing nothing of future steps). This crate
//! keeps the full derivation history:
//!
//! * [`run`] — instances, data items and steps; the online [`Run::apply`]
//!   engine. A run in progress is a *partial* run and is fully queryable,
//!   which is the point of dynamic labeling ("users may wish to query
//!   partial executions", §1).
//! * [`tree`] — the **compressed parse tree** (Definition 18): the basic
//!   parse tree with every unfolded recursion chain flattened under a
//!   *recursive node*, keeping depth ≤ 2·|Δ| (Lemma 4). Both FVL and the
//!   DRL baseline build their labels from this structure.
//! * [`viewproj`] — projection of a run onto a view (`R_U` of Definition 9):
//!   visibility of instances and data items.
//! * [`flatten`] — materializes the view of a run as a flat
//!   [`wf_model::SimpleWorkflow`] and answers ground-truth dependency
//!   queries over its port graph; every labeling scheme is tested against
//!   this oracle.
//! * [`derivation`] — replayable derivation scripts and the seeded random
//!   sampler used throughout the evaluation (§6.1 "we simulated runs by
//!   applying a random sequence of productions").
//! * [`fixtures`] — the Figure 3/4 run of the paper's running example.

pub mod derivation;
pub mod fixtures;
pub mod flatten;
pub mod run;
pub mod tree;
pub mod viewproj;

pub use derivation::{random_derivation, Derivation};
pub use flatten::{FlatRun, RunOracle};
pub use run::{DataId, InstanceId, Run, RunError, StepId};
pub use tree::{CompressedTree, EdgeLabel, TreeNodeId};
pub use viewproj::RunProjection;
