//! Shared machinery for generating *guaranteed-safe* random specifications.
//!
//! Safety (Definition 13) constrains modules with multiple productions: all
//! of them must induce the same λ\*. Random dependency assignments would
//! almost never satisfy this, so the generators build recursion in a shape
//! that is safe *by construction*:
//!
//! * every composite module has exactly one **base** production (random
//!   workflow) — a single production imposes no consistency constraint;
//! * recursive productions wrap the cycle successor between two **identity
//!   adapters** (`pre`/`post` atomics wired port-to-port with identity λ),
//!   so the induced matrix is λ\*(successor) verbatim — consistent for any
//!   base assignment;
//! * where a module needs a second non-recursive production (the BioAID
//!   production count), it gets a **mirror**: a single atomic whose λ is
//!   *set to* the module's λ\* computed from its base production.
//!
//! Coarse-grained variants (single-source/single-sink, black-box λ) use
//! complete-λ adapters instead; completeness of composite λ\* (footnote 3)
//! makes those consistent too.

use rand::Rng;
use wf_boolmat::BoolMat;

/// Raw wiring: `((from_node, out_port), (to_node, in_port))` pairs over
/// positions in a node list (the [`wf_model::GrammarBuilder`] convention).
pub type RawEdges = [((usize, u8), (usize, u8))];
use wf_model::{
    DepAssignment, GrammarBuilder, InPortRef, ModuleId, ModuleSig, OutPortRef, PortGraph,
    SimpleWorkflow,
};

/// Tunables shared by the generators.
#[derive(Clone, Debug)]
pub struct GenParams {
    /// Target number of nodes in a base workflow (§6.5 "workflow size").
    pub workflow_size: usize,
    /// Ports per generated module (§6.5 "module degree"): inputs and
    /// outputs of fill atomics are drawn from `1..=module_degree`.
    pub module_degree: u8,
    /// Probability of each λ entry for fill atomics (then repaired to be
    /// proper).
    pub dep_density: f64,
    /// Maximum boundary ports (initial inputs / final outputs) a generated
    /// workflow may expose.
    pub max_in: usize,
    pub max_out: usize,
    /// Coarse-grained mode: single-source/single-sink wiring + black-box λ.
    pub coarse: bool,
}

impl Default for GenParams {
    fn default() -> Self {
        Self {
            workflow_size: 8,
            module_degree: 3,
            dep_density: 0.4,
            max_in: 4,
            max_out: 7,
            coarse: false,
        }
    }
}

/// Incrementally builds a grammar + dependency assignment with derived
/// composite signatures.
pub struct SpecGen {
    pub gb: GrammarBuilder,
    /// λ for atomic modules (what the final Spec carries).
    pub deps: DepAssignment,
    /// Working assignment: λ plus the derived λ\* of every composite built
    /// so far (needed to compute enclosing matrices and mirrors).
    pub lambda: DepAssignment,
    pub sigs: Vec<ModuleSig>,
    pub composite: Vec<bool>,
    counter: usize,
}

impl SpecGen {
    pub fn new() -> Self {
        Self {
            gb: GrammarBuilder::new(),
            deps: DepAssignment::new(),
            lambda: DepAssignment::new(),
            sigs: Vec::new(),
            composite: Vec::new(),
            counter: 0,
        }
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    /// Declares an atomic module with a random proper λ.
    pub fn fill_atomic(&mut self, rng: &mut impl Rng, p: &GenParams) -> ModuleId {
        let n_in = rng.gen_range(1..=p.module_degree);
        let n_out = rng.gen_range(1..=p.module_degree);
        let name = self.fresh_name("x");
        let id = self.gb.atomic(&name, n_in, n_out);
        self.push_sig(&name, n_in, n_out, false);
        let mat = if p.coarse {
            BoolMat::complete(n_in as usize, n_out as usize)
        } else {
            random_proper_matrix(rng, n_in as usize, n_out as usize, p.dep_density)
        };
        self.deps.set(id, mat.clone());
        self.lambda.set(id, mat);
        id
    }

    /// Declares an atomic with an explicit signature and matrix.
    pub fn special_atomic(&mut self, prefix: &str, n_in: u8, n_out: u8, mat: BoolMat) -> ModuleId {
        let name = self.fresh_name(prefix);
        let id = self.gb.atomic(&name, n_in, n_out);
        self.push_sig(&name, n_in, n_out, false);
        self.deps.set(id, mat.clone());
        self.lambda.set(id, mat);
        id
    }

    fn push_sig(&mut self, name: &str, n_in: u8, n_out: u8, comp: bool) {
        self.sigs.push(ModuleSig::new(name, n_in, n_out));
        self.composite.push(comp);
    }

    pub fn sig(&self, m: ModuleId) -> &ModuleSig {
        &self.sigs[m.index()]
    }

    /// Builds a random base workflow over `inner` composite instances plus
    /// `fill` fresh atomics, wires it (respecting boundary caps, inserting
    /// aggregators as needed), declares the composite `name` with the
    /// derived signature and registers the production. Returns the new
    /// composite id.
    pub fn base_production(
        &mut self,
        rng: &mut impl Rng,
        p: &GenParams,
        name: &str,
        inner: &[ModuleId],
        fill: usize,
    ) -> ModuleId {
        // Node list: coarse mode pins a source atomic first; inner modules
        // and fill atomics are interleaved randomly after it. A zero-width
        // request (no inner modules, zero fill) would materialize an empty
        // RHS, which the grammar rightly rejects (`EmptyWorkflow`) — floor
        // the plan at one fill atomic so degenerate callers (the grammar
        // fuzzer reaches this corner) still get a valid spec.
        let fill = if inner.is_empty() { fill.max(1) } else { fill };
        let mut mids: Vec<ModuleId> = inner.to_vec();
        for _ in 0..fill {
            mids.push(self.fill_atomic(rng, p));
        }
        // Shuffle (Fisher-Yates) for structural variety.
        for i in (1..mids.len()).rev() {
            let j = rng.gen_range(0..=i);
            mids.swap(i, j);
        }
        if p.coarse {
            let n_in = rng.gen_range(1..=p.max_in.min(p.module_degree as usize)) as u8;
            let k = rng.gen_range(1..=p.module_degree);
            let src =
                self.special_atomic("src", n_in, k, BoolMat::complete(n_in as usize, k as usize));
            mids.insert(0, src);
        }

        // Wire inputs. Nodes are placed one at a time; when a node needs
        // more upstream outputs than are open, duplicator atomics (1 in,
        // several out, pass-through λ) are injected before it — this keeps
        // the single-source invariant of coarse mode and the boundary caps
        // of fine-grained mode.
        let mut placed: Vec<ModuleId> = Vec::with_capacity(mids.len() + 4);
        let mut edges: Vec<((usize, u8), (usize, u8))> = Vec::new();
        let mut open: Vec<(usize, u8)> = Vec::new(); // (node index, out port)
        let mut n_initial = 0usize;
        for (plan_ix, &m) in mids.iter().enumerate() {
            let sig = self.sig(m).clone();
            // Decide, per input, whether it stays initial or connects.
            let mut connects: Vec<u8> = Vec::new();
            for port in 0..sig.n_in {
                let stay = if plan_ix == 0 {
                    true // the first node seeds the boundary (src in coarse)
                } else if p.coarse {
                    false
                } else {
                    n_initial < p.max_in && rng.gen_bool(0.15)
                };
                if stay {
                    n_initial += 1;
                } else {
                    connects.push(port);
                }
            }
            // Ensure enough open outputs, injecting duplicators (net +2/+3
            // opens each). `open` is nonempty whenever any node was placed.
            while open.len() < connects.len() {
                if open.is_empty() {
                    // Only possible before anything produced an output: the
                    // first planned node; it stays all-initial, so connects
                    // is empty. Defensive fallback: demote to initial.
                    n_initial += connects.len();
                    connects.clear();
                    break;
                }
                let dup = self.special_atomic("dup", 1, 4, BoolMat::complete(1, 4));
                let ix = placed.len();
                let pick = rng.gen_range(0..open.len());
                let (sn, sp) = open.swap_remove(pick);
                placed.push(dup);
                edges.push(((sn, sp), (ix, 0)));
                for out in 0..4u8 {
                    open.push((ix, out));
                }
            }
            let ix = placed.len();
            placed.push(m);
            for port in connects {
                // Prefer recent outputs (chains) half the time.
                let pick =
                    if rng.gen_bool(0.5) { open.len() - 1 } else { rng.gen_range(0..open.len()) };
                let (sn, sp) = open.swap_remove(pick);
                edges.push(((sn, sp), (ix, port)));
            }
            for port in 0..sig.n_out {
                open.push((ix, port));
            }
        }
        let mut mids = placed;

        // Boundary repair: if the first node starved the boundary caps, add
        // aggregators consuming surplus open outputs.
        let max_out = p.max_out;
        while open.len() > max_out || (p.coarse && open.len() > 1) {
            let take = open.len().min(4);
            let agg = self.special_atomic("agg", take as u8, 1, BoolMat::complete(take, 1));
            let node_ix = mids.len();
            mids.push(agg);
            for port in 0..take {
                let (sn, sp) = open.remove(0);
                edges.push(((sn, sp), (node_ix, port as u8)));
            }
            open.push((node_ix, 0));
        }

        // Materialize, derive the signature, declare the composite, and
        // record its λ* (single base production ⇒ this *is* λ*(id)).
        let lhs_mat = self.lhs_matrix(&mids, &edges);
        let (_, n_in, n_out) = self.materialize(&mids, &edges);
        debug_assert_eq!(n_initial, n_in, "initial-input accounting");
        let id = self.gb.composite(name, n_in as u8, n_out as u8);
        self.push_sig(name, n_in as u8, n_out as u8, true);
        self.lambda.set(id, lhs_mat);
        self.gb.production(id, mids, edges);
        id
    }

    /// Registers a composite declared without a base production (cycle
    /// members): same signature and λ* as its cycle entry.
    pub fn cycle_member(&mut self, name: &str, entry: ModuleId) -> ModuleId {
        let sig = self.sig(entry).clone();
        let id = self.gb.composite(name, sig.n_in, sig.n_out);
        self.push_sig(name, sig.n_in, sig.n_out, true);
        if let Some(m) = self.lambda.get(entry) {
            let m = m.clone();
            self.lambda.set(id, m);
        }
        id
    }

    /// Adds the identity-adapter recursive production `m → (pre, succ,
    /// post)`; `m` and `succ` must share a signature.
    pub fn recursive_production(&mut self, m: ModuleId, succ: ModuleId, coarse: bool) {
        let sig = self.sig(m).clone();
        assert_eq!(
            (sig.n_in, sig.n_out),
            (self.sig(succ).n_in, self.sig(succ).n_out),
            "cycle members must share signatures"
        );
        let adapter = |g: &mut Self, n: u8| {
            let mat = if coarse {
                BoolMat::complete(n as usize, n as usize)
            } else {
                BoolMat::identity(n as usize)
            };
            g.special_atomic("ad", n, n, mat)
        };
        let pre = adapter(self, sig.n_in);
        let post = adapter(self, sig.n_out);
        let mut edges = Vec::new();
        for port in 0..sig.n_in {
            edges.push(((0usize, port), (1usize, port)));
        }
        for port in 0..sig.n_out {
            edges.push(((1usize, port), (2usize, port)));
        }
        self.gb.production(m, vec![pre, succ, post], edges);
    }

    /// Adds a mirror production `m → (atomic with λ := λ*(m from base))`.
    /// `base_lhs_matrix` must be λ\*(m) as induced by m's base production.
    pub fn mirror_production(&mut self, m: ModuleId, base_lhs_matrix: BoolMat) {
        let sig = self.sig(m).clone();
        let mirror = self.special_atomic("mir", sig.n_in, sig.n_out, base_lhs_matrix);
        self.gb.production(m, vec![mirror], vec![]);
    }

    /// Computes the LHS matrix a finished workflow induces (used to build
    /// mirrors before the grammar is finalized).
    pub fn lhs_matrix(&self, nodes: &[ModuleId], edges: &RawEdges) -> BoolMat {
        let (w, n_in, n_out) = self.materialize(nodes, edges);
        let pg = PortGraph::build(&w, &self.lambda);
        let mut mat = BoolMat::zeros(n_in, n_out);
        for (x, &ip) in w.initial_inputs().iter().enumerate() {
            let reach = pg.reachable_from(pg.in_ix(ip));
            for (y, &op) in w.final_outputs().iter().enumerate() {
                if reach.contains(pg.out_ix(op) as usize) {
                    mat.set(x, y, true);
                }
            }
        }
        mat
    }

    fn materialize(&self, nodes: &[ModuleId], edges: &RawEdges) -> (SimpleWorkflow, usize, usize) {
        let data_edges: Vec<wf_model::DataEdge> = edges
            .iter()
            .map(|&((fp, fo), (tp, ti))| wf_model::DataEdge {
                from: OutPortRef { node: wf_model::NodeIx(fp as u32), port: fo },
                to: InPortRef { node: wf_model::NodeIx(tp as u32), port: ti },
            })
            .collect();
        let w = SimpleWorkflow::new(nodes.to_vec(), data_edges, &self.sigs)
            .expect("generated wiring is valid");
        let n_in = w.initial_inputs().len();
        let n_out = w.final_outputs().len();
        (w, n_in, n_out)
    }
}

impl Default for SpecGen {
    fn default() -> Self {
        Self::new()
    }
}

/// A random proper dependency matrix: density-`p` entries, then every empty
/// row/column receives one random entry (Definition 6).
pub fn random_proper_matrix(rng: &mut impl Rng, rows: usize, cols: usize, p: f64) -> BoolMat {
    let mut m = BoolMat::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            if rng.gen_bool(p) {
                m.set(r, c, true);
            }
        }
    }
    for r in 0..rows {
        if m.row_bits(r) == 0 {
            m.set(r, rng.gen_range(0..cols), true);
        }
    }
    let t = m.transpose();
    for c in 0..cols {
        if t.row_bits(c) == 0 {
            m.set(rng.gen_range(0..rows), c, true);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_proper_matrices_are_proper() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let rows = rng.gen_range(1..8);
            let cols = rng.gen_range(1..8);
            let m = random_proper_matrix(&mut rng, rows, cols, 0.3);
            for r in 0..rows {
                assert_ne!(m.row_bits(r), 0);
            }
            let t = m.transpose();
            for c in 0..cols {
                assert_ne!(t.row_bits(c), 0);
            }
        }
    }

    #[test]
    fn base_production_derives_consistent_signature() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = GenParams::default();
        let mut g = SpecGen::new();
        let leaf = g.base_production(&mut rng, &p, "Leaf", &[], 5);
        assert!(g.sig(leaf).inputs() <= p.max_in);
        assert!(g.sig(leaf).outputs() <= p.max_out);
        let mid = g.base_production(&mut rng, &p, "Mid", &[leaf], 4);
        g.gb.start(mid);
        let grammar = g.gb.finish().unwrap();
        grammar.check_proper(&grammar.full_expand()).unwrap();
    }

    /// Regression (surfaced by the `wf-fuzz` grammar fuzzer): a zero-width
    /// request — no inner modules, zero fill — used to materialize an
    /// empty RHS and die with `EmptyWorkflow`. The generator now floors
    /// the plan at one atomic instead of emitting a spec the grammar
    /// rejects.
    #[test]
    fn zero_width_base_production_still_builds_a_valid_spec() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = GenParams::default();
        let mut g = SpecGen::new();
        let a = g.base_production(&mut rng, &p, "A", &[], 0);
        assert!(g.sig(a).inputs() >= 1 && g.sig(a).outputs() >= 1);
        // Zero fill *with* inner modules stays zero-fill (the inner
        // modules are the width).
        let b = g.base_production(&mut rng, &p, "B", &[a], 0);
        g.gb.start(b);
        let grammar = g.gb.finish().unwrap();
        grammar.check_proper(&grammar.full_expand()).unwrap();
        assert_eq!(grammar.composite_modules().count(), 2);
    }

    /// Regression (surfaced by the `wf-fuzz` grammar fuzzer): degenerate
    /// parameter corners — single-port modules, density 0 and 1, boundary
    /// caps of 1 — must all produce proper, safe specs the engine accepts.
    #[test]
    fn degenerate_parameter_corners_build_safe_specs() {
        use wf_analysis::{classify, is_safe, RecursionClass};
        use wf_model::{Spec, ViewSpec};
        for (density, degree) in [(0.0, 1u8), (1.0, 1), (0.0, 6), (1.0, 6)] {
            let mut rng = StdRng::seed_from_u64(7);
            let p = GenParams {
                workflow_size: 0,
                module_degree: degree,
                dep_density: density,
                max_in: 1,
                max_out: 1,
                coarse: false,
            };
            let mut g = SpecGen::new();
            let a = g.base_production(&mut rng, &p, "A", &[], 1);
            let b = g.base_production(&mut rng, &p, "B", &[a], 0);
            g.gb.start(b);
            let grammar = g.gb.finish().unwrap();
            assert_eq!(classify(&grammar), RecursionClass::NonRecursive);
            let spec = Spec::new(grammar, g.deps).unwrap();
            let dv = spec.default_view();
            assert!(
                is_safe(&ViewSpec::new(&spec, &dv)),
                "density {density} degree {degree} built an unsafe spec"
            );
        }
    }
}
