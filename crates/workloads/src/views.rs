//! Safe random view generation (§6.1: "we obtained safe views by
//! enumerating all possible proper subsets of composite modules and
//! assigning random input-output dependencies").
//!
//! Random λ′ would generically violate safety on modules with several
//! productions, so the sampler pins the generator's adapter/mirror atomics
//! and *repairs* cycle terminals: whenever a recursion is partially
//! expanded, the unexpandable cycle members' λ′ is set to the cycle entry's
//! base-production matrix, which is exactly the unique consistent choice.

use crate::gen::random_proper_matrix;
use crate::Workload;
use rand::Rng;
use wf_boolmat::BoolMat;
use wf_model::{DepAssignment, ModuleId, View, ViewSpec};

/// Samples a proper, safe grey-box view with `target_size` expandable
/// modules (clamped to what is reachable).
pub fn random_safe_view(w: &Workload, rng: &mut impl Rng, target_size: usize) -> View {
    let grammar = &w.spec.grammar;
    // Grow Δ′ from the start module along derivable composites.
    let mut expand = vec![false; grammar.module_count()];
    expand[grammar.start().index()] = true;
    let mut size = 1;
    while size < target_size {
        let derivable = grammar.derivable_modules(&expand);
        let candidates: Vec<ModuleId> = grammar
            .composite_modules()
            .filter(|&m| derivable[m.index()] && !expand[m.index()] && !w.no_expand.contains(&m))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let pick = candidates[rng.gen_range(0..candidates.len())];
        expand[pick.index()] = true;
        size += 1;
    }

    // λ′: pinned atomics keep λ; free atomics and unexpandable composites
    // are randomized (grey box).
    let derivable = grammar.derivable_modules(&expand);
    let mut deps = DepAssignment::new();
    for m in grammar.modules() {
        if expand[m.index()] || !derivable[m.index()] {
            continue;
        }
        let sig = grammar.sig(m);
        if !grammar.is_composite(m) && w.pinned[m.index()] {
            deps.set(m, w.spec.deps.get(m).expect("pinned atomic has λ").clone());
        } else {
            deps.set(m, random_proper_matrix(rng, sig.inputs(), sig.outputs(), 0.4));
        }
    }

    // Repair cycle terminals: members outside Δ′ of a cycle that is (even
    // partially) expanded must carry the entry's base matrix.
    let base_lambda = base_assignment(w, &expand, &deps);
    for (members, entry) in &w.cycles {
        let touched = members.iter().any(|m| expand[m.index()]);
        if !touched {
            continue;
        }
        let mat = base_lambda.get(*entry).expect("cycle entry has a base matrix").clone();
        for &m in members {
            if !expand[m.index()] && derivable[m.index()] {
                deps.set(m, mat.clone());
            }
        }
    }

    let view = View::new(grammar, grammar.modules().filter(|m| expand[m.index()]), deps)
        .expect("sampled view is proper and fully assigned");
    debug_assert!(
        wf_analysis::is_safe(&ViewSpec::new(&w.spec, &view)),
        "sampled view must be safe"
    );
    view
}

/// Black-box view of the requested size: complete λ′ everywhere (always
/// safe on coarse workloads — Lemma 2). Used for the §6.4 comparisons.
pub fn black_box_view(w: &Workload, rng: &mut impl Rng, target_size: usize) -> View {
    let grammar = &w.spec.grammar;
    let mut expand = vec![false; grammar.module_count()];
    expand[grammar.start().index()] = true;
    let mut size = 1;
    while size < target_size {
        let derivable = grammar.derivable_modules(&expand);
        let candidates: Vec<ModuleId> = grammar
            .composite_modules()
            .filter(|&m| derivable[m.index()] && !expand[m.index()] && !w.no_expand.contains(&m))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let pick = candidates[rng.gen_range(0..candidates.len())];
        expand[pick.index()] = true;
        size += 1;
    }
    let derivable = grammar.derivable_modules(&expand);
    let mut deps = DepAssignment::new();
    for m in grammar.modules() {
        if !expand[m.index()] && derivable[m.index()] {
            let sig = grammar.sig(m);
            deps.set(m, BoolMat::complete(sig.inputs(), sig.outputs()));
        }
    }
    View::new(grammar, grammar.modules().filter(|m| expand[m.index()]), deps)
        .expect("black-box view is proper")
}

/// λ\* computed over *base productions only* — the unique consistent value
/// for every Δ′ module, used to repair cycle terminals.
fn base_assignment(w: &Workload, expand: &[bool], terminal_deps: &DepAssignment) -> DepAssignment {
    let grammar = &w.spec.grammar;
    let mut lambda = terminal_deps.clone();
    loop {
        let mut progressed = false;
        for m in grammar.modules() {
            if !expand[m.index()] || lambda.is_defined(m) {
                continue;
            }
            let Some(k) = w.base_prod_of[m.index()] else { continue };
            let p = grammar.production(k);
            if !p.rhs.nodes().iter().all(|&c| lambda.is_defined(c)) {
                continue;
            }
            let mut work = DepAssignment::new();
            for &c in p.rhs.nodes() {
                work.set(c, lambda.get(c).unwrap().clone());
            }
            let pgraph = wf_model::PortGraph::build(&p.rhs, &work);
            let sig = grammar.sig(m);
            let mut mat = BoolMat::zeros(sig.inputs(), sig.outputs());
            for (x, &ip) in p.input_map.iter().enumerate() {
                let reach = pgraph.reachable_from(pgraph.in_ix(ip));
                for (y, &op) in p.output_map.iter().enumerate() {
                    if reach.contains(pgraph.out_ix(op) as usize) {
                        mat.set(x, y, true);
                    }
                }
            }
            lambda.set(m, mat);
            progressed = true;
        }
        if !progressed {
            return lambda;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bioaid, bioaid_coarse, synthetic, SynthParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_views_are_safe_across_sizes() {
        let w = bioaid(1);
        let mut rng = StdRng::seed_from_u64(2);
        for size in [2, 8, 16] {
            for _ in 0..5 {
                let v = random_safe_view(&w, &mut rng, size);
                assert!(v.size() >= 1 && v.size() <= size);
                assert!(wf_analysis::is_safe(&ViewSpec::new(&w.spec, &v)));
            }
        }
    }

    /// Regression (surfaced by the `wf-fuzz` grammar fuzzer): extreme
    /// target sizes — zero and far beyond the composite count — must
    /// still produce safe, nonempty views (zero clamps to the start
    /// module alone; oversize saturates at every expandable composite).
    #[test]
    fn extreme_target_sizes_stay_safe() {
        let w = bioaid(1);
        let composites = w.spec.grammar.composite_modules().count();
        let mut rng = StdRng::seed_from_u64(6);
        for size in [0, composites, 10 * composites] {
            for _ in 0..5 {
                let v = random_safe_view(&w, &mut rng, size);
                assert!(v.size() >= 1, "target {size} built an empty view");
                assert!(wf_analysis::is_safe(&ViewSpec::new(&w.spec, &v)));
            }
        }
    }

    #[test]
    fn synthetic_views_are_safe() {
        let w =
            synthetic(&SynthParams { workflow_size: 8, nesting_depth: 5, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10 {
            let v = random_safe_view(&w, &mut rng, 4);
            assert!(wf_analysis::is_safe(&ViewSpec::new(&w.spec, &v)));
        }
    }

    #[test]
    fn black_box_views_are_black_box() {
        let w = bioaid_coarse(1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let v = black_box_view(&w, &mut rng, 8);
            assert!(v.is_black_box(&w.spec.grammar));
            assert!(wf_analysis::is_safe(&ViewSpec::new(&w.spec, &v)));
        }
    }
}
