//! Query-workload generation: the *serving* shape, not just the §6.1
//! uniform pair sampling.
//!
//! Repository-search and lineage-tracing services (cf. the workloads of
//! Davidson et al.'s repository search and Huang et al.'s reachability
//! queries over provenance) do not issue uniformly random pairs: a few hot
//! items (popular datasets, recent outputs) appear in most queries, and
//! queries spread across a mix of views (each user group holds its own).
//! This module generates those shapes deterministically per seed, to drive
//! the `wf-engine` serving layer and the `query_throughput` bench.

use rand::Rng;
use wf_run::{DataId, Run};

/// How the endpoints of a query pair are drawn.
#[derive(Clone, Copy, Debug)]
pub enum PairDist {
    /// Both endpoints uniform over the run's items (§6.1 methodology).
    Uniform,
    /// Hot-key skew: with probability `hot_prob`, an endpoint is drawn from
    /// the `hot_items` lowest item ids (the run's earliest — and in a
    /// top-down derivation, shallowest — items); otherwise uniform.
    HotKey { hot_items: usize, hot_prob: f64 },
}

/// Draws one endpoint. Callers guarantee `run.item_count() > 0` — the
/// public entry points return empty workloads for empty runs instead of
/// reaching the `gen_range(0..0)` panic this would otherwise hit.
fn draw(run: &Run, rng: &mut impl Rng, dist: PairDist) -> DataId {
    let n = run.item_count() as u32;
    debug_assert!(n > 0, "draw requires a non-empty run");
    match dist {
        PairDist::Uniform => DataId(rng.gen_range(0..n)),
        PairDist::HotKey { hot_items, hot_prob } => {
            let hot = (hot_items as u32).clamp(1, n);
            if rng.gen_bool(hot_prob) {
                DataId(rng.gen_range(0..hot))
            } else {
                DataId(rng.gen_range(0..n))
            }
        }
    }
}

/// `count` ordered query pairs drawn per `dist`. An empty run has no items
/// to query, so it yields an empty workload (not a panic) — a freshly
/// started [`Run`] has zero items until its first derivation step.
pub fn sample_pairs(
    run: &Run,
    rng: &mut impl Rng,
    count: usize,
    dist: PairDist,
) -> Vec<(DataId, DataId)> {
    if run.item_count() == 0 {
        return Vec::new();
    }
    (0..count).map(|_| (draw(run, rng, dist), draw(run, rng, dist))).collect()
}

/// One operation of a multi-view serving mix: which registered view the
/// query targets, and the pair itself.
#[derive(Clone, Copy, Debug)]
pub struct QueryOp {
    /// Index into the caller's view list (whatever handles it keeps).
    pub view: usize,
    pub pair: (DataId, DataId),
}

/// A per-view traffic mix: relative weights (need not sum to 1) plus the
/// pair distribution shared by all views.
#[derive(Clone, Debug)]
pub struct MixSpec {
    pub view_weights: Vec<f64>,
    pub dist: PairDist,
}

/// `count` operations, views drawn proportionally to their weights.
///
/// # Panics
/// If `view_weights` is empty, contains a non-finite or negative weight,
/// or sums to zero. Per-weight validation matters: a NaN weight would slip
/// through a `total > 0.0` check only to poison the cumulative scan (NaN
/// comparisons are all false, silently biasing every draw to the last
/// view), and a negative weight shifts every successor's share.
pub fn sample_mix(run: &Run, rng: &mut impl Rng, count: usize, spec: &MixSpec) -> Vec<QueryOp> {
    assert!(!spec.view_weights.is_empty(), "a mix needs at least one view");
    for (i, &w) in spec.view_weights.iter().enumerate() {
        assert!(
            w.is_finite() && w >= 0.0,
            "view weight {i} is {w}: weights must be finite and non-negative"
        );
    }
    let total: f64 = spec.view_weights.iter().sum();
    assert!(total > 0.0, "view weights must have positive mass");
    if run.item_count() == 0 {
        return Vec::new();
    }
    (0..count)
        .map(|_| {
            let mut x = rng.gen_range(0.0..total);
            let mut view = spec.view_weights.len() - 1;
            for (i, w) in spec.view_weights.iter().enumerate() {
                if x < *w {
                    view = i;
                    break;
                }
                x -= w;
            }
            QueryOp { view, pair: (draw(run, rng, spec.dist), draw(run, rng, spec.dist)) }
        })
        .collect()
}

/// Per-worker query streams for concurrent serving: `workers` independent
/// streams of `per_worker` pairs each, all drawn from `dist`. Streams are
/// materialized worker-by-worker from the single `rng`, so the whole
/// workload is deterministic per seed while no two workers share a stream
/// — the shape a parallel read path (`wf-engine`'s `par_query_batch` /
/// per-thread `WorkerScratch` serving) is driven with. An empty run yields
/// `workers` empty streams.
pub fn worker_streams(
    run: &Run,
    rng: &mut impl Rng,
    workers: usize,
    per_worker: usize,
    dist: PairDist,
) -> Vec<Vec<(DataId, DataId)>> {
    (0..workers).map(|_| sample_pairs(run, rng, per_worker, dist)).collect()
}

/// Shards a multi-view operation stream round-robin across `workers`,
/// preserving each worker's relative order — the deterministic split used
/// when one generated [`sample_mix`] stream is served by several threads.
/// Operation `i` lands on worker `i % workers`, so re-interleaving the
/// shards reproduces the original stream exactly.
///
/// # Panics
/// If `workers` is zero.
pub fn shard_round_robin(ops: &[QueryOp], workers: usize) -> Vec<Vec<QueryOp>> {
    assert!(workers > 0, "sharding requires at least one worker");
    let mut shards = vec![Vec::with_capacity(ops.len().div_ceil(workers)); workers];
    for (i, &op) in ops.iter().enumerate() {
        shards[i % workers].push(op);
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bioaid, sample};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wf_analysis::ProdGraph;

    fn test_run() -> Run {
        let w = bioaid(1);
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(1);
        sample::sample_run(&w, &pg, &mut rng, 300).1
    }

    #[test]
    fn uniform_pairs_stay_in_range() {
        let run = test_run();
        let mut rng = StdRng::seed_from_u64(2);
        for (a, b) in sample_pairs(&run, &mut rng, 2_000, PairDist::Uniform) {
            assert!((a.0 as usize) < run.item_count());
            assert!((b.0 as usize) < run.item_count());
        }
    }

    #[test]
    fn hot_key_skew_concentrates_traffic() {
        let run = test_run();
        let mut rng = StdRng::seed_from_u64(3);
        let dist = PairDist::HotKey { hot_items: 16, hot_prob: 0.8 };
        let pairs = sample_pairs(&run, &mut rng, 4_000, dist);
        let hot_hits =
            pairs.iter().flat_map(|&(a, b)| [a, b]).filter(|d| (d.0 as usize) < 16).count();
        // ≥ 80% of endpoints from the hot set (plus uniform spillover);
        // leave slack for sampling noise.
        assert!(hot_hits as f64 >= 0.7 * 8_000.0, "only {hot_hits} hot endpoint draws");
        // And the cold tail is still exercised.
        assert!(pairs.iter().any(|&(a, b)| a.0 >= 16 || b.0 >= 16));
    }

    #[test]
    fn hot_set_larger_than_run_is_clamped() {
        let run = test_run();
        let mut rng = StdRng::seed_from_u64(4);
        let dist = PairDist::HotKey { hot_items: 10 * run.item_count(), hot_prob: 1.0 };
        for (a, b) in sample_pairs(&run, &mut rng, 500, dist) {
            assert!((a.0 as usize) < run.item_count());
            assert!((b.0 as usize) < run.item_count());
        }
    }

    #[test]
    fn mix_respects_view_weights() {
        let run = test_run();
        let mut rng = StdRng::seed_from_u64(5);
        let spec = MixSpec { view_weights: vec![3.0, 1.0], dist: PairDist::Uniform };
        let ops = sample_mix(&run, &mut rng, 4_000, &spec);
        let first = ops.iter().filter(|op| op.view == 0).count();
        assert!(ops.iter().all(|op| op.view < 2));
        let share = first as f64 / ops.len() as f64;
        assert!((0.68..0.82).contains(&share), "view-0 share {share}");
    }

    #[test]
    fn empty_run_yields_empty_workloads() {
        // Regression: a run with zero items used to hit `gen_range(0..0)`
        // and panic inside `draw`.
        let empty = Run::empty();
        assert_eq!(empty.item_count(), 0);
        let mut rng = StdRng::seed_from_u64(6);
        for dist in [PairDist::Uniform, PairDist::HotKey { hot_items: 4, hot_prob: 0.9 }] {
            assert!(sample_pairs(&empty, &mut rng, 100, dist).is_empty());
        }
        let spec = MixSpec { view_weights: vec![1.0, 2.0], dist: PairDist::Uniform };
        assert!(sample_mix(&empty, &mut rng, 100, &spec).is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_weight_rejected() {
        // Regression: NaN sums to NaN, so the old `total > 0.0` assert let
        // it through and the cumulative scan silently picked the last view.
        let run = test_run();
        let spec = MixSpec { view_weights: vec![1.0, f64::NAN], dist: PairDist::Uniform };
        sample_mix(&run, &mut StdRng::seed_from_u64(7), 10, &spec);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_rejected() {
        let run = test_run();
        let spec = MixSpec { view_weights: vec![2.0, -1.0, 1.0], dist: PairDist::Uniform };
        sample_mix(&run, &mut StdRng::seed_from_u64(8), 10, &spec);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn infinite_weight_rejected() {
        let run = test_run();
        let spec = MixSpec { view_weights: vec![1.0, f64::INFINITY], dist: PairDist::Uniform };
        sample_mix(&run, &mut StdRng::seed_from_u64(9), 10, &spec);
    }

    #[test]
    fn worker_streams_are_disjoint_draws_and_deterministic() {
        let run = test_run();
        let dist = PairDist::HotKey { hot_items: 8, hot_prob: 0.5 };
        let a = worker_streams(&run, &mut StdRng::seed_from_u64(21), 4, 64, dist);
        let b = worker_streams(&run, &mut StdRng::seed_from_u64(21), 4, 64, dist);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|s| s.len() == 64));
        assert_eq!(a, b, "same seed, same streams");
        // Streams are drawn sequentially from one rng, so worker 0's stream
        // is exactly what a single-stream sample would produce.
        let solo = sample_pairs(&run, &mut StdRng::seed_from_u64(21), 64, dist);
        assert_eq!(a[0], solo);
        // And the workers differ from each other (independent draws).
        assert_ne!(a[0], a[1]);
        // Empty runs: every worker gets an empty stream, no panic.
        let empty = worker_streams(&Run::empty(), &mut StdRng::seed_from_u64(1), 3, 10, dist);
        assert_eq!(empty, vec![Vec::new(), Vec::new(), Vec::new()]);
    }

    #[test]
    fn round_robin_sharding_partitions_and_preserves_order() {
        let run = test_run();
        let mut rng = StdRng::seed_from_u64(22);
        let spec = MixSpec { view_weights: vec![2.0, 1.0, 1.0], dist: PairDist::Uniform };
        let ops = sample_mix(&run, &mut rng, 101, &spec);
        let shards = shard_round_robin(&ops, 4);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), ops.len());
        // Re-interleaving the shards reproduces the stream exactly.
        for (i, op) in ops.iter().enumerate() {
            let got = shards[i % 4][i / 4];
            assert_eq!((got.view, got.pair), (op.view, op.pair), "op {i}");
        }
        // More workers than ops: trailing shards are just empty.
        let wide = shard_round_robin(&ops[..2], 5);
        assert_eq!(wide.iter().filter(|s| !s.is_empty()).count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_worker_sharding_rejected() {
        shard_round_robin(&[], 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let run = test_run();
        let dist = PairDist::HotKey { hot_items: 8, hot_prob: 0.5 };
        let a = sample_pairs(&run, &mut StdRng::seed_from_u64(9), 64, dist);
        let b = sample_pairs(&run, &mut StdRng::seed_from_u64(9), 64, dist);
        assert_eq!(a, b);
    }
}
