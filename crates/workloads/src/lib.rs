//! Workload generators for the §6 evaluation.
//!
//! * [`bioaid`] — the stand-in for the myExperiment *BioAID* workflow
//!   (DESIGN.md substitution S1): a strictly linear-recursive grammar with
//!   the published statistics — 112 modules (16 composite), 23 productions
//!   (7 recursive), ≤ 19 modules per production, ≤ 4 input and ≤ 7 output
//!   ports per module.
//! * [`bioaid_coarse`] — a black-box single-source/single-sink variant of
//!   comparable shape, used wherever DRL participates (§6.2, §6.4).
//! * [`synthetic`] — the Figure 26 family, parameterized by workflow size,
//!   module degree, nesting depth and recursion length (§6.5).
//! * [`views`] — safe random grey-box views ("enumerating proper subsets of
//!   composite modules and assigning random input-output dependencies",
//!   §6.1) and black-box views for the multi-view comparisons.
//! * [`sample`] — run-size-targeted derivations and query pair sampling.
//! * [`queries`] — serving-shape query workloads (uniform pairs, hot-key
//!   skew, per-view traffic mixes) for the `wf-engine` layer and the
//!   throughput benches.
//! * [`churn`] — live-update workloads: per-worker streams interleaving
//!   label inserts, view registrations and query batches, for the
//!   generational engine and the `update_throughput` bench.

pub mod churn;
pub mod gen;
pub mod queries;
pub mod sample;
pub mod views;

use gen::{GenParams, SpecGen};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_model::{DepAssignment, ModuleId, ProdId, Spec};

/// A generated specification plus the metadata the view sampler needs.
pub struct Workload {
    pub spec: Spec,
    /// λ\* of every module under the default view (composites included).
    pub lambda: DepAssignment,
    /// Per module: the base (non-recursive) production, if any.
    pub base_prod_of: Vec<Option<ProdId>>,
    /// Per cycle: (members, entry member with a base production).
    pub cycles: Vec<(Vec<ModuleId>, ModuleId)>,
    /// Atomics whose λ′ must stay pinned in views (identity adapters,
    /// mirrors, duplicators, aggregators, sources).
    pub pinned: Vec<bool>,
    /// Composites that must never enter Δ′ (mirror-constrained).
    pub no_expand: Vec<ModuleId>,
}

impl Workload {
    /// Finalizes a [`SpecGen`] into a workload: `start` becomes the start
    /// module, `cycles` lists every recursion ring as `(members, entry)`,
    /// and `no_expand` the mirror-constrained composites views must never
    /// expand. Public plumbing so external generators (the adversarial
    /// grammar fuzzer in `wf-fuzz`) can drive [`SpecGen`] into shapes the
    /// friendly generators here never reach.
    pub fn from_gen(
        g: SpecGen,
        start: ModuleId,
        cycles: Vec<(Vec<ModuleId>, ModuleId)>,
        no_expand: Vec<ModuleId>,
    ) -> Workload {
        let mut gb = g.gb;
        gb.start(start);
        let grammar = gb.finish().expect("generated grammar is valid");
        // Pinned atomics: everything that is not a random fill atomic.
        let pinned = grammar
            .modules()
            .map(|m| {
                let name = &grammar.sig(m).name;
                !grammar.is_composite(m) && !name.starts_with('x')
            })
            .collect();
        let mut base_prod_of = vec![None; grammar.module_count()];
        for (k, p) in grammar.productions() {
            // A base production is any whose RHS does not reach back to the
            // LHS; with the generator's structure that is exactly the
            // non-adapter productions (mirrors count as bases).
            let recursive = p.rhs.nodes().iter().any(|&c| {
                cycles.iter().any(|(members, _)| members.contains(&c) && members.contains(&p.lhs))
            });
            if !recursive && base_prod_of[p.lhs.index()].is_none() {
                base_prod_of[p.lhs.index()] = Some(k);
            }
        }
        let spec = Spec::new(grammar, g.deps).expect("generated spec is valid");
        Workload { spec, lambda: g.lambda, base_prod_of, cycles, pinned, no_expand }
    }
}

/// The BioAID-like workload (see module docs). Deterministic per seed.
pub fn bioaid(seed: u64) -> Workload {
    bioaid_with(seed, false)
}

/// Coarse-grained (black-box, single-source/single-sink) BioAID-like
/// workload for the DRL comparisons.
pub fn bioaid_coarse(seed: u64) -> Workload {
    bioaid_with(seed, true)
}

fn bioaid_with(seed: u64, coarse: bool) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = GenParams { workflow_size: 0, module_degree: 3, coarse, ..GenParams::default() };
    // Recursive modules get post-adapters with n_in = their output count;
    // cap their boundary at 4 so the "≤ 4 input ports" statistic holds.
    let pr = GenParams { max_out: 4, ..p.clone() };
    let mut g = SpecGen::new();

    // Seven leaf composites over atomic fill.
    let leaves: Vec<ModuleId> = (0..7)
        .map(|i| {
            let params = if i == 0 || i == 2 { &pr } else { &p };
            g.base_production(&mut rng, params, &format!("L{}", i + 1), &[], 4)
        })
        .collect();
    // Four mid-level composites.
    let n1 = g.base_production(&mut rng, &p, "N1", &[leaves[0], leaves[1]], 3);
    let n2 = g.base_production(&mut rng, &pr, "N2", &[leaves[2]], 4);
    let n3 = g.base_production(&mut rng, &p, "N3", &[leaves[3], leaves[4]], 3);
    let n4 = g.base_production(&mut rng, &pr, "N4", &[leaves[5]], 4);
    // Two upper composites, a pre-start and the start module.
    let u1 = g.base_production(&mut rng, &pr, "U1", &[n1, n2], 3);
    let u2 = g.base_production(&mut rng, &p, "U2", &[n3, n4, leaves[6]], 2);
    let s2 = g.base_production(&mut rng, &pr, "S2", &[u1], 4);
    let s = g.base_production(&mut rng, &p, "S", &[s2, u2], 3);

    // Five self-recursions (the paper's loops/forks)…
    let self_rec = [leaves[0], leaves[2], n2, u1, s2];
    for &m in &self_rec {
        g.recursive_production(m, m, coarse);
    }
    // …and one two-cycle with a mirror partner P (7 recursive productions).
    let p_mod = g.cycle_member("P", n4);
    let n4_lambda = g.lambda.get(n4).expect("N4 has λ*").clone();
    g.mirror_production(p_mod, n4_lambda);
    g.recursive_production(n4, p_mod, coarse);
    g.recursive_production(p_mod, n4, coarse);

    let mut cycles: Vec<(Vec<ModuleId>, ModuleId)> =
        self_rec.iter().map(|&m| (vec![m], m)).collect();
    cycles.push((vec![n4, p_mod], n4));
    Workload::from_gen(g, s, cycles, vec![p_mod])
}

/// Parameters of the Figure 26 synthetic family (§6.5 defaults).
#[derive(Clone, Debug)]
pub struct SynthParams {
    /// Modules per simple workflow (default 40).
    pub workflow_size: usize,
    /// Input/output ports per module (default 4).
    pub module_degree: u8,
    /// Depth of nested composite modules (default 4).
    pub nesting_depth: usize,
    /// Composite modules per recursion cycle (default 2).
    pub recursion_length: usize,
    pub coarse: bool,
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        Self {
            workflow_size: 40,
            module_degree: 4,
            nesting_depth: 4,
            recursion_length: 2,
            coarse: false,
            seed: 0xB10A1D,
        }
    }
}

/// The synthetic workload of Figure 26: a chain of `nesting_depth` levels,
/// each carrying one recursion cycle of `recursion_length` composites.
pub fn synthetic(sp: &SynthParams) -> Workload {
    let mut rng = StdRng::seed_from_u64(sp.seed);
    let p = GenParams {
        workflow_size: sp.workflow_size,
        module_degree: sp.module_degree,
        max_in: (sp.module_degree as usize).max(2),
        max_out: (sp.module_degree as usize).max(2),
        coarse: sp.coarse,
        ..GenParams::default()
    };
    let mut g = SpecGen::new();
    let mut cycles = Vec::new();
    let mut below: Option<ModuleId> = None;
    for level in (0..sp.nesting_depth).rev() {
        let inner: Vec<ModuleId> = below.into_iter().collect();
        let fill = sp.workflow_size.saturating_sub(inner.len()).max(1);
        let entry = g.base_production(&mut rng, &p, &format!("C{}_{}", level + 1, 1), &inner, fill);
        // The cycle at this level: entry -> m2 -> … -> m_r -> entry.
        let mut members = vec![entry];
        for i in 1..sp.recursion_length {
            members.push(g.cycle_member(&format!("C{}_{}", level + 1, i + 1), entry));
        }
        for i in 0..members.len() {
            g.recursive_production(members[i], members[(i + 1) % members.len()], sp.coarse);
        }
        cycles.push((members, entry));
        below = Some(entry);
    }
    let start = below.expect("nesting_depth >= 1");
    Workload::from_gen(g, start, cycles, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_analysis::{classify, is_safe, RecursionClass};
    use wf_model::ViewSpec;

    #[test]
    fn bioaid_matches_published_statistics() {
        let w = bioaid(7);
        let g = &w.spec.grammar;
        let composites = g.composite_modules().count();
        assert_eq!(composites, 16, "16 composite modules");
        assert_eq!(g.production_count(), 23, "23 productions");
        // 7 recursive productions = total cycle edges.
        let rec_prods: usize = w.cycles.iter().map(|(m, _)| m.len()).sum();
        assert_eq!(rec_prods, 7, "7 recursive productions");
        // Port caps: ≤ 4 inputs, ≤ 7 outputs.
        for m in g.modules() {
            assert!(g.sig(m).inputs() <= 4, "{}: {} inputs", g.sig(m).name, g.sig(m).inputs());
            assert!(g.sig(m).outputs() <= 7);
        }
        // Production RHS sizes ≤ 19 modules.
        for (_, p) in g.productions() {
            assert!(p.rhs.node_count() <= 19, "RHS of {} modules", p.rhs.node_count());
        }
        // Module count near 112 (the published figure; fills/adapters vary
        // slightly with the seed).
        let total = g.module_count();
        assert!((90..=130).contains(&total), "total modules {total}");
        assert_eq!(classify(g), RecursionClass::StrictlyLinear);
        let dv = w.spec.default_view();
        assert!(is_safe(&ViewSpec::new(&w.spec, &dv)));
        assert!(!w.spec.is_coarse_grained());
    }

    #[test]
    fn bioaid_coarse_is_coarse_and_safe() {
        let w = bioaid_coarse(7);
        assert!(w.spec.is_coarse_grained());
        let dv = w.spec.default_view();
        assert!(is_safe(&ViewSpec::new(&w.spec, &dv)));
        assert_eq!(classify(&w.spec.grammar), RecursionClass::StrictlyLinear);
    }

    #[test]
    fn synthetic_family_valid_across_parameters() {
        for depth in [2, 6] {
            for r in [1, 3] {
                let w = synthetic(&SynthParams {
                    workflow_size: 10,
                    module_degree: 3,
                    nesting_depth: depth,
                    recursion_length: r,
                    coarse: false,
                    seed: 42,
                });
                let g = &w.spec.grammar;
                assert_eq!(classify(g), RecursionClass::StrictlyLinear, "d={depth} r={r}");
                assert_eq!(w.cycles.len(), depth);
                assert!(w.cycles.iter().all(|(m, _)| m.len() == r));
                let dv = w.spec.default_view();
                assert!(is_safe(&ViewSpec::new(&w.spec, &dv)));
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = bioaid(3);
        let b = bioaid(3);
        assert_eq!(a.spec.grammar.module_count(), b.spec.grammar.module_count());
        assert_eq!(a.spec.grammar.production_count(), b.spec.grammar.production_count());
    }
}
