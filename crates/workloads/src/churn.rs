//! Churn workloads: interleaved inserts, view registrations and query
//! batches — the live-update serving shape.
//!
//! The uniform / hot-key / mixed generators in [`crate::queries`] model a
//! *static* world: a fixed item population, queries only. Real provenance
//! stores are append-heavy (runs grow step by step) and view-accretive
//! (repository users register views as they search and refine), so a
//! serving engine faces reads *interleaved with* writes. This module
//! generates that interleaving deterministically per seed, in terms every
//! layer understands: dense item indices (`u32`, insertion order — exactly
//! the engine's `ItemId` space) and opaque view seeds the caller
//! materializes with [`crate::views::random_safe_view`].
//!
//! The generator is population-aware: a query batch only ever draws item
//! indices below the number of items inserted *earlier in its own stream*
//! (plus the initial population), so replaying a stream op-by-op against a
//! writer/engine can never reference an item that does not exist yet.

use crate::queries::PairDist;
use rand::Rng;

/// One operation of a churn stream.
#[derive(Clone, Debug)]
pub enum ChurnOp {
    /// Insert the next `count` labels (the caller holds the label source;
    /// counts are what keeps the generator engine-agnostic).
    Insert { count: usize },
    /// Register (and compile) one view, derived from `seed` — callers
    /// materialize it via [`crate::views::random_safe_view`] so the stream
    /// stays independent of any concrete grammar.
    RegisterView { seed: u64 },
    /// Answer a batch of item-index pairs. Every index is `< ` the stream's
    /// item population at this point, so the batch is valid the moment the
    /// preceding ops have been applied.
    QueryBatch { pairs: Vec<(u32, u32)> },
}

/// How insert op sizes are distributed across a stream — the axis that
/// decides how many store shards a staged batch spans.
///
/// A sharded copy-on-write store pays per *touched* shard, so a workload
/// whose inserts are all one fixed chunk pins that axis at its minimum:
/// every publish touches the one tail shard. [`InsertLocality::Skewed`]
/// models bursty ingest (a run completing wholesale, a bulk backfill):
/// sizes are drawn log-uniform, so most inserts stay small but a heavy
/// tail of bursts spans several shards at once.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InsertLocality {
    /// Every insert is exactly `insert_chunk` labels (the PR-5 shape).
    Uniform,
    /// Insert sizes drawn log-uniform from `1..=insert_chunk * burst`:
    /// the median stays near √(chunk·burst), while the largest bursts
    /// cross `burst · chunk / shard_capacity`-ish shard boundaries.
    Skewed {
        /// Burst factor: the largest insert is `insert_chunk * burst`.
        burst: usize,
    },
}

/// Shape of a churn stream: op-mix weights plus batch/chunk sizes.
#[derive(Clone, Debug)]
pub struct ChurnSpec {
    /// Items that exist before the stream starts (a warm store).
    pub initial_items: usize,
    /// Relative weight of [`ChurnOp::Insert`] ops.
    pub insert_weight: f64,
    /// Relative weight of [`ChurnOp::RegisterView`] ops.
    pub view_weight: f64,
    /// Relative weight of [`ChurnOp::QueryBatch`] ops.
    pub query_weight: f64,
    /// Labels per insert op (the exact size under
    /// [`InsertLocality::Uniform`]; the scale under
    /// [`InsertLocality::Skewed`]).
    pub insert_chunk: usize,
    /// Distribution of insert op sizes (see [`InsertLocality`]).
    pub locality: InsertLocality,
    /// Pairs per query batch.
    pub batch: usize,
    /// Endpoint distribution of query pairs (hot keys age gracefully: the
    /// "hot" prefix is the oldest items, which every generation has).
    pub dist: PairDist,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        Self {
            initial_items: 1024,
            insert_weight: 0.2,
            view_weight: 0.02,
            query_weight: 0.78,
            insert_chunk: 16,
            locality: InsertLocality::Uniform,
            batch: 64,
            dist: PairDist::Uniform,
        }
    }
}

/// One insert op's label count under the spec's locality. Log-uniform for
/// the skewed shape: an exponent drawn uniformly in `[0, ln max]` makes
/// each doubling of the size range equally likely — small inserts dominate,
/// full-scale bursts still occur with non-vanishing probability.
fn draw_insert_count(rng: &mut impl Rng, spec: &ChurnSpec) -> usize {
    let chunk = spec.insert_chunk.max(1);
    match spec.locality {
        InsertLocality::Uniform => chunk,
        InsertLocality::Skewed { burst } => {
            let max = chunk.saturating_mul(burst.max(1)).max(1);
            let x: f64 = rng.gen_range(0.0..1.0);
            ((max as f64).powf(x) as usize).clamp(1, max)
        }
    }
}

fn draw_item(rng: &mut impl Rng, population: u32, dist: PairDist) -> u32 {
    match dist {
        PairDist::Uniform => rng.gen_range(0..population),
        PairDist::HotKey { hot_items, hot_prob } => {
            let hot = (hot_items as u32).clamp(1, population);
            if rng.gen_bool(hot_prob) {
                rng.gen_range(0..hot)
            } else {
                rng.gen_range(0..population)
            }
        }
    }
}

/// One churn stream of `ops` operations. Deterministic per `rng` state;
/// query batches respect the growing population (see module docs). With
/// `initial_items == 0`, queries are suppressed until the first insert has
/// landed (an empty store has nothing to ask about).
///
/// # Panics
/// If all three weights are zero, or any is negative or non-finite (same
/// per-weight discipline as [`crate::queries::sample_mix`] — a NaN weight
/// must fail loudly, not bias the scan).
pub fn churn_stream(rng: &mut impl Rng, ops: usize, spec: &ChurnSpec) -> Vec<ChurnOp> {
    let weights = [spec.insert_weight, spec.view_weight, spec.query_weight];
    for (i, w) in weights.iter().enumerate() {
        assert!(w.is_finite() && *w >= 0.0, "churn weight {i} is {w}: must be finite and >= 0");
    }
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "churn weights must have positive mass");
    let mut population = spec.initial_items as u32;
    let mut out = Vec::with_capacity(ops);
    for _ in 0..ops {
        let mut x = rng.gen_range(0.0..total);
        let mut op = weights.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                op = i;
                break;
            }
            x -= w;
        }
        match op {
            0 => {
                let count = draw_insert_count(rng, spec);
                population = population.saturating_add(count as u32);
                out.push(ChurnOp::Insert { count });
            }
            1 => out.push(ChurnOp::RegisterView { seed: rng.gen_range(0..u32::MAX as u64) }),
            _ => {
                if population == 0 {
                    // Nothing to query yet; churn forward instead.
                    let count = draw_insert_count(rng, spec);
                    population = population.saturating_add(count as u32);
                    out.push(ChurnOp::Insert { count });
                    continue;
                }
                let pairs = (0..spec.batch)
                    .map(|_| {
                        (
                            draw_item(rng, population, spec.dist),
                            draw_item(rng, population, spec.dist),
                        )
                    })
                    .collect();
                out.push(ChurnOp::QueryBatch { pairs });
            }
        }
    }
    out
}

/// Per-worker churn streams (materialized worker-by-worker from one `rng`,
/// like [`crate::queries::worker_streams`]): `workers` independent streams
/// of `per_worker` ops. Each stream is self-consistent — its queries
/// reference only its own population — which is the shape one
/// writer-per-stream (or a sharded ingest tier) is driven with.
pub fn churn_streams(
    rng: &mut impl Rng,
    workers: usize,
    per_worker: usize,
    spec: &ChurnSpec,
) -> Vec<Vec<ChurnOp>> {
    (0..workers).map(|_| churn_stream(rng, per_worker, spec)).collect()
}

/// Derives producer `index`'s own stream seed from a base seed —
/// SplitMix64-style mixing, so neighbouring producer indexes land on
/// statistically unrelated streams.
pub fn producer_seed(base_seed: u64, index: usize) -> u64 {
    let mut z = base_seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-*producer* churn streams for the multi-producer ingest pipeline:
/// producer `p` gets the stream seeded by
/// [`producer_seed`]`(base_seed, p)`, independent of how many producers
/// run beside it. That per-producer seeding is the property
/// [`churn_streams`] (which materializes worker-by-worker from one rng
/// cursor) cannot give: here producer 2's stream is the same whether the
/// fleet is 3 or 8 wide, so a differential harness can re-run the *same*
/// producer workloads at different concurrency levels and compare.
pub fn producer_churn_streams(
    base_seed: u64,
    producers: usize,
    per_producer: usize,
    spec: &ChurnSpec,
) -> Vec<Vec<ChurnOp>> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    (0..producers)
        .map(|p| {
            let mut rng = StdRng::seed_from_u64(producer_seed(base_seed, p));
            churn_stream(&mut rng, per_producer, spec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn streams_are_deterministic_and_population_safe() {
        let spec = ChurnSpec { initial_items: 8, insert_chunk: 4, batch: 16, ..Default::default() };
        let a = churn_stream(&mut StdRng::seed_from_u64(5), 400, &spec);
        let b = churn_stream(&mut StdRng::seed_from_u64(5), 400, &spec);
        assert_eq!(a.len(), 400);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same stream");

        // Replay the population bookkeeping: every queried index must be
        // below the population at that point in the stream.
        let mut population = spec.initial_items as u32;
        let (mut inserts, mut queries) = (0usize, 0usize);
        for op in &a {
            match op {
                ChurnOp::Insert { count } => {
                    population += *count as u32;
                    inserts += 1;
                }
                ChurnOp::RegisterView { .. } => {}
                ChurnOp::QueryBatch { pairs } => {
                    queries += 1;
                    assert_eq!(pairs.len(), 16);
                    for &(x, y) in pairs {
                        assert!(x < population && y < population, "query past the population");
                    }
                }
            }
        }
        assert!(inserts > 0 && queries > 0, "the default mix interleaves reads and writes");
    }

    #[test]
    fn empty_start_defers_queries_until_items_exist() {
        let spec = ChurnSpec { initial_items: 0, ..Default::default() };
        let ops = churn_stream(&mut StdRng::seed_from_u64(1), 200, &spec);
        let mut population = 0u32;
        for op in &ops {
            match op {
                ChurnOp::Insert { count } => population += *count as u32,
                ChurnOp::QueryBatch { .. } => {
                    assert!(population > 0, "a query op before any insert")
                }
                ChurnOp::RegisterView { .. } => {}
            }
        }
    }

    #[test]
    fn worker_streams_are_independent() {
        let spec = ChurnSpec::default();
        let streams = churn_streams(&mut StdRng::seed_from_u64(2), 3, 50, &spec);
        assert_eq!(streams.len(), 3);
        assert!(streams.iter().all(|s| s.len() == 50));
        // Materialized from one rng: the streams differ.
        assert_ne!(format!("{:?}", streams[0]), format!("{:?}", streams[1]));
    }

    #[test]
    fn skewed_locality_spans_the_burst_range() {
        let spec = ChurnSpec {
            initial_items: 8,
            insert_weight: 1.0,
            view_weight: 0.0,
            query_weight: 0.0,
            insert_chunk: 16,
            locality: InsertLocality::Skewed { burst: 64 },
            ..Default::default()
        };
        let ops = churn_stream(&mut StdRng::seed_from_u64(9), 500, &spec);
        let counts: Vec<usize> = ops
            .iter()
            .map(|op| match op {
                ChurnOp::Insert { count } => *count,
                other => panic!("pure-insert mix produced {other:?}"),
            })
            .collect();
        let max = spec.insert_chunk * 64;
        assert!(counts.iter().all(|&c| (1..=max).contains(&c)), "counts stay in 1..=chunk*burst");
        // Log-uniform: small inserts dominate, yet real bursts occur.
        let small = counts.iter().filter(|&&c| c <= spec.insert_chunk).count();
        let bursty = counts.iter().filter(|&&c| c > spec.insert_chunk * 8).count();
        assert!(small > counts.len() / 3, "small inserts should dominate, got {small}");
        assert!(bursty > 0, "multi-shard bursts must actually occur");
        // Determinism, like every other stream shape.
        let again = churn_stream(&mut StdRng::seed_from_u64(9), 500, &spec);
        assert_eq!(format!("{ops:?}"), format!("{again:?}"));
    }

    #[test]
    fn uniform_locality_is_the_fixed_chunk() {
        let spec = ChurnSpec {
            insert_weight: 1.0,
            view_weight: 0.0,
            query_weight: 0.0,
            insert_chunk: 16,
            ..Default::default()
        };
        for op in churn_stream(&mut StdRng::seed_from_u64(4), 100, &spec) {
            match op {
                ChurnOp::Insert { count } => assert_eq!(count, 16),
                other => panic!("pure-insert mix produced {other:?}"),
            }
        }
    }

    #[test]
    fn producer_streams_are_stable_across_fleet_sizes() {
        let spec = ChurnSpec { initial_items: 32, ..Default::default() };
        let three = producer_churn_streams(42, 3, 60, &spec);
        let eight = producer_churn_streams(42, 8, 60, &spec);
        assert_eq!(three.len(), 3);
        assert_eq!(eight.len(), 8);
        // Producer p's stream is a function of (base_seed, p) alone: the
        // same producer sees the same ops no matter the fleet width…
        for p in 0..3 {
            assert_eq!(format!("{:?}", three[p]), format!("{:?}", eight[p]));
        }
        // …distinct producers see unrelated streams…
        assert_ne!(format!("{:?}", eight[0]), format!("{:?}", eight[1]));
        // …and a different base seed reshuffles everyone.
        let other = producer_churn_streams(43, 3, 60, &spec);
        assert_ne!(format!("{:?}", three[0]), format!("{:?}", other[0]));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_weight_fails_loudly() {
        let spec = ChurnSpec { insert_weight: f64::NAN, ..Default::default() };
        churn_stream(&mut StdRng::seed_from_u64(3), 10, &spec);
    }
}
