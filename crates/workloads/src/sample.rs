//! Run and query sampling (§6.1 methodology).

use crate::Workload;
use rand::Rng;
use wf_analysis::ProdGraph;
use wf_run::{random_derivation, DataId, Derivation, Run};

/// A derivation of roughly `target_items` data items.
pub fn sample_run(
    w: &Workload,
    pg: &ProdGraph,
    rng: &mut impl Rng,
    target_items: usize,
) -> (Derivation, Run) {
    let d = random_derivation(&w.spec.grammar, pg, rng, target_items);
    let run = d.replay(&w.spec.grammar).expect("sampled derivation replays");
    (d, run)
}

/// Uniformly random ordered pairs of data items from a run (the §6.1
/// methodology; a thin alias of [`crate::queries::sample_pairs`] with
/// [`crate::queries::PairDist::Uniform`], kept for the uniform draw's
/// ubiquity in the experiment code).
pub fn sample_query_pairs(run: &Run, rng: &mut impl Rng, count: usize) -> Vec<(DataId, DataId)> {
    crate::queries::sample_pairs(run, rng, count, crate::queries::PairDist::Uniform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bioaid;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn runs_hit_requested_sizes() {
        let w = bioaid(1);
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(1);
        for target in [100, 1000, 4000] {
            let (_, run) = sample_run(&w, &pg, &mut rng, target);
            assert!(run.item_count() >= target);
            assert!(run.is_complete());
        }
    }

    /// Regression (surfaced by the `wf-fuzz` grammar fuzzer): an acyclic
    /// spec has a *bounded* maximal run, so a target far above that bound
    /// must terminate with the maximal run — not spin or panic — and a
    /// zero target must yield the minimal (wind-down only) run. Callers
    /// needing N labels from such specs pad by repetition.
    #[test]
    fn bounded_specs_terminate_below_unreachable_targets() {
        use crate::gen::{GenParams, SpecGen};
        let mut rng = StdRng::seed_from_u64(5);
        let p = GenParams::default();
        let mut g = SpecGen::new();
        let a = g.base_production(&mut rng, &p, "A", &[], 2);
        let b = g.base_production(&mut rng, &p, "B", &[a], 1);
        let w = Workload::from_gen(g, b, vec![], vec![]);
        let pg = ProdGraph::new(&w.spec.grammar);
        let (_, maximal) = sample_run(&w, &pg, &mut rng, 10_000);
        assert!(maximal.is_complete());
        assert!(maximal.item_count() < 10_000, "acyclic runs are bounded");
        let (_, minimal) = sample_run(&w, &pg, &mut rng, 0);
        assert!(minimal.is_complete());
        assert!(minimal.item_count() >= 1);
        assert!(minimal.item_count() <= maximal.item_count());
    }

    #[test]
    fn query_pairs_are_in_range() {
        let w = bioaid(1);
        let pg = ProdGraph::new(&w.spec.grammar);
        let mut rng = StdRng::seed_from_u64(1);
        let (_, run) = sample_run(&w, &pg, &mut rng, 200);
        for (a, b) in sample_query_pairs(&run, &mut rng, 1000) {
            assert!((a.0 as usize) < run.item_count());
            assert!((b.0 as usize) < run.item_count());
        }
    }
}
