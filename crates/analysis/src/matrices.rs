//! Per-production reachability matrices — the `I`, `O`, `Z` functions of
//! §4.3, computed from a full dependency assignment λ\*.
//!
//! For a production `pₖ = M →f W` and positions `i`, `j` of `W` (0-based):
//!
//! * `I(k,i)[x][y]` — input `y` of instance `i` is reachable from `M`'s
//!   input `x` (i.e. from the initial input `f(x)` of `W`) in `W^λ*`;
//! * `O(k,i)[x][y]` — `M`'s output `x` (the final output `f(x)`) is
//!   reachable **from** output `y` of instance `i` (the paper's "reversed"
//!   orientation);
//! * `Z(k,i,j)[x][y]` — input `y` of instance `j` is reachable from output
//!   `x` of instance `i`; empty whenever `i ≥ j` (topological order).
//!
//! A single port-graph traversal per source port yields all three families
//! for one production.

use wf_boolmat::BoolMat;
use wf_model::{DepAssignment, Grammar, InPortRef, NodeIx, OutPortRef, PortGraph, ProdId};

/// All `I`/`O`/`Z` matrices of one production.
#[derive(Clone, Debug)]
pub struct ProductionMatrices {
    /// `i_mats[i]` = `I(k, i)`.
    pub i_mats: Vec<BoolMat>,
    /// `o_mats[i]` = `O(k, i)`.
    pub o_mats: Vec<BoolMat>,
    /// `z_mats[i][j]` = `Z(k, i, j)`; all-false when `i ≥ j`.
    pub z_mats: Vec<Vec<BoolMat>>,
}

impl ProductionMatrices {
    /// Total payload bits (for the Figure 19 space accounting).
    pub fn payload_bits(&self) -> usize {
        self.i_mats.iter().map(BoolMat::payload_bits).sum::<usize>()
            + self.o_mats.iter().map(BoolMat::payload_bits).sum::<usize>()
            + self
                .z_mats
                .iter()
                .flat_map(|row| row.iter().map(BoolMat::payload_bits))
                .sum::<usize>()
    }
}

/// Computes the matrices of production `k` under `lambda` (λ\* — it must
/// cover every module instantiated by the production's RHS).
#[allow(clippy::needless_range_loop)]
pub fn production_matrices(
    grammar: &Grammar,
    k: ProdId,
    lambda: &DepAssignment,
) -> ProductionMatrices {
    let p = grammar.production(k);
    let w = &p.rhs;
    let pg = PortGraph::build(w, lambda);
    let n = w.node_count();
    let sig = |i: usize| grammar.sig(w.nodes()[i]);
    let lhs_sig = grammar.sig(p.lhs);

    let mut i_mats: Vec<BoolMat> =
        (0..n).map(|i| BoolMat::zeros(lhs_sig.inputs(), sig(i).inputs())).collect();
    let mut o_mats: Vec<BoolMat> =
        (0..n).map(|i| BoolMat::zeros(lhs_sig.outputs(), sig(i).outputs())).collect();
    let mut z_mats: Vec<Vec<BoolMat>> = (0..n)
        .map(|i| (0..n).map(|j| BoolMat::zeros(sig(i).outputs(), sig(j).inputs())).collect())
        .collect();

    // One traversal per LHS input fills row x of every I(k, i).
    for (x, &ip) in p.input_map.iter().enumerate() {
        let reach = pg.reachable_from(pg.in_ix(ip));
        for i in 0..n {
            for y in 0..sig(i).inputs() {
                let port = InPortRef { node: NodeIx(i as u32), port: y as u8 };
                if reach.contains(pg.in_ix(port) as usize) {
                    i_mats[i].set(x, y, true);
                }
            }
        }
    }

    // One traversal per instance output fills O columns and Z rows.
    for i in 0..n {
        for y in 0..sig(i).outputs() {
            let port = OutPortRef { node: NodeIx(i as u32), port: y as u8 };
            let reach = pg.reachable_from(pg.out_ix(port));
            for (x, &op) in p.output_map.iter().enumerate() {
                if reach.contains(pg.out_ix(op) as usize) {
                    o_mats[i].set(x, y, true);
                }
            }
            for j in i + 1..n {
                for z in 0..sig(j).inputs() {
                    let jp = InPortRef { node: NodeIx(j as u32), port: z as u8 };
                    if reach.contains(pg.in_ix(jp) as usize) {
                        z_mats[i][j].set(y, z, true);
                    }
                }
            }
        }
    }

    ProductionMatrices { i_mats, o_mats, z_mats }
}

// ---------------------------------------------------------------------
// On-demand single matrices (Space-Efficient FVL computes these by graph
// search at query time instead of materializing them, §4.3) and the
// structural instance-level closure used by Matrix-Free FVL / DRL (§6.4).
// ---------------------------------------------------------------------

/// Builds the port graph of production `k`'s RHS under `lambda` — the
/// structure every on-demand `I`/`O`/`Z` search walks. Building it is the
/// per-pair-invariant part of a Space-Efficient query (the searches depend
/// on the requested ports; the graph depends only on the view): callers
/// that evaluate many matrices of one production should build it once and
/// use the `*_with` forms below.
pub fn production_port_graph(grammar: &Grammar, k: ProdId, lambda: &DepAssignment) -> PortGraph {
    PortGraph::build(&grammar.production(k).rhs, lambda)
}

/// Computes `I(k, i)` alone.
pub fn i_matrix(grammar: &Grammar, k: ProdId, i: usize, lambda: &DepAssignment) -> BoolMat {
    i_matrix_with(&production_port_graph(grammar, k, lambda), grammar, k, i)
}

/// [`i_matrix`] over a prebuilt [`production_port_graph`].
pub fn i_matrix_with(pg: &PortGraph, grammar: &Grammar, k: ProdId, i: usize) -> BoolMat {
    let p = grammar.production(k);
    let lhs_sig = grammar.sig(p.lhs);
    let child_sig = grammar.sig(p.rhs.nodes()[i]);
    let mut mat = BoolMat::zeros(lhs_sig.inputs(), child_sig.inputs());
    for (x, &ip) in p.input_map.iter().enumerate() {
        let reach = pg.reachable_from(pg.in_ix(ip));
        for y in 0..child_sig.inputs() {
            let port = InPortRef { node: NodeIx(i as u32), port: y as u8 };
            if reach.contains(pg.in_ix(port) as usize) {
                mat.set(x, y, true);
            }
        }
    }
    mat
}

/// Computes `O(k, i)` alone (reversed orientation, see module docs).
pub fn o_matrix(grammar: &Grammar, k: ProdId, i: usize, lambda: &DepAssignment) -> BoolMat {
    o_matrix_with(&production_port_graph(grammar, k, lambda), grammar, k, i)
}

/// [`o_matrix`] over a prebuilt [`production_port_graph`].
pub fn o_matrix_with(pg: &PortGraph, grammar: &Grammar, k: ProdId, i: usize) -> BoolMat {
    let p = grammar.production(k);
    let lhs_sig = grammar.sig(p.lhs);
    let child_sig = grammar.sig(p.rhs.nodes()[i]);
    let mut mat = BoolMat::zeros(lhs_sig.outputs(), child_sig.outputs());
    for y in 0..child_sig.outputs() {
        let port = OutPortRef { node: NodeIx(i as u32), port: y as u8 };
        let reach = pg.reachable_from(pg.out_ix(port));
        for (x, &op) in p.output_map.iter().enumerate() {
            if reach.contains(pg.out_ix(op) as usize) {
                mat.set(x, y, true);
            }
        }
    }
    mat
}

/// Computes `Z(k, i, j)` alone.
pub fn z_matrix(
    grammar: &Grammar,
    k: ProdId,
    i: usize,
    j: usize,
    lambda: &DepAssignment,
) -> BoolMat {
    let p = grammar.production(k);
    let si = grammar.sig(p.rhs.nodes()[i]);
    let sj = grammar.sig(p.rhs.nodes()[j]);
    if i >= j {
        return BoolMat::zeros(si.outputs(), sj.inputs()); // topological order: always empty
    }
    z_matrix_with(&production_port_graph(grammar, k, lambda), grammar, k, i, j)
}

/// [`z_matrix`] over a prebuilt [`production_port_graph`].
pub fn z_matrix_with(pg: &PortGraph, grammar: &Grammar, k: ProdId, i: usize, j: usize) -> BoolMat {
    let p = grammar.production(k);
    let si = grammar.sig(p.rhs.nodes()[i]);
    let sj = grammar.sig(p.rhs.nodes()[j]);
    let mut mat = BoolMat::zeros(si.outputs(), sj.inputs());
    if i >= j {
        return mat; // topological order: always empty
    }
    for y in 0..si.outputs() {
        let port = OutPortRef { node: NodeIx(i as u32), port: y as u8 };
        let reach = pg.reachable_from(pg.out_ix(port));
        for z in 0..sj.inputs() {
            let jp = InPortRef { node: NodeIx(j as u32), port: z as u8 };
            if reach.contains(pg.in_ix(jp) as usize) {
                mat.set(y, z, true);
            }
        }
    }
    mat
}

/// Reflexive-transitive *instance-level* closure of a production's RHS:
/// `closure[i][j]` iff node `j` is reachable from node `i` through data
/// edges. Depends only on the grammar (not on any λ); this is the entire
/// "index" the black-box structural decode needs.
pub fn rhs_closure(grammar: &Grammar, k: ProdId) -> BoolMat {
    let w = &grammar.production(k).rhs;
    let n = w.node_count();
    let mut mat = BoolMat::identity(n);
    // Nodes are listed topologically: processing sources of edges in
    // reverse topological order, one sweep computes the closure.
    for i in (0..n).rev() {
        let mut acc = mat.row_bits(i);
        for e in w.edges() {
            if e.from.node.index() == i {
                acc |= mat.row_bits(e.to.node.index());
            }
        }
        mat.set_row_bits(i, acc);
    }
    mat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::full_assignment_default;
    use wf_model::fixtures::paper_example;

    /// Example 16's function shapes on the running example (values are
    /// specific to this transcription's wiring; the *shapes* and the
    /// trivially-checkable entries are asserted).
    #[test]
    fn running_example_matrices() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let lambda = full_assignment_default(&ex.spec).unwrap();
        let m = production_matrices(g, ex.prods[0], &lambda);

        // I(1,5) of the paper = i_mats[4] here (production p1, module c):
        // rows = inputs of S (2), cols = inputs of c (3).
        assert_eq!(m.i_mats[4].rows(), 2);
        assert_eq!(m.i_mats[4].cols(), 3);
        // S.in0 reaches c.in0 (through A); S.in1 does not reach c.in0.
        assert!(m.i_mats[4].get(0, 0));
        assert!(!m.i_mats[4].get(1, 0));

        // O(1,2) = o_mats[1] (module b): rows = outputs of S (3), cols = 2.
        assert_eq!(m.o_mats[1].rows(), 3);
        assert_eq!(m.o_mats[1].cols(), 2);
        // S's first output (c.out1) is reachable from both b outputs; the d
        // outputs are not.
        assert!(m.o_mats[1].get(0, 0));
        assert!(m.o_mats[1].get(0, 1));
        assert!(!m.o_mats[1].get(1, 0));
        assert!(!m.o_mats[1].get(2, 1));

        // Z(1,2,5) = z_mats[1][4] (b -> c): 2x3; b reaches c's inputs 1 and
        // 2 through C, but not c.in0 (fed only by A).
        assert_eq!(m.z_mats[1][4].rows(), 2);
        assert_eq!(m.z_mats[1][4].cols(), 3);
        assert!(!m.z_mats[1][4].get(0, 0));
        assert!(m.z_mats[1][4].get(0, 1));
        assert!(m.z_mats[1][4].get(0, 2));

        // Z is empty for i >= j.
        assert!(m.z_mats[4][1].is_empty());
        assert!(m.z_mats[2][2].is_empty());
    }

    /// Identity sanity: I(k, i) for a node whose inputs *are* initial inputs
    /// contains the identity-like mapping.
    #[test]
    fn initial_input_positions_are_reflexively_reachable() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let lambda = full_assignment_default(&ex.spec).unwrap();
        // p3 = A -> (e, C): A.in0 ↦ e.in0, A.in1 ↦ C.in1.
        let m = production_matrices(g, ex.prods[2], &lambda);
        assert!(m.i_mats[0].get(0, 0)); // A.in0 reaches e.in0 (it *is* it)
        assert!(m.i_mats[1].get(1, 1)); // A.in1 reaches C.in1
        assert!(!m.i_mats[0].get(1, 0)); // A.in1 does not reach e.in0
    }

    /// The composed matrices agree with λ*: multiplying I up to a node and
    /// its λ* and O back down can never produce a dependency λ*(M) lacks.
    #[test]
    fn ioz_consistent_with_full_assignment() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let lambda = full_assignment_default(&ex.spec).unwrap();
        for (k, p) in g.productions() {
            let m = production_matrices(g, k, &lambda);
            let lhs = lambda.get(p.lhs).unwrap();
            for (i, &child) in p.rhs.nodes().iter().enumerate() {
                let child_mat = lambda.get(child).unwrap();
                // I(k,i) ; λ*(child) ; O(k,i)ᵀ ⊆ λ*(lhs)
                let through = m.i_mats[i].matmul(child_mat).matmul(&m.o_mats[i].transpose());
                assert!(
                    through.is_subset_of(lhs),
                    "production {k}: path through child {i} exceeds λ*"
                );
            }
        }
    }
}
