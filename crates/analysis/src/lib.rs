//! Static analysis of workflow specifications (§3 and §4.1 of the paper).
//!
//! Three analyses, all polynomial in the size of the specification:
//!
//! * **Safety** ([`safety`]) — Definition 13 / Lemma 1: a specification (or
//!   view) is safe iff a unique *full dependency assignment* λ\* extends λ to
//!   composite modules consistently across all productions. Safety is
//!   exactly the feasibility frontier of dynamic labeling (Theorem 1).
//! * **Recursion classification** ([`recursion`]) — Definitions 14/16,
//!   Theorem 7: linear recursion bounds label growth for black-box
//!   workflows; *strict* linear recursion (all production-graph cycles
//!   vertex-disjoint) is what compact fine-grained labeling requires
//!   (Theorems 6 and 8).
//! * **Preprocessing** ([`prodgraph`]) — §4.1: fixes the `(k, i)` edge ids
//!   of the production graph and the cycle tables `C(s)` that both run
//!   labels and view labels refer to.
//!
//! [`matrices`] computes the per-production reachability matrices (`I`, `O`,
//! `Z` of §4.3) from a full assignment — shared by every view-label variant.

pub mod matrices;
pub mod prodgraph;
pub mod recursion;
pub mod safety;

pub use matrices::{
    i_matrix, i_matrix_with, o_matrix, o_matrix_with, production_matrices, production_port_graph,
    rhs_closure, z_matrix, z_matrix_with, ProductionMatrices,
};
pub use prodgraph::{CycleInfo, ProdGraph};
pub use recursion::{classify, classify_with, is_linear_recursive, RecursionClass};
pub use safety::{full_assignment, full_assignment_default, is_safe, SafetyError};
