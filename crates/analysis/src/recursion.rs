//! Recursion classification (Definitions 14 and 16, Lemma 3, Theorem 7).

use crate::prodgraph::ProdGraph;
use wf_model::Grammar;

/// Where a grammar sits in the paper's recursion hierarchy.
///
/// `NonRecursive ⊂ StrictlyLinear ⊂ Linear ⊂ all grammars`; compact dynamic
/// labeling of fine-grained workflows is feasible exactly up to
/// `StrictlyLinear` (Theorems 6 and 8), while black-box workflows admit it
/// up to `Linear` (Theorem 4, from \[5\]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecursionClass {
    /// The production graph is acyclic: runs have bounded depth.
    NonRecursive,
    /// Recursive, and all production-graph cycles are vertex-disjoint
    /// (Definition 16).
    StrictlyLinear,
    /// Linear-recursive (Definition 14) but with overlapping cycles —
    /// Figure 10's class, where fine-grained labels must be linear-size.
    Linear,
    /// Some derivation duplicates a composite module (e.g. binary
    /// recursion); even black-box labels must be linear-size (Theorem 3).
    NonLinear,
}

impl RecursionClass {
    pub fn is_linear(self) -> bool {
        !matches!(self, RecursionClass::NonLinear)
    }

    pub fn is_strictly_linear(self) -> bool {
        matches!(self, RecursionClass::NonRecursive | RecursionClass::StrictlyLinear)
    }
}

/// Lemma 3: `G` is linear-recursive iff for every production `M → W`, `M` is
/// reachable in `P(G)` from at most one module instance of `W` (counting
/// multiplicity).
pub fn is_linear_recursive(grammar: &Grammar, pg: &ProdGraph) -> bool {
    for (_, p) in grammar.productions() {
        let mut count = 0;
        for &child in p.rhs.nodes() {
            if pg.reaches(child, p.lhs) {
                count += 1;
                if count >= 2 {
                    return false;
                }
            }
        }
    }
    true
}

/// Definition 16 via the vertex-disjoint-cycle analysis of the production
/// graph (equivalent to, and cross-validated against, Theorem 7's
/// BFS-with-edge-removal procedure).
pub fn is_strictly_linear_recursive(pg: &ProdGraph) -> bool {
    pg.cycles().is_ok()
}

/// Full classification of a grammar.
pub fn classify(grammar: &Grammar) -> RecursionClass {
    let pg = ProdGraph::new(grammar);
    classify_with(grammar, &pg)
}

/// Classification reusing an existing production graph.
pub fn classify_with(grammar: &Grammar, pg: &ProdGraph) -> RecursionClass {
    if is_strictly_linear_recursive(pg) {
        if pg.cycle_count() == 0 {
            RecursionClass::NonRecursive
        } else {
            RecursionClass::StrictlyLinear
        }
    } else if is_linear_recursive(grammar, pg) {
        RecursionClass::Linear
    } else {
        RecursionClass::NonLinear
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::{nonstrict_example, paper_example};
    use wf_model::GrammarBuilder;

    #[test]
    fn paper_example_is_strictly_linear() {
        let ex = paper_example();
        let pg = ProdGraph::new(&ex.spec.grammar);
        assert!(is_linear_recursive(&ex.spec.grammar, &pg));
        assert!(is_strictly_linear_recursive(&pg));
        assert_eq!(classify(&ex.spec.grammar), RecursionClass::StrictlyLinear);
        assert!(classify(&ex.spec.grammar).is_strictly_linear());
    }

    /// Figure 10 / Example 11: linear but not strictly linear (two
    /// self-loops share S).
    #[test]
    fn figure10_is_linear_not_strict() {
        let spec = nonstrict_example();
        let pg = ProdGraph::new(&spec.grammar);
        assert!(is_linear_recursive(&spec.grammar, &pg));
        assert!(!is_strictly_linear_recursive(&pg));
        assert_eq!(classify(&spec.grammar), RecursionClass::Linear);
        assert!(classify(&spec.grammar).is_linear());
        assert!(!classify(&spec.grammar).is_strictly_linear());
    }

    /// Binary recursion S -> (split, S, S, merge) is not linear-recursive.
    #[test]
    fn binary_recursion_is_nonlinear() {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let split = b.atomic("split", 1, 2);
        let merge = b.atomic("merge", 2, 1);
        let a = b.atomic("a", 1, 1);
        b.start(s);
        b.production(
            s,
            vec![split, s, s, merge],
            vec![((0, 0), (1, 0)), ((0, 1), (2, 0)), ((1, 0), (3, 0)), ((2, 0), (3, 1))],
        );
        b.production(s, vec![a], vec![]);
        let g = b.finish().unwrap();
        g.check_proper(&g.full_expand()).unwrap();
        assert_eq!(classify(&g), RecursionClass::NonLinear);
        assert!(!classify(&g).is_linear());
    }

    /// Indirect duplication: S -> (A → A) chain where A ⇒ S again. Both A
    /// instances of S's production reach S in P(G), so Lemma 3 fails.
    #[test]
    fn indirect_duplication_is_nonlinear() {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let a_mod = b.composite("A", 1, 1);
        let y = b.atomic("y", 1, 1);
        b.start(s);
        b.production(s, vec![a_mod, a_mod], vec![((0, 0), (1, 0))]);
        b.production(a_mod, vec![s], vec![]); // unit production, not a cycle
        b.production(a_mod, vec![y], vec![]);
        let g = b.finish().unwrap();
        g.check_proper(&g.full_expand()).unwrap();
        let pg = ProdGraph::new(&g);
        assert!(!is_linear_recursive(&g, &pg));
        assert_eq!(classify(&g), RecursionClass::NonLinear);
    }

    #[test]
    fn acyclic_grammar_is_nonrecursive() {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let a = b.atomic("a", 1, 1);
        b.start(s);
        b.production(s, vec![a], vec![]);
        let g = b.finish().unwrap();
        assert_eq!(classify(&g), RecursionClass::NonRecursive);
        assert!(classify(&g).is_strictly_linear());
        assert!(classify(&g).is_linear());
    }

    /// Cross-validate the SCC-based strictness test against brute-force
    /// simple-cycle enumeration on small random multigraphs.
    #[test]
    fn strictness_matches_bruteforce_on_random_graphs() {
        use wf_digraph::{DiGraph, NodeId};

        // Brute force: enumerate all simple cycles via DFS, check pairwise
        // vertex-disjointness.
        fn brute_force_disjoint(g: &DiGraph) -> bool {
            let n = g.node_count();
            let mut cycles: Vec<Vec<u32>> = Vec::new();
            // Enumerate simple cycles rooted at their minimum vertex.
            fn dfs(
                g: &DiGraph,
                root: u32,
                v: u32,
                path: &mut Vec<u32>,
                on_path: &mut Vec<bool>,
                cycles: &mut Vec<Vec<u32>>,
            ) {
                for &(_, w) in g.out_edges(NodeId(v)) {
                    let w = w.0;
                    if w == root {
                        cycles.push(path.clone());
                    } else if w > root && !on_path[w as usize] {
                        on_path[w as usize] = true;
                        path.push(w);
                        dfs(g, root, w, path, on_path, cycles);
                        path.pop();
                        on_path[w as usize] = false;
                    }
                }
            }
            for root in 0..n as u32 {
                let mut on_path = vec![false; n];
                on_path[root as usize] = true;
                let mut path = vec![root];
                dfs(g, root, root, &mut path, &mut on_path, &mut cycles);
            }
            // Count multiplicity: parallel edges produce identical vertex
            // sequences but distinct cycles; handle by also checking edge
            // multiplicity per consecutive pair.
            for i in 0..cycles.len() {
                for j in i + 1..cycles.len() {
                    let (a, b) = (&cycles[i], &cycles[j]);
                    if a.iter().any(|v| b.contains(v)) {
                        return false;
                    }
                }
            }
            // Parallel-edge double cycles: for each consecutive pair in a
            // cycle, multiple parallel edges mean multiple cycles on the
            // same vertices.
            for c in &cycles {
                for (ix, &v) in c.iter().enumerate() {
                    let w = c[(ix + 1) % c.len()];
                    let mult = g.out_edges(NodeId(v)).iter().filter(|&&(_, t)| t.0 == w).count();
                    if mult > 1 {
                        return false;
                    }
                }
            }
            true
        }

        let mut seed = 0xDEADBEEFu64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        for _trial in 0..300 {
            let n = 2 + (rng() % 5) as usize;
            let e = (rng() % 8) as usize;
            let mut g = DiGraph::with_nodes(n);
            for _ in 0..e {
                let u = NodeId(rng() % n as u32);
                let v = NodeId(rng() % n as u32);
                g.add_edge(u, v);
            }
            let fast = wf_digraph::vertex_disjoint_cycles(&g).is_ok();
            let slow = brute_force_disjoint(&g);
            assert_eq!(fast, slow, "disagreement on {g:?}");
        }
    }
}
