//! The production graph `P(G)` (Definition 15) and the §4.1 preprocessing.
//!
//! One vertex per module; for each production `pₖ = M → W` and each position
//! `i` of `W`, one edge `M → W[i]` identified by the pair `(k, i)` (0-based
//! here; the paper counts from 1). For strictly linear-recursive grammars
//! the cycles are vertex-disjoint and enumerated once: `C(s)` lists the
//! cycle's edges in order, starting from a canonical first edge.

use wf_digraph::{vertex_disjoint_cycles, CycleOverlap, DiGraph, NodeId};
use wf_model::{Grammar, ModuleId, ProdId};

/// A production-graph cycle `C(s)`: `edges[j]` goes from `modules[j]` to
/// `modules[(j+1) % len]`.
#[derive(Clone, Debug)]
pub struct CycleInfo {
    /// `(k, i)` edge ids along the cycle.
    pub edges: Vec<(ProdId, u32)>,
    /// Source module of each edge.
    pub modules: Vec<ModuleId>,
}

impl CycleInfo {
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The edge at position `t + a`, wrapping around (the paper's
    /// `k_{a+l} = k_a` convention in Algorithm 1).
    #[inline]
    pub fn edge_at(&self, pos: usize) -> (ProdId, u32) {
        self.edges[pos % self.edges.len()]
    }
}

/// The preprocessed production graph: edge ids, reachability, and (for
/// strictly linear-recursive grammars) the cycle tables.
pub struct ProdGraph {
    graph: DiGraph,
    /// Dense edge index per `(k, i)`: `edge_ix[k][i]`.
    edge_ix: Vec<Vec<u32>>,
    /// Reverse map: dense edge index -> `(k, i)`.
    edge_ref: Vec<(ProdId, u32)>,
    /// Module-level transitive closure of `P(G)` (reflexive).
    closure: wf_digraph::Closure,
    /// Cycle tables, present iff all cycles are vertex-disjoint.
    cycles: Result<Vec<CycleInfo>, CycleOverlap>,
    /// For each module: `(s, j)` = cycle index and position within it.
    cycle_of: Vec<Option<(u32, u32)>>,
}

impl ProdGraph {
    pub fn new(grammar: &Grammar) -> Self {
        let active = vec![true; grammar.production_count()];
        Self::new_restricted(grammar, &active)
    }

    /// Production graph of a *view grammar* `G_Δ′`: only productions whose
    /// LHS the view expands contribute edges. The DRL baseline labels runs
    /// against this restricted graph (its labels are per-view); FVL always
    /// uses the full graph.
    pub fn new_restricted(grammar: &Grammar, active: &[bool]) -> Self {
        let mut graph = DiGraph::with_nodes(grammar.module_count());
        let mut edge_ix: Vec<Vec<u32>> = Vec::with_capacity(grammar.production_count());
        let mut edge_ref = Vec::new();
        for (k, p) in grammar.productions() {
            if !active[k.index()] {
                edge_ix.push(Vec::new());
                continue;
            }
            let mut row = Vec::with_capacity(p.rhs.node_count());
            for (i, &child) in p.rhs.nodes().iter().enumerate() {
                let e = graph.add_edge(NodeId(p.lhs.0), NodeId(child.0));
                row.push(e.0);
                edge_ref.push((k, i as u32));
            }
            edge_ix.push(row);
        }
        let closure = graph.transitive_closure();
        let cycles = vertex_disjoint_cycles(&graph).map(|raw| {
            raw.into_iter()
                .map(|c| CycleInfo {
                    edges: c.edges.iter().map(|e| edge_ref[e.0 as usize]).collect(),
                    modules: c.nodes.iter().map(|n| ModuleId(n.0)).collect(),
                })
                .collect::<Vec<CycleInfo>>()
        });
        let mut cycle_of = vec![None; grammar.module_count()];
        if let Ok(cycles) = &cycles {
            for (s, c) in cycles.iter().enumerate() {
                for (j, &m) in c.modules.iter().enumerate() {
                    cycle_of[m.index()] = Some((s as u32, j as u32));
                }
            }
        }
        Self { graph, edge_ix, edge_ref, closure, cycles, cycle_of }
    }

    /// Module-level reachability in `P(G)` (reflexive).
    #[inline]
    pub fn reaches(&self, from: ModuleId, to: ModuleId) -> bool {
        self.closure.reaches(NodeId(from.0), NodeId(to.0))
    }

    /// Number of edges (= total RHS positions over all productions).
    pub fn edge_count(&self) -> usize {
        self.edge_ref.len()
    }

    /// Dense index of edge `(k, i)`.
    #[inline]
    pub fn edge_index(&self, k: ProdId, i: u32) -> u32 {
        self.edge_ix[k.index()][i as usize]
    }

    /// The `(k, i)` pair of a dense edge index.
    #[inline]
    pub fn edge_pair(&self, dense: u32) -> (ProdId, u32) {
        self.edge_ref[dense as usize]
    }

    /// Cycle tables, if all cycles are vertex-disjoint.
    pub fn cycles(&self) -> Result<&[CycleInfo], &CycleOverlap> {
        match &self.cycles {
            Ok(c) => Ok(c),
            Err(e) => Err(e),
        }
    }

    /// `(s, j)`: the cycle a module belongs to and its position in it.
    /// A module on no cycle (or in a non-strict grammar) yields `None`.
    #[inline]
    pub fn cycle_of(&self, m: ModuleId) -> Option<(u32, u32)> {
        self.cycle_of[m.index()]
    }

    /// True iff `m` lies on a production-graph cycle ("recursive module").
    pub fn is_recursive_module(&self, m: ModuleId) -> bool {
        self.cycle_of(m).is_some()
    }

    /// Number of vertex-disjoint cycles (0 when non-strict).
    pub fn cycle_count(&self) -> usize {
        self.cycles.as_ref().map(|c| c.len()).unwrap_or(0)
    }

    /// Longest cycle length (1 for self-loops, 0 if acyclic/non-strict).
    pub fn max_cycle_len(&self) -> usize {
        self.cycles.as_ref().map(|c| c.iter().map(CycleInfo::len).max().unwrap_or(0)).unwrap_or(0)
    }

    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::{nonstrict_example, paper_example};

    #[test]
    fn paper_example_edge_ids_match_figure12() {
        let ex = paper_example();
        let pg = ProdGraph::new(&ex.spec.grammar);
        // 8 productions with RHS sizes 6,3,2,2,4,2,1,2 = 22 edges
        // (Figure 12 draws exactly these pairs).
        assert_eq!(pg.edge_count(), 22);
        // Edge (1,5) of the paper = 0-based (p1, 4): S -> c.
        let dense = pg.edge_index(ProdId(0), 4);
        assert_eq!(pg.edge_pair(dense), (ProdId(0), 4));
    }

    #[test]
    fn paper_example_cycles_match_example12() {
        let ex = paper_example();
        let pg = ProdGraph::new(&ex.spec.grammar);
        let cycles = pg.cycles().expect("running example is strictly linear");
        assert_eq!(cycles.len(), 2);
        // C(1) = {(2,2),(4,2)} 1-based = {(p2, pos 1), (p4, pos 1)}.
        assert_eq!(cycles[0].edges, vec![(ProdId(1), 1), (ProdId(3), 1)]);
        assert_eq!(cycles[0].modules, vec![ex.a_mod, ex.b_mod]);
        // C(2) = {(6,2)} = {(p6, pos 1)} — the D self-loop.
        assert_eq!(cycles[1].edges, vec![(ProdId(5), 1)]);
        assert_eq!(cycles[1].modules, vec![ex.d_mod]);
        // cycle_of positions.
        assert_eq!(pg.cycle_of(ex.a_mod), Some((0, 0)));
        assert_eq!(pg.cycle_of(ex.b_mod), Some((0, 1)));
        assert_eq!(pg.cycle_of(ex.d_mod), Some((1, 0)));
        assert_eq!(pg.cycle_of(ex.s), None);
        assert!(pg.is_recursive_module(ex.a_mod));
        assert!(!pg.is_recursive_module(ex.e_mod));
        assert_eq!(pg.cycle_count(), 2);
        assert_eq!(pg.max_cycle_len(), 2);
    }

    #[test]
    fn paper_example_reachability() {
        let ex = paper_example();
        let pg = ProdGraph::new(&ex.spec.grammar);
        assert!(pg.reaches(ex.s, ex.f));
        assert!(pg.reaches(ex.a_mod, ex.a_mod)); // reflexive
        assert!(pg.reaches(ex.b_mod, ex.a_mod)); // around the cycle
        assert!(!pg.reaches(ex.c_mod, ex.s));
    }

    #[test]
    fn nonstrict_example_has_no_cycle_tables() {
        let spec = nonstrict_example();
        let pg = ProdGraph::new(&spec.grammar);
        assert!(pg.cycles().is_err());
        assert_eq!(pg.cycle_count(), 0);
        assert_eq!(pg.cycle_of(spec.grammar.start()), None);
    }

    #[test]
    fn cycle_edge_wraparound() {
        let c = CycleInfo {
            edges: vec![(ProdId(1), 1), (ProdId(3), 1)],
            modules: vec![ModuleId(1), ModuleId(2)],
        };
        assert_eq!(c.edge_at(0), (ProdId(1), 1));
        assert_eq!(c.edge_at(3), (ProdId(3), 1));
        assert_eq!(c.edge_at(4), (ProdId(1), 1));
    }
}
