//! Safety and the full dependency assignment (Definition 13, Lemma 1,
//! Theorem 2).
//!
//! The checker extends the view's dependency assignment λ′ (defined on the
//! view's terminal modules) to a *full* assignment λ\* over every derivable
//! module, by verifying productions in dependency order: a production
//! `M →f W` is verifiable once λ\* is defined for all modules of `W`, and it
//! defines `λ*(M)[x][y]` as "is `f(output y)` reachable from `f(input x)`
//! in the port graph of `W` under λ\*". If a module's productions disagree,
//! the specification (view) is **unsafe** and no dynamic labeling scheme
//! exists for it (Theorem 1).

use wf_boolmat::BoolMat;
use wf_model::{DepAssignment, ModelError, ModuleId, PortGraph, PortRef, ProdId, Spec, ViewSpec};

/// Why a specification or view has no full dependency assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SafetyError {
    /// The underlying view/specification is malformed (missing deps, …).
    Model(ModelError),
    /// Two derivations of `module` yield different input→output
    /// dependencies; witnessed by `prod` disagreeing with the previously
    /// established λ\*(module).
    Inconsistent { module: ModuleId, prod: ProdId },
}

impl std::fmt::Display for SafetyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SafetyError::Model(e) => write!(f, "model error: {e}"),
            SafetyError::Inconsistent { module, prod } => {
                write!(f, "unsafe: production {prod} contradicts λ*({module})")
            }
        }
    }
}

impl std::error::Error for SafetyError {}

impl From<ModelError> for SafetyError {
    fn from(e: ModelError) -> Self {
        SafetyError::Model(e)
    }
}

/// Computes the input→output reachability matrix a production induces for
/// its LHS, given matrices for every RHS module.
pub fn production_lhs_matrix(vs: &ViewSpec<'_>, k: ProdId, lambda: &DepAssignment) -> BoolMat {
    let p = vs.grammar().production(k);
    let pg = PortGraph::build(&p.rhs, lambda);
    let sig = vs.grammar().sig(p.lhs);
    let mut mat = BoolMat::zeros(sig.inputs(), sig.outputs());
    for (x, &ip) in p.input_map.iter().enumerate() {
        let reach = pg.reachable_from(pg.in_ix(ip));
        for (y, &op) in p.output_map.iter().enumerate() {
            if reach.contains(pg.out_ix(op) as usize) {
                mat.set(x, y, true);
            }
        }
    }
    mat
}

/// Lemma 1's algorithm: computes λ\* for a view, or reports why none exists.
///
/// The returned assignment covers the view's terminal modules (with λ′
/// verbatim) and every *derivable* expandable module. Runtime is
/// `O(|Gλ|²)` as in Theorem 2; the worklist revisits a production only when
/// a new module matrix becomes available.
pub fn full_assignment(vs: &ViewSpec<'_>) -> Result<DepAssignment, SafetyError> {
    let grammar = vs.grammar();
    let mut lambda = vs.deps().clone();
    // Productions still awaiting verification.
    let mut pending: Vec<ProdId> = vs.active_productions().collect();
    loop {
        let mut progressed = false;
        let mut still_pending = Vec::with_capacity(pending.len());
        for k in pending.drain(..) {
            let p = grammar.production(k);
            let verifiable = p.rhs.nodes().iter().all(|&m| lambda.is_defined(m));
            if !verifiable {
                still_pending.push(k);
                continue;
            }
            let computed = production_lhs_matrix(vs, k, &lambda);
            match lambda.get(p.lhs) {
                Some(existing) => {
                    if *existing != computed {
                        return Err(SafetyError::Inconsistent { module: p.lhs, prod: k });
                    }
                }
                None => {
                    lambda.set(p.lhs, computed);
                }
            }
            progressed = true;
        }
        if still_pending.is_empty() {
            break;
        }
        if !progressed {
            // Some expandable module never became verifiable: it has no
            // terminating derivation, i.e. the view is improper.
            let p = grammar.production(still_pending[0]);
            let missing =
                p.rhs.nodes().iter().copied().find(|&m| !lambda.is_defined(m)).unwrap_or(p.lhs);
            return Err(SafetyError::Model(ModelError::Unproductive { module: missing }));
        }
        pending = still_pending;
    }
    Ok(lambda)
}

/// Convenience: λ\* of the default view of a specification.
pub fn full_assignment_default(spec: &Spec) -> Result<DepAssignment, SafetyError> {
    let view = spec.default_view();
    full_assignment(&ViewSpec::new(spec, &view))
}

/// Theorem 2's decision procedure: is the view safe?
pub fn is_safe(vs: &ViewSpec<'_>) -> bool {
    full_assignment(vs).is_ok()
}

/// Checks that a *run-level* simple workflow is consistent with λ\* — used
/// by tests to cross-validate Lemma 1 against brute-force expansion.
pub fn lhs_matrix_of_workflow(
    w: &wf_model::SimpleWorkflow,
    input_map: &[wf_model::InPortRef],
    output_map: &[wf_model::OutPortRef],
    lambda: &DepAssignment,
) -> BoolMat {
    let pg = PortGraph::build(w, lambda);
    let mut mat = BoolMat::zeros(input_map.len(), output_map.len());
    for (x, &ip) in input_map.iter().enumerate() {
        for (y, &op) in output_map.iter().enumerate() {
            if pg.reaches(PortRef::In(ip), PortRef::Out(op)) {
                mat.set(x, y, true);
            }
        }
    }
    mat
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::{nonstrict_example, paper_example, unsafe_example};

    /// Figure 7 (top): the full assignment of the running example, checked
    /// against hand-computed matrices.
    #[test]
    fn paper_example_full_assignment_matches_figure7() {
        let ex = paper_example();
        let lambda = full_assignment_default(&ex.spec).expect("running example is safe");
        let m = |m: ModuleId| lambda.get(m).unwrap();
        assert_eq!(*m(ex.d_mod), BoolMat::from_pairs(2, 2, [(0, 0), (1, 0), (1, 1)]));
        assert_eq!(*m(ex.e_mod), BoolMat::from_pairs(3, 2, [(0, 0), (1, 0), (1, 1), (2, 1)]));
        assert_eq!(*m(ex.c_mod), BoolMat::from_pairs(3, 2, [(0, 0), (0, 1), (1, 1), (2, 1)]));
        assert_eq!(*m(ex.b_mod), BoolMat::from_pairs(1, 2, [(0, 0), (0, 1)]));
        assert_eq!(*m(ex.a_mod), BoolMat::from_pairs(2, 2, [(0, 0), (0, 1), (1, 1)]));
        assert_eq!(*m(ex.s), BoolMat::from_pairs(2, 3, [(0, 0), (0, 1), (0, 2), (1, 0)]));
        // Example 8's pair: C's input 1 (0-based) does not reach output 0.
        assert!(!m(ex.c_mod).get(1, 0));
    }

    /// Figure 7 (bottom): the full assignment of the view U₂ differs on S
    /// and A but agrees on B's completeness pattern.
    #[test]
    fn view_u2_full_assignment() {
        let ex = paper_example();
        let u2 = ex.view_u2();
        let vs = ViewSpec::new(&ex.spec, &u2);
        let lambda = full_assignment(&vs).expect("U2 is safe");
        // λ'(C) is complete by construction.
        assert!(lambda.get(ex.c_mod).unwrap().is_complete());
        // A becomes complete: both inputs reach both outputs through the
        // grey-box C.
        assert!(lambda.get(ex.a_mod).unwrap().is_complete());
        // A's grey-box matrix strictly contains its white-box one (Figure 7:
        // "the ones for S and A are different" — in this transcription the
        // difference shows on A; S's matrix happens to coincide because the
        // only b→d path in W1 runs through c's first output either way).
        let default = full_assignment_default(&ex.spec).unwrap();
        let a_u1 = default.get(ex.a_mod).unwrap();
        let a_u2 = lambda.get(ex.a_mod).unwrap();
        assert!(a_u1.is_subset_of(a_u2));
        assert_ne!(a_u1, a_u2);
        // And λ* never loses dependencies on S.
        assert!(default.get(ex.s).unwrap().is_subset_of(lambda.get(ex.s).unwrap()));
    }

    /// Example 9 / Figure 6: the unsafe specification is rejected with an
    /// inconsistency witness.
    #[test]
    fn unsafe_example_detected() {
        let spec = unsafe_example();
        let view = spec.default_view();
        let vs = ViewSpec::new(&spec, &view);
        match full_assignment(&vs) {
            Err(SafetyError::Inconsistent { module, .. }) => {
                assert_eq!(module, spec.grammar.start());
            }
            other => panic!("expected inconsistency, got {other:?}"),
        }
        assert!(!is_safe(&vs));
    }

    /// Lemma 2: coarse-grained workflows are always safe. The Figure 10
    /// grammar is safe too (its λ*(S) is complete through c).
    #[test]
    fn nonstrict_example_is_safe() {
        let spec = nonstrict_example();
        let view = spec.default_view();
        assert!(is_safe(&ViewSpec::new(&spec, &view)));
        let lambda = full_assignment_default(&spec).unwrap();
        assert!(lambda.get(spec.grammar.start()).unwrap().is_complete());
    }

    /// The default view of the paper example is safe; mutating λ(f) to break
    /// the D-cycle consistency makes it unsafe (λ(f) must be idempotent
    /// because D ⇒ (f, D) composes it with itself).
    #[test]
    fn breaking_cycle_consistency_is_detected() {
        let ex = paper_example();
        let mut spec = ex.spec.clone();
        // λ(f) = {(0,1),(1,0)} (a swap) is not idempotent: f∘f = identity.
        spec.deps.set(ex.f, BoolMat::from_pairs(2, 2, [(0, 1), (1, 0)]));
        let view = spec.default_view();
        let vs = ViewSpec::new(&spec, &view);
        match full_assignment(&vs) {
            Err(SafetyError::Inconsistent { module, .. }) => assert_eq!(module, ex.d_mod),
            other => panic!("expected inconsistency on D, got {other:?}"),
        }
    }

    /// λ\* is computed bottom-up regardless of production order (the paper's
    /// Example 10 walks p7, p8 first); verify by reversing production ids is
    /// impossible with stable ids, but the worklist converging from any
    /// pending order is — shuffle the initial worklist via the same API.
    #[test]
    fn full_assignment_is_order_insensitive() {
        // full_assignment drains pending in id order but loops until fixed
        // point; the result must equal a fresh run (determinism).
        let ex = paper_example();
        let a = full_assignment_default(&ex.spec).unwrap();
        let b = full_assignment_default(&ex.spec).unwrap();
        for m in ex.spec.grammar.modules() {
            assert_eq!(a.get(m), b.get(m));
        }
    }
}
