//! Reduction of the view-adaptive scheme to a *basic* (single-view) dynamic
//! labeling scheme — the construction inside Theorem 1's "if" direction and
//! Theorem 8.
//!
//! For a fixed safe view `U`, define `φ′(d) = (φr(d), φv(U))` and
//! `π′(φ′(d₁), φ′(d₂)) = π(φr(d₁), φr(d₂), φv(U))`. Since `φv(U)` is a
//! per-specification constant, `φ′` keeps the `O(log n)` bound, proving
//! compact dynamic labeling feasible for every safe view of a strictly
//! linear-recursive grammar.

use crate::error::FvlError;
use crate::label::DataLabel;
use crate::scheme::Fvl;
use crate::viewlabel::{VariantKind, ViewLabel};
use wf_model::View;

/// A basic dynamic labeling scheme: FVL specialized to one view.
pub struct BasicScheme<'a> {
    fvl: &'a Fvl<'a>,
    view_label: ViewLabel,
}

impl<'a> BasicScheme<'a> {
    pub fn new(fvl: &'a Fvl<'a>, view: &'a View, kind: VariantKind) -> Result<Self, FvlError> {
        Ok(Self { view_label: fvl.label_view(view, kind)?, fvl })
    }

    /// The binary predicate π′ of Definition 10.
    pub fn pi(&self, d1: &DataLabel, d2: &DataLabel) -> Option<bool> {
        self.fvl.query(&self.view_label, d1, d2)
    }

    /// The per-item label cost of the reduction: the data label bits (the
    /// `φv(U)` component is shared across all items and amortizes to zero).
    pub fn label_bits(&self, d: &DataLabel) -> usize {
        self.fvl.codec().encoded_bits(d)
    }

    pub fn view_label(&self) -> &ViewLabel {
        &self.view_label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;
    use wf_run::fixtures::figure3_run;

    #[test]
    fn basic_scheme_answers_default_view_queries() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let u1 = ex.view_u1();
        let basic = BasicScheme::new(&fvl, &u1, VariantKind::Default).unwrap();
        let (run, ids) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        assert_eq!(basic.pi(labeler.label(ids.d17), labeler.label(ids.d31)), Some(false));
        // d21 -> d31? b:2 feeds D/E/c inside C:4; d31 exits C:4.out0 which
        // requires C.in0 = b.in0 of W5... d21's producer is b:2.out0; flows
        // D -> E -> c -> C:4 outputs. Expect true.
        assert_eq!(basic.pi(labeler.label(ids.d21), labeler.label(ids.d31)), Some(true));
        assert!(basic.label_bits(labeler.label(ids.d21)) > 0);
    }
}
