//! View labels (§4.3): the static, per-view half of the scheme.
//!
//! A view label is `φv(U) = {λ*(S), I, O, Z}` — the full dependency
//! assignment's matrix for the start module plus the three per-production
//! matrix functions. The three variants of §6.3 differ only in how much of
//! this is materialized:
//!
//! * **Space-Efficient** stores λ\* alone ("almost no index … any access to
//!   I, O and Z will be answered by performing a graph search over the view
//!   of a specification at query time");
//! * **Default** pre-computes and stores every `I`/`O`/`Z` matrix;
//! * **Query-Efficient** additionally stores, per recursion and per chain
//!   offset, the prefix products `P_t(r)` and the `Xᵃ = Xᵇ` power caches of
//!   §4.4.3, so arbitrary-length recursion chains evaluate in O(1).

use crate::error::FvlError;
use std::borrow::Cow;
use wf_analysis::{
    full_assignment, i_matrix, o_matrix, production_matrices, z_matrix, ProdGraph,
    ProductionMatrices,
};
use wf_boolmat::{BoolMat, PowerCache};
use wf_model::{DepAssignment, Grammar, ProdId, ViewSpec};

/// Which §6.3 variant a view label was built as.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VariantKind {
    SpaceEfficient,
    Default,
    QueryEfficient,
}

/// Materialized chain caches for one production-graph cycle (Query-Efficient
/// only). `l` = cycle length; offsets are positions within the cycle.
#[derive(Clone, Debug)]
pub struct CycleCache {
    /// `i_prefix[t][r]` = product of `r` I-matrices starting at offset `t`
    /// (`r = 0` is the identity on the inputs of the cycle module at `t`).
    pub i_prefix: Vec<Vec<BoolMat>>,
    /// Power cache of `X_t` = full-cycle I-product starting at `t`.
    pub i_power: Vec<PowerCache>,
    /// Same for the (reversed) O-chain.
    pub o_prefix: Vec<Vec<BoolMat>>,
    pub o_power: Vec<PowerCache>,
}

/// Process-unique label ids (see [`ViewLabel::uid`]).
static NEXT_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn fresh_uid() -> u64 {
    NEXT_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// The label of one view.
pub struct ViewLabel {
    uid: u64,
    kind: VariantKind,
    /// λ\* of the view — covers every derivable module.
    lambda: DepAssignment,
    /// λ\*(S), used directly for boundary-to-boundary queries.
    lambda_s: BoolMat,
    /// Which productions are active (LHS ∈ Δ′).
    active: Vec<bool>,
    /// Materialized matrices per production (Default / Query-Efficient).
    mats: Vec<Option<ProductionMatrices>>,
    /// Per-cycle chain caches (Query-Efficient); `None` when the cycle is
    /// broken by the view (some cycle production inactive).
    cycles: Vec<Option<CycleCache>>,
}

impl ViewLabel {
    /// Builds the label of a view (rejecting unsafe views, Theorem 1).
    pub fn build(vs: &ViewSpec<'_>, pg: &ProdGraph, kind: VariantKind) -> Result<Self, FvlError> {
        let grammar = vs.grammar();
        let lambda = full_assignment(vs)?;
        let lambda_s = lambda
            .get(grammar.start())
            .expect("start module always has a full-assignment matrix")
            .clone();
        let active: Vec<bool> = grammar.productions().map(|(k, _)| vs.prod_active(k)).collect();

        let mats: Vec<Option<ProductionMatrices>> = match kind {
            VariantKind::SpaceEfficient => vec![None; grammar.production_count()],
            _ => active
                .iter()
                .enumerate()
                .map(|(k, &a)| a.then(|| production_matrices(grammar, ProdId(k as u32), &lambda)))
                .collect(),
        };

        let cycles = build_cycle_caches(grammar, pg, kind, &active, &mats)?;
        Ok(Self { uid: fresh_uid(), kind, lambda, lambda_s, active, mats, cycles })
    }

    /// Assembles a view label from externally computed parts — used by the
    /// user-defined-view machinery (§5), which substitutes grouped matrices.
    pub(crate) fn from_parts(
        kind: VariantKind,
        lambda: DepAssignment,
        lambda_s: BoolMat,
        active: Vec<bool>,
        mats: Vec<Option<ProductionMatrices>>,
        grammar: &Grammar,
        pg: &ProdGraph,
    ) -> Self {
        let cycles = build_cycle_caches(grammar, pg, kind, &active, &mats)
            .expect("caller guarantees strict linearity");
        Self { uid: fresh_uid(), kind, lambda, lambda_s, active, mats, cycles }
    }

    /// A process-unique id of this label. Session scratch keys its
    /// recursion-chain power memo by this, so one scratch can serve any
    /// interleaving of views without cross-view poisoning (and without an
    /// address-based tag, which the allocator could recycle).
    #[inline]
    pub fn uid(&self) -> u64 {
        self.uid
    }

    #[inline]
    pub fn kind(&self) -> VariantKind {
        self.kind
    }

    #[inline]
    pub fn lambda_star(&self) -> &DepAssignment {
        &self.lambda
    }

    /// λ\*(S) — the boundary matrix.
    #[inline]
    pub fn lambda_star_s(&self) -> &BoolMat {
        &self.lambda_s
    }

    #[inline]
    pub fn prod_active(&self, k: ProdId) -> bool {
        self.active[k.index()]
    }

    /// `I(k, i)`; `None` if the production is not part of this view.
    /// Space-Efficient recomputes it by graph search.
    pub fn i_mat(&self, grammar: &Grammar, k: ProdId, i: u32) -> Option<Cow<'_, BoolMat>> {
        if !self.active[k.index()] {
            return None;
        }
        match &self.mats[k.index()] {
            Some(m) => Some(Cow::Borrowed(&m.i_mats[i as usize])),
            None => Some(Cow::Owned(i_matrix(grammar, k, i as usize, &self.lambda))),
        }
    }

    /// `O(k, i)` (reversed orientation).
    pub fn o_mat(&self, grammar: &Grammar, k: ProdId, i: u32) -> Option<Cow<'_, BoolMat>> {
        if !self.active[k.index()] {
            return None;
        }
        match &self.mats[k.index()] {
            Some(m) => Some(Cow::Borrowed(&m.o_mats[i as usize])),
            None => Some(Cow::Owned(o_matrix(grammar, k, i as usize, &self.lambda))),
        }
    }

    /// `Z(k, i, j)`.
    pub fn z_mat(&self, grammar: &Grammar, k: ProdId, i: u32, j: u32) -> Option<Cow<'_, BoolMat>> {
        if !self.active[k.index()] {
            return None;
        }
        match &self.mats[k.index()] {
            Some(m) => Some(Cow::Borrowed(&m.z_mats[i as usize][j as usize])),
            None => Some(Cow::Owned(z_matrix(grammar, k, i as usize, j as usize, &self.lambda))),
        }
    }

    /// Query-Efficient chain cache for a cycle, if materialized and intact.
    pub fn cycle_cache(&self, s: u32) -> Option<&CycleCache> {
        self.cycles.get(s as usize).and_then(|c| c.as_ref())
    }

    /// Wire size of the view label in bits — what Figure 19 measures.
    /// λ\*(S) is charged to every variant; Default adds `I`/`O`/`Z`;
    /// Query-Efficient adds the chain caches.
    pub fn size_bits(&self) -> usize {
        let mut bits = self.lambda_s.payload_bits();
        if self.kind == VariantKind::SpaceEfficient {
            // λ* for non-start modules is the "less than 5 bytes per view"
            // residue: it is needed to run graph searches at query time.
            bits += self.lambda.iter().map(|(_, m)| m.payload_bits()).sum::<usize>();
            return bits;
        }
        bits += self.mats.iter().flatten().map(ProductionMatrices::payload_bits).sum::<usize>();
        for c in self.cycles.iter().flatten() {
            bits += c
                .i_prefix
                .iter()
                .chain(&c.o_prefix)
                .flat_map(|v| v.iter().map(BoolMat::payload_bits))
                .sum::<usize>();
            bits += c.i_power.iter().map(PowerCache::payload_bits).sum::<usize>();
            bits += c.o_power.iter().map(PowerCache::payload_bits).sum::<usize>();
        }
        bits
    }
}

/// Builds the Query-Efficient per-cycle chain caches (`None` per cycle for
/// other variants or when the view breaks the cycle).
fn build_cycle_caches(
    grammar: &Grammar,
    pg: &ProdGraph,
    kind: VariantKind,
    active: &[bool],
    mats: &[Option<ProductionMatrices>],
) -> Result<Vec<Option<CycleCache>>, FvlError> {
    if kind != VariantKind::QueryEfficient {
        return Ok(pg.cycles().map(|c| vec![None; c.len()]).unwrap_or_default());
    }
    let tables = pg
        .cycles()
        .map_err(|c| FvlError::NotStrictlyLinear { witness: wf_model::ModuleId(c.witness.0) })?;
    Ok(tables
        .iter()
        .map(|cycle| {
            if !cycle.edges.iter().all(|&(k, _)| active[k.index()]) {
                return None; // cycle broken by the view
            }
            let l = cycle.len();
            let i_of = |pos: usize| {
                let (k, i) = cycle.edge_at(pos);
                mats[k.index()].as_ref().unwrap().i_mats[i as usize].clone()
            };
            let o_of = |pos: usize| {
                let (k, i) = cycle.edge_at(pos);
                mats[k.index()].as_ref().unwrap().o_mats[i as usize].clone()
            };
            let mut i_prefix = Vec::with_capacity(l);
            let mut i_power = Vec::with_capacity(l);
            let mut o_prefix = Vec::with_capacity(l);
            let mut o_power = Vec::with_capacity(l);
            for t in 0..l {
                let in_dim = grammar.sig(cycle.modules[t]).inputs();
                let out_dim = grammar.sig(cycle.modules[t]).outputs();
                let mut ip = vec![BoolMat::identity(in_dim)];
                let mut op = vec![BoolMat::identity(out_dim)];
                for r in 0..l {
                    ip.push(ip[r].matmul(&i_of(t + r)));
                    op.push(op[r].matmul(&o_of(t + r)));
                }
                let x_i = ip.pop().unwrap(); // P_t(l) = X_t
                let x_o = op.pop().unwrap();
                i_prefix.push(ip);
                o_prefix.push(op);
                i_power.push(PowerCache::new(x_i));
                o_power.push(PowerCache::new(x_o));
            }
            Some(CycleCache { i_prefix, i_power, o_prefix, o_power })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;

    fn setup() -> (wf_model::fixtures::PaperExample, ProdGraph) {
        let ex = paper_example();
        let pg = ProdGraph::new(&ex.spec.grammar);
        (ex, pg)
    }

    #[test]
    fn all_variants_build_for_default_view() {
        let (ex, pg) = setup();
        let u1 = ex.view_u1();
        let vs = ViewSpec::new(&ex.spec, &u1);
        for kind in [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient]
        {
            let vl = ViewLabel::build(&vs, &pg, kind).unwrap();
            assert_eq!(vl.kind(), kind);
            assert_eq!(vl.lambda_star_s().rows(), 2);
            assert_eq!(vl.lambda_star_s().cols(), 3);
        }
    }

    #[test]
    fn variant_sizes_are_ordered() {
        // Figure 19: Space-Efficient < Default < Query-Efficient.
        let (ex, pg) = setup();
        let u1 = ex.view_u1();
        let vs = ViewSpec::new(&ex.spec, &u1);
        let se = ViewLabel::build(&vs, &pg, VariantKind::SpaceEfficient).unwrap();
        let de = ViewLabel::build(&vs, &pg, VariantKind::Default).unwrap();
        let qe = ViewLabel::build(&vs, &pg, VariantKind::QueryEfficient).unwrap();
        assert!(se.size_bits() < de.size_bits(), "{} vs {}", se.size_bits(), de.size_bits());
        assert!(de.size_bits() < qe.size_bits(), "{} vs {}", de.size_bits(), qe.size_bits());
    }

    #[test]
    fn space_efficient_matches_materialized() {
        let (ex, pg) = setup();
        let g = &ex.spec.grammar;
        let u1 = ex.view_u1();
        let vs = ViewSpec::new(&ex.spec, &u1);
        let se = ViewLabel::build(&vs, &pg, VariantKind::SpaceEfficient).unwrap();
        let de = ViewLabel::build(&vs, &pg, VariantKind::Default).unwrap();
        for (k, p) in g.productions() {
            for i in 0..p.rhs.node_count() as u32 {
                assert_eq!(
                    se.i_mat(g, k, i).unwrap().as_ref(),
                    de.i_mat(g, k, i).unwrap().as_ref(),
                    "I({k},{i})"
                );
                assert_eq!(
                    se.o_mat(g, k, i).unwrap().as_ref(),
                    de.o_mat(g, k, i).unwrap().as_ref(),
                    "O({k},{i})"
                );
                for j in 0..p.rhs.node_count() as u32 {
                    assert_eq!(
                        se.z_mat(g, k, i, j).unwrap().as_ref(),
                        de.z_mat(g, k, i, j).unwrap().as_ref(),
                        "Z({k},{i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn inactive_productions_have_no_matrices() {
        let (ex, pg) = setup();
        let g = &ex.spec.grammar;
        let u2 = ex.view_u2();
        let vs = ViewSpec::new(&ex.spec, &u2);
        let vl = ViewLabel::build(&vs, &pg, VariantKind::Default).unwrap();
        // p5 = C -> W5 is inactive in U2 (C ∉ Δ′).
        assert!(!vl.prod_active(ex.prods[4]));
        assert!(vl.i_mat(g, ex.prods[4], 0).is_none());
        // p1 = S -> W1 is active.
        assert!(vl.prod_active(ex.prods[0]));
        assert!(vl.i_mat(g, ex.prods[0], 0).is_some());
    }

    #[test]
    fn broken_cycles_lose_their_cache() {
        let (ex, pg) = setup();
        let u2 = ex.view_u2();
        let vs = ViewSpec::new(&ex.spec, &u2);
        let vl = ViewLabel::build(&vs, &pg, VariantKind::QueryEfficient).unwrap();
        // Cycle 0 (A/B) is intact in U2; cycle 1 (D) is broken (C ∉ Δ′ means
        // p6 stays active? No: p6's LHS is D, and D ∉ Δ′ ⇒ inactive).
        assert!(vl.cycle_cache(0).is_some());
        assert!(vl.cycle_cache(1).is_none());
    }

    #[test]
    fn unsafe_view_rejected() {
        let spec = wf_model::fixtures::unsafe_example();
        let pg = ProdGraph::new(&spec.grammar);
        let view = spec.default_view();
        let vs = ViewSpec::new(&spec, &view);
        assert!(matches!(
            ViewLabel::build(&vs, &pg, VariantKind::Default),
            Err(FvlError::Unsafe(_))
        ));
    }
}
