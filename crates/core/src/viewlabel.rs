//! View labels (§4.3): the static, per-view half of the scheme.
//!
//! A view label is `φv(U) = {λ*(S), I, O, Z}` — the full dependency
//! assignment's matrix for the start module plus the three per-production
//! matrix functions. The three variants of §6.3 differ only in how much of
//! this is materialized:
//!
//! * **Space-Efficient** stores λ\* alone ("almost no index … any access to
//!   I, O and Z will be answered by performing a graph search over the view
//!   of a specification at query time");
//! * **Default** pre-computes and stores every `I`/`O`/`Z` matrix;
//! * **Query-Efficient** additionally stores, per recursion and per chain
//!   offset, the prefix products `P_t(r)` and the `Xᵃ = Xᵇ` power caches of
//!   §4.4.3, so arbitrary-length recursion chains evaluate in O(1).

use crate::error::FvlError;
use crate::snapshot::{read_deps, read_mat, write_deps, write_mat};
use std::borrow::Cow;
use wf_analysis::{
    full_assignment, i_matrix, o_matrix, production_matrices, z_matrix, ProdGraph,
    ProductionMatrices,
};
use wf_bitio::{BitReader, BitWriter, ReadError};
use wf_boolmat::{BoolMat, PowerCache};
use wf_model::{DepAssignment, Grammar, ProdId, ViewSpec};

/// Which §6.3 variant a view label was built as.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VariantKind {
    SpaceEfficient,
    Default,
    QueryEfficient,
}

impl VariantKind {
    /// Every variant, in [`VariantKind::code`] order. The canonical way to
    /// sweep "all three variants" in tests, fuzzers and benches — adding a
    /// variant extends this array and every sweep follows.
    pub const ALL: [VariantKind; 3] =
        [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient];

    /// Stable human-readable name (report keys, fuzz divergence messages).
    pub fn name(self) -> &'static str {
        match self {
            VariantKind::SpaceEfficient => "space_efficient",
            VariantKind::Default => "default",
            VariantKind::QueryEfficient => "query_efficient",
        }
    }

    /// Stable dense code of the variant (0, 1, 2) — the registry's slot
    /// index and the snapshot wire value.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            VariantKind::SpaceEfficient => 0,
            VariantKind::Default => 1,
            VariantKind::QueryEfficient => 2,
        }
    }

    /// Inverse of [`VariantKind::code`]; `None` for out-of-range input.
    #[inline]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(VariantKind::SpaceEfficient),
            1 => Some(VariantKind::Default),
            2 => Some(VariantKind::QueryEfficient),
            _ => None,
        }
    }
}

/// Materialized chain caches for one production-graph cycle (Query-Efficient
/// only). `l` = cycle length; offsets are positions within the cycle.
#[derive(Clone, Debug)]
pub struct CycleCache {
    /// `i_prefix[t][r]` = product of `r` I-matrices starting at offset `t`
    /// (`r = 0` is the identity on the inputs of the cycle module at `t`).
    pub i_prefix: Vec<Vec<BoolMat>>,
    /// Power cache of `X_t` = full-cycle I-product starting at `t`.
    pub i_power: Vec<PowerCache>,
    /// Same for the (reversed) O-chain.
    pub o_prefix: Vec<Vec<BoolMat>>,
    pub o_power: Vec<PowerCache>,
}

/// Process-unique label ids (see [`ViewLabel::uid`]).
static NEXT_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn fresh_uid() -> u64 {
    NEXT_UID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// The label of one view.
pub struct ViewLabel {
    uid: u64,
    kind: VariantKind,
    /// λ\* of the view — covers every derivable module.
    lambda: DepAssignment,
    /// λ\*(S), used directly for boundary-to-boundary queries.
    lambda_s: BoolMat,
    /// Which productions are active (LHS ∈ Δ′).
    active: Vec<bool>,
    /// Materialized matrices per production (Default / Query-Efficient).
    mats: Vec<Option<ProductionMatrices>>,
    /// Per-cycle chain caches (Query-Efficient); `None` when the cycle is
    /// broken by the view (some cycle production inactive).
    cycles: Vec<Option<CycleCache>>,
}

impl ViewLabel {
    /// Builds the label of a view (rejecting unsafe views, Theorem 1).
    pub fn build(vs: &ViewSpec<'_>, pg: &ProdGraph, kind: VariantKind) -> Result<Self, FvlError> {
        let grammar = vs.grammar();
        let lambda = full_assignment(vs)?;
        let lambda_s = lambda
            .get(grammar.start())
            .expect("start module always has a full-assignment matrix")
            .clone();
        let active: Vec<bool> = grammar.productions().map(|(k, _)| vs.prod_active(k)).collect();

        let mats: Vec<Option<ProductionMatrices>> = match kind {
            VariantKind::SpaceEfficient => vec![None; grammar.production_count()],
            _ => active
                .iter()
                .enumerate()
                .map(|(k, &a)| a.then(|| production_matrices(grammar, ProdId(k as u32), &lambda)))
                .collect(),
        };

        let cycles = build_cycle_caches(grammar, pg, kind, &active, &mats)?;
        Ok(Self { uid: fresh_uid(), kind, lambda, lambda_s, active, mats, cycles })
    }

    /// Assembles a view label from externally computed parts — used by the
    /// user-defined-view machinery (§5), which substitutes grouped matrices.
    pub(crate) fn from_parts(
        kind: VariantKind,
        lambda: DepAssignment,
        lambda_s: BoolMat,
        active: Vec<bool>,
        mats: Vec<Option<ProductionMatrices>>,
        grammar: &Grammar,
        pg: &ProdGraph,
    ) -> Self {
        let cycles = build_cycle_caches(grammar, pg, kind, &active, &mats)
            .expect("caller guarantees strict linearity");
        Self { uid: fresh_uid(), kind, lambda, lambda_s, active, mats, cycles }
    }

    /// A process-unique id of this label. Session scratch keys its
    /// recursion-chain power memo by this, so one scratch can serve any
    /// interleaving of views without cross-view poisoning (and without an
    /// address-based tag, which the allocator could recycle).
    #[inline]
    pub fn uid(&self) -> u64 {
        self.uid
    }

    #[inline]
    pub fn kind(&self) -> VariantKind {
        self.kind
    }

    #[inline]
    pub fn lambda_star(&self) -> &DepAssignment {
        &self.lambda
    }

    /// λ\*(S) — the boundary matrix.
    #[inline]
    pub fn lambda_star_s(&self) -> &BoolMat {
        &self.lambda_s
    }

    #[inline]
    pub fn prod_active(&self, k: ProdId) -> bool {
        self.active[k.index()]
    }

    /// `I(k, i)`; `None` if the production is not part of this view.
    /// Space-Efficient recomputes it by graph search.
    pub fn i_mat(&self, grammar: &Grammar, k: ProdId, i: u32) -> Option<Cow<'_, BoolMat>> {
        if !self.active[k.index()] {
            return None;
        }
        match &self.mats[k.index()] {
            Some(m) => Some(Cow::Borrowed(&m.i_mats[i as usize])),
            None => Some(Cow::Owned(i_matrix(grammar, k, i as usize, &self.lambda))),
        }
    }

    /// `O(k, i)` (reversed orientation).
    pub fn o_mat(&self, grammar: &Grammar, k: ProdId, i: u32) -> Option<Cow<'_, BoolMat>> {
        if !self.active[k.index()] {
            return None;
        }
        match &self.mats[k.index()] {
            Some(m) => Some(Cow::Borrowed(&m.o_mats[i as usize])),
            None => Some(Cow::Owned(o_matrix(grammar, k, i as usize, &self.lambda))),
        }
    }

    /// `Z(k, i, j)`.
    pub fn z_mat(&self, grammar: &Grammar, k: ProdId, i: u32, j: u32) -> Option<Cow<'_, BoolMat>> {
        if !self.active[k.index()] {
            return None;
        }
        match &self.mats[k.index()] {
            Some(m) => Some(Cow::Borrowed(&m.z_mats[i as usize][j as usize])),
            None => Some(Cow::Owned(z_matrix(grammar, k, i as usize, j as usize, &self.lambda))),
        }
    }

    /// Query-Efficient chain cache for a cycle, if materialized and intact.
    pub fn cycle_cache(&self, s: u32) -> Option<&CycleCache> {
        self.cycles.get(s as usize).and_then(|c| c.as_ref())
    }

    /// The materialized matrices of production `k`, when this variant
    /// stores them (`None` for Space-Efficient labels, which recompute by
    /// graph search over [`crate::DecodeCtx`]'s cached port graphs
    /// instead).
    pub(crate) fn materialized(&self, k: ProdId) -> Option<&ProductionMatrices> {
        self.mats[k.index()].as_ref()
    }

    /// Serializes the compiled label into `w` (the snapshot wire form; see
    /// DESIGN.md S6 for the layout). `λ*(S)` is not written — it is, by
    /// construction, `λ*`'s entry for the start module and is re-derived on
    /// read, so a snapshot cannot carry the two out of sync. Everything the
    /// variant materialized *is* written, including the Query-Efficient
    /// chain caches: a warm start never re-runs cycle-finding.
    pub fn write_snapshot(&self, w: &mut BitWriter) {
        w.write_bits(self.kind.code() as u64, 2);
        write_deps(w, &self.lambda);
        for &a in &self.active {
            w.push_bit(a);
        }
        for m in &self.mats {
            w.push_bit(m.is_some());
            if let Some(pm) = m {
                for mat in pm.i_mats.iter().chain(&pm.o_mats) {
                    write_mat(w, mat);
                }
                for mat in pm.z_mats.iter().flatten() {
                    write_mat(w, mat);
                }
            }
        }
        w.write_gamma(self.cycles.len() as u64 + 1);
        for c in &self.cycles {
            w.push_bit(c.is_some());
            if let Some(c) = c {
                for mat in c.i_prefix.iter().chain(&c.o_prefix).flatten() {
                    write_mat(w, mat);
                }
                for cache in c.i_power.iter().chain(&c.o_power) {
                    write_power_cache(w, cache);
                }
            }
        }
    }

    /// Reads a label previously written by [`ViewLabel::write_snapshot`]
    /// against the *same* specification (the caller guards that with a spec
    /// fingerprint). All counts and dimensions are validated against the
    /// grammar and production graph; structural violations are
    /// [`ReadError::Malformed`], never a panic. The label gets a **fresh**
    /// [`ViewLabel::uid`]: uids key session chain-power memos, so a loaded
    /// label must never collide with one compiled earlier in this process.
    pub fn read_snapshot(
        r: &mut BitReader<'_>,
        grammar: &Grammar,
        pg: &ProdGraph,
    ) -> Result<Self, ReadError> {
        let kind = VariantKind::from_code(r.read_bits(2)? as u8).ok_or(ReadError::Malformed)?;
        let lambda = read_deps(r, grammar.module_count())?;
        for (m, mat) in lambda.iter() {
            let sig = grammar.sig(m);
            if mat.rows() != sig.inputs() || mat.cols() != sig.outputs() {
                return Err(ReadError::Malformed);
            }
        }
        let lambda_s = lambda.get(grammar.start()).ok_or(ReadError::Malformed)?.clone();
        let pc = grammar.production_count();
        let mut active = Vec::with_capacity(pc);
        for _ in 0..pc {
            active.push(r.read_bit()?);
        }
        // Any active production may be *recomputed* at query time
        // (Space-Efficient always; other variants whenever a mats entry is
        // absent), and that graph search requires λ* to cover every module
        // on the production's RHS — demand the coverage here instead of
        // panicking inside the first query's `PortGraph::build`.
        for (k, _) in active.iter().enumerate().filter(|&(_, &a)| a) {
            let p = grammar.production(ProdId(k as u32));
            if p.rhs.nodes().iter().any(|&m| lambda.get(m).is_none()) {
                return Err(ReadError::Malformed);
            }
        }
        let mut mats = Vec::with_capacity(pc);
        for k in 0..pc {
            if !r.read_bit()? {
                mats.push(None);
                continue;
            }
            // Every matrix must fit the shape §4.3 defines for its slot —
            // I(k,i): lhs inputs × node-i inputs, O(k,i): lhs outputs ×
            // node-i outputs, Z(k,i,j): node-i outputs × node-j inputs —
            // or the first query would index out of range instead of
            // erroring here.
            let p = grammar.production(ProdId(k as u32));
            let lhs = grammar.sig(p.lhs);
            let n = p.rhs.node_count();
            let node_sig = |i: usize| grammar.sig(p.rhs.nodes()[i]);
            let expect = |m: &BoolMat, rows: usize, cols: usize| {
                if m.rows() == rows && m.cols() == cols {
                    Ok(())
                } else {
                    Err(ReadError::Malformed)
                }
            };
            let mut i_mats = Vec::with_capacity(n);
            let mut o_mats = Vec::with_capacity(n);
            for i in 0..n {
                let m = read_mat(r)?;
                expect(&m, lhs.inputs(), node_sig(i).inputs())?;
                i_mats.push(m);
            }
            for i in 0..n {
                let m = read_mat(r)?;
                expect(&m, lhs.outputs(), node_sig(i).outputs())?;
                o_mats.push(m);
            }
            let mut z_mats = Vec::with_capacity(n);
            for i in 0..n {
                let mut row = Vec::with_capacity(n);
                for j in 0..n {
                    let m = read_mat(r)?;
                    expect(&m, node_sig(i).outputs(), node_sig(j).inputs())?;
                    row.push(m);
                }
                z_mats.push(row);
            }
            mats.push(Some(ProductionMatrices { i_mats, o_mats, z_mats }));
        }
        let tables = pg.cycles().map_err(|_| ReadError::Malformed)?;
        let count = (r.read_gamma()? - 1) as usize;
        if count != tables.len() {
            return Err(ReadError::Malformed);
        }
        let mut cycles = Vec::with_capacity(count);
        for cycle in tables {
            if !r.read_bit()? {
                cycles.push(None);
                continue;
            }
            let l = cycle.len();
            // Prefix products and power caches must carry the cycle's port
            // arities: `i_prefix[t][r]` maps inputs of the module at offset
            // `t` to inputs at offset `t + r` (wrapping), and the power
            // cache at `t` is square over offset `t`'s arity.
            let dim_at = |t: usize, inputs: bool| {
                let sig = grammar.sig(cycle.modules[t % l]);
                if inputs {
                    sig.inputs()
                } else {
                    sig.outputs()
                }
            };
            let read_prefixes =
                |r: &mut BitReader<'_>, inputs: bool| -> Result<Vec<Vec<BoolMat>>, ReadError> {
                    let mut pre = Vec::with_capacity(l);
                    for t in 0..l {
                        let mut row = Vec::with_capacity(l);
                        for rr in 0..l {
                            let m = read_mat(r)?;
                            if m.rows() != dim_at(t, inputs) || m.cols() != dim_at(t + rr, inputs) {
                                return Err(ReadError::Malformed);
                            }
                            row.push(m);
                        }
                        pre.push(row);
                    }
                    Ok(pre)
                };
            let i_prefix = read_prefixes(r, true)?;
            let o_prefix = read_prefixes(r, false)?;
            let mut i_power = Vec::with_capacity(l);
            let mut o_power = Vec::with_capacity(l);
            for t in 0..l {
                i_power.push(read_power_cache(r, dim_at(t, true))?);
            }
            for t in 0..l {
                o_power.push(read_power_cache(r, dim_at(t, false))?);
            }
            cycles.push(Some(CycleCache { i_prefix, i_power, o_prefix, o_power }));
        }
        Ok(Self { uid: fresh_uid(), kind, lambda, lambda_s, active, mats, cycles })
    }

    /// Wire size of the view label in bits — what Figure 19 measures.
    /// λ\*(S) is charged to every variant; Default adds `I`/`O`/`Z`;
    /// Query-Efficient adds the chain caches.
    pub fn size_bits(&self) -> usize {
        let mut bits = self.lambda_s.payload_bits();
        if self.kind == VariantKind::SpaceEfficient {
            // λ* for non-start modules is the "less than 5 bytes per view"
            // residue: it is needed to run graph searches at query time.
            bits += self.lambda.iter().map(|(_, m)| m.payload_bits()).sum::<usize>();
            return bits;
        }
        bits += self.mats.iter().flatten().map(ProductionMatrices::payload_bits).sum::<usize>();
        for c in self.cycles.iter().flatten() {
            bits += c
                .i_prefix
                .iter()
                .chain(&c.o_prefix)
                .flat_map(|v| v.iter().map(BoolMat::payload_bits))
                .sum::<usize>();
            bits += c.i_power.iter().map(PowerCache::payload_bits).sum::<usize>();
            bits += c.o_power.iter().map(PowerCache::payload_bits).sum::<usize>();
        }
        bits
    }
}

fn write_power_cache(w: &mut BitWriter, c: &PowerCache) {
    w.write_gamma(c.pre_period());
    w.write_gamma(c.repeat_at());
    for e in 1..c.repeat_at() {
        write_mat(w, c.power(e));
    }
}

/// Reads a power cache whose base must be `dim × dim` (the caller knows the
/// cycle offset's port arity).
///
/// `b` is not capped: whatever repeat exponent a cache was *written* with
/// must load back (write/read symmetry — theory allows periods far beyond
/// any fixed constant). A forged, absurdly large `b` is harmless anyway:
/// the powers vector grows only as matrices are actually decoded, and each
/// iteration consumes payload bits, so the loop dies on `OutOfBits` no
/// later than the (length-verified) payload runs dry.
fn read_power_cache(r: &mut BitReader<'_>, dim: usize) -> Result<PowerCache, ReadError> {
    let a = r.read_gamma()?;
    let b = r.read_gamma()?;
    if b < 2 {
        return Err(ReadError::Malformed);
    }
    let mut powers = Vec::new();
    for _ in 1..b {
        let m = read_mat(r)?;
        if m.rows() != dim || m.cols() != dim {
            return Err(ReadError::Malformed);
        }
        powers.push(m);
    }
    // from_parts re-verifies the successor-product chain and the wrap-around
    // exponent, so the loaded cache is *internally consistent*: exponent
    // folding is sound for whatever base it stores, and no lookup can index
    // out of range. Whether that base equals the cycle's true X_t is a
    // value-level question the checksum answers for accidental corruption;
    // a snapshot is a cache of deterministic computation, not an
    // authenticated document (re-derive from the spec when in doubt).
    PowerCache::from_parts(powers, a, b).ok_or(ReadError::Malformed)
}

/// Builds the Query-Efficient per-cycle chain caches (`None` per cycle for
/// other variants or when the view breaks the cycle).
fn build_cycle_caches(
    grammar: &Grammar,
    pg: &ProdGraph,
    kind: VariantKind,
    active: &[bool],
    mats: &[Option<ProductionMatrices>],
) -> Result<Vec<Option<CycleCache>>, FvlError> {
    if kind != VariantKind::QueryEfficient {
        return Ok(pg.cycles().map(|c| vec![None; c.len()]).unwrap_or_default());
    }
    let tables = pg
        .cycles()
        .map_err(|c| FvlError::NotStrictlyLinear { witness: wf_model::ModuleId(c.witness.0) })?;
    Ok(tables
        .iter()
        .map(|cycle| {
            if !cycle.edges.iter().all(|&(k, _)| active[k.index()]) {
                return None; // cycle broken by the view
            }
            let l = cycle.len();
            let i_of = |pos: usize| {
                let (k, i) = cycle.edge_at(pos);
                mats[k.index()].as_ref().unwrap().i_mats[i as usize].clone()
            };
            let o_of = |pos: usize| {
                let (k, i) = cycle.edge_at(pos);
                mats[k.index()].as_ref().unwrap().o_mats[i as usize].clone()
            };
            let mut i_prefix = Vec::with_capacity(l);
            let mut i_power = Vec::with_capacity(l);
            let mut o_prefix = Vec::with_capacity(l);
            let mut o_power = Vec::with_capacity(l);
            for t in 0..l {
                let in_dim = grammar.sig(cycle.modules[t]).inputs();
                let out_dim = grammar.sig(cycle.modules[t]).outputs();
                let mut ip = vec![BoolMat::identity(in_dim)];
                let mut op = vec![BoolMat::identity(out_dim)];
                for r in 0..l {
                    ip.push(ip[r].matmul(&i_of(t + r)));
                    op.push(op[r].matmul(&o_of(t + r)));
                }
                let x_i = ip.pop().unwrap(); // P_t(l) = X_t
                let x_o = op.pop().unwrap();
                i_prefix.push(ip);
                o_prefix.push(op);
                i_power.push(PowerCache::new(x_i));
                o_power.push(PowerCache::new(x_o));
            }
            Some(CycleCache { i_prefix, i_power, o_prefix, o_power })
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;

    fn setup() -> (wf_model::fixtures::PaperExample, ProdGraph) {
        let ex = paper_example();
        let pg = ProdGraph::new(&ex.spec.grammar);
        (ex, pg)
    }

    #[test]
    fn all_variants_build_for_default_view() {
        let (ex, pg) = setup();
        let u1 = ex.view_u1();
        let vs = ViewSpec::new(&ex.spec, &u1);
        for kind in [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient]
        {
            let vl = ViewLabel::build(&vs, &pg, kind).unwrap();
            assert_eq!(vl.kind(), kind);
            assert_eq!(vl.lambda_star_s().rows(), 2);
            assert_eq!(vl.lambda_star_s().cols(), 3);
        }
    }

    #[test]
    fn variant_sizes_are_ordered() {
        // Figure 19: Space-Efficient < Default < Query-Efficient.
        let (ex, pg) = setup();
        let u1 = ex.view_u1();
        let vs = ViewSpec::new(&ex.spec, &u1);
        let se = ViewLabel::build(&vs, &pg, VariantKind::SpaceEfficient).unwrap();
        let de = ViewLabel::build(&vs, &pg, VariantKind::Default).unwrap();
        let qe = ViewLabel::build(&vs, &pg, VariantKind::QueryEfficient).unwrap();
        assert!(se.size_bits() < de.size_bits(), "{} vs {}", se.size_bits(), de.size_bits());
        assert!(de.size_bits() < qe.size_bits(), "{} vs {}", de.size_bits(), qe.size_bits());
    }

    #[test]
    fn space_efficient_matches_materialized() {
        let (ex, pg) = setup();
        let g = &ex.spec.grammar;
        let u1 = ex.view_u1();
        let vs = ViewSpec::new(&ex.spec, &u1);
        let se = ViewLabel::build(&vs, &pg, VariantKind::SpaceEfficient).unwrap();
        let de = ViewLabel::build(&vs, &pg, VariantKind::Default).unwrap();
        for (k, p) in g.productions() {
            for i in 0..p.rhs.node_count() as u32 {
                assert_eq!(
                    se.i_mat(g, k, i).unwrap().as_ref(),
                    de.i_mat(g, k, i).unwrap().as_ref(),
                    "I({k},{i})"
                );
                assert_eq!(
                    se.o_mat(g, k, i).unwrap().as_ref(),
                    de.o_mat(g, k, i).unwrap().as_ref(),
                    "O({k},{i})"
                );
                for j in 0..p.rhs.node_count() as u32 {
                    assert_eq!(
                        se.z_mat(g, k, i, j).unwrap().as_ref(),
                        de.z_mat(g, k, i, j).unwrap().as_ref(),
                        "Z({k},{i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn inactive_productions_have_no_matrices() {
        let (ex, pg) = setup();
        let g = &ex.spec.grammar;
        let u2 = ex.view_u2();
        let vs = ViewSpec::new(&ex.spec, &u2);
        let vl = ViewLabel::build(&vs, &pg, VariantKind::Default).unwrap();
        // p5 = C -> W5 is inactive in U2 (C ∉ Δ′).
        assert!(!vl.prod_active(ex.prods[4]));
        assert!(vl.i_mat(g, ex.prods[4], 0).is_none());
        // p1 = S -> W1 is active.
        assert!(vl.prod_active(ex.prods[0]));
        assert!(vl.i_mat(g, ex.prods[0], 0).is_some());
    }

    #[test]
    fn broken_cycles_lose_their_cache() {
        let (ex, pg) = setup();
        let u2 = ex.view_u2();
        let vs = ViewSpec::new(&ex.spec, &u2);
        let vl = ViewLabel::build(&vs, &pg, VariantKind::QueryEfficient).unwrap();
        // Cycle 0 (A/B) is intact in U2; cycle 1 (D) is broken (C ∉ Δ′ means
        // p6 stays active? No: p6's LHS is D, and D ∉ Δ′ ⇒ inactive).
        assert!(vl.cycle_cache(0).is_some());
        assert!(vl.cycle_cache(1).is_none());
    }

    #[test]
    fn snapshot_roundtrips_every_variant() {
        let (ex, pg) = setup();
        let g = &ex.spec.grammar;
        for view in [ex.view_u1(), ex.view_u2()] {
            let vs = ViewSpec::new(&ex.spec, &view);
            for kind in
                [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient]
            {
                let vl = ViewLabel::build(&vs, &pg, kind).unwrap();
                let mut w = BitWriter::new();
                vl.write_snapshot(&mut w);
                let bits = w.finish();
                let mut r = BitReader::new(&bits);
                let back = ViewLabel::read_snapshot(&mut r, g, &pg).unwrap();
                assert_eq!(r.remaining(), 0, "{kind:?}: trailing bits");
                assert_eq!(back.kind(), kind);
                assert_ne!(back.uid(), vl.uid(), "{kind:?}: a loaded label needs a fresh uid");
                assert_eq!(back.lambda_star_s(), vl.lambda_star_s());
                assert_eq!(back.size_bits(), vl.size_bits(), "{kind:?}");
                for (k, p) in g.productions() {
                    assert_eq!(back.prod_active(k), vl.prod_active(k));
                    if !vl.prod_active(k) {
                        continue;
                    }
                    for i in 0..p.rhs.node_count() as u32 {
                        assert_eq!(
                            back.i_mat(g, k, i).unwrap().as_ref(),
                            vl.i_mat(g, k, i).unwrap().as_ref()
                        );
                        assert_eq!(
                            back.o_mat(g, k, i).unwrap().as_ref(),
                            vl.o_mat(g, k, i).unwrap().as_ref()
                        );
                        for j in 0..p.rhs.node_count() as u32 {
                            assert_eq!(
                                back.z_mat(g, k, i, j).unwrap().as_ref(),
                                vl.z_mat(g, k, i, j).unwrap().as_ref()
                            );
                        }
                    }
                }
                for s in 0..pg.cycle_count() as u32 {
                    assert_eq!(back.cycle_cache(s).is_some(), vl.cycle_cache(s).is_some());
                    if let (Some(bc), Some(oc)) = (back.cycle_cache(s), vl.cycle_cache(s)) {
                        assert_eq!(bc.i_prefix, oc.i_prefix);
                        assert_eq!(bc.o_prefix, oc.o_prefix);
                        for (bp, op) in bc.i_power.iter().zip(&oc.i_power) {
                            assert_eq!(bp.repeat_at(), op.repeat_at());
                            for e in 0..12u64 {
                                assert_eq!(bp.power(e), op.power(e));
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn snapshot_rejects_truncation_anywhere() {
        // Cutting the stream at any bit position must yield a typed error,
        // never a panic (OutOfBits mid-field, or Malformed if the shorter
        // stream happens to parse into an inconsistent structure — trailing
        // slack can make very late cuts still decode, so only assert no
        // panic + typed error for strict prefixes that fail).
        let (ex, pg) = setup();
        let g = &ex.spec.grammar;
        let u1 = ex.view_u1();
        let vs = ViewSpec::new(&ex.spec, &u1);
        let vl = ViewLabel::build(&vs, &pg, VariantKind::QueryEfficient).unwrap();
        let mut w = BitWriter::new();
        vl.write_snapshot(&mut w);
        let bits = w.finish();
        for cut in 0..bits.len() {
            let mut short = BitWriter::new();
            for b in bits.iter().take(cut) {
                short.push_bit(b);
            }
            let shorter = short.finish();
            let _ = ViewLabel::read_snapshot(&mut BitReader::new(&shorter), g, &pg);
        }
    }

    #[test]
    fn variant_codes_roundtrip() {
        for kind in [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient]
        {
            assert_eq!(VariantKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(VariantKind::from_code(3), None);
    }

    #[test]
    fn unsafe_view_rejected() {
        let spec = wf_model::fixtures::unsafe_example();
        let pg = ProdGraph::new(&spec.grammar);
        let view = spec.default_view();
        let vs = ViewSpec::new(&spec, &view);
        assert!(matches!(
            ViewLabel::build(&vs, &pg, VariantKind::Default),
            Err(FvlError::Unsafe(_))
        ));
    }
}
