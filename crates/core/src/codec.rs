//! Bit-exact wire encoding of data labels.
//!
//! Field widths are fixed by the *grammar* (production count, largest RHS,
//! cycle count, port count) — constants for a given specification, as
//! Theorem 10 assumes. Only the recursion-chain index `i` of `(s, t, i)`
//! labels grows with the run; it is Elias-γ coded, giving the `O(log n)`
//! bound. The producer/consumer paths of one item share a common prefix
//! (they were created by the same production), which the encoding factors
//! out, "reducing the size almost by half" (§4.2.2).

use crate::label::{DataLabel, LabelRef, PortLabel, PortRef};
use wf_analysis::ProdGraph;
use wf_bitio::{min_width, BitReader, BitVec, BitWriter, ReadError};
use wf_model::{Grammar, ProdId};
use wf_run::EdgeLabel;

/// Fixed-width parameters derived from a grammar.
#[derive(Clone, Debug)]
pub struct LabelCodec {
    k_bits: u32,
    pos_bits: u32,
    s_bits: u32,
    t_bits: u32,
    port_bits: u32,
}

impl LabelCodec {
    pub fn new(grammar: &Grammar, pg: &ProdGraph) -> Self {
        let k_bits = min_width(grammar.production_count().saturating_sub(1) as u64);
        let pos_bits = min_width(grammar.max_rhs_len().saturating_sub(1) as u64);
        let s_bits = min_width(pg.cycle_count().saturating_sub(1) as u64);
        let t_bits = min_width(pg.max_cycle_len().saturating_sub(1) as u64);
        let port_bits = min_width(grammar.max_ports().saturating_sub(1) as u64);
        Self { k_bits, pos_bits, s_bits, t_bits, port_bits }
    }

    /// Writes one parse-tree edge with this grammar's fixed field widths.
    /// Public so persisted stores (the snapshot trie) can share the wire
    /// format of §5 instead of inventing a second edge encoding.
    pub fn write_edge(&self, w: &mut BitWriter, e: &EdgeLabel) {
        match *e {
            EdgeLabel::Plain { k, i } => {
                w.push_bit(false);
                w.write_bits(k.0 as u64, self.k_bits);
                w.write_bits(i as u64, self.pos_bits);
            }
            EdgeLabel::Rec { s, t, i } => {
                w.push_bit(true);
                w.write_bits(s as u64, self.s_bits);
                w.write_bits(t as u64, self.t_bits);
                w.write_gamma(i + 1);
            }
        }
    }

    /// Reads one parse-tree edge (inverse of [`LabelCodec::write_edge`]).
    pub fn read_edge(&self, r: &mut BitReader<'_>) -> Result<EdgeLabel, ReadError> {
        if r.read_bit()? {
            let s = r.read_bits(self.s_bits)? as u32;
            let t = r.read_bits(self.t_bits)? as u32;
            let i = r.read_gamma()? - 1;
            Ok(EdgeLabel::Rec { s, t, i })
        } else {
            let k = ProdId(r.read_bits(self.k_bits)? as u32);
            let i = r.read_bits(self.pos_bits)? as u32;
            Ok(EdgeLabel::Plain { k, i })
        }
    }

    fn write_suffix(&self, w: &mut BitWriter, p: PortRef<'_>, skip: usize) {
        w.write_gamma((p.path.len() - skip) as u64 + 1);
        for e in &p.path[skip..] {
            self.write_edge(w, e);
        }
        w.write_bits(p.port as u64, self.port_bits);
    }

    /// Encodes a data label. Layout: two presence bits; if both sides are
    /// present, the shared path prefix is stored once.
    pub fn encode(&self, d: &DataLabel) -> BitVec {
        self.encode_ref(d.to_ref())
    }

    /// [`LabelCodec::encode`] over a borrowed label — the form interned
    /// stores produce ([`crate::LabelRef`]), so measuring or persisting a
    /// stored label never materializes an owning [`DataLabel`].
    pub fn encode_ref(&self, d: LabelRef<'_>) -> BitVec {
        let mut w = BitWriter::new();
        w.push_bit(d.out.is_some());
        w.push_bit(d.inp.is_some());
        match (d.out, d.inp) {
            (Some(o), Some(i)) => {
                let cp = o.common_prefix_len(&i);
                w.write_gamma(cp as u64 + 1);
                for e in &o.path[..cp] {
                    self.write_edge(&mut w, e);
                }
                self.write_suffix(&mut w, o, cp);
                self.write_suffix(&mut w, i, cp);
            }
            (Some(o), None) => self.write_suffix(&mut w, o, 0),
            (None, Some(i)) => self.write_suffix(&mut w, i, 0),
            (None, None) => unreachable!("a data item has at least one endpoint"),
        }
        w.finish()
    }

    /// Decodes a data label (inverse of [`LabelCodec::encode`]).
    pub fn decode(&self, bits: &BitVec) -> Result<DataLabel, ReadError> {
        let mut r = BitReader::new(bits);
        let has_out = r.read_bit()?;
        let has_inp = r.read_bit()?;
        let read_suffix =
            |r: &mut BitReader<'_>, prefix: &[EdgeLabel]| -> Result<PortLabel, ReadError> {
                let extra = (r.read_gamma()? - 1) as usize;
                let mut path = prefix.to_vec();
                path.reserve(extra);
                for _ in 0..extra {
                    path.push(self.read_edge(r)?);
                }
                let port = r.read_bits(self.port_bits)? as u8;
                Ok(PortLabel { path, port })
            };
        match (has_out, has_inp) {
            (true, true) => {
                let cp = (r.read_gamma()? - 1) as usize;
                let mut prefix = Vec::with_capacity(cp);
                for _ in 0..cp {
                    prefix.push(self.read_edge(&mut r)?);
                }
                let out = read_suffix(&mut r, &prefix)?;
                let inp = read_suffix(&mut r, &prefix)?;
                Ok(DataLabel { out: Some(out), inp: Some(inp) })
            }
            (true, false) => Ok(DataLabel { out: Some(read_suffix(&mut r, &[])?), inp: None }),
            (false, true) => Ok(DataLabel { out: None, inp: Some(read_suffix(&mut r, &[])?) }),
            (false, false) => Err(ReadError::Malformed),
        }
    }

    /// Size of the encoded label in bits — the quantity Figures 17/21/24
    /// report.
    pub fn encoded_bits(&self, d: &DataLabel) -> usize {
        self.encode(d).len()
    }

    /// [`LabelCodec::encoded_bits`] over a borrowed label.
    pub fn encoded_bits_ref(&self, d: LabelRef<'_>) -> usize {
        self.encode_ref(d).len()
    }

    /// Size without prefix factoring — the ablation baseline (and the DRL
    /// encoding convention, see DESIGN.md S3).
    pub fn encoded_bits_unfactored(&self, d: &DataLabel) -> usize {
        let mut w = BitWriter::new();
        w.push_bit(d.out.is_some());
        w.push_bit(d.inp.is_some());
        if let Some(o) = &d.out {
            self.write_suffix(&mut w, o.to_ref(), 0);
        }
        if let Some(i) = &d.inp {
            self.write_suffix(&mut w, i.to_ref(), 0);
        }
        w.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;

    fn codec() -> LabelCodec {
        let ex = paper_example();
        let pg = ProdGraph::new(&ex.spec.grammar);
        LabelCodec::new(&ex.spec.grammar, &pg)
    }

    fn sample_label() -> DataLabel {
        // Example 15's d21, transcribed 0-based.
        let o = PortLabel::new(
            vec![
                EdgeLabel::Plain { k: ProdId(0), i: 2 },
                EdgeLabel::Rec { s: 0, t: 0, i: 4 },
                EdgeLabel::Plain { k: ProdId(2), i: 1 },
                EdgeLabel::Plain { k: ProdId(4), i: 0 },
            ],
            0,
        );
        let i = PortLabel::new(
            vec![
                EdgeLabel::Plain { k: ProdId(0), i: 2 },
                EdgeLabel::Rec { s: 0, t: 0, i: 4 },
                EdgeLabel::Plain { k: ProdId(2), i: 1 },
                EdgeLabel::Plain { k: ProdId(4), i: 1 },
                EdgeLabel::Rec { s: 1, t: 0, i: 0 },
            ],
            1,
        );
        DataLabel::intermediate(o, i)
    }

    #[test]
    fn roundtrip_example15_label() {
        let c = codec();
        let d = sample_label();
        let bits = c.encode(&d);
        let back = c.decode(&bits).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn prefix_factoring_saves_bits() {
        let c = codec();
        let d = sample_label();
        // The paper: "the first three edge labels can be factored out".
        assert_eq!(d.out.as_ref().unwrap().common_prefix_len(d.inp.as_ref().unwrap()), 3);
        assert!(c.encoded_bits(&d) < c.encoded_bits_unfactored(&d));
    }

    #[test]
    fn boundary_labels_roundtrip() {
        let c = codec();
        let init = DataLabel::initial_input(PortLabel::new(vec![], 1));
        assert_eq!(c.decode(&c.encode(&init)).unwrap(), init);
        let fin =
            DataLabel::final_output(PortLabel::new(vec![EdgeLabel::Rec { s: 0, t: 1, i: 0 }], 2));
        assert_eq!(c.decode(&c.encode(&fin)).unwrap(), fin);
    }

    #[test]
    fn chain_index_cost_is_logarithmic() {
        let c = codec();
        let mk = |i: u64| {
            DataLabel::initial_input(PortLabel::new(vec![EdgeLabel::Rec { s: 0, t: 0, i }], 0))
        };
        let small = c.encoded_bits(&mk(1));
        let large = c.encoded_bits(&mk(1 << 20));
        // 2^20-fold chain growth costs ~40 extra bits, not 2^20.
        assert!(large - small < 64, "small={small} large={large}");
        assert_eq!(c.decode(&c.encode(&mk(1 << 20))).unwrap(), mk(1 << 20));
    }
}
