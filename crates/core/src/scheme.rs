//! The FVL facade: one object tying together preprocessing, run labeling,
//! view labeling and querying.

use crate::codec::LabelCodec;
use crate::decode::{pi_with, structural, DecodeCtx, QueryScratch};
use crate::error::FvlError;
use crate::label::{DataLabel, LabelRef};
use crate::labeler::RunLabeler;
use crate::viewlabel::{VariantKind, ViewLabel};
use crate::visibility::{is_visible, is_visible_ref};
use std::sync::Arc;
use wf_analysis::{classify_with, ProdGraph, RecursionClass};
use wf_model::{ModuleId, Spec, View, ViewSpec};
use wf_run::Run;

/// How an [`Fvl`] holds its specification: borrowed from the caller (the
/// original construction path) or shared ownership via [`Arc`]. The `Arc`
/// form is what breaks the borrow chain for long-lived serving stacks — an
/// `Fvl<'static>` can be moved into generation objects, published across
/// threads and outlive every stack frame, while the borrowed form keeps
/// one-shot usage allocation-free. Both variants are covariant in `'a`, so
/// an `&Fvl<'static>` coerces wherever an `&'e Fvl<'e>` is expected.
enum SpecHolder<'a> {
    Borrowed(&'a Spec),
    Shared(Arc<Spec>),
}

impl SpecHolder<'_> {
    #[inline]
    fn get(&self) -> &Spec {
        match self {
            SpecHolder::Borrowed(s) => s,
            SpecHolder::Shared(s) => s,
        }
    }
}

/// The view-adaptive dynamic labeling scheme for one specification.
///
/// Construction performs the §4.1 preprocessing (production-graph edge ids
/// and cycle tables) and rejects grammars that are not strictly
/// linear-recursive — for those, compact dynamic labels do not exist
/// (Theorem 6), and for non-linear ones they do not exist even for
/// black-box dependencies (Theorem 3).
///
/// [`Fvl::new`] borrows the caller's [`Spec`]; [`Fvl::from_arc`] shares
/// ownership instead and yields an `Fvl<'static>` that serving layers can
/// own outright (see `wf-engine`'s generation objects).
pub struct Fvl<'a> {
    spec: SpecHolder<'a>,
    pg: ProdGraph,
    codec: LabelCodec,
    class: RecursionClass,
}

impl<'a> Fvl<'a> {
    pub fn new(spec: &'a Spec) -> Result<Self, FvlError> {
        Self::build(SpecHolder::Borrowed(spec))
    }

    /// [`Fvl::new`] over shared ownership: the scheme keeps the spec alive
    /// itself, so the result is `'static` — movable into owned, published
    /// engine generations instead of being borrow-chained to a stack frame.
    pub fn from_arc(spec: Arc<Spec>) -> Result<Fvl<'static>, FvlError> {
        Fvl::build(SpecHolder::Shared(spec))
    }

    fn build(holder: SpecHolder<'a>) -> Result<Self, FvlError> {
        let spec = holder.get();
        let pg = ProdGraph::new(&spec.grammar);
        let class = classify_with(&spec.grammar, &pg);
        if !class.is_strictly_linear() {
            let witness =
                pg.cycles().err().map(|c| ModuleId(c.witness.0)).unwrap_or(spec.grammar.start());
            return Err(FvlError::NotStrictlyLinear { witness });
        }
        let codec = LabelCodec::new(&spec.grammar, &pg);
        Ok(Self { spec: holder, pg, codec, class })
    }

    pub fn spec(&self) -> &Spec {
        self.spec.get()
    }

    pub fn prod_graph(&self) -> &ProdGraph {
        &self.pg
    }

    pub fn codec(&self) -> &LabelCodec {
        &self.codec
    }

    pub fn recursion_class(&self) -> RecursionClass {
        self.class
    }

    /// Attaches a dynamic labeler to a run (labels any existing history,
    /// then follows new steps via [`RunLabeler::on_step`]).
    pub fn labeler(&self, run: &Run) -> RunLabeler {
        RunLabeler::start(&self.spec.get().grammar, &self.pg, run)
    }

    /// Statically labels a view (§4.3). Fails on unsafe views (Theorem 1).
    pub fn label_view(&self, view: &View, kind: VariantKind) -> Result<ViewLabel, FvlError> {
        let vs = ViewSpec::new(self.spec.get(), view);
        ViewLabel::build(&vs, &self.pg, kind)
    }

    /// Opens a query session against one view label: the [`DecodeCtx`] is
    /// built once and a [`QueryScratch`] is reused across every query, so
    /// steady-state querying allocates nothing. This is the serving path;
    /// [`Fvl::query`] is the one-shot convenience form.
    pub fn session<'s>(&'s self, vl: &'s ViewLabel) -> FvlSession<'s> {
        FvlSession {
            ctx: DecodeCtx::new(&self.spec.get().grammar, &self.pg, vl),
            scratch: QueryScratch::new(),
        }
    }

    /// π with a visibility pre-check: `None` iff either item is invisible
    /// in the view; otherwise the (constant-time) dependency answer.
    ///
    /// Convenience wrapper: rebuilds the decode context and scratch per
    /// call. Many-query workloads should hold an [`FvlSession`] (or pass a
    /// scratch to [`Fvl::query_with`]) instead.
    pub fn query(&self, vl: &ViewLabel, d1: &DataLabel, d2: &DataLabel) -> Option<bool> {
        let mut scratch = QueryScratch::new();
        self.query_with(vl, &mut scratch, d1, d2)
    }

    /// [`Fvl::query`] with caller-owned scratch state. One scratch may be
    /// shared across any mix of view labels: its chain memo is keyed by
    /// [`ViewLabel::uid`], so views can never poison each other's entries
    /// ([`QueryScratch::clear_memo`] merely bounds long-session memory).
    pub fn query_with(
        &self,
        vl: &ViewLabel,
        scratch: &mut QueryScratch,
        d1: &DataLabel,
        d2: &DataLabel,
    ) -> Option<bool> {
        if !is_visible(d1, vl, &self.pg) || !is_visible(d2, vl, &self.pg) {
            return None;
        }
        let ctx = DecodeCtx::new(&self.spec.get().grammar, &self.pg, vl);
        pi_with(&ctx, scratch, d1.to_ref(), d2.to_ref())
    }

    /// Raw π without the visibility pre-check (benchmark hot path; only
    /// meaningful for visible items). One-shot convenience form.
    pub fn query_unchecked(&self, vl: &ViewLabel, d1: &DataLabel, d2: &DataLabel) -> Option<bool> {
        let mut scratch = QueryScratch::new();
        self.query_unchecked_with(vl, &mut scratch, d1, d2)
    }

    /// [`Fvl::query_unchecked`] with caller-owned scratch state (same
    /// share-freely semantics as [`Fvl::query_with`]).
    pub fn query_unchecked_with(
        &self,
        vl: &ViewLabel,
        scratch: &mut QueryScratch,
        d1: &DataLabel,
        d2: &DataLabel,
    ) -> Option<bool> {
        let ctx = DecodeCtx::new(&self.spec.get().grammar, &self.pg, vl);
        pi_with(&ctx, scratch, d1.to_ref(), d2.to_ref())
    }

    /// Builds the Matrix-Free structural index for a black-box view (§6.4).
    pub fn structural_index(&self, view: &View) -> structural::StructuralIndex {
        structural::StructuralIndex::build(&self.spec.get().grammar, |k| {
            view.expands(self.spec.get().grammar.production(k).lhs)
        })
    }

    /// Matrix-Free query (only valid on coarse-grained views + visible
    /// items).
    pub fn query_structural(
        &self,
        idx: &structural::StructuralIndex,
        d1: &DataLabel,
        d2: &DataLabel,
    ) -> Option<bool> {
        structural::pi_structural(&self.pg, idx, d1, d2)
    }

    pub fn is_visible(&self, vl: &ViewLabel, d: &DataLabel) -> bool {
        is_visible(d, vl, &self.pg)
    }
}

// A frozen serving core shares `&Fvl` across worker threads; the scheme
// object must stay free of interior mutability (see the matching
// assertions in `decode`).
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<Fvl<'static>>();
};

/// A query session: one [`DecodeCtx`] (built once per view) plus one
/// [`QueryScratch`] reused across queries. In steady state — once the pool
/// has warmed up and every distinct recursion-chain exponent has been seen —
/// a query performs no allocation at all.
pub struct FvlSession<'s> {
    ctx: DecodeCtx<'s>,
    scratch: QueryScratch,
}

impl<'s> FvlSession<'s> {
    /// The view label this session serves.
    pub fn view_label(&self) -> &'s ViewLabel {
        self.ctx.vl
    }

    /// π with the visibility pre-check (see [`Fvl::query`]).
    pub fn query(&mut self, d1: &DataLabel, d2: &DataLabel) -> Option<bool> {
        self.query_ref(d1.to_ref(), d2.to_ref())
    }

    /// Raw π without the visibility pre-check.
    pub fn query_unchecked(&mut self, d1: &DataLabel, d2: &DataLabel) -> Option<bool> {
        pi_with(&self.ctx, &mut self.scratch, d1.to_ref(), d2.to_ref())
    }

    /// [`FvlSession::query`] over borrowed labels (what interned label
    /// stores feed in without materializing owned labels).
    pub fn query_ref(&mut self, d1: LabelRef<'_>, d2: LabelRef<'_>) -> Option<bool> {
        if !is_visible_ref(d1, self.ctx.vl, self.ctx.pg)
            || !is_visible_ref(d2, self.ctx.vl, self.ctx.pg)
        {
            return None;
        }
        pi_with(&self.ctx, &mut self.scratch, d1, d2)
    }

    /// Session scratch diagnostics: (pooled matrices, memoized powers).
    pub fn scratch_stats(&self) -> (usize, usize) {
        (self.scratch.pooled_mats(), self.scratch.memoized_powers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::{nonstrict_example, paper_example};
    use wf_run::fixtures::figure3_run;

    #[test]
    fn rejects_nonstrict_grammar() {
        let spec = nonstrict_example();
        assert!(matches!(Fvl::new(&spec), Err(FvlError::NotStrictlyLinear { .. })));
    }

    /// End-to-end Example 8: label once, query under both views.
    #[test]
    fn example8_end_to_end() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, ids) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);

        let u1 = ex.view_u1();
        let u2 = ex.view_u2();
        let vl1 = fvl.label_view(&u1, VariantKind::Default).unwrap();
        let vl2 = fvl.label_view(&u2, VariantKind::Default).unwrap();

        let d17 = labeler.label(ids.d17);
        let d31 = labeler.label(ids.d31);
        // "Does d31 depend on d17?" — no in U1, yes in U2. Same data labels!
        assert_eq!(fvl.query(&vl1, d17, d31), Some(false));
        assert_eq!(fvl.query(&vl2, d17, d31), Some(true));
        // d21 is invisible in U2.
        let d21 = labeler.label(ids.d21);
        assert_eq!(fvl.query(&vl2, d21, d31), None);
        assert!(fvl.query(&vl1, d21, d31).is_some());
    }

    /// A session must answer exactly like the one-shot path, for every pair
    /// of the Figure 3 run under all three variants, and settle into an
    /// allocation-free steady state (pool/memo sizes stop growing).
    #[test]
    fn session_agrees_with_one_shot_queries() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let labels = labeler.labels();
        let u1 = ex.view_u1();
        for kind in [VariantKind::SpaceEfficient, VariantKind::Default, VariantKind::QueryEfficient]
        {
            let vl = fvl.label_view(&u1, kind).unwrap();
            let mut session = fvl.session(&vl);
            for d1 in labels {
                for d2 in labels {
                    assert_eq!(session.query(d1, d2), fvl.query(&vl, d1, d2), "{kind:?}");
                }
            }
            // One more sweep finishes warm-up (memo insertions during the
            // first sweep move pool buffers into the memo, so the pool can
            // still top up once); after that the scratch must be at a fixed
            // point — no growth, i.e. no allocations, in steady state.
            for d1 in labels {
                for d2 in labels {
                    session.query(d1, d2);
                }
            }
            let warm = session.scratch_stats();
            for d1 in labels {
                for d2 in labels {
                    session.query(d1, d2);
                }
            }
            assert_eq!(session.scratch_stats(), warm, "{kind:?} steady state");
        }
    }
}
