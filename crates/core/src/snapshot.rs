//! Bit-level (de)serialization hooks for persisted engines.
//!
//! The §5 codec ([`crate::LabelCodec`]) defines the wire format of *data*
//! labels; this module adds the remaining primitives a snapshot of a serving
//! engine needs: boolean matrices and (partial) dependency assignments, both
//! written through [`wf_bitio`]'s appending writer so a snapshot is one
//! contiguous bit stream. The container format around these primitives
//! (header, versioning, checksum) lives in `wf-snapshot`; the engine-side
//! sections (label-store trie, view registry) live in `wf-engine`.
//!
//! Every reader is panic-free on arbitrary input: structural violations
//! (matrix wider than the 64-column [`BoolMat`] bound, module index past the
//! caller's cap, …) surface as [`ReadError::Malformed`], never as a panic —
//! a snapshot loaded from disk is untrusted input.

use wf_bitio::{BitReader, BitWriter, ReadError};
use wf_boolmat::BoolMat;
use wf_model::{DepAssignment, ModuleId};

/// Writes a matrix: γ-coded dimensions, then one `cols`-wide field per row.
pub fn write_mat(w: &mut BitWriter, m: &BoolMat) {
    w.write_gamma(m.rows() as u64 + 1);
    w.write_gamma(m.cols() as u64 + 1);
    for r in 0..m.rows() {
        w.write_bits(m.row_bits(r), m.cols() as u32);
    }
}

/// Reads a matrix (inverse of [`write_mat`]). Rejects dimensions outside
/// [`BoolMat`]'s representable range *before* constructing anything.
pub fn read_mat(r: &mut BitReader<'_>) -> Result<BoolMat, ReadError> {
    let rows = (r.read_gamma()? - 1) as usize;
    let cols = (r.read_gamma()? - 1) as usize;
    if cols > 64 || rows > u16::MAX as usize {
        return Err(ReadError::Malformed);
    }
    let mut m = BoolMat::zeros(rows, cols);
    for row in 0..rows {
        m.set_row_bits(row, r.read_bits(cols as u32)?);
    }
    Ok(m)
}

/// Writes a dependency assignment: γ-coded entry count, then per entry the
/// γ-coded module index and its matrix.
pub fn write_deps(w: &mut BitWriter, d: &DepAssignment) {
    w.write_gamma(d.iter().count() as u64 + 1);
    for (m, mat) in d.iter() {
        w.write_gamma(m.0 as u64 + 1);
        write_mat(w, mat);
    }
}

/// Reads a dependency assignment (inverse of [`write_deps`]). `max_modules`
/// caps the module indices (the caller passes its grammar's module count),
/// so corrupt input cannot drive an unbounded allocation. Entries must be
/// strictly increasing — the order [`write_deps`] emits — so duplicate
/// indices (which `DepAssignment::set` would silently collapse, breaking
/// re-save byte identity) are rejected as malformed, and the encoding is
/// canonical.
pub fn read_deps(r: &mut BitReader<'_>, max_modules: usize) -> Result<DepAssignment, ReadError> {
    let count = (r.read_gamma()? - 1) as usize;
    if count > max_modules {
        return Err(ReadError::Malformed);
    }
    let mut d = DepAssignment::new();
    let mut prev: Option<usize> = None;
    for _ in 0..count {
        let idx = (r.read_gamma()? - 1) as usize;
        if idx >= max_modules || prev.is_some_and(|p| idx <= p) {
            return Err(ReadError::Malformed);
        }
        prev = Some(idx);
        d.set(ModuleId(idx as u32), read_mat(r)?);
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_bitio::BitVec;

    fn roundtrip_mat(m: &BoolMat) -> BoolMat {
        let mut w = BitWriter::new();
        write_mat(&mut w, m);
        let bits = w.finish();
        let mut r = BitReader::new(&bits);
        let back = read_mat(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        back
    }

    #[test]
    fn mat_roundtrips() {
        for m in [
            BoolMat::zeros(0, 0),
            BoolMat::zeros(3, 0),
            BoolMat::zeros(0, 7),
            BoolMat::identity(5),
            BoolMat::complete(2, 64),
            BoolMat::from_pairs(4, 6, [(0, 5), (2, 0), (3, 3)]),
        ] {
            assert_eq!(roundtrip_mat(&m), m);
        }
    }

    #[test]
    fn mat_rejects_oversized_dimensions() {
        let mut w = BitWriter::new();
        w.write_gamma(2); // 1 row
        w.write_gamma(66); // 65 columns: over the BoolMat bound
        w.write_bits(0, 64);
        let bits = w.finish();
        assert_eq!(read_mat(&mut BitReader::new(&bits)), Err(ReadError::Malformed));
        let empty = BitVec::new();
        assert_eq!(read_mat(&mut BitReader::new(&empty)), Err(ReadError::OutOfBits));
    }

    #[test]
    fn deps_roundtrip_and_cap() {
        let mut d = DepAssignment::new();
        d.set(ModuleId(0), BoolMat::identity(2));
        d.set(ModuleId(7), BoolMat::complete(1, 3));
        let mut w = BitWriter::new();
        write_deps(&mut w, &d);
        let bits = w.finish();
        let back = read_deps(&mut BitReader::new(&bits), 8).unwrap();
        assert_eq!(back.iter().count(), 2);
        assert_eq!(back.get(ModuleId(7)), d.get(ModuleId(7)));
        assert_eq!(back.get(ModuleId(0)), d.get(ModuleId(0)));
        // The same stream read under a tighter cap is rejected, not allocated.
        assert!(matches!(read_deps(&mut BitReader::new(&bits), 7), Err(ReadError::Malformed)));
    }

    #[test]
    fn deps_reject_duplicate_and_unordered_entries() {
        // Two entries for the same module would silently collapse through
        // DepAssignment::set (breaking re-save byte identity), and
        // out-of-order entries break the canonical encoding — both are
        // malformed, not accepted.
        for indices in [[3u64, 3], [4, 2]] {
            let mut w = BitWriter::new();
            w.write_gamma(3); // two entries
            for idx in indices {
                w.write_gamma(idx + 1);
                write_mat(&mut w, &BoolMat::identity(1));
            }
            let bits = w.finish();
            assert!(
                matches!(read_deps(&mut BitReader::new(&bits), 8), Err(ReadError::Malformed)),
                "{indices:?}"
            );
        }
    }
}
