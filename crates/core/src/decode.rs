//! The decoding predicate π (Algorithms 1 and 2, §4.4) and the Matrix-Free
//! structural fast path for black-box views (§6.4).
//!
//! All indices here are 0-based (the paper counts from 1): a recursion-chain
//! label `Rec{s, t, i}` denotes the `i`-th chain child, whose `Inputs`
//! matrix is the product of `i` per-step matrices `I(C(s)[t]), …,
//! I(C(s)[t+i−1])` (wrapping around the cycle). The chain products reduce to
//! `X_t^q · P_t(r)` where `X_t` is the full-cycle product — evaluated in
//! O(log) by binary exponentiation (Default / Space-Efficient) or O(1) via
//! the materialized power caches (Query-Efficient, Lemma 5).
//!
//! Every entry point returns `Option<bool>`: `None` means the labels refer
//! to productions outside the view (the item is invisible, §5); callers
//! that pre-check visibility can unwrap.

use crate::label::{DataLabel, PortLabel};
use crate::viewlabel::ViewLabel;
use std::borrow::Cow;
use wf_analysis::ProdGraph;
use wf_boolmat::{pow, BoolMat};
use wf_model::{Grammar, ProdId};
use wf_run::EdgeLabel;

/// Everything a query needs: the (static) grammar and production graph plus
/// one view label.
pub struct DecodeCtx<'a> {
    pub grammar: &'a Grammar,
    pub pg: &'a ProdGraph,
    pub vl: &'a ViewLabel,
}

impl<'a> DecodeCtx<'a> {
    pub fn new(grammar: &'a Grammar, pg: &'a ProdGraph, vl: &'a ViewLabel) -> Self {
        Self { grammar, pg, vl }
    }

    /// Input arity of the module at position `i` of production `k`.
    fn in_dim(&self, k: ProdId, i: u32) -> usize {
        self.grammar.sig(self.grammar.production(k).rhs.nodes()[i as usize]).inputs()
    }

    fn out_dim(&self, k: ProdId, i: u32) -> usize {
        self.grammar.sig(self.grammar.production(k).rhs.nodes()[i as usize]).outputs()
    }

    /// Input arity of the cycle module at offset `pos` (wrapping).
    fn cycle_in_dim(&self, s: u32, pos: usize) -> Option<usize> {
        let cycle = self.pg.cycles().ok()?.get(s as usize)?;
        Some(self.grammar.sig(cycle.modules[pos % cycle.len()]).inputs())
    }

    fn cycle_out_dim(&self, s: u32, pos: usize) -> Option<usize> {
        let cycle = self.pg.cycles().ok()?.get(s as usize)?;
        Some(self.grammar.sig(cycle.modules[pos % cycle.len()]).outputs())
    }

    /// Algorithm 1, `Inputs`: the reachability matrix selected by one edge
    /// label.
    pub fn inputs_of(&self, e: &EdgeLabel) -> Option<Cow<'_, BoolMat>> {
        match *e {
            EdgeLabel::Plain { k, i } => self.vl.i_mat(self.grammar, k, i),
            EdgeLabel::Rec { s, t, i } => self.inputs_chain(s, t as usize, i).map(Cow::Owned),
        }
    }

    /// Algorithm 1's dual for output ports.
    pub fn outputs_of(&self, e: &EdgeLabel) -> Option<Cow<'_, BoolMat>> {
        match *e {
            EdgeLabel::Plain { k, i } => self.vl.o_mat(self.grammar, k, i),
            EdgeLabel::Rec { s, t, i } => self.outputs_chain(s, t as usize, i).map(Cow::Owned),
        }
    }

    /// `P_t(count)` for the I-chain of cycle `s`: the product of `count`
    /// per-step matrices starting at offset `t`.
    pub fn inputs_chain(&self, s: u32, t: usize, count: u64) -> Option<BoolMat> {
        self.chain(s, t, count, true)
    }

    /// `P_t(count)` for the (reversed) O-chain.
    pub fn outputs_chain(&self, s: u32, t: usize, count: u64) -> Option<BoolMat> {
        self.chain(s, t, count, false)
    }

    fn chain(&self, s: u32, t: usize, count: u64, inputs: bool) -> Option<BoolMat> {
        let cycle = self.pg.cycles().ok()?.get(s as usize)?;
        let l = cycle.len();
        let t = t % l;
        let dim = if inputs { self.cycle_in_dim(s, t)? } else { self.cycle_out_dim(s, t)? };
        if count == 0 {
            return Some(BoolMat::identity(dim));
        }
        // Query-Efficient: O(1) via prefix products + power cache (§4.4.3).
        if let Some(cache) = self.vl.cycle_cache(s) {
            let q = count / l as u64;
            let r = (count % l as u64) as usize;
            let (power, prefix) = if inputs {
                (cache.i_power[t].power(q), &cache.i_prefix[t][r])
            } else {
                (cache.o_power[t].power(q), &cache.o_prefix[t][r])
            };
            return Some(power.matmul(prefix));
        }
        // Default / Space-Efficient: assemble per-step matrices, then use
        // divide-and-conquer exponentiation for the full-cycle part.
        let step = |pos: usize| -> Option<Cow<'_, BoolMat>> {
            let (k, i) = cycle.edge_at(pos);
            if inputs {
                self.vl.i_mat(self.grammar, k, i)
            } else {
                self.vl.o_mat(self.grammar, k, i)
            }
        };
        let partial = |from: usize, n: usize| -> Option<BoolMat> {
            let mut acc = BoolMat::identity(if inputs {
                self.cycle_in_dim(s, from)?
            } else {
                self.cycle_out_dim(s, from)?
            });
            for a in 0..n {
                acc = acc.matmul(step(from + a)?.as_ref());
            }
            Some(acc)
        };
        if count < l as u64 {
            return partial(t, count as usize);
        }
        let x_t = partial(t, l)?;
        let q = count / l as u64;
        let r = (count % l as u64) as usize;
        Some(pow(&x_t, q).matmul(&partial(t, r)?))
    }

    /// Left-fold of `Inputs` matrices over a path suffix, starting from the
    /// identity on `init_dim` ports.
    fn fold_inputs(&self, labels: &[EdgeLabel], init_dim: usize) -> Option<BoolMat> {
        let mut acc = BoolMat::identity(init_dim);
        for e in labels {
            acc = acc.matmul(self.inputs_of(e)?.as_ref());
        }
        Some(acc)
    }

    fn fold_outputs(&self, labels: &[EdgeLabel], init_dim: usize) -> Option<BoolMat> {
        let mut acc = BoolMat::identity(init_dim);
        for e in labels {
            acc = acc.matmul(self.outputs_of(e)?.as_ref());
        }
        Some(acc)
    }
}

/// Algorithm 2: `π(φr(d1), φr(d2), φv(U))` — true iff `d2` depends on `d1`
/// w.r.t. the view. `None` when a label refers outside the view.
pub fn pi(ctx: &DecodeCtx<'_>, d1: &DataLabel, d2: &DataLabel) -> Option<bool> {
    // Case I: d1 is a final output or d2 is an initial input.
    let Some(i1) = &d1.inp else { return Some(false) };
    let Some(o2) = &d2.out else { return Some(false) };
    match (&d1.out, &d2.inp) {
        // Case II: initial input -> final output: λ*(S) decides directly.
        (None, None) => Some(ctx.vl.lambda_star_s().get(i1.port as usize, o2.port as usize)),
        // Case III: initial input -> intermediate: chain the I-matrices
        // down d2's consumer path.
        (None, Some(i2)) => {
            let m = ctx.fold_inputs(&i2.path, ctx.vl.lambda_star_s().rows())?;
            Some(m.get(i1.port as usize, i2.port as usize))
        }
        // Case IV: intermediate -> final output: chain O-matrices down d1's
        // producer path (reversed orientation).
        (Some(o1), None) => {
            let m = ctx.fold_outputs(&o1.path, ctx.vl.lambda_star_s().cols())?;
            Some(m.get(o2.port as usize, o1.port as usize))
        }
        // Main cases: both intermediate.
        (Some(o1), Some(i2)) => main_case(ctx, o1, i2),
    }
}

fn main_case(ctx: &DecodeCtx<'_>, o1: &PortLabel, i2: &PortLabel) -> Option<bool> {
    let l1 = &o1.path;
    let l2 = &i2.path;
    let div = o1.common_prefix_len(i2);
    // Case 1: same node or ancestor/descendant — an output port never
    // reaches back inside its own module's expansion.
    if div == l1.len() || div == l2.len() {
        return Some(false);
    }
    match (l1[div], l2[div]) {
        // Case 2a: the least common ancestor is an ordinary production node.
        (EdgeLabel::Plain { k, i }, EdgeLabel::Plain { k: k2, i: j }) => {
            debug_assert_eq!(k, k2, "siblings share their production");
            if i >= j {
                return Some(false); // Z(k,i,j) is empty for i ≥ j
            }
            let o = ctx.fold_outputs(&l1[div + 1..], ctx.out_dim(k, i))?;
            let z = ctx.vl.z_mat(ctx.grammar, k, i, j)?;
            let im = ctx.fold_inputs(&l2[div + 1..], ctx.in_dim(k, j))?;
            let res = o.transpose().matmul(z.as_ref()).matmul(&im);
            Some(res.get(o1.port as usize, i2.port as usize))
        }
        // Case 2b: the least common ancestor is a recursive node.
        (EdgeLabel::Rec { s, t, i: a }, EdgeLabel::Rec { s: s2, t: t2, i: b }) => {
            debug_assert_eq!((s, t), (s2, t2), "chain siblings share their recursion");
            let cycle = ctx.pg.cycles().ok()?.get(s as usize)?;
            let _l = cycle.len();
            if a < b {
                // d1's branch is an ancestor level of d2's chain position.
                if l1.len() == div + 1 {
                    return Some(false); // o1 is a port of chain child a itself
                }
                let EdgeLabel::Plain { k: kp, i: ip } = l1[div + 1] else {
                    debug_assert!(false, "chain child expands through a plain edge");
                    return None;
                };
                let (k_exp, jp) = cycle.edge_at(t as usize + a as usize);
                debug_assert_eq!(kp, k_exp, "child a expands via its cycle production");
                if ip >= jp {
                    return Some(false); // Z(k', i', j') is empty
                }
                let o = ctx.fold_outputs(&l1[div + 2..], ctx.out_dim(kp, ip))?;
                let z = ctx.vl.z_mat(ctx.grammar, kp, ip, jp)?;
                let i_chain = ctx.inputs_chain(s, t as usize + a as usize + 1, b - a - 1)?;
                let i_fold =
                    ctx.fold_inputs(&l2[div + 1..], ctx.cycle_in_dim(s, t as usize + b as usize)?)?;
                let res = o.transpose().matmul(z.as_ref()).matmul(&i_chain).matmul(&i_fold);
                Some(res.get(o1.port as usize, i2.port as usize))
            } else {
                // a > b: d2's branch is the ancestor level.
                if l2.len() == div + 1 {
                    return Some(false); // i2 is a port of chain child b itself
                }
                let EdgeLabel::Plain { k: kq, i: iq } = l2[div + 1] else {
                    debug_assert!(false, "chain child expands through a plain edge");
                    return None;
                };
                let (k_exp, jq) = cycle.edge_at(t as usize + b as usize);
                debug_assert_eq!(kq, k_exp);
                if jq >= iq {
                    return Some(false); // Z(k'', j'', i'') is empty
                }
                let o_chain = ctx.outputs_chain(s, t as usize + b as usize + 1, a - b - 1)?;
                let o_fold = ctx
                    .fold_outputs(&l1[div + 1..], ctx.cycle_out_dim(s, t as usize + a as usize)?)?;
                let z = ctx.vl.z_mat(ctx.grammar, kq, jq, iq)?;
                let i_fold = ctx.fold_inputs(&l2[div + 2..], ctx.in_dim(kq, iq))?;
                let res = o_chain.matmul(&o_fold).transpose().matmul(z.as_ref()).matmul(&i_fold);
                Some(res.get(o1.port as usize, i2.port as usize))
            }
        }
        _ => {
            debug_assert!(false, "sibling edges cannot mix plain and recursive labels");
            None
        }
    }
}

pub mod structural {
    //! Matrix-Free decoding for black-box (coarse-grained) views (§6.4).
    //!
    //! Under black-box dependencies every module passes everything through,
    //! so dependency collapses to *instance-level* reachability: `d₂ depends
    //! on d₁` iff the consumer instance of `d₁` reaches the producer
    //! instance of `d₂` in the flattened run DAG. That is decidable from the
    //! two parse-tree paths plus one static per-production instance closure
    //! — no matrix multiplication at all. (This is also exactly how the DRL
    //! baseline decodes.)
    //!
    //! Contract: only valid for validated coarse-grained views
    //! ([`wf_model::Spec::is_coarse_grained`]-style structure), and for
    //! *visible* labels — pre-check visibility.

    use super::*;
    use wf_analysis::rhs_closure;

    /// Per-production instance-level reflexive-transitive closures.
    pub struct StructuralIndex {
        closures: Vec<Option<BoolMat>>,
    }

    impl StructuralIndex {
        /// Builds closures for the active productions of a view.
        pub fn build(grammar: &Grammar, active: impl Fn(ProdId) -> bool) -> Self {
            let closures = grammar
                .productions()
                .map(|(k, _)| active(k).then(|| rhs_closure(grammar, k)))
                .collect();
            Self { closures }
        }

        /// Instance `j` reachable from instance `i` within production `k`.
        pub fn reach(&self, k: ProdId, i: u32, j: u32) -> Option<bool> {
            self.closures[k.index()].as_ref().map(|m| m.get(i as usize, j as usize))
        }
    }

    /// Matrix-free π: anchors on d1's *consumer* and d2's *producer* (black
    /// boxes spread flows completely, making these the exact anchors).
    pub fn pi_structural(
        pg: &ProdGraph,
        idx: &StructuralIndex,
        d1: &DataLabel,
        d2: &DataLabel,
    ) -> Option<bool> {
        let Some(i1) = &d1.inp else { return Some(false) }; // d1 final output
        let Some(o2) = &d2.out else { return Some(false) }; // d2 initial input
        if d1 == d2 {
            // A data item depends on itself through its own edge (the o→i
            // reading of §2.3); the consumer/producer anchors below would
            // wrongly ask for a backward instance path.
            return Some(true);
        }
        let l1 = &i1.path;
        let l2 = &o2.path;
        let div = i1.common_prefix_len(o2);
        // Ancestor-or-equal (either direction) ⇒ dependent: entering any
        // input of a black box floods all of its interior and outputs.
        if div == l1.len() || div == l2.len() {
            return Some(true);
        }
        match (l1[div], l2[div]) {
            (EdgeLabel::Plain { k, i }, EdgeLabel::Plain { i: j, .. }) => idx.reach(k, i, j),
            (EdgeLabel::Rec { s, t, i: a }, EdgeLabel::Rec { i: b, .. }) => {
                let cycle = pg.cycles().ok()?.get(s as usize)?;
                if a < b {
                    // Consumer side sits at/above chain child a; the
                    // producer is nested inside child b ⊂ child a.
                    if l1.len() == div + 1 {
                        return Some(true); // consumer is chain child a itself
                    }
                    let EdgeLabel::Plain { k: kp, i: ip } = l1[div + 1] else {
                        return None;
                    };
                    let (_, jp) = cycle.edge_at(t as usize + a as usize);
                    idx.reach(kp, ip, jp)
                } else {
                    debug_assert_ne!(a, b);
                    if l2.len() == div + 1 {
                        return Some(true); // producer is chain child b itself
                    }
                    let EdgeLabel::Plain { k: kq, i: iq } = l2[div + 1] else {
                        return None;
                    };
                    let (_, jq) = cycle.edge_at(t as usize + b as usize);
                    idx.reach(kq, jq, iq)
                }
            }
            _ => None,
        }
    }
}
