//! The decoding predicate π (Algorithms 1 and 2, §4.4) and the Matrix-Free
//! structural fast path for black-box views (§6.4).
//!
//! All indices here are 0-based (the paper counts from 1): a recursion-chain
//! label `Rec{s, t, i}` denotes the `i`-th chain child, whose `Inputs`
//! matrix is the product of `i` per-step matrices `I(C(s)[t]), …,
//! I(C(s)[t+i−1])` (wrapping around the cycle). The chain products reduce to
//! `X_t^q · P_t(r)` where `X_t` is the full-cycle product — evaluated in
//! O(log) by binary exponentiation (Default / Space-Efficient) or O(1) via
//! the materialized power caches (Query-Efficient, Lemma 5).
//!
//! Every entry point returns `Option<bool>`: `None` means the labels refer
//! to productions outside the view (the item is invisible, §5); callers
//! that pre-check visibility can unwrap.

use crate::label::{DataLabel, LabelRef, PortRef};
use crate::viewlabel::ViewLabel;
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::OnceLock;
use wf_analysis::{i_matrix_with, o_matrix_with, production_port_graph, z_matrix_with, ProdGraph};
use wf_boolmat::{BoolMat, MatPool, PowMemo};
use wf_model::{Grammar, PortGraph, ProdId};
use wf_profile::Stage;
use wf_run::EdgeLabel;

/// Reusable per-session query state: a [`MatPool`] of matrix buffers plus a
/// memo of recursion-chain powers, so that in steady state π allocates
/// nothing and each distinct Default-variant chain exponent is exponentiated
/// once per session rather than once per query.
///
/// The memo is keyed by `(view uid, cycle, offset, direction)` — the uid
/// ([`ViewLabel::uid`]) is process-unique, so one scratch serves any
/// interleaving of views without cross-view poisoning, and every view's
/// memo stays warm. Long-lived multi-view sessions can bound memo memory
/// with [`QueryScratch::clear_memo`] (per-memo storage is itself bounded:
/// see [`PowMemo`]'s promotion to a periodic power cache).
pub struct QueryScratch {
    pool: MatPool,
    memo: HashMap<(u64, u32, u32, bool), PowMemo>,
}

impl QueryScratch {
    pub fn new() -> Self {
        Self { pool: MatPool::new(), memo: HashMap::new() }
    }

    /// Empties the chain-power memo, recycling its matrices into the pool.
    pub fn clear_memo(&mut self) {
        for memo in self.memo.values_mut() {
            memo.recycle_into(&mut self.pool);
        }
        self.memo.clear();
    }

    /// Number of memoized chain-power entries (diagnostic).
    pub fn memoized_powers(&self) -> usize {
        self.memo.values().map(PowMemo::memoized).sum()
    }

    /// Number of pooled scratch matrices (diagnostic).
    pub fn pooled_mats(&self) -> usize {
        self.pool.pooled()
    }
}

impl Default for QueryScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything a query needs: the (static) grammar and production graph plus
/// one view label. Construction is split from evaluation: build one per
/// (view, session) — e.g. via [`crate::Fvl::session`] — and reuse it across
/// queries instead of rebuilding per call.
///
/// For labels that recompute matrices by graph search (Space-Efficient),
/// the context carries a lazy per-production cache of the searched
/// [`PortGraph`]s: the graph depends only on the view, not on the queried
/// pair, so it is built at most once per context instead of once per
/// matrix access — the dominant per-pair-invariant cost of the
/// Space-Efficient decode path. The cache uses [`OnceLock`] slots, so a
/// `DecodeCtx` stays `Sync` and shareable across worker threads.
pub struct DecodeCtx<'a> {
    pub grammar: &'a Grammar,
    pub pg: &'a ProdGraph,
    pub vl: &'a ViewLabel,
    /// One lazily built port graph per production, allocated on the first
    /// recompute (so contexts over materialized variants never pay for it,
    /// and construction itself stays allocation-free).
    se_graphs: OnceLock<Box<[OnceLock<PortGraph>]>>,
}

impl<'a> DecodeCtx<'a> {
    pub fn new(grammar: &'a Grammar, pg: &'a ProdGraph, vl: &'a ViewLabel) -> Self {
        Self { grammar, pg, vl, se_graphs: OnceLock::new() }
    }

    /// The (cached) port graph of production `k` — the recompute path.
    fn searched_graph(&self, k: ProdId) -> &PortGraph {
        let slots = self.se_graphs.get_or_init(|| {
            (0..self.grammar.production_count()).map(|_| OnceLock::new()).collect()
        });
        slots[k.index()].get_or_init(|| {
            let _t = wf_profile::scope(Stage::PortGraphWalk);
            production_port_graph(self.grammar, k, self.vl.lambda_star())
        })
    }

    /// `I(k, i)` or `O(k, i)`: borrowed from the label when materialized,
    /// recomputed over the cached port graph otherwise.
    fn io_mat(&self, k: ProdId, i: u32, inputs: bool) -> Option<Cow<'_, BoolMat>> {
        if !self.vl.prod_active(k) {
            return None;
        }
        if let Some(m) = self.vl.materialized(k) {
            let mat = if inputs { &m.i_mats[i as usize] } else { &m.o_mats[i as usize] };
            return Some(Cow::Borrowed(mat));
        }
        let g = self.searched_graph(k);
        let _t = wf_profile::scope(Stage::PortGraphWalk);
        Some(Cow::Owned(if inputs {
            i_matrix_with(g, self.grammar, k, i as usize)
        } else {
            o_matrix_with(g, self.grammar, k, i as usize)
        }))
    }

    /// `Z(k, i, j)` with the same borrow-or-recompute split.
    fn z_mat(&self, k: ProdId, i: u32, j: u32) -> Option<Cow<'_, BoolMat>> {
        if !self.vl.prod_active(k) {
            return None;
        }
        if let Some(m) = self.vl.materialized(k) {
            return Some(Cow::Borrowed(&m.z_mats[i as usize][j as usize]));
        }
        let g = self.searched_graph(k);
        let _t = wf_profile::scope(Stage::PortGraphWalk);
        Some(Cow::Owned(z_matrix_with(g, self.grammar, k, i as usize, j as usize)))
    }

    /// Input arity of the module at position `i` of production `k`.
    fn in_dim(&self, k: ProdId, i: u32) -> usize {
        self.grammar.sig(self.grammar.production(k).rhs.nodes()[i as usize]).inputs()
    }

    fn out_dim(&self, k: ProdId, i: u32) -> usize {
        self.grammar.sig(self.grammar.production(k).rhs.nodes()[i as usize]).outputs()
    }

    /// Input arity of the cycle module at offset `pos` (wrapping).
    fn cycle_in_dim(&self, s: u32, pos: usize) -> Option<usize> {
        let cycle = self.pg.cycles().ok()?.get(s as usize)?;
        Some(self.grammar.sig(cycle.modules[pos % cycle.len()]).inputs())
    }

    fn cycle_out_dim(&self, s: u32, pos: usize) -> Option<usize> {
        let cycle = self.pg.cycles().ok()?.get(s as usize)?;
        Some(self.grammar.sig(cycle.modules[pos % cycle.len()]).outputs())
    }

    /// The `I` or `O` matrix of one cycle edge (borrowed for materialized
    /// variants; Space-Efficient recomputes over the cached port graph,
    /// hence the `Cow`).
    fn step_mat(&self, k: ProdId, i: u32, inputs: bool) -> Option<Cow<'_, BoolMat>> {
        self.io_mat(k, i, inputs)
    }

    /// Algorithm 1, `Inputs`: the reachability matrix selected by one edge
    /// label. Allocating convenience wrapper over the scratch-threaded path.
    pub fn inputs_of(&self, e: &EdgeLabel) -> Option<Cow<'_, BoolMat>> {
        match *e {
            EdgeLabel::Plain { k, i } => self.io_mat(k, i, true),
            EdgeLabel::Rec { s, t, i } => self.inputs_chain(s, t as usize, i).map(Cow::Owned),
        }
    }

    /// Algorithm 1's dual for output ports.
    pub fn outputs_of(&self, e: &EdgeLabel) -> Option<Cow<'_, BoolMat>> {
        match *e {
            EdgeLabel::Plain { k, i } => self.io_mat(k, i, false),
            EdgeLabel::Rec { s, t, i } => self.outputs_chain(s, t as usize, i).map(Cow::Owned),
        }
    }

    /// `P_t(count)` for the I-chain of cycle `s`: the product of `count`
    /// per-step matrices starting at offset `t`.
    pub fn inputs_chain(&self, s: u32, t: usize, count: u64) -> Option<BoolMat> {
        let mut scratch = QueryScratch::new();
        let mut out = BoolMat::default();
        self.chain_into(&mut scratch, s, t, count, true, &mut out)?;
        Some(out)
    }

    /// `P_t(count)` for the (reversed) O-chain.
    pub fn outputs_chain(&self, s: u32, t: usize, count: u64) -> Option<BoolMat> {
        let mut scratch = QueryScratch::new();
        let mut out = BoolMat::default();
        self.chain_into(&mut scratch, s, t, count, false, &mut out)?;
        Some(out)
    }

    /// Product of `n` consecutive per-step matrices starting at cycle
    /// offset `from`, written into `out`.
    fn partial_into(
        &self,
        scratch: &mut QueryScratch,
        s: u32,
        from: usize,
        n: usize,
        inputs: bool,
        out: &mut BoolMat,
    ) -> Option<()> {
        let cycle = self.pg.cycles().ok()?.get(s as usize)?;
        let dim = if inputs { self.cycle_in_dim(s, from)? } else { self.cycle_out_dim(s, from)? };
        out.assign_identity(dim);
        let mut tmp = scratch.pool.take();
        for a in 0..n {
            let (k, i) = cycle.edge_at(from + a);
            let Some(m) = self.step_mat(k, i, inputs) else {
                scratch.pool.put(tmp);
                return None;
            };
            out.matmul_into(m.as_ref(), &mut tmp);
            std::mem::swap(out, &mut tmp);
        }
        scratch.pool.put(tmp);
        Some(())
    }

    /// The chain product `P_t(count)`, written into `out`.
    fn chain_into(
        &self,
        scratch: &mut QueryScratch,
        s: u32,
        t: usize,
        count: u64,
        inputs: bool,
        out: &mut BoolMat,
    ) -> Option<()> {
        let _t_stage = wf_profile::scope(Stage::ChainEval);
        let cycle = self.pg.cycles().ok()?.get(s as usize)?;
        let l = cycle.len();
        let t = t % l;
        if count == 0 {
            let dim = if inputs { self.cycle_in_dim(s, t)? } else { self.cycle_out_dim(s, t)? };
            out.assign_identity(dim);
            return Some(());
        }
        // Query-Efficient: O(1) via prefix products + power cache (§4.4.3).
        if let Some(cache) = self.vl.cycle_cache(s) {
            wf_profile::count(Stage::PowMemoHit);
            let q = count / l as u64;
            let r = (count % l as u64) as usize;
            let (power, prefix) = if inputs {
                (cache.i_power[t].power(q), &cache.i_prefix[t][r])
            } else {
                (cache.o_power[t].power(q), &cache.o_prefix[t][r])
            };
            power.matmul_into(prefix, out);
            return Some(());
        }
        // Default / Space-Efficient: assemble per-step matrices; the
        // full-cycle part X_t^q comes from the session's power memo, so
        // each distinct q is exponentiated once per session.
        if count < l as u64 {
            return self.partial_into(scratch, s, t, count as usize, inputs, out);
        }
        let q = count / l as u64;
        let r = (count % l as u64) as usize;
        let key = (self.vl.uid(), s, t as u32, inputs);
        // Ensure X_t^q is memoized, computing X_t only on a miss.
        if scratch.memo.get(&key).and_then(|m| m.cached(q)).is_none() {
            wf_profile::count(Stage::PowMemoMiss);
            let mut x_t = scratch.pool.take();
            let built = self.partial_into(scratch, s, t, l, inputs, &mut x_t).map(|()| {
                let QueryScratch { pool, memo } = scratch;
                memo.entry(key).or_default().power(&x_t, q, pool);
            });
            scratch.pool.put(x_t);
            built?;
        } else {
            wf_profile::count(Stage::PowMemoHit);
        }
        let mut prefix = scratch.pool.take();
        let res = self.partial_into(scratch, s, t, r, inputs, &mut prefix).map(|()| {
            let power = scratch.memo[&key].cached(q).expect("exponent was just memoized");
            power.matmul_into(&prefix, out);
        });
        scratch.pool.put(prefix);
        res
    }

    /// Left-fold of `Inputs` (`inputs = true`) or `Outputs` matrices over a
    /// path suffix, starting from the identity on `init_dim` ports.
    fn fold_into(
        &self,
        scratch: &mut QueryScratch,
        labels: &[EdgeLabel],
        init_dim: usize,
        inputs: bool,
        out: &mut BoolMat,
    ) -> Option<()> {
        out.assign_identity(init_dim);
        let mut tmp = scratch.pool.take();
        let mut chain = scratch.pool.take();
        let res = (|| {
            for e in labels {
                match *e {
                    EdgeLabel::Plain { k, i } => {
                        let m = self.step_mat(k, i, inputs)?;
                        out.matmul_into(m.as_ref(), &mut tmp);
                    }
                    EdgeLabel::Rec { s, t, i } => {
                        self.chain_into(scratch, s, t as usize, i, inputs, &mut chain)?;
                        out.matmul_into(&chain, &mut tmp);
                    }
                }
                std::mem::swap(out, &mut tmp);
            }
            Some(())
        })();
        scratch.pool.put(tmp);
        scratch.pool.put(chain);
        res
    }
}

// The parallel serving path (`wf-engine`) shares one `DecodeCtx` across
// worker threads (`&self` access only) and moves one `QueryScratch` into
// each worker. These bounds are load-bearing API, not accidents of the
// current field types: adding interior mutability without a thread-safe
// primitive, or an `Rc`, must fail to compile here rather than at a
// distant use site.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    const fn moved_into_a_thread<T: Send>() {}
    shared_across_threads::<DecodeCtx<'static>>();
    shared_across_threads::<ViewLabel>();
    shared_across_threads::<Grammar>();
    shared_across_threads::<ProdGraph>();
    moved_into_a_thread::<QueryScratch>();
};

/// Algorithm 2: `π(φr(d1), φr(d2), φv(U))` — true iff `d2` depends on `d1`
/// w.r.t. the view. `None` when a label refers outside the view.
///
/// Convenience wrapper building a throwaway [`QueryScratch`]; serving paths
/// use [`pi_with`] (via [`crate::FvlSession`] or the `wf-engine` batch
/// engine) to reuse buffers and the chain-power memo across queries.
pub fn pi(ctx: &DecodeCtx<'_>, d1: &DataLabel, d2: &DataLabel) -> Option<bool> {
    let mut scratch = QueryScratch::new();
    pi_with(ctx, &mut scratch, d1.to_ref(), d2.to_ref())
}

/// Algorithm 2 over borrowed labels with caller-owned scratch state — the
/// allocation-free (in steady state) serving form of [`pi`].
pub fn pi_with(
    ctx: &DecodeCtx<'_>,
    scratch: &mut QueryScratch,
    d1: LabelRef<'_>,
    d2: LabelRef<'_>,
) -> Option<bool> {
    let _t = wf_profile::scope(Stage::Pi);
    // Case I: d1 is a final output or d2 is an initial input.
    let Some(i1) = d1.inp else { return Some(false) };
    let Some(o2) = d2.out else { return Some(false) };
    match (d1.out, d2.inp) {
        // Case II: initial input -> final output: λ*(S) decides directly.
        (None, None) => Some(ctx.vl.lambda_star_s().get(i1.port as usize, o2.port as usize)),
        // Case III: initial input -> intermediate: chain the I-matrices
        // down d2's consumer path.
        (None, Some(i2)) => {
            let mut m = scratch.pool.take();
            let res = ctx
                .fold_into(scratch, i2.path, ctx.vl.lambda_star_s().rows(), true, &mut m)
                .map(|()| m.get(i1.port as usize, i2.port as usize));
            scratch.pool.put(m);
            res
        }
        // Case IV: intermediate -> final output: chain O-matrices down d1's
        // producer path (reversed orientation).
        (Some(o1), None) => {
            let mut m = scratch.pool.take();
            let res = ctx
                .fold_into(scratch, o1.path, ctx.vl.lambda_star_s().cols(), false, &mut m)
                .map(|()| m.get(o2.port as usize, o1.port as usize));
            scratch.pool.put(m);
            res
        }
        // Main cases: both intermediate.
        (Some(o1), Some(i2)) => main_case(ctx, scratch, o1, i2),
    }
}

fn main_case(
    ctx: &DecodeCtx<'_>,
    scratch: &mut QueryScratch,
    o1: PortRef<'_>,
    i2: PortRef<'_>,
) -> Option<bool> {
    let l1 = o1.path;
    let l2 = i2.path;
    let div = o1.common_prefix_len(&i2);
    // Case 1: same node or ancestor/descendant — an output port never
    // reaches back inside its own module's expansion.
    if div == l1.len() || div == l2.len() {
        return Some(false);
    }
    match (l1[div], l2[div]) {
        // Case 2a: the least common ancestor is an ordinary production node.
        (EdgeLabel::Plain { k, i }, EdgeLabel::Plain { k: k2, i: j }) => {
            debug_assert_eq!(k, k2, "siblings share their production");
            if i >= j {
                return Some(false); // Z(k,i,j) is empty for i ≥ j
            }
            let z = ctx.z_mat(k, i, j)?;
            let mut o = scratch.pool.take();
            let mut im = scratch.pool.take();
            let mut t1 = scratch.pool.take();
            let mut t2 = scratch.pool.take();
            // Oᵀ × Z × I, evaluated through pooled temporaries; the closure
            // keeps every taken buffer on the put path even when a fold
            // bails out of the view.
            let res = (|| {
                ctx.fold_into(scratch, &l1[div + 1..], ctx.out_dim(k, i), false, &mut o)?;
                ctx.fold_into(scratch, &l2[div + 1..], ctx.in_dim(k, j), true, &mut im)?;
                o.transpose_into(&mut t1);
                t1.matmul_into(z.as_ref(), &mut t2);
                t2.matmul_into(&im, &mut t1);
                Some(t1.get(o1.port as usize, i2.port as usize))
            })();
            for m in [o, im, t1, t2] {
                scratch.pool.put(m);
            }
            res
        }
        // Case 2b: the least common ancestor is a recursive node.
        (EdgeLabel::Rec { s, t, i: a }, EdgeLabel::Rec { s: s2, t: t2, i: b }) => {
            debug_assert_eq!((s, t), (s2, t2), "chain siblings share their recursion");
            let cycle = ctx.pg.cycles().ok()?.get(s as usize)?;
            if a < b {
                // d1's branch is an ancestor level of d2's chain position.
                if l1.len() == div + 1 {
                    return Some(false); // o1 is a port of chain child a itself
                }
                let EdgeLabel::Plain { k: kp, i: ip } = l1[div + 1] else {
                    debug_assert!(false, "chain child expands through a plain edge");
                    return None;
                };
                let (k_exp, jp) = cycle.edge_at(t as usize + a as usize);
                debug_assert_eq!(kp, k_exp, "child a expands via its cycle production");
                if ip >= jp {
                    return Some(false); // Z(k', i', j') is empty
                }
                let z = ctx.z_mat(kp, ip, jp)?;
                let in_dim = ctx.cycle_in_dim(s, t as usize + b as usize)?;
                let mut o = scratch.pool.take();
                let mut i_chain = scratch.pool.take();
                let mut i_fold = scratch.pool.take();
                let mut t1 = scratch.pool.take();
                let mut t2 = scratch.pool.take();
                // Oᵀ × Z × chain × I (buffers pooled on every exit path).
                let res = (|| {
                    ctx.fold_into(scratch, &l1[div + 2..], ctx.out_dim(kp, ip), false, &mut o)?;
                    let start = t as usize + a as usize + 1;
                    ctx.chain_into(scratch, s, start, b - a - 1, true, &mut i_chain)?;
                    ctx.fold_into(scratch, &l2[div + 1..], in_dim, true, &mut i_fold)?;
                    o.transpose_into(&mut t1);
                    t1.matmul_into(z.as_ref(), &mut t2);
                    t2.matmul_into(&i_chain, &mut t1);
                    t1.matmul_into(&i_fold, &mut t2);
                    Some(t2.get(o1.port as usize, i2.port as usize))
                })();
                for m in [o, i_chain, i_fold, t1, t2] {
                    scratch.pool.put(m);
                }
                res
            } else {
                // a > b: d2's branch is the ancestor level.
                if l2.len() == div + 1 {
                    return Some(false); // i2 is a port of chain child b itself
                }
                let EdgeLabel::Plain { k: kq, i: iq } = l2[div + 1] else {
                    debug_assert!(false, "chain child expands through a plain edge");
                    return None;
                };
                let (k_exp, jq) = cycle.edge_at(t as usize + b as usize);
                debug_assert_eq!(kq, k_exp);
                if jq >= iq {
                    return Some(false); // Z(k'', j'', i'') is empty
                }
                let z = ctx.z_mat(kq, jq, iq)?;
                let out_dim = ctx.cycle_out_dim(s, t as usize + a as usize)?;
                let mut o_chain = scratch.pool.take();
                let mut o_fold = scratch.pool.take();
                let mut i_fold = scratch.pool.take();
                let mut t1 = scratch.pool.take();
                let mut t2 = scratch.pool.take();
                // (chain × O)ᵀ × Z × I (buffers pooled on every exit path).
                let res = (|| {
                    let start = t as usize + b as usize + 1;
                    ctx.chain_into(scratch, s, start, a - b - 1, false, &mut o_chain)?;
                    ctx.fold_into(scratch, &l1[div + 1..], out_dim, false, &mut o_fold)?;
                    ctx.fold_into(scratch, &l2[div + 2..], ctx.in_dim(kq, iq), true, &mut i_fold)?;
                    o_chain.matmul_into(&o_fold, &mut t1);
                    t1.transpose_into(&mut t2);
                    t2.matmul_into(z.as_ref(), &mut t1);
                    t1.matmul_into(&i_fold, &mut t2);
                    Some(t2.get(o1.port as usize, i2.port as usize))
                })();
                for m in [o_chain, o_fold, i_fold, t1, t2] {
                    scratch.pool.put(m);
                }
                res
            }
        }
        _ => {
            debug_assert!(false, "sibling edges cannot mix plain and recursive labels");
            None
        }
    }
}

pub mod structural {
    //! Matrix-Free decoding for black-box (coarse-grained) views (§6.4).
    //!
    //! Under black-box dependencies every module passes everything through,
    //! so dependency collapses to *instance-level* reachability: `d₂ depends
    //! on d₁` iff the consumer instance of `d₁` reaches the producer
    //! instance of `d₂` in the flattened run DAG. That is decidable from the
    //! two parse-tree paths plus one static per-production instance closure
    //! — no matrix multiplication at all. (This is also exactly how the DRL
    //! baseline decodes.)
    //!
    //! Contract: only valid for validated coarse-grained views
    //! ([`wf_model::Spec::is_coarse_grained`]-style structure), and for
    //! *visible* labels — pre-check visibility.

    use super::*;
    use wf_analysis::rhs_closure;

    /// Per-production instance-level reflexive-transitive closures.
    pub struct StructuralIndex {
        closures: Vec<Option<BoolMat>>,
    }

    impl StructuralIndex {
        /// Builds closures for the active productions of a view.
        pub fn build(grammar: &Grammar, active: impl Fn(ProdId) -> bool) -> Self {
            let closures = grammar
                .productions()
                .map(|(k, _)| active(k).then(|| rhs_closure(grammar, k)))
                .collect();
            Self { closures }
        }

        /// Instance `j` reachable from instance `i` within production `k`.
        pub fn reach(&self, k: ProdId, i: u32, j: u32) -> Option<bool> {
            self.closures[k.index()].as_ref().map(|m| m.get(i as usize, j as usize))
        }
    }

    /// Matrix-free π: anchors on d1's *consumer* and d2's *producer* (black
    /// boxes spread flows completely, making these the exact anchors).
    pub fn pi_structural(
        pg: &ProdGraph,
        idx: &StructuralIndex,
        d1: &DataLabel,
        d2: &DataLabel,
    ) -> Option<bool> {
        let Some(i1) = &d1.inp else { return Some(false) }; // d1 final output
        let Some(o2) = &d2.out else { return Some(false) }; // d2 initial input
        if d1 == d2 {
            // A data item depends on itself through its own edge (the o→i
            // reading of §2.3); the consumer/producer anchors below would
            // wrongly ask for a backward instance path.
            return Some(true);
        }
        let l1 = &i1.path;
        let l2 = &o2.path;
        let div = i1.common_prefix_len(o2);
        // Ancestor-or-equal (either direction) ⇒ dependent: entering any
        // input of a black box floods all of its interior and outputs.
        if div == l1.len() || div == l2.len() {
            return Some(true);
        }
        match (l1[div], l2[div]) {
            (EdgeLabel::Plain { k, i }, EdgeLabel::Plain { i: j, .. }) => idx.reach(k, i, j),
            (EdgeLabel::Rec { s, t, i: a }, EdgeLabel::Rec { i: b, .. }) => {
                let cycle = pg.cycles().ok()?.get(s as usize)?;
                if a < b {
                    // Consumer side sits at/above chain child a; the
                    // producer is nested inside child b ⊂ child a.
                    if l1.len() == div + 1 {
                        return Some(true); // consumer is chain child a itself
                    }
                    let EdgeLabel::Plain { k: kp, i: ip } = l1[div + 1] else {
                        return None;
                    };
                    let (_, jp) = cycle.edge_at(t as usize + a as usize);
                    idx.reach(kp, ip, jp)
                } else {
                    debug_assert_ne!(a, b);
                    if l2.len() == div + 1 {
                        return Some(true); // producer is chain child b itself
                    }
                    let EdgeLabel::Plain { k: kq, i: iq } = l2[div + 1] else {
                        return None;
                    };
                    let (_, jq) = cycle.edge_at(t as usize + b as usize);
                    idx.reach(kq, jq, iq)
                }
            }
            _ => None,
        }
    }
}
