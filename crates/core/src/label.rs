//! Data labels (§4.2.2): the view-independent half of the scheme.

use wf_run::EdgeLabel;

/// The label of one port of one data item: the compressed-parse-tree path
/// from the root to the node of the module where the port was *first
/// created*, followed by the port index within that module.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PortLabel {
    pub path: Vec<EdgeLabel>,
    pub port: u8,
}

impl PortLabel {
    pub fn new(path: Vec<EdgeLabel>, port: u8) -> Self {
        Self { path, port }
    }

    /// Number of shared leading edge labels with another port label — the
    /// common prefix the wire encoding factors out ("the size of φr(d) can
    /// be reduced almost by half by factoring out the common prefix").
    pub fn common_prefix_len(&self, other: &PortLabel) -> usize {
        self.path.iter().zip(&other.path).take_while(|(a, b)| a == b).count()
    }

    /// A borrowed view of this port label for the slice-based query path.
    #[inline]
    pub fn to_ref(&self) -> PortRef<'_> {
        PortRef { path: &self.path, port: self.port }
    }
}

/// A borrowed port label: the form the decoding predicate actually
/// evaluates. Owning [`PortLabel`]s convert via [`PortLabel::to_ref`];
/// interned stores (the `wf-engine` label store) build these directly over
/// their own path storage, so querying never materializes owned labels.
#[derive(Clone, Copy, Debug)]
pub struct PortRef<'a> {
    pub path: &'a [EdgeLabel],
    pub port: u8,
}

impl PortRef<'_> {
    /// See [`PortLabel::common_prefix_len`].
    pub fn common_prefix_len(&self, other: &PortRef<'_>) -> usize {
        self.path.iter().zip(other.path).take_while(|(a, b)| a == b).count()
    }
}

/// The label of a data item: producer-side and consumer-side port labels.
/// `out` is `None` for the run's initial inputs, `inp` is `None` for its
/// final outputs. Assigned once, never modified (Definition 10).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DataLabel {
    /// φr(o): label of the producing output port.
    pub out: Option<PortLabel>,
    /// φr(i): label of the consuming input port.
    pub inp: Option<PortLabel>,
}

impl DataLabel {
    pub fn intermediate(out: PortLabel, inp: PortLabel) -> Self {
        Self { out: Some(out), inp: Some(inp) }
    }

    pub fn initial_input(inp: PortLabel) -> Self {
        Self { out: None, inp: Some(inp) }
    }

    pub fn final_output(out: PortLabel) -> Self {
        Self { out: Some(out), inp: None }
    }

    pub fn is_initial_input(&self) -> bool {
        self.out.is_none()
    }

    pub fn is_final_output(&self) -> bool {
        self.inp.is_none()
    }

    /// A borrowed view of this label for the slice-based query path.
    #[inline]
    pub fn to_ref(&self) -> LabelRef<'_> {
        LabelRef {
            out: self.out.as_ref().map(PortLabel::to_ref),
            inp: self.inp.as_ref().map(PortLabel::to_ref),
        }
    }
}

/// A borrowed data label ([`DataLabel`] is the owning form). `Copy`, so the
/// query entry points take it by value.
#[derive(Clone, Copy, Debug)]
pub struct LabelRef<'a> {
    pub out: Option<PortRef<'a>>,
    pub inp: Option<PortRef<'a>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::ProdId;

    fn plain(k: u32, i: u32) -> EdgeLabel {
        EdgeLabel::Plain { k: ProdId(k), i }
    }

    #[test]
    fn common_prefix() {
        let a = PortLabel::new(vec![plain(0, 1), plain(2, 3), plain(4, 5)], 0);
        let b = PortLabel::new(vec![plain(0, 1), plain(2, 3), plain(4, 6)], 1);
        assert_eq!(a.common_prefix_len(&b), 2);
        let c = PortLabel::new(vec![plain(9, 9)], 0);
        assert_eq!(a.common_prefix_len(&c), 0);
        assert_eq!(a.common_prefix_len(&a), 3);
    }

    #[test]
    fn boundary_constructors() {
        let p = PortLabel::new(vec![], 1);
        assert!(DataLabel::initial_input(p.clone()).is_initial_input());
        assert!(!DataLabel::initial_input(p.clone()).is_final_output());
        assert!(DataLabel::final_output(p.clone()).is_final_output());
        let d = DataLabel::intermediate(p.clone(), p);
        assert!(!d.is_initial_input());
        assert!(!d.is_final_output());
    }
}
