//! Data visibility under a view (§5).
//!
//! "Using only a data label φr(d) and a view label φv(U), one can decide in
//! constant time if d is visible in R_U by checking if the function I in
//! φv(U) is defined for all the edge labels in φr(d)." Concretely: every
//! plain edge must name an active production, and a recursion-chain label at
//! position `i` requires the cycle productions along its first `min(i, l)`
//! steps to be active.

use crate::label::{DataLabel, LabelRef};
use crate::viewlabel::ViewLabel;
use wf_analysis::ProdGraph;
use wf_run::EdgeLabel;

fn path_visible(path: &[EdgeLabel], vl: &ViewLabel, pg: &ProdGraph) -> bool {
    path.iter().all(|e| match *e {
        EdgeLabel::Plain { k, .. } => vl.prod_active(k),
        EdgeLabel::Rec { s, t, i } => {
            let Ok(cycles) = pg.cycles() else { return false };
            let Some(cycle) = cycles.get(s as usize) else { return false };
            let needed = (i as usize).min(cycle.len());
            (0..needed).all(|a| vl.prod_active(cycle.edge_at(t as usize + a).0))
        }
    })
}

/// True iff the data item is part of the view of its run.
pub fn is_visible(d: &DataLabel, vl: &ViewLabel, pg: &ProdGraph) -> bool {
    is_visible_ref(d.to_ref(), vl, pg)
}

/// [`is_visible`] over a borrowed label (the serving-path form).
pub fn is_visible_ref(d: LabelRef<'_>, vl: &ViewLabel, pg: &ProdGraph) -> bool {
    d.out.iter().all(|p| path_visible(p.path, vl, pg))
        && d.inp.iter().all(|p| path_visible(p.path, vl, pg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeler::RunLabeler;
    use crate::viewlabel::{VariantKind, ViewLabel};
    use wf_model::fixtures::paper_example;
    use wf_model::ViewSpec;
    use wf_run::fixtures::figure3_run;
    use wf_run::RunProjection;

    /// Label-based visibility must agree with the run-projection ground
    /// truth on every item of the Figure 3 run, for both views.
    #[test]
    fn visibility_matches_projection() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let (run, _) = figure3_run(&ex);
        let labeler = RunLabeler::start(g, &pg, &run);
        for view in [ex.view_u1(), ex.view_u2()] {
            let vs = ViewSpec::new(&ex.spec, &view);
            let vl = ViewLabel::build(&vs, &pg, VariantKind::Default).unwrap();
            let proj = RunProjection::new(g, &run, &view);
            for d in run.items() {
                assert_eq!(
                    is_visible(labeler.label(d), &vl, &pg),
                    proj.item_visible(d),
                    "item {d:?}"
                );
            }
        }
    }

    /// Example-level spot check: d21 (inside C:4) is invisible in U₂,
    /// d17 (entering C:4) stays visible.
    #[test]
    fn u2_spot_checks() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let (run, ids) = figure3_run(&ex);
        let labeler = RunLabeler::start(g, &pg, &run);
        let u2 = ex.view_u2();
        let vs = ViewSpec::new(&ex.spec, &u2);
        let vl = ViewLabel::build(&vs, &pg, VariantKind::Default).unwrap();
        assert!(!is_visible(labeler.label(ids.d21), &vl, &pg));
        assert!(is_visible(labeler.label(ids.d17), &vl, &pg));
        assert!(is_visible(labeler.label(ids.d31), &vl, &pg));
    }
}
