//! Errors of the FVL scheme.

use wf_analysis::SafetyError;
use wf_model::ModelError;

/// Why FVL refuses a specification or view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FvlError {
    /// Compact dynamic labels require a strictly linear-recursive grammar
    /// (Theorems 6 and 8); the production graph has overlapping cycles.
    NotStrictlyLinear { witness: wf_model::ModuleId },
    /// The view is unsafe: no dynamic labeling scheme exists for it at all
    /// (Theorem 1).
    Unsafe(SafetyError),
    /// Malformed model input.
    Model(ModelError),
}

impl std::fmt::Display for FvlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FvlError::NotStrictlyLinear { witness } => {
                write!(f, "grammar is not strictly linear-recursive (cycles overlap at {witness})")
            }
            FvlError::Unsafe(e) => write!(f, "view is unsafe: {e}"),
            FvlError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for FvlError {}

impl From<SafetyError> for FvlError {
    fn from(e: SafetyError) -> Self {
        match e {
            SafetyError::Model(m) => FvlError::Model(m),
            other => FvlError::Unsafe(other),
        }
    }
}

impl From<ModelError> for FvlError {
    fn from(e: ModelError) -> Self {
        FvlError::Model(e)
    }
}
