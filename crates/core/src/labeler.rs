//! The dynamic run labeler (§4.2.3): assigns every data item its label the
//! moment it is produced, never revising earlier labels.

use crate::label::{DataLabel, PortLabel};
use wf_analysis::ProdGraph;
use wf_model::Grammar;
use wf_run::{CompressedTree, DataId, InstanceId, Run, StepId};

/// Labels one run online. Feed it every derivation step in order (or let
/// [`RunLabeler::catch_up`] replay an existing run); labels come out in data
/// item order and are immutable once issued.
pub struct RunLabeler {
    tree: CompressedTree,
    labels: Vec<DataLabel>,
    processed_steps: u32,
}

impl RunLabeler {
    /// Attaches to a freshly started run (no steps applied yet) and labels
    /// the start module's boundary items.
    pub fn start(grammar: &Grammar, pg: &ProdGraph, run: &Run) -> Self {
        let tree = CompressedTree::new(grammar, pg, InstanceId(0));
        let root_path = tree.path_of(tree.node_of(InstanceId(0)).unwrap());
        let sig = grammar.sig(grammar.start());
        let mut labels = Vec::with_capacity(sig.inputs() + sig.outputs());
        for p in 0..sig.inputs() as u8 {
            labels.push(DataLabel::initial_input(PortLabel::new(root_path.clone(), p)));
        }
        for p in 0..sig.outputs() as u8 {
            labels.push(DataLabel::final_output(PortLabel::new(root_path.clone(), p)));
        }
        let mut this = Self { tree, labels, processed_steps: 0 };
        // Catch up if the run already has history.
        this.catch_up(grammar, pg, run);
        this
    }

    /// Replays any steps not yet seen (steps are processed exactly once and
    /// in order).
    pub fn catch_up(&mut self, _grammar: &Grammar, pg: &ProdGraph, run: &Run) {
        while (self.processed_steps as usize) < run.step_count() {
            self.on_step(pg, run, StepId(self.processed_steps));
        }
    }

    /// Incorporates one derivation step: extends the compressed tree, then
    /// labels the step's new data items from their creation endpoints.
    pub fn on_step(&mut self, pg: &ProdGraph, run: &Run, step: StepId) {
        assert_eq!(step.0, self.processed_steps, "steps must be fed in order");
        self.tree.on_step(pg, run, step);
        let st = run.step(step);
        debug_assert_eq!(st.items.start as usize, self.labels.len());
        for d in st.items.clone() {
            let item = run.item(DataId(d));
            let (pi, pp) = item.producer.expect("step items have producers");
            let (ci, cp) = item.consumer.expect("step items have consumers");
            let out = PortLabel::new(self.tree.path_of(self.tree.node_of(pi).unwrap()), pp);
            let inp = PortLabel::new(self.tree.path_of(self.tree.node_of(ci).unwrap()), cp);
            self.labels.push(DataLabel::intermediate(out, inp));
        }
        self.processed_steps += 1;
    }

    /// The label of a data item.
    #[inline]
    pub fn label(&self, d: DataId) -> &DataLabel {
        &self.labels[d.0 as usize]
    }

    pub fn labels(&self) -> &[DataLabel] {
        &self.labels
    }

    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    pub fn tree(&self) -> &CompressedTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;
    use wf_model::ProdId;
    use wf_run::fixtures::figure3_run;
    use wf_run::EdgeLabel;

    #[test]
    fn example15_d21_label() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let (run, ids) = figure3_run(&ex);
        let labeler = RunLabeler::start(g, &pg, &run);
        assert_eq!(labeler.label_count(), run.item_count());

        // φr(d21) per Example 15 (0-based transcription):
        //   φr(o) = {(1,3),(1,1,5),(3,2),(5,1), port 1}
        //         = [Plain(p1,2), Rec(0,0,4), Plain(p3,1), Plain(p5,0)], port 0
        //   φr(i) = same prefix + [Plain(p5,1), Rec(1,0,0)], port 1
        let d21 = labeler.label(ids.d21);
        let o = d21.out.as_ref().unwrap();
        assert_eq!(
            o.path,
            vec![
                EdgeLabel::Plain { k: ProdId(0), i: 2 },
                EdgeLabel::Rec { s: 0, t: 0, i: 4 },
                EdgeLabel::Plain { k: ProdId(2), i: 1 },
                EdgeLabel::Plain { k: ProdId(4), i: 0 },
            ]
        );
        assert_eq!(o.port, 0);
        let i = d21.inp.as_ref().unwrap();
        assert_eq!(
            i.path,
            vec![
                EdgeLabel::Plain { k: ProdId(0), i: 2 },
                EdgeLabel::Rec { s: 0, t: 0, i: 4 },
                EdgeLabel::Plain { k: ProdId(2), i: 1 },
                EdgeLabel::Plain { k: ProdId(4), i: 1 },
                EdgeLabel::Rec { s: 1, t: 0, i: 0 },
            ]
        );
        assert_eq!(i.port, 1);
        // "The first three edge labels can be factored out."
        assert_eq!(o.common_prefix_len(i), 3);
    }

    #[test]
    fn boundary_items_labeled_before_any_step() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let run = wf_run::Run::start(g);
        let labeler = RunLabeler::start(g, &pg, &run);
        assert_eq!(labeler.label_count(), 5);
        assert!(labeler.label(DataId(0)).is_initial_input());
        assert!(labeler.label(DataId(4)).is_final_output());
        assert_eq!(labeler.label(DataId(1)).inp.as_ref().unwrap().port, 1);
    }

    #[test]
    fn labels_are_stable_across_later_steps() {
        // Definition 10: labels never change after assignment.
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let mut run = wf_run::Run::start(g);
        let mut labeler = RunLabeler::start(g, &pg, &run);
        let s = run.apply(g, InstanceId(0), ex.prods[0]).unwrap();
        labeler.on_step(&pg, &run, s);
        let snapshot: Vec<DataLabel> = labeler.labels().to_vec();
        // Expand more.
        let a = run.nth_open_of(ex.a_mod, 0).unwrap();
        let s = run.apply(g, a, ex.prods[1]).unwrap();
        labeler.on_step(&pg, &run, s);
        for (i, old) in snapshot.iter().enumerate() {
            assert_eq!(labeler.label(DataId(i as u32)), old);
        }
    }

    #[test]
    fn catch_up_equals_online() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let (run, _) = figure3_run(&ex);
        // Online: drive during replay — here approximated by catch_up from
        // scratch, which must equal itself deterministically; cross-check a
        // couple of invariants instead.
        let l1 = RunLabeler::start(g, &pg, &run);
        let l2 = RunLabeler::start(g, &pg, &run);
        assert_eq!(l1.labels(), l2.labels());
    }
}
