//! User-defined views (§5): views that *group* existing modules into new
//! composite modules whose internals (including the data edges between
//! members) are hidden.
//!
//! The essential trick of §5: existing data labels are **reused**. The
//! user-defined view is projected back onto the original specification —
//! the new module `F` is expanded away — and the view label is computed
//! over the *original* production positions, but under the new dependency
//! assignment: within the grouped production, the members' internal
//! structure is replaced by `λ′(F)` arcs between the group's boundary
//! ports. Matrix entries at hidden ports are undefined (Example 19's
//! "the first column is undefined"); they are never consulted because
//! hidden items fail the visibility check first.

use crate::error::FvlError;
use crate::label::{DataLabel, PortLabel};
use crate::viewlabel::{VariantKind, ViewLabel};
use wf_analysis::{full_assignment, ProdGraph, ProductionMatrices};
use wf_boolmat::BoolMat;
use wf_digraph::{DiGraph, NodeId};
use wf_model::grouping::Grouping;
use wf_model::{
    DepAssignment, Grammar, InPortRef, ModuleId, NodeIx, OutPortRef, ProdId, Spec, View, ViewSpec,
};
use wf_run::EdgeLabel;

/// A user-defined view: a regular `(Δ′, λ′)` pair plus module groupings,
/// each with the perceived dependency matrix of its new composite module.
pub struct UserView {
    /// Modules the user may expand. Group members must not be expandable.
    pub expand: Vec<ModuleId>,
    /// λ′ for the unexpandable *original* modules.
    pub deps: DepAssignment,
    /// Groupings with their `λ′(F)` matrices (inputs × outputs of the
    /// group's boundary).
    pub groupings: Vec<(Grouping, BoolMat)>,
}

impl UserView {
    fn grouping_on(&self, k: ProdId) -> Option<&(Grouping, BoolMat)> {
        self.groupings.iter().find(|(g, _)| g.prod == k)
    }
}

/// Builds the view label of a user-defined view against the *original*
/// grammar, per §5. Returns the label plus the regular `View` it projects
/// onto (used for run projection and tests).
pub fn label_user_view(
    spec: &Spec,
    pg: &ProdGraph,
    uv: &UserView,
    kind: VariantKind,
) -> Result<(ViewLabel, View), FvlError> {
    let grammar = &spec.grammar;
    // Validate groupings and the member/expansion disjointness.
    for (g, f_mat) in &uv.groupings {
        g.validate(grammar)?;
        let b = g.boundary(grammar);
        if f_mat.rows() != b.f_inputs.len() || f_mat.cols() != b.f_outputs.len() {
            return Err(FvlError::Model(wf_model::ModelError::BadGrouping {
                prod: g.prod,
                detail: "λ'(F) shape does not match the group boundary",
            }));
        }
        let w = &grammar.production(g.prod).rhs;
        for &m in &g.members {
            if uv.expand.contains(&w.module_at(m)) {
                return Err(FvlError::Model(wf_model::ModelError::BadGrouping {
                    prod: g.prod,
                    detail: "group members must not be expandable in the view",
                }));
            }
        }
    }
    // The regular projection of the user view (F expanded away). Hidden
    // group members need no individual λ′ — View::new_structural skips the
    // coverage check that View::new would apply.
    let view = View::new_structural(grammar, uv.expand.iter().copied(), uv.deps.clone())?;

    // λ* over the *transformed* grammar (W9/W10 materialized, F terminal).
    let lambda = user_full_assignment(spec, uv, &view)?;
    let lambda_s = lambda.get(grammar.start()).expect("start has λ*").clone();

    let active: Vec<bool> = grammar.productions().map(|(_, p)| view.expands(p.lhs)).collect();
    let mats: Vec<Option<ProductionMatrices>> = grammar
        .productions()
        .map(|(k, _)| {
            if !active[k.index()] {
                return None;
            }
            Some(match uv.grouping_on(k) {
                None => wf_analysis::production_matrices(grammar, k, &lambda),
                Some((g, f_mat)) => grouped_matrices(grammar, k, g, f_mat, &lambda),
            })
        })
        .collect();

    let vl = ViewLabel::from_parts(kind, lambda, lambda_s, active, mats, grammar, pg);
    Ok((vl, view))
}

/// λ\* of the user view, computed on the transformed grammar of §5 and read
/// back on original module ids.
fn user_full_assignment(
    spec: &Spec,
    uv: &UserView,
    view: &View,
) -> Result<DepAssignment, FvlError> {
    let grammar = &spec.grammar;
    if uv.groupings.is_empty() {
        let vs = ViewSpec::new(spec, view);
        return Ok(full_assignment(&vs)?);
    }
    // Build the transformed grammar: replace each grouped production by
    // C → W9 and add F → W10.
    let mut modules = grammar.sigs().to_vec();
    let mut composite: Vec<bool> = grammar.modules().map(|m| grammar.is_composite(m)).collect();
    let mut productions: Vec<wf_model::Production> =
        grammar.productions().map(|(_, p)| p.clone()).collect();
    let mut deps = uv.deps.clone();
    for (g, f_mat) in &uv.groupings {
        let f_id = ModuleId(modules.len() as u32);
        let (f_sig, p_c, p_f) = g.materialize(grammar, f_id)?;
        modules.push(f_sig);
        composite.push(true); // F is composite in the transformed grammar…
        productions[g.prod.index()] = p_c;
        productions.push(p_f);
        deps.set(f_id, f_mat.clone()); // …but terminal in the view: λ′(F).
    }
    let tg = Grammar::new(modules, composite, grammar.start(), productions)?;
    let tdeps_atomic = {
        // Atomic λ for the transformed spec: original atomics only (F is
        // composite there); Spec::new validates atomics, reuse original λ.
        spec.deps.clone()
    };
    let tspec = Spec::new(tg, tdeps_atomic)?;
    let tview = View::new(&tspec.grammar, uv.expand.iter().copied(), deps)?;
    let vs = ViewSpec::new(&tspec, &tview);
    Ok(full_assignment(&vs)?)
}

/// `I`/`O`/`Z` of a grouped production over *original* positions, with the
/// members' internals replaced by `λ′(F)` boundary arcs. Entries at hidden
/// ports are left false (undefined).
#[allow(clippy::needless_range_loop)]
fn grouped_matrices(
    grammar: &Grammar,
    k: ProdId,
    g: &Grouping,
    f_mat: &BoolMat,
    lambda: &DepAssignment,
) -> ProductionMatrices {
    let p = grammar.production(k);
    let w = &p.rhs;
    let n = w.node_count();
    let sig = |i: usize| grammar.sig(w.nodes()[i]);
    let boundary = g.boundary(grammar);

    // Port graph with dense indices: inputs then outputs per node.
    let mut in_base = vec![0u32; n];
    let mut out_base = vec![0u32; n];
    let mut next = 0u32;
    for i in 0..n {
        in_base[i] = next;
        next += sig(i).inputs() as u32;
        out_base[i] = next;
        next += sig(i).outputs() as u32;
    }
    let in_ix = |p: InPortRef| in_base[p.node.index()] + p.port as u32;
    let out_ix = |p: OutPortRef| out_base[p.node.index()] + p.port as u32;
    let mut graph = DiGraph::with_nodes(next as usize);
    // Dependency arcs: non-members from λ*, the group from λ′(F).
    for i in 0..n {
        if g.is_member(NodeIx(i as u32)) {
            continue;
        }
        let mat = lambda.get(w.nodes()[i]).expect("λ* covers view modules");
        for (r, c) in mat.iter_ones() {
            graph.add_edge(NodeId(in_base[i] + r as u32), NodeId(out_base[i] + c as u32));
        }
    }
    for (r, c) in f_mat.iter_ones() {
        graph.add_edge(NodeId(in_ix(boundary.f_inputs[r])), NodeId(out_ix(boundary.f_outputs[c])));
    }
    // Data arcs: everything except intra-group (hidden) edges.
    for e in w.edges() {
        if g.is_member(e.from.node) && g.is_member(e.to.node) {
            continue;
        }
        graph.add_edge(NodeId(out_ix(e.from)), NodeId(in_ix(e.to)));
    }

    let lhs_sig = grammar.sig(p.lhs);
    let mut i_mats: Vec<BoolMat> =
        (0..n).map(|i| BoolMat::zeros(lhs_sig.inputs(), sig(i).inputs())).collect();
    let mut o_mats: Vec<BoolMat> =
        (0..n).map(|i| BoolMat::zeros(lhs_sig.outputs(), sig(i).outputs())).collect();
    let mut z_mats: Vec<Vec<BoolMat>> = (0..n)
        .map(|i| (0..n).map(|j| BoolMat::zeros(sig(i).outputs(), sig(j).inputs())).collect())
        .collect();
    for (x, &ip) in p.input_map.iter().enumerate() {
        let reach = graph.reachable_from(NodeId(in_ix(ip)));
        for i in 0..n {
            for y in 0..sig(i).inputs() {
                let port = InPortRef { node: NodeIx(i as u32), port: y as u8 };
                if reach.contains(in_ix(port) as usize) {
                    i_mats[i].set(x, y, true);
                }
            }
        }
    }
    for i in 0..n {
        for y in 0..sig(i).outputs() {
            let port = OutPortRef { node: NodeIx(i as u32), port: y as u8 };
            let reach = graph.reachable_from(NodeId(out_ix(port)));
            for (x, &op) in p.output_map.iter().enumerate() {
                if reach.contains(out_ix(op) as usize) {
                    o_mats[i].set(x, y, true);
                }
            }
            for j in i + 1..n {
                for z in 0..sig(j).inputs() {
                    let jp = InPortRef { node: NodeIx(j as u32), port: z as u8 };
                    if reach.contains(in_ix(jp) as usize) {
                        z_mats[i][j].set(y, z, true);
                    }
                }
            }
        }
    }
    ProductionMatrices { i_mats, o_mats, z_mats }
}

/// Visibility under a user-defined view: base visibility plus "the port is
/// not hidden inside a group".
pub fn is_visible_user(
    d: &DataLabel,
    vl: &ViewLabel,
    pg: &ProdGraph,
    grammar: &Grammar,
    uv: &UserView,
) -> bool {
    if !crate::visibility::is_visible(d, vl, pg) {
        return false;
    }
    let hidden_in = |p: &PortLabel| -> bool {
        let Some(&EdgeLabel::Plain { k, i }) = p.path.last() else { return false };
        uv.grouping_on(k).is_some_and(|(g, _)| {
            g.input_hidden(grammar, InPortRef { node: NodeIx(i), port: p.port })
        })
    };
    let hidden_out = |p: &PortLabel| -> bool {
        let Some(&EdgeLabel::Plain { k, i }) = p.path.last() else { return false };
        uv.grouping_on(k).is_some_and(|(g, _)| {
            g.output_hidden(grammar, OutPortRef { node: NodeIx(i), port: p.port })
        })
    };
    !d.inp.iter().any(&hidden_in) && !d.out.iter().any(&hidden_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::{pi, DecodeCtx};
    use crate::scheme::Fvl;
    use wf_model::fixtures::paper_example;
    use wf_run::fixtures::figure3_run;

    /// Example 18/19: group D and E of W5 into F, keep Δ′ = {S, A, B, C}.
    fn example18(ex: &wf_model::fixtures::PaperExample) -> UserView {
        let g = ex.figure16_grouping();
        // F's boundary: 3 inputs (D.in0, D.in1, E.in2), 2 outputs (E.out0,
        // E.out1). Perceive F as: first two inputs -> first output, third
        // input -> second output (grey-box).
        let f_mat = BoolMat::from_pairs(3, 2, [(0, 0), (1, 0), (2, 1)]);
        UserView {
            expand: vec![ex.s, ex.a_mod, ex.b_mod, ex.c_mod],
            deps: ex.spec.deps.clone(),
            groupings: vec![(g, f_mat)],
        }
    }

    #[test]
    fn user_view_label_builds() {
        let ex = paper_example();
        let pg = ProdGraph::new(&ex.spec.grammar);
        let uv = example18(&ex);
        let (vl, view) = label_user_view(&ex.spec, &pg, &uv, VariantKind::Default).unwrap();
        assert!(view.expands(ex.c_mod));
        // I(5,3) of Example 19 = I(p5, position 2) here (module E): defined
        // for E's boundary input (in2) and undefined (false) for the hidden
        // ones is not observable directly; check the boundary column works:
        // C.in1 ↦ E.in2 is an identity-style entry.
        let im = vl.i_mat(&ex.spec.grammar, ex.prods[4], 2).unwrap();
        assert!(im.get(1, 2), "C.in1 reaches its own port E.in2");
    }

    /// Intra-group items are hidden; boundary items stay visible.
    #[test]
    fn user_view_visibility() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let fvl = Fvl::new(&ex.spec).unwrap();
        let pg = fvl.prod_graph();
        let uv = example18(&ex);
        let (vl, _) = label_user_view(&ex.spec, pg, &uv, VariantKind::Default).unwrap();
        let (run, ids) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        // d21 = b:2 -> D:1 crosses the group boundary: visible.
        assert!(is_visible_user(labeler.label(ids.d21), &vl, pg, g, &uv));
        // The D:1 -> E:1 items (W5 edges at positions 2,3: items 31,32) are
        // intra-group: hidden.
        assert!(!is_visible_user(labeler.label(wf_run::DataId(31)), &vl, pg, g, &uv));
        // d17 (enters C:4) is visible.
        assert!(is_visible_user(labeler.label(ids.d17), &vl, pg, g, &uv));
    }

    /// Queries through the grouped production follow λ′(F), not the true
    /// internals: with F's grey-box, C.in1 (boundary E.in2) now feeds
    /// F.out1 = E.out1 only — same as the true λ in this case — while
    /// d21's flow (into F.in1 = D.in1) exits F.out0 only.
    #[test]
    fn user_view_queries_follow_f_matrix() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let fvl = Fvl::new(&ex.spec).unwrap();
        let pg = fvl.prod_graph();
        let uv = example18(&ex);
        let (vl, _) = label_user_view(&ex.spec, pg, &uv, VariantKind::Default).unwrap();
        let (run, ids) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let ctx = DecodeCtx::new(g, pg, &vl);
        // d21 flows into F.in1 (= D.in1) -> λ'(F) -> F.out0 (= E.out0) ->
        // c.in0 -> c.out0 = C:4.out0 -> … -> d31. Expect true.
        assert_eq!(pi(&ctx, labeler.label(ids.d21), labeler.label(ids.d31)), Some(true));
        // d17 (C.in1 ↦ E.in2 = F.in2) -> λ'(F) -> F.out1 = E.out1 -> c.in1
        // -> c.out1 = C:4.out1 ≠ d31's port: false, as in the true view.
        assert_eq!(pi(&ctx, labeler.label(ids.d17), labeler.label(ids.d31)), Some(false));
    }
}
