//! FVL — the **view-adaptive dynamic labeling scheme** of *Labeling
//! Workflow Views with Fine-Grained Dependencies* (VLDB 2012), §4–§5.
//!
//! The scheme splits reachability information between two kinds of labels
//! that are produced independently and combined only at query time:
//!
//! * **Data labels** ([`label`], [`labeler`]) encode *where* a data item was
//!   created: the pair of paths (producer / consumer port) in the compressed
//!   parse tree of the run, `O(log n)` bits each. They know nothing about
//!   dependencies, so they are *view-adaptive*: one labeling of a run serves
//!   every view, and views can be added or changed without touching data.
//! * **View labels** ([`viewlabel`]) encode *how* dependencies flow through
//!   each production of the view: `λ*(S)` plus the reachability-matrix
//!   functions `I`, `O`, `Z` of §4.3. Three variants trade label size for
//!   query time (§4.3, §4.4.3): *Space-Efficient* (store λ\* only, search at
//!   query time), *Default* (materialize `I`/`O`/`Z`), *Query-Efficient*
//!   (additionally materialize recursion-chain prefix products and the
//!   `Xᵃ = Xᵇ` power caches for O(1) chain evaluation).
//!
//! The decoding predicate π ([`decode`], Algorithms 1–2) multiplies a
//! constant number of small boolean matrices selected by the two data labels
//! and answers "does d₂ depend on d₁ w.r.t. the view" in constant time
//! (Theorem 10). For black-box (coarse-grained) views, the **Matrix-Free**
//! fast path ([`decode::structural`]) skips the matrices entirely (§6.4).
//!
//! Supporting pieces: bit-exact label encoding ([`codec`]), data-visibility
//! checks and user-defined views (§5: [`visibility`], [`userview`]), and the
//! reductions to *basic* (single-view) dynamic labeling used by Theorems 1
//! and 8 ([`basic`]).

pub mod basic;
pub mod codec;
pub mod decode;
pub mod error;
pub mod label;
pub mod labeler;
pub mod scheme;
pub mod snapshot;
pub mod userview;
pub mod viewlabel;
pub mod visibility;

pub use codec::LabelCodec;
pub use decode::{pi, pi_with, DecodeCtx, QueryScratch};
pub use error::FvlError;
pub use label::{DataLabel, LabelRef, PortLabel, PortRef};
pub use labeler::RunLabeler;
pub use scheme::{Fvl, FvlSession};
pub use viewlabel::{VariantKind, ViewLabel};
pub use visibility::{is_visible, is_visible_ref};
