//! Smoke test for the `profile` feature: the decode-path stage counters
//! must *nest* (a stage scoped inside another contributes no more time
//! than its parent) and *sum* (invocation counts add up exactly across
//! scopes, queries and `take_report` resets).
//!
//! Compiled only with `--features profile`; the default build ships the
//! same call sites as no-ops, which `wf-profile`'s own tests pin.
#![cfg(feature = "profile")]

use rand::rngs::StdRng;
use rand::SeedableRng;
use wf_analysis::ProdGraph;
use wf_core::{Fvl, VariantKind};
use wf_profile::{take_report, Stage};
use wf_workloads::{bioaid, sample, views};

/// The counters are process-global; serialize the tests in this file so
/// one test's traffic never leaks into another's report.
static EXCLUSIVE: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Synthetic nesting: one Batch scope wrapping three Matmul scopes. The
/// parent's inclusive nanoseconds must cover the children's sum, and every
/// invocation must be counted exactly once.
#[test]
fn counters_nest_and_sum_synthetically() {
    let _guard = EXCLUSIVE.lock().unwrap();
    let _ = take_report(); // drain whatever sibling tests left behind
    {
        let _outer = wf_profile::scope(Stage::Batch);
        for _ in 0..3 {
            let _inner = wf_profile::scope(Stage::Matmul);
            std::hint::black_box((0..512).sum::<u64>());
        }
    }
    let r = take_report();
    assert_eq!(r.calls_of(Stage::Batch), 1);
    assert_eq!(r.calls_of(Stage::Matmul), 3);
    assert!(
        r.ns_of(Stage::Batch) >= r.ns_of(Stage::Matmul),
        "inclusive parent time ({}) must cover nested children ({})",
        r.ns_of(Stage::Batch),
        r.ns_of(Stage::Matmul),
    );
    // take_report drains: a second read must see zeros, not carryover.
    assert!(take_report().is_empty());
}

/// Real decode traffic: run a batch of π queries and check the per-stage
/// invariants — every query ticks exactly one Pi scope, kernel stages nest
/// inside Pi, and power requests split exactly into hits + misses with the
/// memo warm on a second pass.
#[test]
fn decode_path_stages_nest_and_sum() {
    let _guard = EXCLUSIVE.lock().unwrap();
    let w = bioaid(1);
    let fvl = Fvl::new(&w.spec).expect("bioaid spec is valid");
    let pg = ProdGraph::new(&w.spec.grammar);
    let mut rng = StdRng::seed_from_u64(7);
    let (_, run) = sample::sample_run(&w, &pg, &mut rng, 80);
    let labels = fvl.labeler(&run).labels().to_vec();
    let view = views::random_safe_view(&w, &mut rng, 3);
    let vl = fvl.label_view(&view, VariantKind::Default).expect("view labels");
    let mut session = fvl.session(&vl);

    let probe: Vec<_> = labels.iter().take(24).collect();
    let _ = take_report(); // exclude construction-time matmuls

    let mut queries = 0u64;
    for d1 in &probe {
        for d2 in &probe {
            let _ = session.query_unchecked(d1, d2);
            queries += 1;
        }
    }
    let r = take_report();

    // Sum: π ran once per query, no more, no less.
    assert_eq!(r.calls_of(Stage::Pi), queries);
    // The workload is recursive and the probe is dense enough that the
    // matrix kernels must have fired.
    assert!(r.calls_of(Stage::Matmul) > 0, "expected matmuls on the π hot path");
    // Nesting: kernel and chain stages run strictly inside π scopes on
    // this single thread, so their inclusive time cannot exceed π's.
    for inner in [Stage::Matmul, Stage::Transpose, Stage::ChainEval] {
        assert!(
            r.ns_of(inner) <= r.ns_of(Stage::Pi),
            "{:?} ns ({}) exceeds enclosing Pi ns ({})",
            inner,
            r.ns_of(inner),
            r.ns_of(Stage::Pi),
        );
    }

    // Second identical pass: the session memo is warm, so chain-power
    // requests may no longer miss — and hit/miss totals stay consistent.
    let first_requests = r.calls_of(Stage::PowMemoHit) + r.calls_of(Stage::PowMemoMiss);
    for d1 in &probe {
        for d2 in &probe {
            let _ = session.query_unchecked(d1, d2);
        }
    }
    let r2 = take_report();
    assert_eq!(r2.calls_of(Stage::Pi), queries);
    assert_eq!(r2.calls_of(Stage::PowMemoMiss), 0, "warm memo must not miss");
    assert_eq!(
        r2.calls_of(Stage::PowMemoHit),
        first_requests,
        "every first-pass power request must repeat as a hit"
    );
}
