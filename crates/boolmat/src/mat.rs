//! Dense boolean matrices with bitset rows.

/// A boolean matrix with up to 64 columns, one `u64` bitset per row.
///
/// Rows index the *from* side of a reachability relation, columns the *to*
/// side; `m.get(r, c)` reads "column-c port is reachable from row-r port".
/// The 64-column bound comfortably covers the paper's workloads (modules
/// have at most 10 ports in every experiment, §6.5).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BoolMat {
    rows: u16,
    cols: u16,
    data: Vec<u64>,
}

impl BoolMat {
    /// All-false matrix ("empty matrix" in the paper's terms).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(cols <= 64, "BoolMat supports at most 64 columns (got {cols})");
        assert!(rows <= u16::MAX as usize);
        Self { rows: rows as u16, cols: cols as u16, data: vec![0; rows] }
    }

    /// All-true matrix ("complete matrix": black-box dependencies).
    pub fn complete(rows: usize, cols: usize) -> Self {
        let mut m = Self::zeros(rows, cols);
        let mask = Self::col_mask(cols);
        for row in &mut m.data {
            *row = mask;
        }
        m
    }

    /// Identity matrix (reflexive reachability: "a vertex is reachable from
    /// itself", footnote 4 of the paper).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i] = 1u64 << i;
        }
        m
    }

    /// Re-dimensions the matrix to an all-false `rows × cols`, reusing the
    /// existing row storage (no allocation once capacity suffices) — the
    /// workhorse behind the `*_into` operations and [`crate::MatPool`].
    #[inline]
    pub fn reset(&mut self, rows: usize, cols: usize) {
        assert!(cols <= 64, "BoolMat supports at most 64 columns (got {cols})");
        assert!(rows <= u16::MAX as usize);
        self.rows = rows as u16;
        self.cols = cols as u16;
        self.data.clear();
        self.data.resize(rows, 0);
    }

    /// Turns the matrix into the `n × n` identity in place (cf.
    /// [`BoolMat::identity`], without the allocation).
    #[inline]
    pub fn assign_identity(&mut self, n: usize) {
        self.reset(n, n);
        for i in 0..n {
            self.data[i] = 1u64 << i;
        }
    }

    /// Makes `self` a copy of `other`, reusing storage.
    #[inline]
    pub fn copy_from(&mut self, other: &BoolMat) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Builds a matrix from `(row, col)` pairs.
    pub fn from_pairs(
        rows: usize,
        cols: usize,
        pairs: impl IntoIterator<Item = (usize, usize)>,
    ) -> Self {
        let mut m = Self::zeros(rows, cols);
        for (r, c) in pairs {
            m.set(r, c, true);
        }
        m
    }

    #[inline]
    fn col_mask(cols: usize) -> u64 {
        if cols >= 64 {
            u64::MAX
        } else {
            (1u64 << cols) - 1
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows as usize
    }

    /// Allocated row capacity — lets callers (and tests) check that the
    /// in-place operations really reuse storage.
    #[inline]
    pub fn row_capacity(&self) -> usize {
        self.data.capacity()
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols as usize
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows as usize && c < self.cols as usize);
        (self.data[r] >> c) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        debug_assert!(r < self.rows as usize && c < self.cols as usize);
        if v {
            self.data[r] |= 1u64 << c;
        } else {
            self.data[r] &= !(1u64 << c);
        }
    }

    /// The whole row as a bitset.
    #[inline]
    pub fn row_bits(&self, r: usize) -> u64 {
        self.data[r]
    }

    /// Sets a whole row from a bitset (bits past `cols` are masked off).
    #[inline]
    pub fn set_row_bits(&mut self, r: usize, bits: u64) {
        self.data[r] = bits & Self::col_mask(self.cols as usize);
    }

    /// True iff no entry is set ("empty matrix, with only false values").
    pub fn is_empty(&self) -> bool {
        self.data.iter().all(|&r| r == 0)
    }

    /// True iff every entry is set (complete / black-box matrix).
    pub fn is_complete(&self) -> bool {
        let mask = Self::col_mask(self.cols as usize);
        self.cols == 0 || self.data.iter().all(|&r| r == mask)
    }

    /// Number of true entries.
    pub fn count_ones(&self) -> usize {
        self.data.iter().map(|r| r.count_ones() as usize).sum()
    }

    /// Boolean matrix product: `self` is `r×m`, `other` is `m×c`.
    ///
    /// `result[i][j] = ⋁ₖ self[i][k] ∧ other[k][j]` — relation composition,
    /// i.e. "first traverse `self`, then `other`". This is the orientation
    /// Algorithm 2 uses when chaining `Inputs`/`Outputs` products along parse
    /// tree paths.
    ///
    /// Implementation: for each set bit `k` of a row of `self`, OR in row `k`
    /// of `other` — no inner boolean loop.
    pub fn matmul(&self, other: &BoolMat) -> BoolMat {
        assert_eq!(
            self.cols, other.rows,
            "dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = BoolMat::zeros(self.rows as usize, other.cols as usize);
        self.matmul_bits(other, &mut out);
        out
    }

    /// [`BoolMat::matmul`] writing into a caller-owned matrix (the query hot
    /// path reuses one scratch matrix per product instead of allocating).
    /// `out` is re-dimensioned to `self.rows × other.cols`; it must not
    /// alias `self` or `other` (guaranteed by `&mut` exclusivity).
    #[inline]
    pub fn matmul_into(&self, other: &BoolMat, out: &mut BoolMat) {
        debug_assert_eq!(
            self.cols, other.rows,
            "dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset(self.rows as usize, other.cols as usize);
        self.matmul_bits(other, out);
    }

    /// Inner-dimension threshold above which [`BoolMat::matmul_into_blocked`]
    /// beats the bit-serial kernel on dense rows: the blocked pass costs a
    /// fixed `other.rows` iterations per 4-row group (branchless, so the
    /// four accumulators pipeline), while bit-serial costs ~3 dependent ops
    /// per *set* bit. Workflow port matrices (≤10 ports) stay bit-serial.
    const MATMUL_BLOCK_MIN_INNER: usize = 16;

    /// Density ceiling (in quarters of `other`'s cells) below which the
    /// blocked kernel is dispatched. Above ~25% occupancy the bit-serial
    /// kernel's saturated-row early exit kicks in after a handful of ORs
    /// (the accumulator fills in ~`log` steps on dense operands) and beats
    /// the blocked pass's fixed `other.rows` iterations; the microbench in
    /// `wf-bench::scale_sweep` pins both regimes.
    const MATMUL_BLOCK_MAX_QUARTER_DENSITY: u32 = 1;

    #[inline]
    fn matmul_bits(&self, other: &BoolMat, out: &mut BoolMat) {
        let _t = wf_profile::scope(wf_profile::Stage::Matmul);
        if self.rows >= 4
            && other.rows as usize >= Self::MATMUL_BLOCK_MIN_INNER
            && Self::sparse_enough_for_block(other)
        {
            self.matmul_bits_blocked(other, out);
        } else {
            self.matmul_bits_serial(other, out);
        }
    }

    /// `true` when `other`'s occupancy is at most
    /// [`BoolMat::MATMUL_BLOCK_MAX_QUARTER_DENSITY`] quarters of its cells.
    /// Costs one `popcnt` per row (≤ 64) — noise next to the multiply this
    /// decision steers.
    #[inline]
    fn sparse_enough_for_block(other: &BoolMat) -> bool {
        let ones: u32 = other.data.iter().map(|w| w.count_ones()).sum();
        ones * 4 <= other.rows as u32 * other.cols as u32 * Self::MATMUL_BLOCK_MAX_QUARTER_DENSITY
    }

    /// One output row of the bit-serial kernel: for each set bit `k` of
    /// `row`, OR in row `k` of `other`, with a saturated-row early exit.
    #[inline]
    fn row_product_serial(row: u64, other_rows: &[u64], full: u64) -> u64 {
        let mut bits = row;
        let mut acc = 0u64;
        while bits != 0 {
            let k = bits.trailing_zeros() as usize;
            acc |= other_rows[k];
            if acc == full {
                // The row saturated every column: no further source bit
                // can add anything (reachability rows close fast, so
                // this fires often on transitively-closed matrices).
                break;
            }
            bits &= bits - 1;
        }
        acc
    }

    fn matmul_bits_serial(&self, other: &BoolMat, out: &mut BoolMat) {
        let full = Self::col_mask(other.cols as usize);
        for (i, &row) in self.data.iter().enumerate() {
            // All-zero source rows contribute nothing; `out` is freshly
            // reset, so the zero result is already in place.
            if row == 0 {
                continue;
            }
            out.data[i] = Self::row_product_serial(row, &other.data, full);
        }
    }

    /// Blocked kernel: four source rows share one branchless pass over
    /// `other`. Each inner step turns bit `k` of a source row into an
    /// all-ones/all-zeros mask (`wrapping_neg` of the extracted bit) and
    /// ANDs it with row `k` of `other` — no data-dependent branches, so the
    /// four accumulators retire in parallel. Worth it once the inner
    /// dimension is large *and* `other` is sparse enough that the serial
    /// kernel's saturation exit stays cold; see `MATMUL_BLOCK_MIN_INNER`
    /// and `MATMUL_BLOCK_MAX_QUARTER_DENSITY`.
    fn matmul_bits_blocked(&self, other: &BoolMat, out: &mut BoolMat) {
        let orows = &other.data[..];
        let n = self.rows as usize;
        let full = Self::col_mask(other.cols as usize);
        let mut i = 0;
        while i + 4 <= n {
            let r = [self.data[i], self.data[i + 1], self.data[i + 2], self.data[i + 3]];
            let mut acc = [0u64; 4];
            for (k, &orow) in orows.iter().enumerate() {
                acc[0] |= orow & ((r[0] >> k) & 1).wrapping_neg();
                acc[1] |= orow & ((r[1] >> k) & 1).wrapping_neg();
                acc[2] |= orow & ((r[2] >> k) & 1).wrapping_neg();
                acc[3] |= orow & ((r[3] >> k) & 1).wrapping_neg();
            }
            out.data[i..i + 4].copy_from_slice(&acc);
            i += 4;
        }
        for (j, &row) in self.data.iter().enumerate().skip(i) {
            out.data[j] = Self::row_product_serial(row, orows, full);
        }
    }

    /// The bit-serial matmul kernel, callable directly. Exposed as the
    /// reference implementation for the kernel-equivalence proptests and
    /// the `scale_sweep` microbench; production code should use
    /// [`BoolMat::matmul_into`], which dispatches by dimension.
    pub fn matmul_into_bitserial(&self, other: &BoolMat, out: &mut BoolMat) {
        debug_assert_eq!(self.cols, other.rows);
        out.reset(self.rows as usize, other.cols as usize);
        self.matmul_bits_serial(other, out);
    }

    /// The blocked 4-row matmul kernel, callable directly (same contract as
    /// [`BoolMat::matmul_into_bitserial`]).
    pub fn matmul_into_blocked(&self, other: &BoolMat, out: &mut BoolMat) {
        debug_assert_eq!(self.cols, other.rows);
        out.reset(self.rows as usize, other.cols as usize);
        self.matmul_bits_blocked(other, out);
    }

    /// Matrix transpose. Algorithm 2 transposes the accumulated `Outputs`
    /// chain (`Oᵀ × Z × I`).
    pub fn transpose(&self) -> BoolMat {
        let mut out = BoolMat::zeros(self.cols as usize, self.rows as usize);
        self.transpose_bits(&mut out);
        out
    }

    /// [`BoolMat::transpose`] into a caller-owned matrix (re-dimensioned to
    /// `cols × rows`; must not alias `self`).
    #[inline]
    pub fn transpose_into(&self, out: &mut BoolMat) {
        out.reset(self.cols as usize, self.rows as usize);
        self.transpose_bits(out);
    }

    /// Population threshold (in matrix *cells*, `rows × cols`) above which
    /// the word-parallel 64×64 block transpose beats bit-serial scatter.
    /// The block network is a fixed ~6·64 word ops regardless of density;
    /// bit-serial pays ~3 dependent ops per set bit. Small port matrices
    /// (≤10×10) stay bit-serial; the `Oᵀ` of a wide accumulated chain goes
    /// word-parallel.
    const TRANSPOSE_BLOCK_MIN_CELLS: usize = 256;

    #[inline]
    fn transpose_bits(&self, out: &mut BoolMat) {
        let _t = wf_profile::scope(wf_profile::Stage::Transpose);
        if self.rows as usize * self.cols as usize >= Self::TRANSPOSE_BLOCK_MIN_CELLS {
            self.transpose_bits_block(out);
        } else {
            self.transpose_bits_serial(out);
        }
    }

    fn transpose_bits_serial(&self, out: &mut BoolMat) {
        for r in 0..self.rows as usize {
            let mut bits = self.data[r];
            while bits != 0 {
                let c = bits.trailing_zeros() as usize;
                out.data[c] |= 1u64 << r;
                bits &= bits - 1;
            }
        }
    }

    /// Word-parallel 64×64 bit-block transpose (Hacker's Delight §7-3):
    /// pad the matrix into a `[u64; 64]` block, then run the log-step
    /// swap-mask network — at step `j ∈ {32,16,8,4,2,1}` every pair of rows
    /// `(k, k|j)` exchanges its off-diagonal `j×j` sub-blocks with three
    /// XORs under mask `m`. Six passes of straight-line word ops replace
    /// one scattered read-modify-write per set bit.
    ///
    /// Transpose is only legal when `rows ≤ 64` (the output needs `rows`
    /// columns), so the 64×64 block always suffices; padding rows/bits are
    /// zero by the row-mask invariant and fall off in the copy-out.
    fn transpose_bits_block(&self, out: &mut BoolMat) {
        let rows = self.rows as usize;
        debug_assert!(rows <= 64, "transpose requires rows <= 64 (got {rows})");
        let mut a = [0u64; 64];
        a[..rows].copy_from_slice(&self.data);
        let mut j = 32usize;
        let mut m: u64 = 0x0000_0000_FFFF_FFFF;
        while j != 0 {
            let mut k = 0usize;
            while k < 64 {
                // LSB-first block swap: exchange the high-`j` bits of row
                // `k` with the low-`j` bits of row `k|j` (the mirror of the
                // MSB-first form in Hacker's Delight, matching our
                // bit-0-is-column-0 layout).
                let t = ((a[k] >> j) ^ a[k | j]) & m;
                a[k] ^= t << j;
                a[k | j] ^= t;
                k = ((k | j) + 1) & !j;
            }
            j >>= 1;
            m ^= m << j;
        }
        out.data.copy_from_slice(&a[..self.cols as usize]);
    }

    /// The bit-serial scatter transpose, callable directly. Exposed as the
    /// reference implementation for the kernel-equivalence proptests and
    /// the `scale_sweep` microbench; production code should use
    /// [`BoolMat::transpose_into`], which dispatches by occupancy.
    pub fn transpose_into_bitserial(&self, out: &mut BoolMat) {
        out.reset(self.cols as usize, self.rows as usize);
        self.transpose_bits_serial(out);
    }

    /// The word-parallel block transpose, callable directly (same contract
    /// as [`BoolMat::transpose_into_bitserial`]).
    pub fn transpose_into_block(&self, out: &mut BoolMat) {
        out.reset(self.cols as usize, self.rows as usize);
        self.transpose_bits_block(out);
    }

    /// Element-wise OR, in place. Used when accumulating reachability.
    pub fn or_assign(&mut self, other: &BoolMat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a |= b;
        }
    }

    /// True iff `self[r][c] ⇒ other[r][c]` for all entries (`⊆` on relations).
    pub fn is_subset_of(&self, other: &BoolMat) -> bool {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data.iter().zip(&other.data).all(|(&a, &b)| a & !b == 0)
    }

    /// Iterates over the true `(row, col)` entries.
    pub fn iter_ones(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.data.iter().enumerate().flat_map(|(r, &bits)| {
            let mut bits = bits;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let c = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some((r, c))
            })
        })
    }

    /// Storage size of the matrix payload in bits (used when measuring view
    /// label sizes, Figure 19).
    pub fn payload_bits(&self) -> usize {
        self.rows as usize * self.cols as usize
    }
}

/// The empty `0 × 0` matrix — what [`crate::MatPool::take`] hands out when
/// the pool is dry (every `*_into` operation re-dimensions its output).
impl Default for BoolMat {
    fn default() -> Self {
        BoolMat::zeros(0, 0)
    }
}

impl std::fmt::Debug for BoolMat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BoolMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows as usize {
            write!(f, "  ")?;
            for c in 0..self.cols as usize {
                write!(f, "{}", if self.get(r, c) { '1' } else { '0' })?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_complete() {
        let z = BoolMat::zeros(3, 5);
        assert!(z.is_empty());
        assert!(!z.is_complete());
        let c = BoolMat::complete(3, 5);
        assert!(c.is_complete());
        assert!(!c.is_empty());
        assert_eq!(c.count_ones(), 15);
    }

    #[test]
    fn zero_dimension_matrices() {
        let m = BoolMat::zeros(0, 5);
        assert!(m.is_empty());
        let m2 = BoolMat::zeros(3, 0);
        assert!(m2.is_empty());
        assert!(m2.is_complete()); // vacuously complete
                                   // Products through a zero dimension yield all-false.
        let a = BoolMat::complete(2, 0);
        let b = BoolMat::complete(0, 3);
        let p = a.matmul(&b);
        assert_eq!((p.rows(), p.cols()), (2, 3));
        assert!(p.is_empty());
    }

    #[test]
    fn matmul_is_relation_composition() {
        // a: {0->1}, b: {1->2}; a;b = {0->2}.
        let a = BoolMat::from_pairs(2, 2, [(0, 1)]);
        let b = BoolMat::from_pairs(2, 3, [(1, 2)]);
        let p = a.matmul(&b);
        assert!(p.get(0, 2));
        assert_eq!(p.count_ones(), 1);
    }

    #[test]
    fn identity_is_neutral() {
        let m = BoolMat::from_pairs(4, 4, [(0, 1), (1, 3), (2, 2), (3, 0)]);
        assert_eq!(BoolMat::identity(4).matmul(&m), m);
        assert_eq!(m.matmul(&BoolMat::identity(4)), m);
    }

    #[test]
    fn matmul_not_commutative() {
        let a = BoolMat::from_pairs(2, 2, [(0, 1)]);
        let b = BoolMat::from_pairs(2, 2, [(1, 0)]);
        assert_ne!(a.matmul(&b), b.matmul(&a));
    }

    #[test]
    fn transpose_involution() {
        let m = BoolMat::from_pairs(3, 5, [(0, 4), (1, 0), (2, 3)]);
        assert_eq!(m.transpose().transpose(), m);
        assert!(m.transpose().get(4, 0));
    }

    #[test]
    fn empty_matrix_annihilates() {
        // Z(k,i,j) with i >= j is empty; any product through it is empty
        // (the short-circuit Algorithm 2 exploits at lines 25-27).
        let o = BoolMat::complete(3, 4);
        let z = BoolMat::zeros(4, 2);
        let i = BoolMat::complete(2, 5);
        assert!(o.matmul(&z).matmul(&i).is_empty());
    }

    #[test]
    fn subset_relation() {
        let small = BoolMat::from_pairs(2, 2, [(0, 0)]);
        let big = BoolMat::from_pairs(2, 2, [(0, 0), (1, 1)]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(big.is_subset_of(&big));
    }

    #[test]
    fn iter_ones_matches_get() {
        let m = BoolMat::from_pairs(4, 6, [(0, 5), (2, 0), (3, 3), (3, 4)]);
        let ones: Vec<_> = m.iter_ones().collect();
        assert_eq!(ones, vec![(0, 5), (2, 0), (3, 3), (3, 4)]);
    }

    #[test]
    fn or_assign_accumulates() {
        let mut acc = BoolMat::zeros(2, 2);
        acc.or_assign(&BoolMat::from_pairs(2, 2, [(0, 1)]));
        acc.or_assign(&BoolMat::from_pairs(2, 2, [(1, 0)]));
        assert_eq!(acc.count_ones(), 2);
    }

    #[test]
    fn matmul_into_matches_matmul_and_reuses_storage() {
        let a = BoolMat::from_pairs(3, 4, [(0, 1), (1, 3), (2, 0)]);
        let b = BoolMat::from_pairs(4, 5, [(1, 2), (3, 4), (0, 0)]);
        let mut out = BoolMat::zeros(7, 7); // wrong dims on purpose
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Stale contents never leak through a reset.
        let mut dirty = BoolMat::complete(3, 5);
        a.matmul_into(&b, &mut dirty);
        assert_eq!(dirty, a.matmul(&b));
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let m = BoolMat::from_pairs(3, 5, [(0, 4), (1, 0), (2, 3)]);
        let mut out = BoolMat::complete(1, 1);
        m.transpose_into(&mut out);
        assert_eq!(out, m.transpose());
    }

    #[test]
    fn reset_and_assign_identity_reuse_capacity() {
        let mut m = BoolMat::complete(8, 8);
        let cap = m.row_capacity();
        m.reset(4, 6);
        assert_eq!((m.rows(), m.cols()), (4, 6));
        assert!(m.is_empty());
        assert_eq!(m.row_capacity(), cap, "reset must not shrink capacity");
        m.assign_identity(5);
        assert_eq!(m, BoolMat::identity(5));
        let mut c = BoolMat::default();
        c.copy_from(&m);
        assert_eq!(c, m);
    }

    /// `matmul_bits` carries two shortcuts (zero-row skip, saturated-row
    /// early exit); pin its output to the definitional triple loop on
    /// pseudo-random matrices, deliberately including all-zero rows,
    /// saturating rows, and the 0-column edge.
    #[test]
    fn matmul_matches_naive_product_on_random_matrices() {
        let naive = |a: &BoolMat, b: &BoolMat| {
            let mut out = BoolMat::zeros(a.rows(), b.cols());
            for i in 0..a.rows() {
                for j in 0..b.cols() {
                    let mut v = false;
                    for k in 0..a.cols() {
                        v = v || (a.get(i, k) && b.get(k, j));
                    }
                    out.set(i, j, v);
                }
            }
            out
        };
        let mut seed = 0xD1B5_4A32u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed >> 33
        };
        for trial in 0..200 {
            let (r, m, c) = (1 + trial % 7, 1 + (trial / 7) % 9, (trial / 63) % 11);
            let mut a = BoolMat::zeros(r, m);
            let mut b = BoolMat::zeros(m, c);
            for i in 0..r {
                // Every fourth row all-zero (exercises the skip); every
                // fifth all-ones (drives saturation in one step).
                let bits = match i % 5 {
                    0 if i % 4 == 0 => 0,
                    4 => u64::MAX,
                    _ => next(),
                };
                a.set_row_bits(i, bits);
            }
            for k in 0..m {
                b.set_row_bits(k, if k % 3 == 0 { u64::MAX } else { next() });
            }
            assert_eq!(a.matmul(&b), naive(&a, &b), "trial {trial}: {r}x{m} * {m}x{c}");
            // The in-place form must agree bit-for-bit, even over a dirty
            // output buffer.
            let mut out = BoolMat::complete(3, 3);
            a.matmul_into(&b, &mut out);
            assert_eq!(out, naive(&a, &b), "trial {trial} (into)");
        }
    }

    #[test]
    fn full_width_64_columns() {
        let m = BoolMat::complete(2, 64);
        assert!(m.is_complete());
        assert_eq!(m.row_bits(0), u64::MAX);
        let p = m.matmul(&BoolMat::identity(64));
        assert!(p.is_complete());
    }
}
