//! Powers of a square boolean matrix: logarithmic-time exponentiation and
//! the eventually-periodic power cache behind constant-time queries.
//!
//! §4.4.3 of the paper: a recursion chain of length `i` requires the product
//! of `i−1` per-step matrices. The per-step matrices repeat with the cycle
//! length `l`, so the product reduces to `X^⌊(i−1)/l⌋ · (prefix)` where `X`
//! is the product over one full cycle. Because there are at most `2^(c²)`
//! distinct `c×c` boolean matrices, the sequence `X¹, X², …` must enter a
//! cycle: there exist `a < b ≤ 2^(c²)+1` with `Xᵃ = Xᵇ`. [`PowerCache`]
//! finds `(a, b)` once and afterwards answers `Xᵉ` for any `e ≥ 1` in O(1).

use crate::{BoolMat, MatPool};
use std::collections::HashMap;

/// Computes `x^e` for `e >= 0` by binary exponentiation (`x⁰ = I`).
///
/// This is the "divide and conquer … runs in O(log i) time" fallback of
/// §4.4.3, used by Default FVL which does not materialize power caches.
pub fn pow(x: &BoolMat, e: u64) -> BoolMat {
    let mut out = BoolMat::default();
    let mut pool = MatPool::new();
    pow_into(x, e, &mut out, &mut pool);
    out
}

/// [`pow`] writing into a caller-owned matrix, with scratch buffers drawn
/// from (and returned to) `pool` — allocation-free in steady state.
///
/// The accumulator starts from the lowest *set* bit of `e` rather than the
/// identity, so when `e` is a power of two the whole computation is exactly
/// `log₂ e` squarings plus one copy — no trailing `I · x^e` multiply.
pub fn pow_into(x: &BoolMat, e: u64, out: &mut BoolMat, pool: &mut MatPool) {
    assert_eq!(x.rows(), x.cols(), "pow requires a square matrix");
    if e == 0 {
        out.assign_identity(x.rows());
        return;
    }
    let mut base = pool.take();
    base.copy_from(x);
    let mut tmp = pool.take();
    let mut e = e;
    // Square past the trailing zero bits without touching the accumulator.
    while e & 1 == 0 {
        base.matmul_into(&base, &mut tmp);
        std::mem::swap(&mut base, &mut tmp);
        e >>= 1;
    }
    out.copy_from(&base);
    e >>= 1;
    while e > 0 {
        base.matmul_into(&base, &mut tmp);
        std::mem::swap(&mut base, &mut tmp);
        if e & 1 == 1 {
            out.matmul_into(&base, &mut tmp);
            std::mem::swap(out, &mut tmp);
        }
        e >>= 1;
    }
    pool.put(base);
    pool.put(tmp);
}

/// A lazy memo of powers of one square matrix: a squaring ladder
/// `x, x², x⁴, …` shared across exponents plus a per-exponent result map.
///
/// Default FVL has no materialized [`PowerCache`], so every query against a
/// long recursion chain used to rerun binary exponentiation from scratch.
/// A serving session keeps one `PowMemo` per (cycle, offset, direction)
/// instead: each distinct exponent is computed once — reusing whatever
/// ladder steps earlier exponents already paid for — and each repeat lookup
/// is a single hash probe.
///
/// The memo identifies the base matrix by *position*, not by value: callers
/// must pass the same `x` on every [`PowMemo::power`] call (the query
/// scratch guarantees this by keying memos by view uid).
///
/// Storage is bounded: after a threshold number of distinct exponents
/// (`PROMOTE_AT`, currently 16) the memo *promotes* itself to a
/// [`PowerCache`] — the `Xᵃ = Xᵇ` periodic cache —
/// which answers every exponent in O(1) from at most `b − 1` matrices, and
/// recycles the ladder and per-exponent results back into the pool. So a
/// long-lived session never accumulates more than `PROMOTE_AT` result
/// matrices plus the (small, period-bounded) cache.
#[derive(Default)]
pub struct PowMemo {
    /// `sq[i] = x^(2^i)`, extended lazily (pre-promotion).
    sq: Vec<BoolMat>,
    /// Finished results per exponent, including `0 → I` (pre-promotion).
    results: HashMap<u64, BoolMat>,
    /// Post-promotion periodic cache; answers every exponent once set.
    cache: Option<PowerCache>,
}

/// Distinct-exponent count at which a [`PowMemo`] switches to the periodic
/// [`PowerCache`] representation.
const PROMOTE_AT: usize = 16;

impl PowMemo {
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized `x^e`, if this exponent is already answerable in O(1).
    #[inline]
    pub fn cached(&self, e: u64) -> Option<&BoolMat> {
        if let Some(cache) = &self.cache {
            return Some(cache.power(e));
        }
        self.results.get(&e)
    }

    /// Returns `x^e`, computing and memoizing it on first sight. Scratch
    /// and ladder buffers come from `pool`; steady state allocates nothing.
    pub fn power(&mut self, x: &BoolMat, e: u64, pool: &mut MatPool) -> &BoolMat {
        debug_assert_eq!(x.rows(), x.cols(), "PowMemo requires a square matrix");
        // Mutate first, borrow last (NLL cannot return a borrow from an
        // early branch and still allow mutation below it).
        if self.cache.is_none() && !self.results.contains_key(&e) {
            if self.results.len() >= PROMOTE_AT {
                // Enough distinct exponents to pay for the periodic cache:
                // bounded storage, every future exponent O(1).
                for m in self.sq.drain(..) {
                    pool.put(m);
                }
                for (_, m) in self.results.drain() {
                    pool.put(m);
                }
                self.cache = Some(PowerCache::build_with(x, pool));
            } else {
                let mut out = pool.take();
                if e == 0 {
                    out.assign_identity(x.rows());
                } else {
                    if self.sq.is_empty() {
                        let mut first = pool.take();
                        first.copy_from(x);
                        self.sq.push(first);
                    }
                    let high = 63 - e.leading_zeros() as usize;
                    while self.sq.len() <= high {
                        let mut next = pool.take();
                        let last = self.sq.last().expect("ladder is non-empty");
                        last.matmul_into(last, &mut next);
                        self.sq.push(next);
                    }
                    let first = e.trailing_zeros() as usize;
                    out.copy_from(&self.sq[first]);
                    let mut tmp = pool.take();
                    for i in (first + 1)..=high {
                        if (e >> i) & 1 == 1 {
                            out.matmul_into(&self.sq[i], &mut tmp);
                            std::mem::swap(&mut out, &mut tmp);
                        }
                    }
                    pool.put(tmp);
                }
                self.results.insert(e, out);
            }
        }
        match &self.cache {
            Some(cache) => cache.power(e),
            None => &self.results[&e],
        }
    }

    /// Number of matrices held for O(1) answers (per-exponent results, or
    /// the periodic cache's stored powers after promotion).
    pub fn memoized(&self) -> usize {
        match &self.cache {
            Some(cache) => cache.stored() + 1, // + identity
            None => self.results.len(),
        }
    }

    /// Drains every recyclable buffer — ladder, results, and the periodic
    /// cache's stored powers — back into `pool`, leaving the memo empty.
    /// Used when a scratch is cleared; nothing the memo ever held is lost
    /// to the allocator.
    pub fn recycle_into(&mut self, pool: &mut MatPool) {
        for m in self.sq.drain(..) {
            pool.put(m);
        }
        for (_, m) in self.results.drain() {
            pool.put(m);
        }
        if let Some(cache) = self.cache.take() {
            cache.recycle_into(pool);
        }
    }
}

/// Materialized powers `X¹ … X^(b−1)` of a square boolean matrix together
/// with the cycle parameters `(a, b)` such that `Xᵃ = Xᵇ`, giving O(1)
/// lookup of `Xᵉ` for arbitrary `e`.
///
/// This is what Query-Efficient FVL stores per recursion in the view label
/// ("materialize a and b, as well as X¹, X², …" — §4.4.3).
#[derive(Clone, Debug)]
pub struct PowerCache {
    /// `powers[p - 1] = X^p` for `p = 1 ..= b - 1`.
    powers: Vec<BoolMat>,
    /// Smallest exponent from which the power sequence is periodic.
    a: u64,
    /// Smallest exponent `> a` with `X^b = X^a`; the period is `b - a`.
    b: u64,
    /// Identity of the same dimension, returned for `e = 0`.
    identity: BoolMat,
}

impl PowerCache {
    /// Builds the cache by stepping through `X¹, X², …` until a repeat.
    ///
    /// In practice `a` and `b` are tiny (the paper: "a, b and c are all
    /// small constants"); reachability matrices are transitively closed very
    /// quickly, typically within a handful of steps.
    pub fn new(x: BoolMat) -> Self {
        Self::build_with(&x, &mut MatPool::new())
    }

    /// [`PowerCache::new`] with every stored matrix (and the identity) drawn
    /// from `pool` — the promotion path of a warm [`PowMemo`] recycles its
    /// ladder and result buffers and rebuilds them into the cache without
    /// touching the allocator (only the small `Vec` of handles is new).
    ///
    /// The repeat scan compares `cur` against the stored powers directly
    /// instead of hashing clones into a side table: `b` is a small constant,
    /// and cloning matrices is exactly what the pool exists to avoid.
    pub fn build_with(x: &BoolMat, pool: &mut MatPool) -> Self {
        assert_eq!(x.rows(), x.cols(), "PowerCache requires a square matrix");
        let mut identity = pool.take();
        identity.assign_identity(x.rows());
        let mut powers: Vec<BoolMat> = Vec::new();
        let mut cur = pool.take();
        cur.copy_from(x);
        loop {
            // powers holds X¹ … Xⁿ and cur == X^(n+1); a match at index
            // `first` means X^(first+1) == X^(n+1), so (a, b) = (first+1, n+1).
            if let Some(first) = powers.iter().position(|p| *p == cur) {
                pool.put(cur);
                let b = powers.len() as u64 + 1;
                return Self { powers, a: first as u64 + 1, b, identity };
            }
            let mut next = pool.take();
            cur.matmul_into(x, &mut next);
            powers.push(cur);
            cur = next;
        }
    }

    /// Reassembles a cache from its stored parts (the inverse of reading
    /// `pre_period` / `repeat_at` / `power(1..b)` — what a persisted
    /// snapshot holds). Returns `None` unless the parts describe a valid
    /// periodic power sequence: `1 ≤ a < b`, exactly `b − 1` square stored
    /// powers of one dimension, each the successor-product of the previous,
    /// and `X^(b−1) · X = X^a`. The result is therefore *internally
    /// consistent* — every answer really is a power of the stored base and
    /// the periodic folding is sound — though whether that base is the
    /// matrix the caller expects is the caller's (or a checksum's) concern.
    pub fn from_parts(powers: Vec<BoolMat>, a: u64, b: u64) -> Option<Self> {
        if a == 0 || a >= b || powers.len() as u64 != b - 1 {
            return None;
        }
        let n = powers[0].rows();
        if powers.iter().any(|p| p.rows() != n || p.cols() != n) {
            return None;
        }
        for w in powers.windows(2) {
            if w[0].matmul(&powers[0]) != w[1] {
                return None;
            }
        }
        let wrap = powers[powers.len() - 1].matmul(&powers[0]);
        if wrap != powers[(a - 1) as usize] {
            return None;
        }
        Some(Self { powers, a, b, identity: BoolMat::identity(n) })
    }

    /// Drains the stored matrices (and the identity) back into `pool` — the
    /// counterpart of [`PowerCache::build_with`], used when a promoted
    /// [`PowMemo`] is cleared.
    pub fn recycle_into(self, pool: &mut MatPool) {
        for m in self.powers {
            pool.put(m);
        }
        pool.put(self.identity);
    }

    /// The pre-period length `a` (first exponent of the periodic part).
    pub fn pre_period(&self) -> u64 {
        self.a
    }

    /// The exponent `b > a` with `X^b = X^a`.
    pub fn repeat_at(&self) -> u64 {
        self.b
    }

    /// Number of matrices materialized (`b − 1`).
    pub fn stored(&self) -> usize {
        self.powers.len()
    }

    /// Returns `Xᵉ` in O(1).
    pub fn power(&self, e: u64) -> &BoolMat {
        if e == 0 {
            return &self.identity;
        }
        if e < self.b {
            return &self.powers[(e - 1) as usize];
        }
        let period = self.b - self.a;
        let folded = self.a + (e - self.a) % period;
        &self.powers[(folded - 1) as usize]
    }

    /// Total payload bits of the stored matrices — the "small extra space
    /// overhead" of Query-Efficient FVL measured in Figure 19.
    pub fn payload_bits(&self) -> usize {
        self.powers.iter().map(|m| m.payload_bits()).sum::<usize>() + self.identity.payload_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow_zero_is_identity() {
        let x = BoolMat::from_pairs(3, 3, [(0, 1), (1, 2)]);
        assert_eq!(pow(&x, 0), BoolMat::identity(3));
    }

    #[test]
    fn pow_matches_iterated_product() {
        let x = BoolMat::from_pairs(4, 4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 1)]);
        let mut acc = BoolMat::identity(4);
        for e in 0..20u64 {
            assert_eq!(pow(&x, e), acc, "e={e}");
            acc = acc.matmul(&x);
        }
    }

    #[test]
    fn nilpotent_matrix_powers_vanish() {
        // Strictly upper-triangular: x^3 = 0 for 3x3.
        let x = BoolMat::from_pairs(3, 3, [(0, 1), (1, 2)]);
        assert!(pow(&x, 3).is_empty());
        let cache = PowerCache::new(x);
        assert!(cache.power(3).is_empty());
        assert!(cache.power(1_000_000_007).is_empty());
    }

    #[test]
    fn permutation_matrix_is_purely_periodic() {
        // A 3-cycle permutation: period 3, pre-period... X^1 != X^4? X^4 = X.
        let x = BoolMat::from_pairs(3, 3, [(0, 1), (1, 2), (2, 0)]);
        let cache = PowerCache::new(x.clone());
        assert_eq!(cache.pre_period(), 1);
        assert_eq!(cache.repeat_at(), 4);
        for e in 1..50u64 {
            assert_eq!(*cache.power(e), pow(&x, e), "e={e}");
        }
    }

    #[test]
    fn idempotent_matrix_fixes_immediately() {
        // Reflexive transitive matrices are idempotent: X^2 = X.
        let x = BoolMat::from_pairs(2, 2, [(0, 0), (0, 1), (1, 1)]);
        let cache = PowerCache::new(x.clone());
        assert_eq!(cache.repeat_at(), 2);
        assert_eq!(*cache.power(7), x);
    }

    #[test]
    fn cache_agrees_with_pow_on_random_like_matrices() {
        // Deterministic pseudo-random fill; cross-validate the two
        // implementations over a range of exponents.
        let mut seed = 0x9E37_79B9u64;
        for trial in 0..50 {
            let n = 1 + (trial % 6);
            let mut x = BoolMat::zeros(n, n);
            for r in 0..n {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                x.set_row_bits(r, seed >> 32);
            }
            let cache = PowerCache::new(x.clone());
            for e in [0u64, 1, 2, 3, 5, 8, 13, 100, 12345] {
                assert_eq!(*cache.power(e), pow(&x, e), "trial={trial} e={e}");
            }
        }
    }

    #[test]
    fn pow_into_matches_pow_and_recycles_buffers() {
        let x = BoolMat::from_pairs(4, 4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 1)]);
        let mut pool = MatPool::new();
        let mut out = BoolMat::default();
        for e in [0u64, 1, 2, 4, 8, 1024, 3, 7, 13, 100, 12345] {
            pow_into(&x, e, &mut out, &mut pool);
            assert_eq!(out, pow(&x, e), "e={e}");
        }
        // Both scratch buffers return to the pool after every call.
        assert_eq!(pool.pooled(), 2);
    }

    #[test]
    fn pow_of_power_of_two_matches_iterated_product() {
        // The power-of-two fast path (squarings + copy, no identity
        // multiply) must stay value-correct.
        let x = BoolMat::from_pairs(3, 3, [(0, 1), (1, 2), (2, 0), (0, 0)]);
        for k in 0..9u64 {
            let mut m = BoolMat::identity(3);
            for _ in 0..(1u64 << k) {
                m = m.matmul(&x);
            }
            assert_eq!(pow(&x, 1 << k), m, "e=2^{k}");
        }
    }

    #[test]
    fn pow_memo_agrees_with_pow_and_caches() {
        let x = BoolMat::from_pairs(5, 5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (2, 2)]);
        let mut memo = PowMemo::new();
        let mut pool = MatPool::new();
        for e in [0u64, 1, 5, 2, 5, 1_000_003, 64, 5] {
            assert_eq!(*memo.power(&x, e, &mut pool), pow(&x, e), "e={e}");
        }
        assert_eq!(memo.memoized(), 6, "repeat exponents hit the cache");
        assert!(memo.cached(5).is_some());
        assert!(memo.cached(6).is_none());
        let before = memo.memoized();
        memo.power(&x, 5, &mut pool);
        assert_eq!(memo.memoized(), before);
        memo.recycle_into(&mut pool);
        assert_eq!(memo.memoized(), 0);
        assert!(pool.pooled() > 0, "recycling returns buffers to the pool");
    }

    #[test]
    fn pow_memo_promotes_to_bounded_cache() {
        let x = BoolMat::from_pairs(4, 4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut memo = PowMemo::new();
        let mut pool = MatPool::new();
        // Feed more distinct exponents than the promotion threshold.
        for e in 0..100u64 {
            assert_eq!(*memo.power(&x, e, &mut pool), pow(&x, e), "e={e}");
        }
        // Post-promotion storage is bounded by the X^a = X^b period, not
        // by the number of distinct exponents seen.
        assert!(memo.memoized() < 20, "memoized {} matrices", memo.memoized());
        assert!(memo.cached(77).is_some(), "promotion answers every exponent");
        // Still exact after promotion, including huge exponents.
        assert_eq!(*memo.power(&x, 1_000_000_007, &mut pool), pow(&x, 1_000_000_007));
        memo.recycle_into(&mut pool);
        assert_eq!(memo.memoized(), 0);
    }

    #[test]
    fn promotion_routes_cache_construction_through_pool() {
        let x = BoolMat::from_pairs(4, 4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut memo = PowMemo::new();
        let mut pool = MatPool::new();
        // Pre-warm the pool with over-capacity buffers: if the promotion
        // really draws from the pool, the marker capacity survives into the
        // periodic cache; a freshly allocated matrix could not carry it.
        for _ in 0..64 {
            let mut m = BoolMat::default();
            m.reset(32, 32);
            pool.put(m);
        }
        for e in 0..(PROMOTE_AT as u64 + 4) {
            assert_eq!(*memo.power(&x, e, &mut pool), pow(&x, e), "e={e}");
        }
        assert!(memo.cached(1_000_000).is_some(), "memo must have promoted");
        for e in 0..8u64 {
            let cap = memo.cached(e).unwrap().row_capacity();
            assert!(cap >= 32, "cache matrix for e={e} was allocated outside the pool");
        }
        // Clearing the memo returns the cache's matrices (and identity) to
        // the pool instead of dropping them.
        let before = pool.pooled();
        memo.recycle_into(&mut pool);
        assert_eq!(memo.memoized(), 0);
        assert!(pool.pooled() > before, "cache buffers must come back to the pool");
        assert!(pool.take().row_capacity() >= 32);
    }

    #[test]
    fn promoted_memo_reaches_a_pool_fixed_point() {
        // Past PROMOTE_AT distinct exponents the memo must stop interacting
        // with the allocator entirely: pool and cache sizes are at a fixed
        // point no matter how many further distinct exponents arrive.
        let x = BoolMat::from_pairs(5, 5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (2, 2)]);
        let mut memo = PowMemo::new();
        let mut pool = MatPool::new();
        for e in 0..(2 * PROMOTE_AT as u64) {
            memo.power(&x, e, &mut pool);
        }
        let fixed = (pool.pooled(), memo.memoized());
        for e in 0..(8 * PROMOTE_AT as u64) {
            assert_eq!(*memo.power(&x, 3 * e + 1, &mut pool), pow(&x, 3 * e + 1));
            assert_eq!((pool.pooled(), memo.memoized()), fixed, "e={e}");
        }
    }

    #[test]
    fn build_with_matches_new() {
        let x = BoolMat::from_pairs(4, 4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 1)]);
        let mut pool = MatPool::new();
        let a = PowerCache::new(x.clone());
        let b = PowerCache::build_with(&x, &mut pool);
        assert_eq!((a.pre_period(), a.repeat_at()), (b.pre_period(), b.repeat_at()));
        for e in 0..40u64 {
            assert_eq!(a.power(e), b.power(e), "e={e}");
        }
    }

    #[test]
    fn from_parts_roundtrips_and_rejects_forgeries() {
        let x = BoolMat::from_pairs(3, 3, [(0, 1), (1, 2), (2, 0)]);
        let cache = PowerCache::new(x.clone());
        let (a, b) = (cache.pre_period(), cache.repeat_at());
        let powers: Vec<BoolMat> = (1..b).map(|e| cache.power(e).clone()).collect();
        let back = PowerCache::from_parts(powers.clone(), a, b).expect("valid parts");
        for e in 0..50u64 {
            assert_eq!(back.power(e), cache.power(e), "e={e}");
        }
        // Degenerate shapes.
        assert!(PowerCache::from_parts(powers.clone(), 0, b).is_none(), "a = 0");
        assert!(PowerCache::from_parts(powers.clone(), b, b).is_none(), "a >= b");
        assert!(PowerCache::from_parts(powers.clone(), a, b + 1).is_none(), "count mismatch");
        // A tampered matrix breaks the successor-product chain.
        let mut forged = powers.clone();
        let last = forged.len() - 1;
        forged[last] = powers[0].clone(); // X³ := X breaks X²·X = X³
        assert!(PowerCache::from_parts(forged, a, b).is_none(), "forged chain");
        // A wrong wrap-around exponent is caught even with a valid chain.
        let idem = BoolMat::from_pairs(2, 2, [(0, 0), (0, 1), (1, 1)]);
        let c2 = PowerCache::new(idem);
        let p2: Vec<BoolMat> = (1..c2.repeat_at()).map(|e| c2.power(e).clone()).collect();
        assert!(PowerCache::from_parts(p2, c2.pre_period(), c2.repeat_at()).is_some());
    }

    #[test]
    fn payload_bits_counts_all_matrices() {
        let x = BoolMat::from_pairs(2, 2, [(0, 1)]);
        let cache = PowerCache::new(x);
        // x^2 = 0, x^3 = 0 => b found quickly; at least identity + x stored.
        assert!(cache.payload_bits() >= 8);
    }
}
