//! Powers of a square boolean matrix: logarithmic-time exponentiation and
//! the eventually-periodic power cache behind constant-time queries.
//!
//! §4.4.3 of the paper: a recursion chain of length `i` requires the product
//! of `i−1` per-step matrices. The per-step matrices repeat with the cycle
//! length `l`, so the product reduces to `X^⌊(i−1)/l⌋ · (prefix)` where `X`
//! is the product over one full cycle. Because there are at most `2^(c²)`
//! distinct `c×c` boolean matrices, the sequence `X¹, X², …` must enter a
//! cycle: there exist `a < b ≤ 2^(c²)+1` with `Xᵃ = Xᵇ`. [`PowerCache`]
//! finds `(a, b)` once and afterwards answers `Xᵉ` for any `e ≥ 1` in O(1).

use crate::BoolMat;
use std::collections::HashMap;

/// Computes `x^e` for `e >= 0` by binary exponentiation (`x⁰ = I`).
///
/// This is the "divide and conquer … runs in O(log i) time" fallback of
/// §4.4.3, used by Default FVL which does not materialize power caches.
pub fn pow(x: &BoolMat, e: u64) -> BoolMat {
    assert_eq!(x.rows(), x.cols(), "pow requires a square matrix");
    let mut result = BoolMat::identity(x.rows());
    let mut base = x.clone();
    let mut e = e;
    while e > 0 {
        if e & 1 == 1 {
            result = result.matmul(&base);
        }
        e >>= 1;
        if e > 0 {
            base = base.matmul(&base);
        }
    }
    result
}

/// Materialized powers `X¹ … X^(b−1)` of a square boolean matrix together
/// with the cycle parameters `(a, b)` such that `Xᵃ = Xᵇ`, giving O(1)
/// lookup of `Xᵉ` for arbitrary `e`.
///
/// This is what Query-Efficient FVL stores per recursion in the view label
/// ("materialize a and b, as well as X¹, X², …" — §4.4.3).
#[derive(Clone, Debug)]
pub struct PowerCache {
    /// `powers[p - 1] = X^p` for `p = 1 ..= b - 1`.
    powers: Vec<BoolMat>,
    /// Smallest exponent from which the power sequence is periodic.
    a: u64,
    /// Smallest exponent `> a` with `X^b = X^a`; the period is `b - a`.
    b: u64,
    /// Identity of the same dimension, returned for `e = 0`.
    identity: BoolMat,
}

impl PowerCache {
    /// Builds the cache by stepping through `X¹, X², …` until a repeat.
    ///
    /// In practice `a` and `b` are tiny (the paper: "a, b and c are all
    /// small constants"); reachability matrices are transitively closed very
    /// quickly, typically within a handful of steps.
    pub fn new(x: BoolMat) -> Self {
        assert_eq!(x.rows(), x.cols(), "PowerCache requires a square matrix");
        let identity = BoolMat::identity(x.rows());
        let mut seen: HashMap<BoolMat, u64> = HashMap::new();
        let mut powers: Vec<BoolMat> = Vec::new();
        let mut cur = x;
        let mut e = 1u64;
        loop {
            if let Some(&first) = seen.get(&cur) {
                // cur == X^first == X^e, so (a, b) = (first, e).
                return Self { powers, a: first, b: e, identity };
            }
            seen.insert(cur.clone(), e);
            powers.push(cur.clone());
            cur = cur.matmul(&powers[0]);
            e += 1;
        }
    }

    /// The pre-period length `a` (first exponent of the periodic part).
    pub fn pre_period(&self) -> u64 {
        self.a
    }

    /// The exponent `b > a` with `X^b = X^a`.
    pub fn repeat_at(&self) -> u64 {
        self.b
    }

    /// Number of matrices materialized (`b − 1`).
    pub fn stored(&self) -> usize {
        self.powers.len()
    }

    /// Returns `Xᵉ` in O(1).
    pub fn power(&self, e: u64) -> &BoolMat {
        if e == 0 {
            return &self.identity;
        }
        if e < self.b {
            return &self.powers[(e - 1) as usize];
        }
        let period = self.b - self.a;
        let folded = self.a + (e - self.a) % period;
        &self.powers[(folded - 1) as usize]
    }

    /// Total payload bits of the stored matrices — the "small extra space
    /// overhead" of Query-Efficient FVL measured in Figure 19.
    pub fn payload_bits(&self) -> usize {
        self.powers.iter().map(|m| m.payload_bits()).sum::<usize>() + self.identity.payload_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow_zero_is_identity() {
        let x = BoolMat::from_pairs(3, 3, [(0, 1), (1, 2)]);
        assert_eq!(pow(&x, 0), BoolMat::identity(3));
    }

    #[test]
    fn pow_matches_iterated_product() {
        let x = BoolMat::from_pairs(4, 4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 1)]);
        let mut acc = BoolMat::identity(4);
        for e in 0..20u64 {
            assert_eq!(pow(&x, e), acc, "e={e}");
            acc = acc.matmul(&x);
        }
    }

    #[test]
    fn nilpotent_matrix_powers_vanish() {
        // Strictly upper-triangular: x^3 = 0 for 3x3.
        let x = BoolMat::from_pairs(3, 3, [(0, 1), (1, 2)]);
        assert!(pow(&x, 3).is_empty());
        let cache = PowerCache::new(x);
        assert!(cache.power(3).is_empty());
        assert!(cache.power(1_000_000_007).is_empty());
    }

    #[test]
    fn permutation_matrix_is_purely_periodic() {
        // A 3-cycle permutation: period 3, pre-period... X^1 != X^4? X^4 = X.
        let x = BoolMat::from_pairs(3, 3, [(0, 1), (1, 2), (2, 0)]);
        let cache = PowerCache::new(x.clone());
        assert_eq!(cache.pre_period(), 1);
        assert_eq!(cache.repeat_at(), 4);
        for e in 1..50u64 {
            assert_eq!(*cache.power(e), pow(&x, e), "e={e}");
        }
    }

    #[test]
    fn idempotent_matrix_fixes_immediately() {
        // Reflexive transitive matrices are idempotent: X^2 = X.
        let x = BoolMat::from_pairs(2, 2, [(0, 0), (0, 1), (1, 1)]);
        let cache = PowerCache::new(x.clone());
        assert_eq!(cache.repeat_at(), 2);
        assert_eq!(*cache.power(7), x);
    }

    #[test]
    fn cache_agrees_with_pow_on_random_like_matrices() {
        // Deterministic pseudo-random fill; cross-validate the two
        // implementations over a range of exponents.
        let mut seed = 0x9E37_79B9u64;
        for trial in 0..50 {
            let n = 1 + (trial % 6);
            let mut x = BoolMat::zeros(n, n);
            for r in 0..n {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                x.set_row_bits(r, seed >> 32);
            }
            let cache = PowerCache::new(x.clone());
            for e in [0u64, 1, 2, 3, 5, 8, 13, 100, 12345] {
                assert_eq!(*cache.power(e), pow(&x, e), "trial={trial} e={e}");
            }
        }
    }

    #[test]
    fn payload_bits_counts_all_matrices() {
        let x = BoolMat::from_pairs(2, 2, [(0, 1)]);
        let cache = PowerCache::new(x);
        // x^2 = 0, x^3 = 0 => b found quickly; at least identity + x stored.
        assert!(cache.payload_bits() >= 8);
    }
}
