//! A free list of [`BoolMat`] scratch buffers.
//!
//! The decoding predicate π evaluates a handful of small matrix products per
//! query; allocating a fresh matrix per product dominates the "constant
//! time" core at serving rates. A [`MatPool`] amortizes that away: buffers
//! are taken out as plain owned [`BoolMat`]s (so there is no aliasing to
//! reason about), written through the `*_into` operations — which
//! re-dimension but keep row capacity — and returned when done. In steady
//! state every `take` is a `Vec::pop` and no allocation happens anywhere in
//! a query.

use crate::BoolMat;

/// A stack of reusable matrices. `take` hands out an owned buffer (an empty
/// `0 × 0` matrix when the pool is dry); `put` returns it for reuse.
#[derive(Default)]
pub struct MatPool {
    free: Vec<BoolMat>,
}

impl MatPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops a reusable buffer (or a fresh empty matrix when dry). The
    /// caller owns it; pass it to a `*_into` operation to dimension it.
    #[inline]
    pub fn take(&mut self) -> BoolMat {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool for later reuse.
    #[inline]
    pub fn put(&mut self, m: BoolMat) {
        self.free.push(m);
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_cycle_reuses_buffers() {
        let mut pool = MatPool::new();
        let mut a = pool.take();
        a.reset(8, 8);
        let cap = a.row_capacity();
        assert!(cap >= 8);
        pool.put(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.take();
        assert_eq!(b.row_capacity(), cap, "the same buffer must come back");
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn dry_pool_hands_out_empty_matrices() {
        let mut pool = MatPool::new();
        let m = pool.take();
        assert_eq!((m.rows(), m.cols()), (0, 0));
    }
}
