//! Boolean reachability matrices over module ports.
//!
//! View labels in the VLDB'12 scheme are collections of small boolean
//! matrices (`λ*(S)`, and the `I`, `O`, `Z` functions of §4.3); the decoding
//! predicate π (Algorithm 2) evaluates products of such matrices, and the
//! constant-query-time argument (§4.4.3, Lemma 5) rests on the fact that the
//! monoid of `c×c` boolean matrices is finite, so powers of any matrix are
//! eventually periodic.
//!
//! This crate provides:
//! * [`BoolMat`] — a dense boolean matrix with one `u64` bitset per row
//!   (every workload in the paper has ≤ 10 ports per module; we support 64),
//!   with in-place `*_into` variants of the hot operations that reuse
//!   caller-owned buffers;
//! * [`MatPool`] — a free list of such buffers, making query evaluation
//!   allocation-free in steady state;
//! * [`PowerCache`] — the `Xᵃ = Xᵇ` cycle detection behind constant-time
//!   evaluation of long recursion chains (Query-Efficient FVL);
//! * [`pow`] / [`pow_into`] — logarithmic-time exponentiation (Default
//!   FVL's fallback), and [`PowMemo`] — a lazy squaring-ladder memo that
//!   computes each distinct chain exponent once per serving session.

mod mat;
mod pool;
mod power;

pub use mat::BoolMat;
pub use pool::MatPool;
pub use power::{pow, pow_into, PowMemo, PowerCache};

// Pools and memos are owned per worker scratch and move across threads
// with it; matrices and power caches are additionally shared read-only
// from frozen view labels. The parallel serving layer relies on these
// bounds holding structurally (plain owned data, no interior mutability).
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    const fn moved_into_a_thread<T: Send>() {}
    shared_across_threads::<BoolMat>();
    shared_across_threads::<PowerCache>();
    moved_into_a_thread::<MatPool>();
    moved_into_a_thread::<PowMemo>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_smoke() {
        let id = BoolMat::identity(3);
        assert_eq!(id.matmul(&id), id);
        let cache = PowerCache::new(id.clone());
        assert_eq!(*cache.power(1_000_000), id);
    }
}
