//! Kernel-equivalence pins: the word-parallel block transpose and the
//! blocked 4-row matmul are pure speed plays — every variant (and the
//! dimension-dispatched entry points) must be element-identical to the
//! naive definitional loops on random matrices across the full dimension
//! range, including the 0-row/0-col degenerates and the 64-wide edge.

use proptest::prelude::*;
use wf_boolmat::BoolMat;

/// Definitional transpose: `out[c][r] = m[r][c]` by scalar get/set.
fn naive_transpose(m: &BoolMat) -> BoolMat {
    let mut out = BoolMat::zeros(m.cols(), m.rows());
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            if m.get(r, c) {
                out.set(c, r, true);
            }
        }
    }
    out
}

/// Definitional product: the triple loop, no shortcuts.
fn naive_matmul(a: &BoolMat, b: &BoolMat) -> BoolMat {
    let mut out = BoolMat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut v = false;
            for k in 0..a.cols() {
                v = v || (a.get(i, k) && b.get(k, j));
            }
            out.set(i, j, v);
        }
    }
    out
}

/// Deterministic pseudo-random matrix with a mix of empty, full and
/// random rows (exercises the zero-skip and saturation shortcuts).
fn random_mat(rows: usize, cols: usize, seed: u64) -> BoolMat {
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 11
    };
    let mut m = BoolMat::zeros(rows, cols);
    for r in 0..rows {
        let bits = match next() % 4 {
            0 => 0,
            1 => u64::MAX,
            _ => next(),
        };
        m.set_row_bits(r, bits);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Both transpose kernels — and the dispatching `transpose_into` —
    /// agree with the definitional loop for every `rows ≤ 64, cols ≤ 64`
    /// (transpose needs `rows ≤ 64` so the output fits the column bound).
    #[test]
    fn transpose_kernels_match_naive(
        rows in 0usize..=64,
        cols in 0usize..=64,
        seed in 0u64..u64::MAX,
    ) {
        let m = random_mat(rows, cols, seed);
        let expect = naive_transpose(&m);
        let mut serial = BoolMat::complete(3, 3); // dirty on purpose
        m.transpose_into_bitserial(&mut serial);
        prop_assert_eq!(&serial, &expect);
        let mut block = BoolMat::complete(2, 5);
        m.transpose_into_block(&mut block);
        prop_assert_eq!(&block, &expect);
        let mut dispatched = BoolMat::default();
        m.transpose_into(&mut dispatched);
        prop_assert_eq!(&dispatched, &expect);
        prop_assert_eq!(&m.transpose(), &expect);
    }

    /// Both matmul kernels — and the dispatching `matmul_into` — agree
    /// with the triple loop across random dimensions, including the
    /// degenerate 0-row/0-col/0-inner shapes.
    #[test]
    fn matmul_kernels_match_naive(
        r in 0usize..=64,
        m in 0usize..=64,
        c in 0usize..=64,
        seed in 0u64..u64::MAX,
    ) {
        let a = random_mat(r, m, seed);
        let b = random_mat(m, c, seed.rotate_left(17) ^ 0x9E37_79B9);
        let expect = naive_matmul(&a, &b);
        let mut serial = BoolMat::complete(1, 1);
        a.matmul_into_bitserial(&b, &mut serial);
        prop_assert_eq!(&serial, &expect);
        let mut blocked = BoolMat::complete(7, 2);
        a.matmul_into_blocked(&b, &mut blocked);
        prop_assert_eq!(&blocked, &expect);
        let mut dispatched = BoolMat::default();
        a.matmul_into(&b, &mut dispatched);
        prop_assert_eq!(&dispatched, &expect);
        prop_assert_eq!(&a.matmul(&b), &expect);
    }
}

/// The occupancy crossover cases straddle `TRANSPOSE_BLOCK_MIN_CELLS` /
/// `MATMUL_BLOCK_MIN_INNER`; pin the exact boundary dimensions so a future
/// threshold tweak cannot silently change which kernel runs unverified.
#[test]
fn dispatch_boundaries_agree_with_naive() {
    for (rows, cols) in [(15, 17), (16, 16), (16, 15), (17, 15), (4, 64), (64, 4), (64, 64)] {
        let m = random_mat(rows, cols, (rows * 131 + cols) as u64);
        let mut out = BoolMat::default();
        m.transpose_into(&mut out);
        assert_eq!(out, naive_transpose(&m), "transpose dispatch at {rows}x{cols}");
    }
    for (r, m, c) in [(3, 64, 8), (4, 15, 8), (4, 16, 8), (5, 17, 9), (64, 64, 64)] {
        let a = random_mat(r, m, (r * 17 + m) as u64);
        let b = random_mat(m, c, (m * 31 + c) as u64);
        let mut out = BoolMat::default();
        a.matmul_into(&b, &mut out);
        assert_eq!(out, naive_matmul(&a, &b), "matmul dispatch at {r}x{m}x{c}");
    }
}

/// Full-width involution through the block kernel: a dense 64×64 random
/// matrix survives transpose∘transpose bit-for-bit.
#[test]
fn block_transpose_is_an_involution_at_full_width() {
    let m = random_mat(64, 64, 0xFEED_5EED);
    let mut t = BoolMat::default();
    let mut back = BoolMat::default();
    m.transpose_into_block(&mut t);
    t.transpose_into_block(&mut back);
    assert_eq!(back, m);
}
