//! DRL — the state-of-the-art baseline (\[5\]: Bao, Davidson, Milo, *Labeling
//! Recursive Workflow Executions On-the-Fly*, SIGMOD 2011), reimplemented
//! interface-equivalently for the §6 comparisons (see DESIGN.md, S3).
//!
//! DRL labels dynamic runs of **black-box** (coarse-grained) recursive
//! workflows. Its two defining contrasts with FVL:
//!
//! * **Not view-adaptive**: a DRL labeling is bound to one view — it labels
//!   the *view of the run* against the view grammar's production graph.
//!   `n` views ⇒ `n` labels per data item, re-labeling on every new view
//!   (Figures 21/22).
//! * **No matrices**: with black boxes, dependency is instance-level
//!   reachability, decided from two tree paths plus a static per-production
//!   instance closure — the same structural decode Matrix-Free FVL uses
//!   (Figure 23).
//!
//! Labels are compressed-parse-tree path pairs like FVL's, but encoded
//! without common-prefix factoring (the \[5\] encoding stores both endpoint
//! labels independently) — reproducing the paper's observation that FVL's
//! data labels come out slightly shorter (Figure 17).

use wf_analysis::ProdGraph;
use wf_core::decode::structural::{pi_structural, StructuralIndex};
use wf_core::{DataLabel, LabelCodec, PortLabel};
use wf_model::{Spec, View};
use wf_run::{CompressedTree, DataId, InstanceId, Run, RunProjection};

/// Why DRL refuses an input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DrlError {
    /// DRL's model is black-box only (Definition 8); the view carries
    /// fine-grained matrices.
    NotBlackBox,
    /// The view grammar is not linear-recursive: even black-box dynamic
    /// labels must be linear-size (Theorem 3 / \[5\]).
    NotLinearRecursive,
}

impl std::fmt::Display for DrlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrlError::NotBlackBox => write!(f, "DRL supports black-box views only"),
            DrlError::NotLinearRecursive => write!(f, "DRL requires a linear-recursive grammar"),
        }
    }
}

impl std::error::Error for DrlError {}

/// The DRL scheme, bound to one `(specification, view)` pair.
pub struct Drl<'a> {
    spec: &'a Spec,
    view: &'a View,
    /// Production graph of the *view grammar* (restricted).
    pg: ProdGraph,
    idx: StructuralIndex,
    codec: LabelCodec,
}

impl<'a> Drl<'a> {
    /// Binds DRL to a black-box view of a specification.
    pub fn new(spec: &'a Spec, view: &'a View) -> Result<Self, DrlError> {
        if !view.is_black_box(&spec.grammar) {
            return Err(DrlError::NotBlackBox);
        }
        let active: Vec<bool> =
            spec.grammar.productions().map(|(_, p)| view.expands(p.lhs)).collect();
        let pg = ProdGraph::new_restricted(&spec.grammar, &active);
        if !wf_analysis::recursion::is_linear_recursive(&spec.grammar, &pg) {
            return Err(DrlError::NotLinearRecursive);
        }
        let idx = StructuralIndex::build(&spec.grammar, |k| active[k.index()]);
        let codec = LabelCodec::new(&spec.grammar, &pg);
        Ok(Self { spec, view, pg, idx, codec })
    }

    pub fn view(&self) -> &View {
        self.view
    }

    /// Labels the view of a run: one label per *visible* item. Steps are
    /// consumed in derivation order, skipping those the view hides — the
    /// online discipline of Definition 10 applied to the projected run.
    pub fn label_run(&self, run: &Run) -> DrlLabels {
        let grammar = &self.spec.grammar;
        let proj = RunProjection::new(grammar, run, self.view);
        let mut tree = CompressedTree::new(grammar, &self.pg, InstanceId(0));
        let mut labels: Vec<Option<DataLabel>> = vec![None; run.item_count()];
        // Boundary items of the start module.
        let root_path = tree.path_of(tree.node_of(InstanceId(0)).unwrap());
        let sig = grammar.sig(grammar.start());
        for (p, slot) in labels.iter_mut().enumerate().take(sig.inputs()) {
            *slot = Some(DataLabel::initial_input(PortLabel::new(root_path.clone(), p as u8)));
        }
        for p in 0..sig.outputs() {
            labels[sig.inputs() + p] =
                Some(DataLabel::final_output(PortLabel::new(root_path.clone(), p as u8)));
        }
        for s in run.steps() {
            if !proj.step_projected(s) {
                continue;
            }
            tree.on_step(&self.pg, run, s);
            let st = run.step(s);
            for d in st.items.clone() {
                let item = run.item(DataId(d));
                let (pi, pp) = item.producer.expect("step items have producers");
                let (ci, cp) = item.consumer.expect("step items have consumers");
                let out = PortLabel::new(tree.path_of(tree.node_of(pi).unwrap()), pp);
                let inp = PortLabel::new(tree.path_of(tree.node_of(ci).unwrap()), cp);
                labels[d as usize] = Some(DataLabel::intermediate(out, inp));
            }
        }
        DrlLabels { labels }
    }

    /// Constant-time structural query over two DRL labels.
    pub fn query(&self, d1: &DataLabel, d2: &DataLabel) -> Option<bool> {
        pi_structural(&self.pg, &self.idx, d1, d2)
    }

    /// Wire size of a DRL label in bits (no prefix factoring — see S3).
    pub fn label_bits(&self, d: &DataLabel) -> usize {
        self.codec.encoded_bits_unfactored(d)
    }
}

/// Per-view labeling of one run.
pub struct DrlLabels {
    labels: Vec<Option<DataLabel>>,
}

impl DrlLabels {
    /// The label of a visible item (`None` for hidden ones).
    pub fn label(&self, d: DataId) -> Option<&DataLabel> {
        self.labels.get(d.0 as usize).and_then(|l| l.as_ref())
    }

    pub fn visible_count(&self) -> usize {
        self.labels.iter().flatten().count()
    }

    pub fn iter(&self) -> impl Iterator<Item = (DataId, &DataLabel)> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.as_ref().map(|l| (DataId(i as u32), l)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::{DepAssignment, GrammarBuilder, ViewSpec};
    use wf_run::{random_derivation, RunOracle};

    /// A small coarse-grained recursive spec: S -> (src, L, sink),
    /// L -> (x, L) | (x); single source/sink per production.
    fn coarse_spec() -> Spec {
        let mut b = GrammarBuilder::new();
        let s = b.composite("S", 1, 1);
        let l = b.composite("L", 1, 1);
        let src = b.atomic("src", 1, 2);
        let sink = b.atomic("sink", 2, 1);
        let x = b.atomic("x", 1, 1);
        b.start(s);
        b.production(
            s,
            vec![src, l, sink],
            vec![((0, 0), (1, 0)), ((0, 1), (2, 1)), ((1, 0), (2, 0))],
        );
        b.production(l, vec![x, l], vec![((0, 0), (1, 0))]);
        b.production(l, vec![x], vec![]);
        let g = b.finish().unwrap();
        let deps = DepAssignment::black_box(g.sigs(), [src, sink, x]);
        Spec::new(g, deps).unwrap()
    }

    #[test]
    fn rejects_fine_grained_views() {
        let ex = wf_model::fixtures::paper_example();
        let view = ex.view_u1();
        assert_eq!(Drl::new(&ex.spec, &view).err(), Some(DrlError::NotBlackBox));
    }

    #[test]
    fn coarse_spec_is_accepted_and_matches_oracle() {
        let spec = coarse_spec();
        assert!(spec.is_coarse_grained());
        let view = spec.default_view();
        let drl = Drl::new(&spec, &view).unwrap();
        let full_pg = ProdGraph::new(&spec.grammar);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
        for trial in 0..20 {
            let d = random_derivation(&spec.grammar, &full_pg, &mut rng, 40);
            let run = d.replay(&spec.grammar).unwrap();
            let labels = drl.label_run(&run);
            let vs = ViewSpec::new(&spec, &view);
            let oracle = RunOracle::new(&spec.grammar, &vs, &run).unwrap();
            for a in run.items() {
                for b in run.items() {
                    let (Some(la), Some(lb)) = (labels.label(a), labels.label(b)) else {
                        continue;
                    };
                    assert_eq!(
                        drl.query(la, lb),
                        oracle.depends_on(a, b),
                        "trial {trial}: {a:?} -> {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn label_bits_are_positive_and_logarithmic() {
        let spec = coarse_spec();
        let view = spec.default_view();
        let drl = Drl::new(&spec, &view).unwrap();
        let full_pg = ProdGraph::new(&spec.grammar);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let d = random_derivation(&spec.grammar, &full_pg, &mut rng, 2000);
        let run = d.replay(&spec.grammar).unwrap();
        let labels = drl.label_run(&run);
        let max_bits = labels.iter().map(|(_, l)| drl.label_bits(l)).max().unwrap();
        // 2000 items: log-size labels stay well under 200 bits.
        assert!(max_bits < 200, "max label was {max_bits} bits");
    }
}
