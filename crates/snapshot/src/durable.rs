//! Crash-safe, file-backed op-log storage: framed appends, fsync
//! acknowledgement points, and a recovery reader that self-heals a torn
//! tail (see DESIGN.md §12).
//!
//! The persisted layout is `base ‖ op-log`: a base snapshot file holding
//! one full [`crate::container`] stream, plus an append-only log of
//! *frames*, each wrapping one delta record (the same bytes
//! `publish_with_delta` would hand a sink). A frame is:
//!
//! ```text
//! magic   4 B   b"WFL1"
//! len     4 B   payload length, LE
//! seq     8 B   publish seqno of the wrapped delta, LE
//! hcrc    8 B   FNV-1a over the 16 header bytes above, LE
//! pcrc    8 B   FNV-1a over the payload bytes, LE
//! payload len B
//! ```
//!
//! The separate header checksum is what makes recovery *classification*
//! sound: a damaged `len` field would otherwise make a corrupted frame
//! indistinguishable from a torn tail (the scanner would chase a bogus
//! length past EOF and shrug). With `hcrc`, a frame whose 32 header bytes
//! are all present either has a provably intact header or is provably
//! corrupt.
//!
//! **Torn tail vs. corruption.** A crashed append can only leave a
//! *prefix* of the intended frame bytes, because frames are appended
//! sequentially and never rewritten in place. So on open the scanner
//! walks intact frames and classifies whatever remains:
//!
//! * stream ends cleanly on a frame boundary → nothing to do;
//! * stream ends inside a frame (header or payload incomplete) → torn
//!   tail: the partial frame is truncated away and reported as
//!   `dropped_bytes`, and appending resumes at the cut;
//! * anything else — bad magic, bad header checksum, or a *complete*
//!   frame whose payload checksum fails — is
//!   [`SnapshotError::LogCorrupted`], a hard typed error. No heuristic
//!   resynchronisation, no silent data loss.
//!
//! The `seq` tag exists for compaction: after a base rewrite, frames
//! covered by the new base are stale, and a crash between the base
//! rename and the log rewrite legitimately leaves them behind. Recovery
//! (in `wf-engine`) skips frames with `seq ≤` the base's seqno without
//! decoding them; the replay chain check still verifies everything that
//! *is* applied.

use std::io::{self, Read, Write};
use std::ops::Range;
use std::path::PathBuf;

use crate::container::Fnv1a;
use crate::error::SnapshotError;

/// First bytes of every log frame.
pub const FRAME_MAGIC: [u8; 4] = *b"WFL1";

/// Fixed size of a frame header (magic + len + seq + hcrc + pcrc).
pub const FRAME_HEADER_BYTES: usize = 4 + 4 + 8 + 8 + 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Encode one frame (header + payload) ready to append.
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    let hcrc = fnv1a(&frame[..16]);
    frame.extend_from_slice(&hcrc.to_le_bytes());
    frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// One intact frame located by [`scan_log`].
#[derive(Debug, Clone)]
pub struct ScannedFrame {
    /// The seqno tag the writer stamped on the frame.
    pub seq: u64,
    /// Where the frame (header) starts in the scanned bytes.
    pub start: usize,
    /// The payload's byte range within the scanned bytes.
    pub payload: Range<usize>,
}

/// Result of scanning a log stream to the last intact frame.
#[derive(Debug, Clone)]
pub struct LogScan {
    /// Every intact frame, in file order.
    pub frames: Vec<ScannedFrame>,
    /// Length of the valid prefix; the file should be truncated here.
    pub valid_len: u64,
    /// Bytes of torn tail past `valid_len` (0 for a clean log).
    pub dropped_bytes: u64,
}

/// Walk `bytes` frame by frame. Returns the intact prefix and how much
/// torn tail follows it, or [`SnapshotError::LogCorrupted`] if the
/// damage cannot have come from a torn append (see module docs for the
/// classification argument).
pub fn scan_log(bytes: &[u8]) -> Result<LogScan, SnapshotError> {
    let mut frames = Vec::new();
    let mut off = 0usize;
    loop {
        let rem = bytes.len() - off;
        if rem == 0 {
            break;
        }
        if rem < FRAME_HEADER_BYTES {
            // Possibly a torn header — but only if what *is* present is a
            // prefix of a frame start. A wrong magic prefix cannot come
            // from a torn append of a well-formed frame.
            let take = rem.min(FRAME_MAGIC.len());
            if bytes[off..off + take] != FRAME_MAGIC[..take] {
                return Err(SnapshotError::LogCorrupted { offset: off as u64 });
            }
            break;
        }
        if bytes[off..off + 4] != FRAME_MAGIC {
            return Err(SnapshotError::LogCorrupted { offset: off as u64 });
        }
        let len = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap()) as u64;
        let seq = u64::from_le_bytes(bytes[off + 8..off + 16].try_into().unwrap());
        let hcrc = u64::from_le_bytes(bytes[off + 16..off + 24].try_into().unwrap());
        let pcrc = u64::from_le_bytes(bytes[off + 24..off + 32].try_into().unwrap());
        if fnv1a(&bytes[off..off + 16]) != hcrc {
            // All 32 header bytes are present, so the header was fully
            // written; a checksum miss here is damage, not a short write.
            return Err(SnapshotError::LogCorrupted { offset: off as u64 });
        }
        let payload_start = off + FRAME_HEADER_BYTES;
        let Some(end) = (payload_start as u64).checked_add(len) else {
            return Err(SnapshotError::LogCorrupted { offset: off as u64 });
        };
        if end > bytes.len() as u64 {
            // Intact header, incomplete payload: the append died mid-frame.
            break;
        }
        let end = end as usize;
        if fnv1a(&bytes[payload_start..end]) != pcrc {
            // The whole declared payload is present yet mismatches — a torn
            // write cannot produce that, so it is corruption.
            return Err(SnapshotError::LogCorrupted { offset: off as u64 });
        }
        frames.push(ScannedFrame { seq, start: off, payload: payload_start..end });
        off = end;
    }
    Ok(LogScan { frames, valid_len: off as u64, dropped_bytes: (bytes.len() - off) as u64 })
}

/// The five filesystem operations durability is built from. Object-safe
/// on purpose: the engine holds a `Box<dyn Storage>` so disk-backed and
/// fault-injected in-memory backends are interchangeable.
///
/// The two `replace_*` operations must be *atomic*: after a crash the
/// file holds either its old or its new contents, never a mix. The disk
/// backend gets this from write-to-temp → fsync → rename.
pub trait Storage: Send {
    /// Read the base snapshot file, `None` if it does not exist yet.
    fn read_base(&mut self) -> io::Result<Option<Vec<u8>>>;
    /// Atomically replace the base snapshot file.
    fn replace_base(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Read the whole op-log (empty if it does not exist yet).
    fn read_log(&mut self) -> io::Result<Vec<u8>>;
    /// Append bytes to the op-log.
    fn append_log(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Durably flush the op-log (the acknowledgement barrier).
    fn sync_log(&mut self) -> io::Result<()>;
    /// Truncate the op-log to `len` bytes (used to heal a torn tail).
    fn truncate_log(&mut self, len: u64) -> io::Result<()>;
    /// Atomically replace the op-log contents (used by compaction).
    fn replace_log(&mut self, bytes: &[u8]) -> io::Result<()>;
}

/// Real-filesystem [`Storage`]: a directory holding `base.wfs`,
/// `oplog.wfl`, and transient `*.tmp` siblings. Renames are same-dir so
/// they are atomic on POSIX filesystems, and the directory is fsynced
/// after each rename so the swap itself is durable.
pub struct DiskStorage {
    dir: PathBuf,
    log: Option<std::fs::File>,
}

/// Base snapshot file name inside a [`DiskStorage`] directory.
pub const BASE_FILE: &str = "base.wfs";
/// Op-log file name inside a [`DiskStorage`] directory.
pub const LOG_FILE: &str = "oplog.wfl";

impl DiskStorage {
    /// Open (creating if needed) the storage directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, log: None })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn sync_dir(&self) -> io::Result<()> {
        std::fs::File::open(&self.dir)?.sync_all()
    }

    fn log_handle(&mut self) -> io::Result<&mut std::fs::File> {
        if self.log.is_none() {
            self.log = Some(
                std::fs::OpenOptions::new().create(true).append(true).open(self.path(LOG_FILE))?,
            );
        }
        Ok(self.log.as_mut().unwrap())
    }

    fn read_file(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::File::open(self.path(name)) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                f.read_to_end(&mut buf)?;
                Ok(Some(buf))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Write `name.tmp`, fsync it, rename over `name`, fsync the dir.
    fn replace_file(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.path(name))?;
        self.sync_dir()
    }
}

impl Storage for DiskStorage {
    fn read_base(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.read_file(BASE_FILE)
    }

    fn replace_base(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.replace_file(BASE_FILE, bytes)
    }

    fn read_log(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.read_file(LOG_FILE)?.unwrap_or_default())
    }

    fn append_log(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.log_handle()?.write_all(bytes)
    }

    fn sync_log(&mut self) -> io::Result<()> {
        self.log_handle()?.sync_all()
    }

    fn truncate_log(&mut self, len: u64) -> io::Result<()> {
        // Drop the append handle first: `set_len` needs a write handle and
        // append-mode offsets would otherwise be stale.
        self.log = None;
        let f = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.path(LOG_FILE))?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn replace_log(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.log = None;
        self.replace_file(LOG_FILE, bytes)
    }
}

/// What [`DurableLog::open`] found and healed.
#[derive(Debug)]
pub struct LogOpen {
    /// The base snapshot bytes, if a base file exists.
    pub base: Option<Vec<u8>>,
    /// Every intact `(seq, payload)` record, in append order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Torn-tail bytes truncated away during open (0 for a clean log).
    pub dropped_bytes: u64,
}

/// A recovered, append-ready op-log over some [`Storage`].
///
/// `open` scans to the last intact frame, heals a torn tail, and hands
/// back everything needed for replay; `append` is the fsynced
/// acknowledgement point; `install_base` is the compaction commit.
pub struct DurableLog {
    storage: Box<dyn Storage>,
    log_bytes: u64,
    frames: u64,
    last_seq: Option<u64>,
}

impl DurableLog {
    /// Open the log: read the base, scan the op-log to the last intact
    /// frame, truncate any torn tail, and resume in append mode.
    /// Mid-stream damage is [`SnapshotError::LogCorrupted`].
    pub fn open(mut storage: Box<dyn Storage>) -> Result<(Self, LogOpen), SnapshotError> {
        let base = storage.read_base()?;
        let raw = storage.read_log()?;
        let scan = scan_log(&raw)?;
        if scan.dropped_bytes > 0 {
            storage.truncate_log(scan.valid_len)?;
            storage.sync_log()?;
        }
        let records: Vec<(u64, Vec<u8>)> =
            scan.frames.iter().map(|f| (f.seq, raw[f.payload.clone()].to_vec())).collect();
        let log = Self {
            storage,
            log_bytes: scan.valid_len,
            frames: scan.frames.len() as u64,
            last_seq: scan.frames.last().map(|f| f.seq),
        };
        Ok((log, LogOpen { base, records, dropped_bytes: scan.dropped_bytes }))
    }

    /// Append one framed record and fsync. When this returns `Ok` the
    /// record is durable — this is the only acknowledgement barrier.
    ///
    /// On failure the tail is rolled back to the last frame boundary
    /// (best effort) so a *retry* of the append starts clean instead of
    /// leaving a torn prefix mid-stream — a torn tail is only legal as
    /// the final bytes of the log. If even the rollback fails, the retry
    /// will fail too, and reopening heals the tail the normal way.
    pub fn append(&mut self, seq: u64, payload: &[u8]) -> io::Result<()> {
        let frame = encode_frame(seq, payload);
        let appended = self.storage.append_log(&frame).and_then(|()| self.storage.sync_log());
        if let Err(e) = appended {
            let _ = self.storage.truncate_log(self.log_bytes);
            return Err(e);
        }
        self.log_bytes += frame.len() as u64;
        self.frames += 1;
        self.last_seq = Some(seq);
        Ok(())
    }

    /// Compaction commit: atomically install `base` (which covers every
    /// publish up to and including `covered_seq`), then rewrite the log
    /// keeping only frames with `seq > covered_seq`. Returns the bytes
    /// reclaimed. A crash at any point leaves either the old base with
    /// the full log, or the new base with a log whose stale head frames
    /// recovery skips by their `seq` tag.
    pub fn install_base(&mut self, base: &[u8], covered_seq: u64) -> io::Result<u64> {
        self.storage.replace_base(base)?;
        let raw = self.storage.read_log()?;
        let scan = scan_log(&raw)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut kept = Vec::new();
        let mut kept_frames = 0u64;
        for f in &scan.frames {
            if f.seq > covered_seq {
                kept.extend_from_slice(&raw[f.start..f.payload.end]);
                kept_frames += 1;
            }
        }
        let reclaimed = raw.len() as u64 - kept.len() as u64;
        self.storage.replace_log(&kept)?;
        self.log_bytes = kept.len() as u64;
        self.frames = kept_frames;
        Ok(reclaimed)
    }

    /// Current byte length of the (intact) log.
    pub fn log_bytes(&self) -> u64 {
        self.log_bytes
    }

    /// Number of frames currently in the log.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Seqno tag of the most recently appended frame, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain in-memory storage for codec tests (the fault-injectable
    /// sibling lives in [`crate::fault`]).
    #[derive(Default)]
    struct VecStorage {
        base: Option<Vec<u8>>,
        log: Vec<u8>,
    }

    impl Storage for VecStorage {
        fn read_base(&mut self) -> io::Result<Option<Vec<u8>>> {
            Ok(self.base.clone())
        }
        fn replace_base(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.base = Some(bytes.to_vec());
            Ok(())
        }
        fn read_log(&mut self) -> io::Result<Vec<u8>> {
            Ok(self.log.clone())
        }
        fn append_log(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.log.extend_from_slice(bytes);
            Ok(())
        }
        fn sync_log(&mut self) -> io::Result<()> {
            Ok(())
        }
        fn truncate_log(&mut self, len: u64) -> io::Result<()> {
            self.log.truncate(len as usize);
            Ok(())
        }
        fn replace_log(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.log = bytes.to_vec();
            Ok(())
        }
    }

    fn sample_log() -> Vec<u8> {
        let mut log = Vec::new();
        log.extend_from_slice(&encode_frame(1, b"first record"));
        log.extend_from_slice(&encode_frame(2, b""));
        log.extend_from_slice(&encode_frame(3, &[0xAB; 300]));
        log
    }

    #[test]
    fn scan_roundtrips_clean_log() {
        let log = sample_log();
        let scan = scan_log(&log).expect("clean log scans");
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.dropped_bytes, 0);
        assert_eq!(scan.valid_len, log.len() as u64);
        assert_eq!(scan.frames[0].seq, 1);
        assert_eq!(&log[scan.frames[0].payload.clone()], b"first record");
        assert_eq!(scan.frames[1].payload.len(), 0);
        assert_eq!(scan.frames[2].seq, 3);
    }

    #[test]
    fn every_truncation_is_torn_tail_or_shorter_prefix() {
        let log = sample_log();
        let full = scan_log(&log).unwrap();
        for cut in 0..log.len() {
            let scan = scan_log(&log[..cut]).unwrap_or_else(|e| {
                panic!("cut at {cut} must classify as torn, got hard error {e}")
            });
            // The intact prefix must be a frame boundary ≤ the cut, and
            // everything dropped is the partial last frame.
            assert_eq!(scan.valid_len + scan.dropped_bytes, cut as u64);
            assert!(scan.frames.len() <= full.frames.len());
            for (got, want) in scan.frames.iter().zip(full.frames.iter()) {
                assert_eq!(got.seq, want.seq);
                assert_eq!(got.payload, want.payload);
            }
        }
    }

    #[test]
    fn mid_stream_damage_is_hard_corruption() {
        let log = sample_log();
        // Flip one byte in every position of the first two frames: all of
        // them must be LogCorrupted (the tail frame keeps the stream valid
        // length, so damage never looks torn).
        let second_frame_end = scan_log(&log).unwrap().frames[1].payload.end;
        for pos in 0..second_frame_end {
            let mut bad = log.clone();
            bad[pos] ^= 0x40;
            match scan_log(&bad) {
                Err(SnapshotError::LogCorrupted { .. }) => {}
                other => panic!("flip at {pos}: expected LogCorrupted, got {other:?}"),
            }
        }
    }

    #[test]
    fn damage_in_final_frame_is_detected() {
        let log = sample_log();
        let last = scan_log(&log).unwrap().frames[2].clone();
        // Payload byte flip in the final, complete frame: corruption.
        let mut bad = log.clone();
        bad[last.payload.start + 5] ^= 0x01;
        assert!(matches!(scan_log(&bad), Err(SnapshotError::LogCorrupted { .. })));
        // But chop the same frame mid-payload and it is a torn tail.
        let scan = scan_log(&log[..last.payload.start + 5]).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert!(scan.dropped_bytes > 0);
    }

    #[test]
    fn garbage_tail_smaller_than_header_is_still_corruption() {
        let mut log = sample_log();
        log.extend_from_slice(b"zz"); // not a magic prefix
        assert!(matches!(scan_log(&log), Err(SnapshotError::LogCorrupted { .. })));
    }

    #[test]
    fn open_heals_torn_tail_and_resumes_appending() {
        let mut vs = VecStorage { base: Some(b"BASEBYTES".to_vec()), log: sample_log() };
        let partial = encode_frame(4, b"never acked");
        vs.log.extend_from_slice(&partial[..partial.len() - 3]);

        let (mut log, open) = DurableLog::open(Box::new(vs)).expect("opens");
        assert_eq!(open.base.as_deref(), Some(&b"BASEBYTES"[..]));
        assert_eq!(open.records.len(), 3);
        assert_eq!(open.dropped_bytes, (partial.len() - 3) as u64);
        assert_eq!(log.last_seq(), Some(3));

        log.append(4, b"retry").expect("append resumes");
        assert_eq!(log.frames(), 4);
    }

    #[test]
    fn install_base_drops_covered_frames() {
        let vs = VecStorage { log: sample_log(), ..VecStorage::default() };
        let (mut log, _) = DurableLog::open(Box::new(vs)).unwrap();
        log.append(4, b"tail").unwrap();
        let reclaimed = log.install_base(b"NEWBASE", 3).expect("install");
        assert!(reclaimed > 0);
        assert_eq!(log.frames(), 1);
        // Reopen sees the new base and only the surviving frame.
        // (VecStorage is consumed, so rebuild the state by hand.)
        let vs = VecStorage { base: Some(b"NEWBASE".to_vec()), log: encode_frame(4, b"tail") };
        let (_, open) = DurableLog::open(Box::new(vs)).unwrap();
        assert_eq!(open.records, vec![(4, b"tail".to_vec())]);
    }

    #[test]
    fn disk_storage_round_trips_with_torn_tail() {
        let dir = std::env::temp_dir().join(format!("wfprov-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut disk = DiskStorage::open(&dir).unwrap();
            disk.replace_base(b"BASE").unwrap();
            let (mut log, open) = DurableLog::open(Box::new(disk)).unwrap();
            assert_eq!(open.base.as_deref(), Some(&b"BASE"[..]));
            assert!(open.records.is_empty());
            log.append(1, b"one").unwrap();
            log.append(2, b"two").unwrap();
        }
        // Tear the tail on disk: drop the last 2 bytes of the log file.
        let log_path = dir.join(LOG_FILE);
        let len = std::fs::metadata(&log_path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&log_path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        {
            let disk = DiskStorage::open(&dir).unwrap();
            let (mut log, open) = DurableLog::open(Box::new(disk)).unwrap();
            assert_eq!(open.records, vec![(1, b"one".to_vec())]);
            assert_eq!(open.dropped_bytes, (encode_frame(2, b"two").len() - 2) as u64);
            log.append(2, b"two again").unwrap();
            log.install_base(b"BASE2", 1).unwrap();
        }
        {
            let disk = DiskStorage::open(&dir).unwrap();
            let (_, open) = DurableLog::open(Box::new(disk)).unwrap();
            assert_eq!(open.base.as_deref(), Some(&b"BASE2"[..]));
            assert_eq!(open.records, vec![(2, b"two again".to_vec())]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
