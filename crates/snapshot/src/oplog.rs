//! The op-log wire form of a generation increment.
//!
//! A delta record (`wf-engine`'s `SECTION_DELTA` payload) is framed as a
//! sequence of typed *ops* — the same three mutations the live ingest
//! pipeline accepts from producers: insert a run of data labels, register
//! a view, install a compiled view label. Framing the increment as the
//! ops that produced it (in application order) rather than as one
//! section-per-kind summary is what lets a persisted stream double as the
//! pipeline's op-log: replaying the stream applies the *same ops in the
//! same order* the publisher applied live, so a warm restart and the
//! multi-producer run it mirrors converge to byte-identical generations.
//!
//! This module owns only the framing — tags, headers, and the decode
//! dispatch. Label payloads stream through [`crate::delta::write_label`] /
//! [`crate::delta::read_label`] one at a time (an insert op of a million
//! labels never materializes a million-label buffer on either side), view
//! payloads through [`crate::view`], and compiled labels through
//! `ViewLabel::{write,read}_snapshot`. Every byte therefore passes the
//! same structural validation as the base snapshot sections; an unknown
//! op tag is rejected as [`SnapshotError::Malformed`] before any payload
//! bit is interpreted.

use crate::delta::write_label;
use crate::error::SnapshotError;
use crate::view::{read_view, write_view};
use wf_analysis::ProdGraph;
use wf_bitio::{BitReader, BitWriter};
use wf_core::{DataLabel, LabelCodec, ViewLabel};
use wf_model::{Grammar, View};

/// Op tag: a contiguous run of data labels interned at the store tail.
pub const OP_INSERT_LABELS: u8 = 0x21;
/// Op tag: one view registered (its id must reproduce on replay).
pub const OP_ADD_VIEW: u8 = 0x22;
/// Op tag: one compiled view label installed for `(id, kind)` (the kind
/// travels inside the label snapshot).
pub const OP_COMPILE_VIEW: u8 = 0x23;

/// One decoded op header.
///
/// `InsertLabels` carries only the run length: the labels themselves
/// follow in the stream and the caller drains them with
/// [`crate::delta::read_label`] — streaming on read exactly as
/// [`write_insert_header`] streams on write.
pub enum OplogOp {
    InsertLabels { count: usize },
    AddView { id: u32, view: View },
    CompileView { id: u32, label: ViewLabel },
}

/// Frames a run of `count` inserted labels. The caller must follow with
/// exactly `count` [`crate::delta::write_label`] calls on the same writer.
pub fn write_insert_header(w: &mut BitWriter, count: usize) {
    w.write_bits(OP_INSERT_LABELS as u64, 8);
    w.write_gamma(count as u64 + 1);
}

/// [`write_insert_header`] plus its payload, for callers that already hold
/// the labels as a slice.
pub fn write_insert_labels(w: &mut BitWriter, codec: &LabelCodec, labels: &[DataLabel]) {
    write_insert_header(w, labels.len());
    for d in labels {
        write_label(w, codec, d);
    }
}

/// Frames one view registration: the id replay must land on, then the
/// validated view body.
pub fn write_add_view(w: &mut BitWriter, grammar: &Grammar, id: u32, view: &View) {
    w.write_bits(OP_ADD_VIEW as u64, 8);
    w.write_gamma(id as u64 + 1);
    write_view(w, grammar, view);
}

/// Frames one compiled view label for view `id` (the variant kind is part
/// of the label snapshot).
pub fn write_compile_view(w: &mut BitWriter, id: u32, label: &ViewLabel) {
    w.write_bits(OP_COMPILE_VIEW as u64, 8);
    w.write_gamma(id as u64 + 1);
    label.write_snapshot(w);
}

/// Reads one op header, validating view and view-label payloads inline.
/// For [`OplogOp::InsertLabels`] the caller must drain `count` labels with
/// [`crate::delta::read_label`] before reading the next op.
pub fn read_op(
    r: &mut BitReader<'_>,
    grammar: &Grammar,
    pg: &ProdGraph,
) -> Result<OplogOp, SnapshotError> {
    match r.read_bits(8)? as u8 {
        OP_INSERT_LABELS => {
            let count = (r.read_gamma()? - 1) as usize;
            Ok(OplogOp::InsertLabels { count })
        }
        OP_ADD_VIEW => {
            let id = (r.read_gamma()? - 1) as u32;
            let view = read_view(r, grammar)?;
            Ok(OplogOp::AddView { id, view })
        }
        OP_COMPILE_VIEW => {
            let id = (r.read_gamma()? - 1) as u32;
            let label = ViewLabel::read_snapshot(r, grammar, pg)?;
            Ok(OplogOp::CompileView { id, label })
        }
        _ => Err(SnapshotError::Malformed("unknown op-log tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::read_label;
    use wf_core::{Fvl, VariantKind};
    use wf_model::fixtures::paper_example;
    use wf_run::fixtures::figure3_run;

    #[test]
    fn insert_runs_roundtrip_streaming() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labels = fvl.labeler(&run).labels().to_vec();
        let cycles = fvl.prod_graph().cycles().unwrap();

        let mut w = BitWriter::new();
        write_insert_labels(&mut w, fvl.codec(), &labels);
        let bits = w.finish();
        let mut r = BitReader::new(&bits);
        match read_op(&mut r, &ex.spec.grammar, fvl.prod_graph()).unwrap() {
            OplogOp::InsertLabels { count } => {
                assert_eq!(count, labels.len());
                for d in &labels {
                    let back = read_label(&mut r, fvl.codec(), &ex.spec.grammar, cycles).unwrap();
                    assert_eq!(&back, d);
                }
            }
            _ => panic!("expected an insert run"),
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn view_and_compile_ops_roundtrip_validated() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let g = &ex.spec.grammar;
        let view = ex.view_u2();
        let vl = fvl.label_view(&view, VariantKind::Default).unwrap();

        let mut w = BitWriter::new();
        write_add_view(&mut w, g, 7, &view);
        write_compile_view(&mut w, 7, &vl);
        let bits = w.finish();
        let mut r = BitReader::new(&bits);
        match read_op(&mut r, g, fvl.prod_graph()).unwrap() {
            OplogOp::AddView { id, .. } => assert_eq!(id, 7),
            _ => panic!("expected a view registration"),
        }
        match read_op(&mut r, g, fvl.prod_graph()).unwrap() {
            OplogOp::CompileView { id, label } => {
                assert_eq!(id, 7);
                assert_eq!(label.kind(), VariantKind::Default);
            }
            _ => panic!("expected a compiled label"),
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn unknown_tags_and_truncation_are_rejected() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let g = &ex.spec.grammar;

        // A tag outside the op-log range is a structural error, not a panic.
        let mut w = BitWriter::new();
        w.write_bits(0x5A, 8);
        let bits = w.finish();
        assert!(matches!(
            read_op(&mut BitReader::new(&bits), g, fvl.prod_graph()),
            Err(SnapshotError::Malformed("unknown op-log tag"))
        ));

        // A view op whose body is cut off surfaces the underlying read
        // error instead of inventing a view.
        let mut w = BitWriter::new();
        w.write_bits(OP_ADD_VIEW as u64, 8);
        w.write_gamma(1);
        let bits = w.finish();
        assert!(read_op(&mut BitReader::new(&bits), g, fvl.prod_graph()).is_err());
    }
}
