//! Structural fingerprint of a specification.
//!
//! A snapshot holds compiled view labels and an interned trie whose field
//! widths, production ids and cycle tables are all *relative to one
//! grammar*; loading it into a different specification would decode
//! garbage. The fingerprint hashes everything the payload encoding depends
//! on — module signatures, the production right-hand sides, and the
//! production-graph cycle structure — so a mismatch is caught at the
//! header, before any payload bit is interpreted.

use crate::container::Fnv1a;
use wf_analysis::ProdGraph;
use wf_model::Grammar;

fn mix(h: &mut Fnv1a, v: u64) {
    h.update(&v.to_le_bytes());
}

/// Hashes the structure of a grammar + production graph.
pub fn spec_fingerprint(grammar: &Grammar, pg: &ProdGraph) -> u64 {
    let mut h = Fnv1a::new();
    mix(&mut h, grammar.module_count() as u64);
    for m in grammar.modules() {
        let sig = grammar.sig(m);
        mix(&mut h, sig.inputs() as u64);
        mix(&mut h, sig.outputs() as u64);
        mix(&mut h, grammar.is_composite(m) as u64);
    }
    mix(&mut h, grammar.start().0 as u64);
    mix(&mut h, grammar.production_count() as u64);
    for (_, p) in grammar.productions() {
        mix(&mut h, p.lhs.0 as u64);
        mix(&mut h, p.rhs.node_count() as u64);
        for &m in p.rhs.nodes() {
            mix(&mut h, m.0 as u64);
        }
        for e in p.rhs.edges() {
            mix(&mut h, e.from.node.index() as u64);
            mix(&mut h, e.from.port as u64);
            mix(&mut h, e.to.node.index() as u64);
            mix(&mut h, e.to.port as u64);
        }
    }
    mix(&mut h, pg.edge_count() as u64);
    mix(&mut h, pg.cycle_count() as u64);
    mix(&mut h, pg.max_cycle_len() as u64);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let ex = paper_example();
        let pg = ProdGraph::new(&ex.spec.grammar);
        let a = spec_fingerprint(&ex.spec.grammar, &pg);
        let b = spec_fingerprint(&ex.spec.grammar, &pg);
        assert_eq!(a, b, "same grammar, same fingerprint");

        // A structurally different grammar fingerprints differently.
        let other = wf_model::fixtures::unsafe_example();
        let opg = ProdGraph::new(&other.grammar);
        assert_ne!(a, spec_fingerprint(&other.grammar, &opg));
    }
}
