//! `wf-snapshot` — the versioned binary snapshot format for labeled runs.
//!
//! The paper's economics are "label once, query forever" (§4, §6.1): data
//! labels are assigned online as the run executes and never change
//! (Definition 10), and view labels are static per view. Yet without
//! persistence every process restart re-pays the full labeling and
//! view-compilation cost, and the §4.4.3 power caches re-run cycle-finding.
//! This crate defines the on-disk container that makes warm starts cheap —
//! in the spirit of the §5 bit-level codec (labels are *designed* to be
//! compact enough to store) and of repository-scale provenance services,
//! which assume a persisted index shared by many query processes.
//!
//! Three layers:
//!
//! * [`container`] — the byte-level envelope: magic, format version,
//!   specification fingerprint, payload bit-length, FNV-1a checksum, then
//!   the payload as one contiguous [`wf_bitio`] stream. Truncation,
//!   corruption, version skew and spec mismatch are all rejected with
//!   typed [`SnapshotError`]s before any payload bit is interpreted.
//! * [`fingerprint`] — the structural spec hash stored in the header.
//! * [`view`] — the snapshot form of a registered view `(Δ′, λ′)`.
//! * [`delta`] — the snapshot form of a *generation increment* (the data
//!   labels and views one publish added), validated on read; base + deltas
//!   replay from one append-only stream via [`read_container_opt`].
//! * [`oplog`] — the op-framed layout of a delta payload: the increment as
//!   the typed ingest ops that produced it, in application order, so one
//!   persisted stream doubles as the ingest pipeline's op-log.
//! * [`durable`] — crash-safe file-backed storage for that stream:
//!   checksummed log frames with fsync acknowledgement points, a recovery
//!   reader that truncates a torn tail (mid-stream damage stays a hard
//!   [`SnapshotError::LogCorrupted`]), and the atomic
//!   write-temp → fsync → rename base swap compaction relies on.
//! * [`fault`] — deterministic fault injection ([`FaultSink`],
//!   [`FaultFile`], crash-point-metered [`MemStorage`]) so every torn
//!   write and kill point above is exercisable in tests and fuzzing.
//!
//! The payload *sections* live with the data they serialize:
//! [`wf_core::snapshot`] provides matrix / dependency-assignment
//! primitives and `ViewLabel::{write,read}_snapshot`; `wf-engine` layers
//! the label-store trie and registry sections on top and exposes the
//! user-facing `QueryEngine::save` / `QueryEngine::load`.

pub mod container;
pub mod delta;
pub mod durable;
pub mod error;
pub mod fault;
pub mod fingerprint;
pub mod oplog;
pub mod view;

pub use container::{
    read_container, read_container_opt, reseal_container, write_container, Container,
    FORMAT_VERSION, MAGIC,
};
pub use delta::{edge_target_module, read_label, write_label};
pub use durable::{
    encode_frame, scan_log, DiskStorage, DurableLog, LogOpen, LogScan, ScannedFrame, Storage,
    BASE_FILE, FRAME_HEADER_BYTES, FRAME_MAGIC, LOG_FILE,
};
pub use error::SnapshotError;
pub use fault::{FaultAt, FaultFile, FaultKind, FaultPlan, FaultSink, MemStorage};
pub use fingerprint::spec_fingerprint;
pub use view::{read_view, write_view};
