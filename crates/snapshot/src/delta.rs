//! Delta records: the snapshot form of *what one publish added*.
//!
//! Generation snapshots (`wf-engine`) persist a whole published engine;
//! a delta record persists only the increment between two consecutive
//! generations — the data labels inserted and the views registered or
//! compiled. A warm restart then replays `base ‖ delta ‖ delta ‖ …` from
//! one append-only stream instead of rewriting the full store on every
//! publish (Lipstick-style provenance is append-heavy: runs grow step by
//! step, views accrete as users refine them).
//!
//! This module owns the pieces of that format that are *label-shaped*: a
//! validated wire form of one [`DataLabel`] (paths via the §5 edge codec,
//! ports range-checked against the terminal module's signature) and the
//! edge-chaining rule [`edge_target_module`] every persisted path must
//! satisfy — shared with the label-store trie reader in `wf-engine`, so
//! the workspace has exactly one copy of the check that keeps forged paths
//! from feeding π mismatched matrix dimensions.

use crate::error::SnapshotError;
use wf_analysis::CycleInfo;
use wf_bitio::{BitReader, BitWriter};
use wf_core::{DataLabel, LabelCodec, PortLabel};
use wf_model::{Grammar, ModuleId};
use wf_run::EdgeLabel;

/// The module a path ends at after following `e` from a node whose path
/// ends at `parent_module` — or a typed rejection when the edge cannot
/// legally continue that path. A plain edge must expand the module the
/// parent path ends at; a recursion-chain edge must enter its cycle at
/// that same module. This chaining is what the decoder's matrix products
/// assume (`I(k,·)` has `lhs(k)`-many rows; a chain at offset `t` starts
/// on `modules[t]`'s arity) — without it, forged input would hand π
/// matrices of mismatched dimensions.
pub fn edge_target_module(
    grammar: &Grammar,
    cycles: &[CycleInfo],
    parent_module: ModuleId,
    e: EdgeLabel,
) -> Result<ModuleId, SnapshotError> {
    match e {
        EdgeLabel::Plain { k, i } => {
            if k.index() >= grammar.production_count() {
                return Err(SnapshotError::Malformed("edge production out of range"));
            }
            let p = grammar.production(k);
            if p.lhs != parent_module {
                return Err(SnapshotError::Malformed("edge production breaks the path"));
            }
            if i as usize >= p.rhs.node_count() {
                return Err(SnapshotError::Malformed("edge position out of range"));
            }
            Ok(p.rhs.nodes()[i as usize])
        }
        EdgeLabel::Rec { s, t, i } => {
            let Some(cycle) = cycles.get(s as usize) else {
                return Err(SnapshotError::Malformed("edge cycle out of range"));
            };
            let l = cycle.len() as u64;
            if t as u64 >= l {
                return Err(SnapshotError::Malformed("edge cycle offset out of range"));
            }
            if cycle.modules[t as usize] != parent_module {
                return Err(SnapshotError::Malformed("edge cycle breaks the path"));
            }
            // Chain child `i` under offset `t` is an instance of the cycle
            // module at `t + i` (wrapping; `i` is reduced first so an
            // adversarial chain index near `u64::MAX` cannot overflow).
            Ok(cycle.modules[((t as u64 + i % l) % l) as usize])
        }
    }
}

fn write_side(w: &mut BitWriter, codec: &LabelCodec, p: &PortLabel) {
    w.write_gamma(p.path.len() as u64 + 1);
    for e in &p.path {
        codec.write_edge(w, e);
    }
    w.write_bits(p.port as u64, 8);
}

/// Writes one data label in the delta wire form: two presence bits, then
/// per present side the full path (γ length, §5 edge codec) and an 8-bit
/// port. Deltas are small increments, so the two sides are written whole —
/// prefix sharing across labels is the *store trie's* job and is recovered
/// the moment the label is re-interned on replay.
pub fn write_label(w: &mut BitWriter, codec: &LabelCodec, d: &DataLabel) {
    w.push_bit(d.out.is_some());
    w.push_bit(d.inp.is_some());
    if let Some(o) = &d.out {
        write_side(w, codec, o);
    }
    if let Some(i) = &d.inp {
        write_side(w, codec, i);
    }
}

fn read_side(
    r: &mut BitReader<'_>,
    codec: &LabelCodec,
    grammar: &Grammar,
    cycles: &[CycleInfo],
    outputs: bool,
) -> Result<PortLabel, SnapshotError> {
    let len = (r.read_gamma()? - 1) as usize;
    let mut module = grammar.start();
    let mut path = Vec::with_capacity(len.min(1 << 16));
    for _ in 0..len {
        let e = codec.read_edge(r)?;
        module = edge_target_module(grammar, cycles, module, e)?;
        path.push(e);
    }
    let port = r.read_bits(8)? as u8;
    let sig = grammar.sig(module);
    let arity = if outputs { sig.outputs() } else { sig.inputs() };
    if port as usize >= arity {
        return Err(SnapshotError::Malformed("label port out of range"));
    }
    Ok(PortLabel { path, port })
}

/// Inverse of [`write_label`]. Every edge is checked to continue its path
/// ([`edge_target_module`]) and every port against the terminal module's
/// arity, so a replayed label can never index a signature or reachability
/// matrix out of range — bad bytes fail *here*, typed, not inside π.
pub fn read_label(
    r: &mut BitReader<'_>,
    codec: &LabelCodec,
    grammar: &Grammar,
    cycles: &[CycleInfo],
) -> Result<DataLabel, SnapshotError> {
    let has_out = r.read_bit()?;
    let has_inp = r.read_bit()?;
    if !has_out && !has_inp {
        return Err(SnapshotError::Malformed("label with no endpoint"));
    }
    let out = has_out.then(|| read_side(r, codec, grammar, cycles, true)).transpose()?;
    let inp = has_inp.then(|| read_side(r, codec, grammar, cycles, false)).transpose()?;
    Ok(DataLabel { out, inp })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_analysis::ProdGraph;
    use wf_core::Fvl;
    use wf_model::fixtures::paper_example;
    use wf_run::fixtures::figure3_run;

    #[test]
    fn labels_roundtrip_validated() {
        let ex = paper_example();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let (run, _) = figure3_run(&ex);
        let labeler = fvl.labeler(&run);
        let cycles = fvl.prod_graph().cycles().unwrap();
        for d in labeler.labels() {
            let mut w = BitWriter::new();
            write_label(&mut w, fvl.codec(), d);
            let bits = w.finish();
            let mut r = BitReader::new(&bits);
            let back = read_label(&mut r, fvl.codec(), &ex.spec.grammar, cycles).unwrap();
            assert_eq!(r.remaining(), 0);
            assert_eq!(&back, d);
        }
    }

    #[test]
    fn rejects_broken_paths_and_ports() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let cycles = pg.cycles().unwrap();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let read =
            |bits: &wf_bitio::BitVec| read_label(&mut BitReader::new(bits), fvl.codec(), g, cycles);
        // Neither endpoint present.
        let mut w = BitWriter::new();
        w.push_bit(false);
        w.push_bit(false);
        assert!(matches!(read(&w.finish()), Err(SnapshotError::Malformed(_))));
        // A non-start production as the first edge breaks the path.
        let (k_deep, _) = g
            .productions()
            .find(|(_, p)| p.lhs != g.start())
            .expect("paper grammar has non-start productions");
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bit(false);
        w.write_gamma(2); // one edge
        fvl.codec().write_edge(&mut w, &EdgeLabel::Plain { k: k_deep, i: 0 });
        w.write_bits(0, 8);
        assert!(matches!(read(&w.finish()), Err(SnapshotError::Malformed(_))));
        // An out-of-arity port at the start module (empty path).
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bit(false);
        w.write_gamma(1); // empty path
        w.write_bits(200, 8);
        assert!(matches!(read(&w.finish()), Err(SnapshotError::Malformed(_))));
    }

    /// Every rejection branch of [`edge_target_module`], hit directly —
    /// including the wrap guard that keeps an adversarial chain index near
    /// `u64::MAX` from overflowing the offset arithmetic.
    #[test]
    fn edge_target_module_rejects_every_break_class() {
        use wf_model::ProdId;
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let cycles = pg.cycles().unwrap();
        let start = g.start();
        let reason = |r: Result<ModuleId, SnapshotError>| match r {
            Err(SnapshotError::Malformed(m)) => m,
            other => panic!("expected Malformed, got {other:?}"),
        };
        let k_oob = ProdId(g.production_count() as u32);
        assert_eq!(
            reason(edge_target_module(g, cycles, start, EdgeLabel::Plain { k: k_oob, i: 0 })),
            "edge production out of range"
        );
        let (k_deep, _) = g.productions().find(|(_, p)| p.lhs != start).unwrap();
        assert_eq!(
            reason(edge_target_module(g, cycles, start, EdgeLabel::Plain { k: k_deep, i: 0 })),
            "edge production breaks the path"
        );
        let (k0, p0) = g.productions().find(|(_, p)| p.lhs == start).unwrap();
        let i_oob = p0.rhs.node_count() as u32;
        assert_eq!(
            reason(edge_target_module(g, cycles, start, EdgeLabel::Plain { k: k0, i: i_oob })),
            "edge position out of range"
        );
        let s_oob = cycles.len() as u32;
        assert_eq!(
            reason(edge_target_module(g, cycles, start, EdgeLabel::Rec { s: s_oob, t: 0, i: 0 })),
            "edge cycle out of range"
        );
        let entry = cycles[0].modules[0];
        let t_oob = cycles[0].len() as u32;
        assert_eq!(
            reason(edge_target_module(g, cycles, entry, EdgeLabel::Rec { s: 0, t: t_oob, i: 0 })),
            "edge cycle offset out of range"
        );
        // A parent the cycle does not stand on at offset t: any other
        // module of the same cycle (distinct by construction).
        let wrong = cycles[0].modules[1 % cycles[0].len()];
        let not_on_cycle = g.modules().find(|m| !cycles[0].modules.contains(m)).unwrap_or(wrong);
        assert_eq!(
            reason(edge_target_module(
                g,
                cycles,
                not_on_cycle,
                EdgeLabel::Rec { s: 0, t: 0, i: 0 }
            )),
            "edge cycle breaks the path"
        );
        // Near-u64::MAX chain index: reduced mod cycle length, no overflow.
        let l = cycles[0].len() as u64;
        let want = cycles[0].modules[(u64::MAX % l % l) as usize];
        let far = EdgeLabel::Rec { s: 0, t: 0, i: u64::MAX };
        assert_eq!(edge_target_module(g, cycles, entry, far).unwrap(), want);
    }

    /// The satellite of the fuzzing harness this module anchors: payloads
    /// whose container checksum is *genuinely valid* (sealed by
    /// [`crate::write_container`] or re-sealed by
    /// [`crate::reseal_container`]) but whose label structure is forged.
    /// The integrity layer must pass them through and the structural
    /// validators in [`read_label`] must reject them typed — checksums
    /// catch accidents, path chaining catches adversaries.
    #[test]
    fn valid_checksum_forged_payloads_fail_structurally() {
        use crate::{read_container, reseal_container, spec_fingerprint, write_container};
        let ex = paper_example();
        let g = &ex.spec.grammar;
        let pg = ProdGraph::new(g);
        let cycles = pg.cycles().unwrap();
        let fvl = Fvl::new(&ex.spec).unwrap();
        let codec = fvl.codec();
        let fp = spec_fingerprint(g, &pg);

        let seal = |w: BitWriter| {
            let mut out = Vec::new();
            write_container(&mut out, fp, &w.finish()).unwrap();
            out
        };
        let read_back = |bytes: &[u8]| {
            let c = read_container(&mut &bytes[..]).expect("checksum layer admits the container");
            read_label(&mut BitReader::new(&c.payload), codec, g, cycles)
        };
        let (k0, p0) = g.productions().find(|(_, p)| p.lhs == g.start()).unwrap();
        let j = p0.rhs.nodes().iter().position(|&m| m != g.start()).unwrap() as u32;

        // Chaining breaks mid-path: a valid first edge into a child, then a
        // start production again — its LHS no longer matches the path head.
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bit(false);
        w.write_gamma(3); // two edges
        codec.write_edge(&mut w, &EdgeLabel::Plain { k: k0, i: j });
        codec.write_edge(&mut w, &EdgeLabel::Plain { k: k0, i: j });
        w.write_bits(0, 8);
        let deep_break = seal(w);
        assert!(matches!(read_back(&deep_break), Err(SnapshotError::Malformed(_))));

        // Cycle-offset mismatch inside an otherwise well-framed label: the
        // paper grammar's second cycle has length 1, so offset 1 is out of
        // range yet encodable in the codec's fixed field width.
        assert_eq!(cycles[1].len(), 1, "fixture's second cycle is the self-loop");
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bit(false);
        w.write_gamma(2);
        codec.write_edge(&mut w, &EdgeLabel::Rec { s: 1, t: 1, i: 0 });
        w.write_bits(0, 8);
        assert!(matches!(read_back(&seal(w)), Err(SnapshotError::Malformed(_))));

        // A declared path length in the billions with no bits behind it:
        // must terminate immediately as Truncated — no hang, no huge
        // allocation (the reader caps its preallocation).
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bit(false);
        w.write_gamma((1u64 << 40) + 1);
        assert!(matches!(read_back(&seal(w)), Err(SnapshotError::Truncated)));

        // Out-of-arity port at the end of a *valid* one-edge path.
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bit(false);
        w.write_gamma(2);
        codec.write_edge(&mut w, &EdgeLabel::Plain { k: k0, i: j });
        w.write_bits(250, 8);
        assert!(matches!(read_back(&seal(w)), Err(SnapshotError::Malformed(_))));

        // Second side forged behind a valid first side: the out side is a
        // legal empty path, the inp side repeats the broken deep chain.
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bit(true);
        w.write_gamma(1); // out: empty path
        w.write_bits(0, 8);
        w.write_gamma(3); // inp: the broken two-edge chain
        codec.write_edge(&mut w, &EdgeLabel::Plain { k: k0, i: j });
        codec.write_edge(&mut w, &EdgeLabel::Plain { k: k0, i: j });
        w.write_bits(0, 8);
        assert!(matches!(read_back(&seal(w)), Err(SnapshotError::Malformed(_))));

        // Layering check: tampering a sealed payload trips the checksum
        // first; resealing lets the same bytes through to the structural
        // layer, which still rejects them.
        let mut tampered = deep_break.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x04;
        assert!(matches!(
            read_container(&mut tampered.as_slice()),
            Err(SnapshotError::ChecksumMismatch)
        ));
        reseal_container(&mut tampered).expect("framing is intact");
        assert!(read_back(&tampered).is_err(), "resealed forgery must still fail structurally");
    }
}
