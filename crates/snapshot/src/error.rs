//! Typed snapshot failures — bad input is *rejected*, never a panic.

use wf_bitio::ReadError;

/// Why a snapshot could not be written or read back.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The stream does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The stream ended before the declared payload was complete.
    Truncated,
    /// The payload bytes do not match the stored checksum — corruption.
    ChecksumMismatch,
    /// The snapshot was taken of a different specification than the one it
    /// is being loaded into (fingerprints differ).
    SpecMismatch { expected: u64, found: u64 },
    /// The payload passed the checksum but decodes into an inconsistent
    /// structure (forged or buggy input).
    Malformed(&'static str),
    /// A durable op-log frame *before the tail* is damaged: bad frame
    /// magic, bad header checksum, or a complete frame whose payload
    /// checksum fails. A crashed append can only produce a *prefix* of
    /// the intended bytes, so damage that is not a torn tail is real
    /// corruption and is never silently dropped.
    LogCorrupted {
        /// Byte offset of the damaged frame within the log stream.
        offset: u64,
    },
}

impl SnapshotError {
    /// Stable short name of the rejection class (one per enum variant,
    /// payload-independent). This is the key fuzzers and operators bucket
    /// rejections under — e.g. the mutation fuzzer's rejection histogram —
    /// so it must stay coarse: two corruptions differing only in *where*
    /// they broke the structure share a class.
    pub fn class(&self) -> &'static str {
        match self {
            SnapshotError::Io(_) => "io",
            SnapshotError::BadMagic => "bad_magic",
            SnapshotError::UnsupportedVersion { .. } => "unsupported_version",
            SnapshotError::Truncated => "truncated",
            SnapshotError::ChecksumMismatch => "checksum_mismatch",
            SnapshotError::SpecMismatch { .. } => "spec_mismatch",
            SnapshotError::Malformed(_) => "malformed",
            SnapshotError::LogCorrupted { .. } => "log_corrupted",
        }
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a wfprov snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (this build reads {supported})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch (corrupted)"),
            SnapshotError::SpecMismatch { expected, found } => write!(
                f,
                "snapshot was taken of a different specification \
                 (fingerprint {found:#018x}, engine expects {expected:#018x})"
            ),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot payload: {what}"),
            SnapshotError::LogCorrupted { offset } => {
                write!(f, "op-log frame at byte {offset} is corrupted (not a torn tail)")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            SnapshotError::Truncated
        } else {
            SnapshotError::Io(e)
        }
    }
}

impl From<ReadError> for SnapshotError {
    fn from(e: ReadError) -> Self {
        match e {
            // The container already verified the payload's declared length,
            // so running out of bits mid-field means the *structure* lied
            // about its own size — still reported as truncation because that
            // is what the operator should check first.
            ReadError::OutOfBits => SnapshotError::Truncated,
            ReadError::Malformed => SnapshotError::Malformed("invalid universal code or structure"),
        }
    }
}
