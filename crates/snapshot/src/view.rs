//! Snapshot form of a registered [`View`].
//!
//! A view is `(Δ′, λ′)`: the expandable-module mask plus the perceived
//! dependency matrices. Reconstruction goes through
//! [`View::new_structural`], so a decoded view re-passes the same
//! properness validation a freshly registered one would — corrupt masks are
//! rejected with a typed error instead of flowing into label compilation.

use crate::error::SnapshotError;
use wf_bitio::{BitReader, BitWriter};
use wf_core::snapshot::{read_deps, write_deps};
use wf_model::{Grammar, View};

/// Writes `Δ′` (one bit per grammar module) and `λ′`.
pub fn write_view(w: &mut BitWriter, grammar: &Grammar, view: &View) {
    for m in grammar.modules() {
        w.push_bit(view.expands(m));
    }
    write_deps(w, &view.deps);
}

/// Inverse of [`write_view`]; re-validates the view against the grammar.
pub fn read_view(r: &mut BitReader<'_>, grammar: &Grammar) -> Result<View, SnapshotError> {
    let mut expand = Vec::new();
    for m in grammar.modules() {
        if r.read_bit()? {
            expand.push(m);
        }
    }
    let deps = read_deps(r, grammar.module_count())?;
    View::new_structural(grammar, expand, deps)
        .map_err(|_| SnapshotError::Malformed("view fails grammar validation"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_model::fixtures::paper_example;

    #[test]
    fn views_roundtrip() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        for view in [ex.view_u1(), ex.view_u2(), ex.spec.default_view()] {
            let mut w = BitWriter::new();
            write_view(&mut w, g, &view);
            let bits = w.finish();
            let mut r = BitReader::new(&bits);
            let back = read_view(&mut r, g).unwrap();
            assert_eq!(r.remaining(), 0);
            assert_eq!(back.expand_mask(), view.expand_mask());
            assert_eq!(back.deps.iter().count(), view.deps.iter().count());
            for (m, mat) in view.deps.iter() {
                assert_eq!(back.deps.get(m), Some(mat));
            }
        }
    }

    #[test]
    fn corrupt_mask_is_rejected_typed() {
        let ex = paper_example();
        let g = &ex.spec.grammar;
        // A flipped mask bit that marks an *atomic* module expandable can
        // never come from a valid View; re-validation catches it.
        let atomic = g.atomic_modules().next().unwrap();
        let mut w = BitWriter::new();
        for m in g.modules() {
            w.push_bit(m == atomic);
        }
        write_deps(&mut w, &ex.spec.default_view().deps);
        let bits = w.finish();
        assert!(matches!(
            read_view(&mut BitReader::new(&bits), g),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
